"""Tests for the experiment harness and a few cheap end-to-end runs."""

import pytest

from repro.errors import ReproError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.common import ExperimentResult, register

EXPECTED_IDS = {
    "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "tab01",
    "overhead", "ablation-kl", "ablation-search", "ablation-packing",
    "ablation-handoff", "ablation-longest-first", "drift-recovery",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert EXPECTED_IDS <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError):
            register("fig03")(lambda quick=False: None)


class TestExperimentResult:
    def test_add_checks_columns(self):
        res = ExperimentResult("x", "t", columns=["a", "b"])
        res.add(a=1, b=2)
        with pytest.raises(ReproError):
            res.add(a=1)

    def test_column_extraction(self):
        res = ExperimentResult("x", "t", columns=["a"])
        res.add(a=1)
        res.add(a=2)
        assert res.column("a") == [1, 2]
        with pytest.raises(ReproError):
            res.column("zzz")

    def test_table_renders_all_rows(self):
        res = ExperimentResult("x", "title!", columns=["name", "value"],
                               notes="hello")
        res.add(name="alpha", value=1.5)
        res.add(name="beta", value=2.0)
        table = res.to_table()
        assert "title!" in table
        assert "alpha" in table and "beta" in table
        assert "note: hello" in table


class TestQuickRuns:
    """Cheap experiments run end-to-end in quick mode."""

    def test_fig04_shape(self):
        res = run_experiment("fig04", quick=True)
        assert len(res.rows) == 4
        assert all(row["asf_s3_ms"] > row["openfaas_minio_ms"]
                   for row in res.rows)

    def test_tab01_shape(self):
        res = run_experiment("tab01", quick=True)
        mechanisms = {row["mechanism"] for row in res.rows}
        assert mechanisms == {"sfi", "mpk"}

    def test_fig07_shape(self):
        res = run_experiment("fig07", quick=True)
        assert [row["cpus"] for row in res.rows] == [4, 3, 2, 1]

    def test_fig05_produces_gantt(self):
        res = run_experiment("fig05", quick=True)
        assert "process mode" in res.notes
        assert "thread mode" in res.notes
        assert len(res.rows) == 10  # 5 functions x 2 modes

    def test_overhead_components_present(self):
        res = run_experiment("overhead", quick=True)
        components = {row["component"] for row in res.rows}
        assert {"profiler", "pgp-scheduler", "generator"} <= components
