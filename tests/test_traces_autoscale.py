"""Tests for trace generation, elastic resources and the autoscaler."""

import numpy as np
import pytest

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.cluster import (
    AutoscalerConfig,
    burst_arrivals,
    constant_arrivals,
    diurnal_arrivals,
    interarrival_stats,
    run_autoscaled,
)
from repro.errors import CapacityError, ReproError, SimulationError
from repro.platforms import FaastlanePlatform
from repro.simcore import Environment, Resource

CAL = RuntimeCalibration.native()


class TestTraces:
    def test_constant_rate_accuracy(self):
        arrivals = constant_arrivals(50.0, 20_000.0, seed=1)
        rate = len(arrivals) / 20.0  # per second
        assert rate == pytest.approx(50.0, rel=0.15)
        assert arrivals == sorted(arrivals)

    def test_poisson_cv_near_one(self):
        arrivals = constant_arrivals(50.0, 20_000.0, seed=2)
        _mean, cv = interarrival_stats(arrivals)
        assert cv == pytest.approx(1.0, abs=0.2)

    def test_diurnal_rate_varies_with_phase(self):
        period = 10_000.0
        arrivals = diurnal_arrivals(5.0, 100.0, period_ms=period,
                                    duration_ms=period, seed=3)
        arr = np.asarray(arrivals)
        # first half of the sine (rising/peak) sees far more traffic than
        # the second (trough)
        first = np.sum(arr < period / 2)
        second = len(arr) - first
        assert first > 2 * second

    def test_burst_concentrates_arrivals(self):
        arrivals = burst_arrivals(2.0, 200.0, burst_every_ms=5000.0,
                                  burst_len_ms=500.0, duration_ms=20_000.0,
                                  seed=4)
        arr = np.asarray(arrivals)
        in_burst = np.sum((arr % 5000.0) < 500.0)
        assert in_burst > 0.8 * len(arr)
        _mean, cv = interarrival_stats(arrivals)
        assert cv > 1.5  # much burstier than Poisson

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            constant_arrivals(0.0, 100.0)
        with pytest.raises(ReproError):
            diurnal_arrivals(10.0, 5.0, period_ms=100.0, duration_ms=100.0)
        with pytest.raises(ReproError):
            burst_arrivals(10.0, 5.0, burst_every_ms=10.0, burst_len_ms=1.0,
                           duration_ms=100.0)

    def test_deterministic_given_seed(self):
        a = constant_arrivals(20.0, 5_000.0, seed=9)
        b = constant_arrivals(20.0, 5_000.0, seed=9)
        assert a == b


class TestElasticResource:
    def test_grow_grants_waiters(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(env, name):
            with res.request() as req:
                yield req
                order.append((name, env.now))
                yield env.timeout(10.0)

        def scaler(env):
            yield env.timeout(2.0)
            res.set_capacity(3)

        for name in "abc":
            env.process(user(env, name))
        env.process(scaler(env))
        env.run()
        times = dict(order)
        assert times["a"] == 0.0
        assert times["b"] == pytest.approx(2.0)  # unblocked by the grow
        assert times["c"] == pytest.approx(2.0)

    def test_shrink_is_lazy(self):
        env = Environment()
        res = Resource(env, capacity=2)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10.0)

        env.process(holder(env))
        env.process(holder(env))
        env.run(until=1.0)
        res.set_capacity(1)
        assert res.count == 2  # in-flight work not revoked
        env.run()
        assert res.count == 0

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=1).set_capacity(0)


class TestAutoscaler:
    def _platform(self):
        return FaastlanePlatform(CAL)

    def test_config_validation(self):
        with pytest.raises(CapacityError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(CapacityError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(CapacityError):
            AutoscalerConfig(target_inflight_per_replica=0)

    def test_empty_trace_rejected(self):
        with pytest.raises(CapacityError):
            run_autoscaled(self._platform(), finra(5), arrivals=[])

    def test_light_load_stays_at_min(self):
        wf = finra(5)
        arrivals = constant_arrivals(2.0, 5_000.0, seed=5)
        result = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                                config=AutoscalerConfig(min_replicas=1,
                                                        max_replicas=8),
                                service_pool=6)
        assert result.completed == len(arrivals)
        assert max(r for _t, r in result.replica_timeline) <= 2

    def test_heavy_load_scales_up(self):
        wf = finra(5)  # service ~95 ms -> 1 replica saturates near 10 rps
        arrivals = constant_arrivals(40.0, 4_000.0, seed=6)
        result = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                                config=AutoscalerConfig(
                                    min_replicas=1, max_replicas=8,
                                    evaluation_interval_ms=250.0),
                                service_pool=6)
        assert max(r for _t, r in result.replica_timeline) >= 4
        assert result.mean_replicas > 1.5

    def test_scaling_bounds_latency_vs_fixed_min(self):
        """Autoscaling keeps p90 sojourn far below a pinned-at-1 deployment
        under the same burst."""
        wf = finra(5)
        arrivals = constant_arrivals(30.0, 4_000.0, seed=7)
        fixed = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                               config=AutoscalerConfig(min_replicas=1,
                                                       max_replicas=1),
                               service_pool=6)
        scaled = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                                config=AutoscalerConfig(
                                    min_replicas=1, max_replicas=8,
                                    evaluation_interval_ms=250.0),
                                service_pool=6)
        assert scaled.sojourn.p90_ms < 0.5 * fixed.sojourn.p90_ms
        # ... at the price of more replica-seconds
        assert scaled.replica_seconds > fixed.replica_seconds

    def test_provision_delay_lags_bursts(self):
        """A longer cold start means worse burst-tail latency."""
        wf = finra(5)
        arrivals = burst_arrivals(1.0, 60.0, burst_every_ms=2_000.0,
                                  burst_len_ms=400.0, duration_ms=4_000.0,
                                  seed=8)
        fast = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                              config=AutoscalerConfig(
                                  min_replicas=1, max_replicas=8,
                                  evaluation_interval_ms=100.0,
                                  provision_delay_ms=0.0),
                              service_pool=6)
        slow = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                              config=AutoscalerConfig(
                                  min_replicas=1, max_replicas=8,
                                  evaluation_interval_ms=100.0,
                                  provision_delay_ms=2_000.0),
                              service_pool=6)
        assert fast.sojourn.p90_ms < slow.sojourn.p90_ms
