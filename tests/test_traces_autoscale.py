"""Tests for trace generation, elastic resources and the autoscaler."""

import numpy as np
import pytest

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.cluster import (
    AutoscalerConfig,
    burst_arrivals,
    constant_arrivals,
    diurnal_arrivals,
    interarrival_stats,
    run_autoscaled,
)
from repro.errors import CapacityError, ReproError, SimulationError
from repro.overload import AdmissionPolicy, BrownoutConfig
from repro.platforms import FaastlanePlatform
from repro.simcore import Environment, Resource

CAL = RuntimeCalibration.native()


class TestTraces:
    def test_constant_rate_accuracy(self):
        arrivals = constant_arrivals(50.0, 20_000.0, seed=1)
        rate = len(arrivals) / 20.0  # per second
        assert rate == pytest.approx(50.0, rel=0.15)
        assert arrivals == sorted(arrivals)

    def test_poisson_cv_near_one(self):
        arrivals = constant_arrivals(50.0, 20_000.0, seed=2)
        _mean, cv = interarrival_stats(arrivals)
        assert cv == pytest.approx(1.0, abs=0.2)

    def test_diurnal_rate_varies_with_phase(self):
        period = 10_000.0
        arrivals = diurnal_arrivals(5.0, 100.0, period_ms=period,
                                    duration_ms=period, seed=3)
        arr = np.asarray(arrivals)
        # first half of the sine (rising/peak) sees far more traffic than
        # the second (trough)
        first = np.sum(arr < period / 2)
        second = len(arr) - first
        assert first > 2 * second

    def test_burst_concentrates_arrivals(self):
        arrivals = burst_arrivals(2.0, 200.0, burst_every_ms=5000.0,
                                  burst_len_ms=500.0, duration_ms=20_000.0,
                                  seed=4)
        arr = np.asarray(arrivals)
        in_burst = np.sum((arr % 5000.0) < 500.0)
        assert in_burst > 0.8 * len(arr)
        _mean, cv = interarrival_stats(arrivals)
        assert cv > 1.5  # much burstier than Poisson

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            constant_arrivals(0.0, 100.0)
        with pytest.raises(ReproError):
            diurnal_arrivals(10.0, 5.0, period_ms=100.0, duration_ms=100.0)
        with pytest.raises(ReproError):
            burst_arrivals(10.0, 5.0, burst_every_ms=10.0, burst_len_ms=1.0,
                           duration_ms=100.0)

    def test_deterministic_given_seed(self):
        a = constant_arrivals(20.0, 5_000.0, seed=9)
        b = constant_arrivals(20.0, 5_000.0, seed=9)
        assert a == b


class TestElasticResource:
    def test_grow_grants_waiters(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(env, name):
            with res.request() as req:
                yield req
                order.append((name, env.now))
                yield env.timeout(10.0)

        def scaler(env):
            yield env.timeout(2.0)
            res.set_capacity(3)

        for name in "abc":
            env.process(user(env, name))
        env.process(scaler(env))
        env.run()
        times = dict(order)
        assert times["a"] == 0.0
        assert times["b"] == pytest.approx(2.0)  # unblocked by the grow
        assert times["c"] == pytest.approx(2.0)

    def test_shrink_is_lazy(self):
        env = Environment()
        res = Resource(env, capacity=2)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10.0)

        env.process(holder(env))
        env.process(holder(env))
        env.run(until=1.0)
        res.set_capacity(1)
        assert res.count == 2  # in-flight work not revoked
        env.run()
        assert res.count == 0

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=1).set_capacity(0)


class TestAutoscaler:
    def _platform(self):
        return FaastlanePlatform(CAL)

    def test_config_validation(self):
        with pytest.raises(CapacityError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(CapacityError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(CapacityError):
            AutoscalerConfig(target_inflight_per_replica=0)

    def test_empty_trace_rejected(self):
        with pytest.raises(CapacityError):
            run_autoscaled(self._platform(), finra(5), arrivals=[])

    def test_light_load_stays_at_min(self):
        wf = finra(5)
        arrivals = constant_arrivals(2.0, 5_000.0, seed=5)
        result = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                                config=AutoscalerConfig(min_replicas=1,
                                                        max_replicas=8),
                                service_pool=6)
        assert result.completed == len(arrivals)
        assert max(r for _t, r in result.replica_timeline) <= 2

    def test_heavy_load_scales_up(self):
        wf = finra(5)  # service ~95 ms -> 1 replica saturates near 10 rps
        arrivals = constant_arrivals(40.0, 4_000.0, seed=6)
        result = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                                config=AutoscalerConfig(
                                    min_replicas=1, max_replicas=8,
                                    evaluation_interval_ms=250.0),
                                service_pool=6)
        assert max(r for _t, r in result.replica_timeline) >= 4
        assert result.mean_replicas > 1.5

    def test_scaling_bounds_latency_vs_fixed_min(self):
        """Autoscaling keeps p90 sojourn far below a pinned-at-1 deployment
        under the same burst."""
        wf = finra(5)
        arrivals = constant_arrivals(30.0, 4_000.0, seed=7)
        fixed = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                               config=AutoscalerConfig(min_replicas=1,
                                                       max_replicas=1),
                               service_pool=6)
        scaled = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                                config=AutoscalerConfig(
                                    min_replicas=1, max_replicas=8,
                                    evaluation_interval_ms=250.0),
                                service_pool=6)
        assert scaled.sojourn.p90_ms < 0.5 * fixed.sojourn.p90_ms
        # ... at the price of more replica-seconds
        assert scaled.replica_seconds > fixed.replica_seconds

    def test_provision_delay_lags_bursts(self):
        """A longer cold start means worse burst-tail latency."""
        wf = finra(5)
        arrivals = burst_arrivals(1.0, 60.0, burst_every_ms=2_000.0,
                                  burst_len_ms=400.0, duration_ms=4_000.0,
                                  seed=8)
        fast = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                              config=AutoscalerConfig(
                                  min_replicas=1, max_replicas=8,
                                  evaluation_interval_ms=100.0,
                                  provision_delay_ms=0.0),
                              service_pool=6)
        slow = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                              config=AutoscalerConfig(
                                  min_replicas=1, max_replicas=8,
                                  evaluation_interval_ms=100.0,
                                  provision_delay_ms=2_000.0),
                              service_pool=6)
        assert fast.sojourn.p90_ms < slow.sojourn.p90_ms


def step_burst(quiet_rps: float = 2.0, burst_rps: float = 40.0, *,
               quiet_ms: float = 1_000.0, burst_ms: float = 3_000.0,
               seed: int = 12) -> list[float]:
    """A step in offered load: quiet warm-up, then a sustained burst."""
    quiet = constant_arrivals(quiet_rps, quiet_ms, seed=seed)
    burst = constant_arrivals(burst_rps, burst_ms, seed=seed + 1)
    return quiet + [quiet_ms + t for t in burst]


class TestColdStartLag:
    """Queue depth and recovery while the autoscaler chases a step burst."""

    def _platform(self):
        return FaastlanePlatform(CAL)

    def _config(self, provision_delay_ms: float) -> AutoscalerConfig:
        return AutoscalerConfig(min_replicas=1, max_replicas=8,
                                evaluation_interval_ms=100.0,
                                provision_delay_ms=provision_delay_ms)

    def test_queue_depth_tracks_provision_delay(self):
        """A longer cold start means a deeper backlog during the step."""
        wf = finra(5)
        arrivals = step_burst()
        fast = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                              config=self._config(0.0), service_pool=6)
        slow = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                              config=self._config(1_500.0), service_pool=6)
        assert slow.peak_queue_len > 2 * fast.peak_queue_len
        assert slow.peak_queue_len >= 10  # the lag really backs work up

    def test_queue_recovers_after_capacity_arrives(self):
        """The backlog drains once the provisioned replicas come online,
        and the recovery takes at least the cold-start lag."""
        wf = finra(5)
        delay = 800.0
        result = run_autoscaled(self._platform(), wf,
                                arrivals=step_burst(),
                                config=self._config(delay), service_pool=6)
        recovery = result.queue_recovery_ms(threshold=2)
        assert recovery is not None
        assert recovery >= delay
        assert recovery < result.duration_ms  # it did recover

    def test_admission_bounds_queue_during_lag(self):
        """With a bounded per-replica queue the cold-start window sheds
        instead of stacking: shallower backlog, faster recovery."""
        wf = finra(5)
        arrivals = step_burst()
        config = self._config(1_500.0)
        base = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                              config=config, service_pool=6)
        guarded = run_autoscaled(
            self._platform(), wf, arrivals=arrivals, config=config,
            service_pool=6,
            admission=AdmissionPolicy(max_queue_per_replica=3))
        assert guarded.shed > 0
        assert guarded.peak_queue_len < base.peak_queue_len
        base_rec = base.queue_recovery_ms(threshold=2)
        guarded_rec = guarded.queue_recovery_ms(threshold=2)
        assert guarded_rec is None or base_rec is None \
            or guarded_rec <= base_rec


class TestBrownout:
    def _platform(self):
        return FaastlanePlatform(CAL)

    def test_degrades_at_max_replicas_under_pressure(self):
        """Saturated at max_replicas, the controller trades per-request
        latency for capacity and records the transition."""
        wf = finra(5)
        arrivals = constant_arrivals(60.0, 4_000.0, seed=13)
        config = AutoscalerConfig(min_replicas=2, max_replicas=2,
                                  evaluation_interval_ms=100.0,
                                  provision_delay_ms=0.0)
        brown = BrownoutConfig(queue_per_replica_threshold=2.0,
                               trigger_intervals=2, recover_intervals=3,
                               service_factor=1.3, capacity_factor=2.0)
        result = run_autoscaled(self._platform(), wf, arrivals=arrivals,
                                config=config, service_pool=6,
                                brownout=brown)
        assert any(lvl == 1 for _t, lvl in result.brownout_timeline)
        # the degraded deployment runs more replicas than max_replicas
        assert max(r for _t, r in result.replica_timeline) == 4

    def test_never_triggers_below_max(self):
        """Brownout is a last resort: while replica growth is still
        available the deployment stays nominal."""
        wf = finra(5)
        arrivals = constant_arrivals(30.0, 3_000.0, seed=14)
        config = AutoscalerConfig(min_replicas=1, max_replicas=16,
                                  evaluation_interval_ms=100.0,
                                  provision_delay_ms=0.0)
        result = run_autoscaled(
            self._platform(), wf, arrivals=arrivals, config=config,
            service_pool=6,
            brownout=BrownoutConfig(queue_per_replica_threshold=2.0,
                                    trigger_intervals=2))
        assert result.brownout_timeline == []
