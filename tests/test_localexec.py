"""Tests for the real (non-simulated) execution engine."""

import time

import pytest

from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.errors import DeploymentError, ProfilingError
from repro.localexec import (
    FunctionRegistry,
    LocalExecutor,
    RealProfiler,
    synthesize,
    synthesize_workflow,
)
from repro.localexec.functions import activate_registry, call_function
from repro.workflow import FunctionBehavior, WorkflowBuilder


def tiny_workflow(parallel=3, cpu_ms=2.0, io_ms=3.0):
    return (WorkflowBuilder("tiny")
            .sequential("prep", ("prep", FunctionBehavior.of(
                ("cpu", 1.0), ("io", 2.0))))
            .parallel("fan", [(f"w-{i}", FunctionBehavior.of(
                ("cpu", cpu_ms), ("io", io_ms))) for i in range(parallel)])
            .build())


def thread_plan(wf):
    wraps = (Wrap(name="w1", stages=tuple(
        StageAssignment(i, (ProcessAssignment(
            tuple(f.name for f in stage), ExecMode.THREAD),))
        for i, stage in enumerate(wf.stages))),)
    return DeploymentPlan(workflow_name=wf.name, wraps=wraps)


class TestSynthesizedFunctions:
    def test_cpu_spin_takes_roughly_requested_time(self):
        fn = synthesize(FunctionBehavior.cpu(20.0))
        t0 = time.perf_counter()
        fn({})
        elapsed = (time.perf_counter() - t0) * 1e3
        assert 15.0 <= elapsed <= 120.0  # generous: shared CI box

    def test_io_sleep_takes_roughly_requested_time(self):
        fn = synthesize(FunctionBehavior.io(20.0))
        t0 = time.perf_counter()
        fn({})
        elapsed = (time.perf_counter() - t0) * 1e3
        assert 18.0 <= elapsed <= 120.0

    def test_state_dict_tagged(self):
        fn = synthesize(FunctionBehavior.cpu(0.1), name="probe")
        assert fn({})["probe"] == "done"

    def test_registry_duplicate_rejected(self):
        reg = FunctionRegistry()
        reg.register("a", lambda s: s)
        with pytest.raises(DeploymentError):
            reg.register("a", lambda s: s)

    def test_registry_unknown_rejected(self):
        with pytest.raises(DeploymentError):
            FunctionRegistry().get("ghost")

    def test_call_function_dispatch(self):
        wf = tiny_workflow()
        reg = synthesize_workflow(wf)
        activate_registry(reg)
        out = call_function("prep", {})
        assert out["prep"] == "done"
        out = call_function(("w-0", "w-1"), {})
        assert out["w-0"] == "done" and out["w-1"] == "done"


class TestLocalExecutor:
    def test_thread_plan_runs_everything(self):
        wf = tiny_workflow()
        with LocalExecutor(wf, thread_plan(wf)) as execu:
            result = execu.run()
        assert set(result.function_ms) == {f.name for f in wf.functions}
        assert result.latency_ms >= 3.0  # at least the io floor

    def test_pgp_plan_runs_on_real_executor(self):
        wf = tiny_workflow()
        plan = PGPScheduler(LatencyPredictor()).schedule(wf, slo_ms=1000.0)
        with LocalExecutor(wf, plan) as execu:
            result = execu.run()
        assert set(result.function_ms) == {f.name for f in wf.functions}

    def test_forked_plan_uses_real_processes(self):
        wf = tiny_workflow(parallel=2)
        wraps = (Wrap(name="w1", stages=(
            StageAssignment(0, (ProcessAssignment(("prep",),
                                                  ExecMode.THREAD),)),
            StageAssignment(1, (
                ProcessAssignment(("w-0",), ExecMode.PROCESS),
                ProcessAssignment(("w-1",), ExecMode.PROCESS),
            )),
        )),)
        plan = DeploymentPlan(workflow_name=wf.name, wraps=wraps)
        with LocalExecutor(wf, plan) as execu:
            result = execu.run()
        assert "w-0" in result.function_ms and "w-1" in result.function_ms

    def test_pool_plan_executes(self):
        wf = tiny_workflow(parallel=2)
        wrap = Wrap(name="wp", stages=tuple(
            StageAssignment(i, (ProcessAssignment(
                tuple(f.name for f in stage), ExecMode.POOL),))
            for i, stage in enumerate(wf.stages)))
        plan = DeploymentPlan(workflow_name=wf.name, wraps=(wrap,),
                              pool_workers=2)
        with LocalExecutor(wf, plan) as execu:
            result = execu.run()
        assert set(result.function_ms) == {f.name for f in wf.functions}

    def test_missing_registry_function_rejected(self):
        wf = tiny_workflow()
        reg = FunctionRegistry()  # empty
        with pytest.raises(DeploymentError):
            LocalExecutor(wf, thread_plan(wf), registry=reg)

    def test_plan_workflow_mismatch_rejected(self):
        wf = tiny_workflow()
        other = tiny_workflow(parallel=4)
        with pytest.raises(DeploymentError):
            LocalExecutor(other, thread_plan(wf))


class TestRealProfiler:
    def test_recovers_cpu_io_split(self):
        behavior = FunctionBehavior.of(("cpu", 8.0), ("io", 15.0))
        fn = synthesize(behavior, "probe")
        prof = RealProfiler(repeats=2).profile("probe", fn)
        assert prof.solo_latency_ms == pytest.approx(23.0, rel=0.6)
        # block periods detected and dominate appropriately
        assert prof.behavior.io_ms == pytest.approx(15.0, rel=0.4)
        assert prof.behavior.cpu_ms > 0

    def test_pure_cpu_has_no_block_periods(self):
        fn = synthesize(FunctionBehavior.cpu(5.0), "cpu-only")
        prof = RealProfiler(repeats=1).profile("cpu-only", fn)
        assert prof.behavior.io_ms == 0.0

    def test_repeats_validated(self):
        with pytest.raises(ProfilingError):
            RealProfiler(repeats=0)
