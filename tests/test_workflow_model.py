"""Tests for Workflow/Stage/FunctionSpec, the DAG leveller, DSL and codec."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import WorkflowError
from repro.workflow import (
    Dag,
    FunctionBehavior,
    FunctionSpec,
    Stage,
    Workflow,
    WorkflowBuilder,
    from_state_machine,
    random_workflow,
    to_state_machine,
)


def _fn(name, cpu=1.0, io=0.0, **kw):
    segs = [("cpu", cpu)] + ([("io", io)] if io else [])
    return FunctionSpec(name=name, behavior=FunctionBehavior.of(*segs), **kw)


class TestFunctionSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowError):
            _fn("")

    def test_runtime_conflict(self):
        a = _fn("a", runtime="python2")
        b = _fn("b", runtime="python3")
        assert a.conflicts_with(b) and b.conflicts_with(a)

    def test_file_write_write_conflict(self):
        a = _fn("a", files_written={"/tmp/x"})
        b = _fn("b", files_written={"/tmp/x"})
        assert a.conflicts_with(b)

    def test_file_write_read_conflict(self):
        a = _fn("a", files_written={"/tmp/x"})
        b = _fn("b", files_read={"/tmp/x"})
        assert a.conflicts_with(b) and b.conflicts_with(a)

    def test_read_read_no_conflict(self):
        a = _fn("a", files_read={"/tmp/x"})
        b = _fn("b", files_read={"/tmp/x"})
        assert not a.conflicts_with(b)

    def test_no_conflict_default(self):
        assert not _fn("a").conflicts_with(_fn("b"))


class TestStageAndWorkflow:
    def test_empty_stage_rejected(self):
        with pytest.raises(WorkflowError):
            Stage("s", [])

    def test_duplicate_names_in_stage_rejected(self):
        with pytest.raises(WorkflowError):
            Stage("s", [_fn("a"), _fn("a")])

    def test_duplicate_names_across_stages_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", [Stage("s1", [_fn("a")]), Stage("s2", [_fn("a")])])

    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", [])

    def test_counts(self):
        wf = Workflow("w", [Stage("s1", [_fn("a")]),
                            Stage("s2", [_fn("b"), _fn("c"), _fn("d")])])
        assert wf.num_functions == 4
        assert wf.max_parallelism == 3
        assert len(wf) == 2
        assert [f.name for f in wf.functions] == ["a", "b", "c", "d"]

    def test_lookup(self):
        wf = Workflow("w", [Stage("s1", [_fn("a")]), Stage("s2", [_fn("b")])])
        assert wf.function("b").name == "b"
        assert wf.stage_of("b").name == "s2"
        with pytest.raises(WorkflowError):
            wf.function("zzz")
        with pytest.raises(WorkflowError):
            wf.stage_of("zzz")

    def test_critical_path_and_total_work(self):
        wf = Workflow("w", [
            Stage("s1", [_fn("a", cpu=10.0)]),
            Stage("s2", [_fn("b", cpu=3.0), _fn("c", cpu=8.0)]),
        ])
        assert wf.critical_path_ms == pytest.approx(18.0)
        assert wf.total_work_ms == pytest.approx(21.0)

    def test_map_behaviors(self):
        wf = Workflow("w", [Stage("s1", [_fn("a", cpu=10.0)])])
        doubled = wf.map_behaviors(lambda b: b.scaled(cpu_factor=2.0))
        assert doubled.function("a").behavior.cpu_ms == pytest.approx(20.0)
        # original untouched
        assert wf.function("a").behavior.cpu_ms == pytest.approx(10.0)


class TestDag:
    def test_duplicate_node_rejected(self):
        dag = Dag().add_function(_fn("a"))
        with pytest.raises(WorkflowError):
            dag.add_function(_fn("a"))

    def test_unknown_edge_endpoint_rejected(self):
        dag = Dag().add_function(_fn("a"))
        with pytest.raises(WorkflowError):
            dag.add_edge("a", "nope")

    def test_self_edge_rejected(self):
        dag = Dag().add_function(_fn("a"))
        with pytest.raises(WorkflowError):
            dag.add_edge("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        dag = Dag()
        for n in "abc":
            dag.add_function(_fn(n))
        dag.add_edge("a", "b").add_edge("b", "c")
        with pytest.raises(WorkflowError):
            dag.add_edge("c", "a")
        # rollback leaves the dag usable
        assert dag.successors("c") == frozenset()
        assert "c" in dag.sinks()

    def test_levels_longest_path(self):
        dag = Dag()
        for n in "abcd":
            dag.add_function(_fn(n))
        # diamond with a long arm: a->b->d, a->c->... wait: a->d direct too
        dag.add_edge("a", "b").add_edge("b", "c").add_edge("a", "c")
        dag.add_edge("c", "d")
        levels = dag.levels()
        assert levels == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_to_workflow_levels_into_stages(self):
        dag = Dag()
        for n in "abcde":
            dag.add_function(_fn(n))
        dag.add_edge("a", "b").add_edge("a", "c").add_edge("b", "d")
        dag.add_edge("c", "d").add_edge("d", "e")
        wf = dag.to_workflow("lvl")
        assert [len(s) for s in wf.stages] == [1, 2, 1, 1]

    def test_from_workflow_round_trip_stage_shape(self):
        wf = Workflow("w", [Stage("s1", [_fn("a")]),
                            Stage("s2", [_fn("b"), _fn("c")]),
                            Stage("s3", [_fn("d")])])
        wf2 = Dag.from_workflow(wf).to_workflow("w2")
        assert [len(s) for s in wf2.stages] == [1, 2, 1]

    def test_sources_sinks(self):
        dag = Dag()
        for n in "ab":
            dag.add_function(_fn(n))
        dag.add_edge("a", "b")
        assert dag.sources() == ["a"]
        assert dag.sinks() == ["b"]

    def test_empty_dag_to_workflow_rejected(self):
        with pytest.raises(WorkflowError):
            Dag().to_workflow("w")


class TestBuilder:
    def test_builds_stages_in_order(self):
        wf = (WorkflowBuilder("b")
              .sequential("ingest", ("fetch", FunctionBehavior.io(5.0)))
              .parallel("fan", [("p0", FunctionBehavior.cpu(1.0)),
                                ("p1", FunctionBehavior.cpu(1.0))])
              .build())
        assert [s.name for s in wf.stages] == ["ingest", "fan"]
        assert wf.max_parallelism == 2

    def test_accepts_function_specs(self):
        wf = WorkflowBuilder("b").stage("s", _fn("x")).build()
        assert wf.function("x").name == "x"

    def test_rejects_garbage(self):
        with pytest.raises(WorkflowError):
            WorkflowBuilder("b").stage("s", 42)


class TestStateMachine:
    def test_round_trip(self):
        wf = (WorkflowBuilder("sm")
              .sequential("fetch", ("fetch", FunctionBehavior.io(20.0)))
              .parallel("validate", [(f"rule-{i}", FunctionBehavior.cpu(0.8))
                                     for i in range(5)])
              .build())
        text = to_state_machine(wf)
        wf2 = from_state_machine(text)
        assert wf2.name == "sm"
        assert [len(s) for s in wf2.stages] == [1, 5]
        assert wf2.function("rule-3").behavior.cpu_ms == pytest.approx(0.8)

    def test_json_is_valid_asl_shape(self):
        wf = WorkflowBuilder("x").sequential(
            "only", ("f", FunctionBehavior.cpu(1.0))).build()
        doc = json.loads(to_state_machine(wf))
        assert doc["StartAt"] == "only"
        assert doc["States"]["only"]["Type"] == "Task"
        assert doc["States"]["only"]["End"] is True

    def test_missing_states_rejected(self):
        with pytest.raises(WorkflowError):
            from_state_machine("{}")

    def test_undefined_next_rejected(self):
        doc = {"StartAt": "a", "States": {
            "a": {"Type": "Task", "Behavior": {"segments": [["cpu", 1]]},
                  "Next": "ghost"}}}
        with pytest.raises(WorkflowError):
            from_state_machine(doc)

    def test_looping_chain_rejected(self):
        doc = {"StartAt": "a", "States": {
            "a": {"Type": "Task", "Behavior": {"segments": [["cpu", 1]]},
                  "Next": "a"}}}
        with pytest.raises(WorkflowError):
            from_state_machine(doc)

    def test_unsupported_type_rejected(self):
        doc = {"StartAt": "a", "States": {"a": {"Type": "Choice", "End": True}}}
        with pytest.raises(WorkflowError):
            from_state_machine(doc)

    def test_parallel_without_branches_rejected(self):
        doc = {"StartAt": "a",
               "States": {"a": {"Type": "Parallel", "Branches": [], "End": True}}}
        with pytest.raises(WorkflowError):
            from_state_machine(doc)


class TestGenerators:
    def test_deterministic_per_seed(self):
        a, b = random_workflow(3), random_workflow(3)
        assert repr(a) == repr(b)
        assert [f.behavior for f in a.functions] == [f.behavior for f in b.functions]

    def test_different_seeds_differ(self):
        assert ([f.behavior for f in random_workflow(1).functions]
                != [f.behavior for f in random_workflow(2).functions])

    @given(st.integers(min_value=0, max_value=200))
    def test_property_generated_workflows_are_valid(self, seed):
        wf = random_workflow(seed)
        assert wf.num_functions >= 1
        assert wf.max_parallelism >= 1
        assert wf.critical_path_ms <= wf.total_work_ms + 1e-9
        names = [f.name for f in wf.functions]
        assert len(set(names)) == len(names)
