"""The incremental prediction engine: bit-identity, counters, invalidation.

The contract under test: with the content-addressed
:class:`~repro.core.predictor.PredictionCache` attached, PGP produces the
*exact* plans and predictions full evaluation would — same deployment
fingerprints, ``==``-equal floats, no tolerance — while re-simulating only
stages and thread groups whose fingerprints are new.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import (
    PGP_COUNTERS,
    LatencyPredictor,
    PredictionCache,
)
from repro.errors import DeploymentError
from repro.workflow import FunctionBehavior, WorkflowBuilder, random_workflow

CAL = RuntimeCalibration.native()


def scheduler(cache, **kw):
    opts = PGPOptions(**kw.pop("options", {}))
    predictor = LatencyPredictor(CAL, conservatism=1.0, cache=cache)
    return PGPScheduler(predictor, options=opts)


def fanout_workflow(n=12, cpu_ms=8.0):
    return (WorkflowBuilder("fan")
            .parallel("fan", [(f"f-{i}", FunctionBehavior.cpu(cpu_ms))
                              for i in range(n)])
            .sequential("tail", ("tail", FunctionBehavior.cpu(3.0)))
            .build())


# ---------------------------------------------------------------------------
# bit-identity: cached scheduling == full evaluation
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=0, max_value=80),
       st.sampled_from([30.0, 75.0, 150.0, 600.0]))
def test_property_cached_equals_full_eval(seed, slo):
    wf = random_workflow(seed, max_stages=4, max_parallelism=6,
                         max_segment_ms=10.0)
    cold = scheduler(cache=False)
    warm = scheduler(cache=PredictionCache(verify=True))
    # two sweeps through the warm scheduler: the second is fully cache-hot
    plan_cold = cold.schedule(wf, slo)
    plan_warm1 = warm.schedule(wf, slo)
    plan_warm2 = warm.schedule(wf, slo)
    for plan in (plan_warm1, plan_warm2):
        assert plan.fingerprint(wf) == plan_cold.fingerprint(wf)
        assert plan.predicted_latency_ms == plan_cold.predicted_latency_ms
    assert warm.predictor.cache.hits > 0


@settings(deadline=None, max_examples=8)
@given(st.integers(min_value=0, max_value=40))
def test_property_slo_sweep_shares_warmth(seed):
    """One scheduler across a whole SLO sweep stays bit-identical while
    paying strictly fewer full evaluations than cold evaluation."""
    wf = random_workflow(seed, max_stages=3, max_parallelism=6,
                         max_segment_ms=10.0)
    slos = [0.8 * wf.critical_path_ms, 1.2 * wf.critical_path_ms,
            2.0 * wf.critical_path_ms, 4.0 * wf.critical_path_ms]
    cold = scheduler(cache=PredictionCache(enabled=False))
    warm = scheduler(cache=PredictionCache(verify=True))
    for slo in slos:
        pc = cold.schedule(wf, slo)
        pw = warm.schedule(wf, slo)
        assert pw.fingerprint(wf) == pc.fingerprint(wf)
        assert pw.predicted_latency_ms == pc.predicted_latency_ms
    assert warm.predictor.cache.full_evals <= cold.predictor.cache.full_evals


def test_kl_enabled_run_counts_delta_evals():
    wf = fanout_workflow(n=14)
    sched = scheduler(cache=PredictionCache())
    for factor in (1.3, 1.6, 2.5):
        sched.schedule(wf, factor * wf.critical_path_ms)
    cache = sched.predictor.cache
    assert cache.delta_evals > 0
    assert cache.hits > 0
    counters = cache.metrics.counters()
    assert counters["pgp.kl.swaps.evaluated"] > 0


def test_trim_cores_reuses_untouched_stages():
    wf = fanout_workflow(n=10)
    sched = scheduler(cache=PredictionCache())
    plan = sched.schedule(wf, 2.0 * wf.critical_path_ms)
    before = sched.predictor.cache.delta_evals
    trimmed = sched.trim_cores(wf, plan, 2.0 * wf.critical_path_ms)
    # every trim candidate touches one wrap -> the tail stage (and any
    # unchanged wraps) come from cache, so trims count as delta evals
    assert sched.predictor.cache.delta_evals > before
    assert trimmed.total_cores <= plan.total_cores


# ---------------------------------------------------------------------------
# cache mechanics
# ---------------------------------------------------------------------------
def test_counter_vocabulary_is_pinned():
    cache = PredictionCache()
    sched = scheduler(cache=cache)
    wf = fanout_workflow(n=8)
    sched.schedule(wf, 1.5 * wf.critical_path_ms)
    cache.invalidate()
    for name in cache.metrics.counters():
        assert name in PGP_COUNTERS, f"unpinned counter {name!r}"


def test_disabled_cache_counts_but_stores_nothing():
    cache = PredictionCache(enabled=False)
    sched = scheduler(cache=cache)
    wf = fanout_workflow(n=8)
    sched.schedule(wf, 1.5 * wf.critical_path_ms)
    assert cache.full_evals > 0
    assert cache.hits == 0
    assert len(cache) == 0


def test_invalidate_resets_entries_not_counters():
    cache = PredictionCache()
    sched = scheduler(cache=cache)
    wf = fanout_workflow(n=8)
    sched.schedule(wf, 1.5 * wf.critical_path_ms)
    assert len(cache) > 0
    full_before = cache.full_evals
    cache.invalidate()
    assert len(cache) == 0
    assert cache.full_evals == full_before
    assert cache.metrics.counters()["pgp.cache.invalidations"] == 1


def test_capacity_bounds_entries():
    cache = PredictionCache(capacity=4)
    sched = scheduler(cache=cache)
    wf = fanout_workflow(n=10)
    sched.schedule(wf, 1.5 * wf.critical_path_ms)
    assert len(cache) <= 4
    with pytest.raises(DeploymentError):
        PredictionCache(capacity=0)


def test_shared_cache_across_predictors():
    """Two predictors over one cache share entries; different calibrations
    can never alias because the calibration id is in every key."""
    cache = PredictionCache()
    wf = fanout_workflow(n=8)
    slo = 1.5 * wf.critical_path_ms
    plan_a = scheduler(cache=cache).schedule(wf, slo)
    hits_after_first = cache.hits
    plan_b = scheduler(cache=cache).schedule(wf, slo)
    assert cache.hits > hits_after_first
    assert plan_b.predicted_latency_ms == plan_a.predicted_latency_ms

    mpk = PGPScheduler(LatencyPredictor(RuntimeCalibration.mpk(),
                                        conservatism=1.0, cache=cache))
    plan_mpk = mpk.schedule(wf, slo)
    # MPK's isolation overheads must not be served from native entries
    assert plan_mpk.predicted_latency_ms != plan_a.predicted_latency_ms


def test_verify_mode_catches_divergence():
    """The bit-identity guard: a poisoned entry raises on its next hit."""
    cache = PredictionCache(verify=True)
    sched = scheduler(cache=cache)
    wf = fanout_workflow(n=6)
    sched.schedule(wf, 2.0 * wf.critical_path_ms)
    key = next(iter(cache._entries))
    cache._entries[key] += 1.0  # simulate a missing-input aliasing bug
    with pytest.raises(DeploymentError, match="divergence"):
        sched.schedule(wf, 2.0 * wf.critical_path_ms)


def test_traced_predictions_bypass_cache():
    from repro.simcore.monitor import TraceRecorder

    cache = PredictionCache()
    sched = scheduler(cache=cache)
    wf = fanout_workflow(n=6)
    plan = sched.schedule(wf, 2.0 * wf.critical_path_ms)
    hits_before = cache.hits

    trace = TraceRecorder()
    traced = sched.predictor.predict_workflow(wf, plan, trace=trace)
    assert cache.hits == hits_before  # no cache involvement while tracing
    untraced = sched.predictor.predict_workflow(wf, plan)
    assert traced == untraced
