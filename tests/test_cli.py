"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_run_parses_quick(self):
        args = build_parser().parse_args(["run", "fig04", "--quick"])
        assert args.experiment == "fig04" and args.quick


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "ablation-kl" in out

    def test_run_quick_experiment(self, capsys):
        assert main(["run", "fig04", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_run_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("chiron-repro: error:")
        assert "fig99" in err and "fig13" in err  # lists valid choices
        assert err.count("\n") == 1  # one line, not a traceback

    def test_plan_unknown_workload_exits_2(self, capsys):
        assert main(["plan", "--workload", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("chiron-repro: error:")
        assert "bogus" in err and "finra-5" in err

    def test_faults_unknown_policy_exits_2(self, capsys):
        assert main(["faults", "--policy", "nope"]) == 2
        err = capsys.readouterr().err
        assert "retry policy" in err and "eager" in err

    def test_faults_smoke(self, capsys):
        assert main(["faults", "finra5", "--rate", "0.05", "--seed", "1",
                     "--requests", "4", "--platforms", "chiron"]) == 0
        out = capsys.readouterr().out
        assert "finra-5" in out  # sloppy spelling normalized
        assert "chiron" in out and "wasted" in out

    def test_faults_zero_rate_is_clean(self, capsys):
        assert main(["faults", "finra-5", "--rate", "0", "--requests", "2",
                     "--platforms", "openfaas"]) == 0
        out = capsys.readouterr().out
        row = next(l for l in out.splitlines() if "openfaas" in l)
        cols = row.split()
        assert cols[3] == "0" and cols[4] == "0"  # no faults, no retries

    def test_faults_bad_retries_exits_2(self, capsys):
        assert main(["faults", "--retries", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("chiron-repro: error:")
        assert "max_attempts" in err
        assert err.count("\n") == 1  # one line, not a traceback

    def test_faults_bad_timeout_exits_2(self, capsys):
        assert main(["faults", "--timeout-ms", "-5"]) == 2
        assert "attempt_timeout_ms" in capsys.readouterr().err

    def test_faults_retry_overrides_take_effect(self, capsys):
        assert main(["faults", "finra-5", "--rate", "0.05", "--requests",
                     "2", "--platforms", "chiron", "--retries", "4",
                     "--timeout-ms", "5000"]) == 0
        assert "4 attempt(s)" in capsys.readouterr().out

    def test_overload_smoke(self, capsys):
        assert main(["overload", "finra5", "--requests", "60",
                     "--factors", "0.5", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "finra-5" in out       # sloppy spelling normalized
        assert "goodput" in out and "capacity" in out
        assert out.count("none") == 2 and out.count("admit") == 2

    def test_overload_single_policy(self, capsys):
        assert main(["overload", "--requests", "40", "--factors", "1.0",
                     "--policy", "admit"]) == 0
        out = capsys.readouterr().out
        assert "admit" in out and " none " not in out

    def test_overload_unknown_policy_exits_2(self, capsys):
        assert main(["overload", "--policy", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "overload policy" in err and "admit" in err

    def test_overload_bad_retries_exits_2(self, capsys):
        assert main(["overload", "--fault-rate", "0.05",
                     "--retries", "0"]) == 2
        assert "max_attempts" in capsys.readouterr().err

    def test_overload_retries_require_fault_rate(self, capsys):
        assert main(["overload", "--retries", "3"]) == 2
        assert "--fault-rate" in capsys.readouterr().err

    def test_plan_command(self, capsys):
        assert main(["plan", "--workload", "slapp", "--slo", "300"]) == 0
        out = capsys.readouterr().out
        assert "wrap-" in out and "stage" in out

    def test_plan_show_code(self, capsys):
        assert main(["plan", "--workload", "movie-review", "--slo", "200",
                     "--show-code"]) == 0
        out = capsys.readouterr().out
        assert "generated orchestrator" in out
        assert "def handle(req):" in out

    def test_demo_runs_real_execution(self, capsys):
        assert main(["demo", "--workload", "movie-review",
                     "--slo", "100"]) == 0
        out = capsys.readouterr().out
        assert "real execution" in out


class TestRunAllFailureReport:
    def test_faults_reported_apart_from_bugs(self):
        from repro.cli import _format_failures
        from repro.errors import RetryExhausted

        text = _format_failures([
            ("fault-blast", RetryExhausted("gave up", mechanism="sandbox.crash")),
            ("fig04", ValueError("boom")),
        ])
        assert "not a bug" in text
        assert "fault-blast [sandbox.crash]" in text
        assert "fig04 (ValueError: boom)" in text

    def test_only_bugs_no_fault_section(self):
        from repro.cli import _format_failures

        text = _format_failures([("fig04", RuntimeError("x"))])
        assert "not a bug" not in text
        assert "experiment errors" in text


class TestColdstartCommand:
    def test_smoke_prints_table_and_flags(self, capsys, tmp_path):
        out_file = tmp_path / "bench.json"
        assert main(["coldstart", "finra5", "--duration-s", "40",
                     "--service-samples", "2", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "warm%" in out and "hybrid" in out and "ttl0" in out
        assert "hybrid beats ttl0" in out

        import json
        report = json.loads(out_file.read_text())
        assert report["experiment"] == "coldstart"
        assert report["app"] == "finra-5"
        assert len(report["rows"]) == 36  # 3 platforms x 3 traces x 4 arms
        assert set(report["summary"]) >= {"hybrid_beats_ttl0_p99",
                                          "chiron_tops_warm_hit"}

    def test_out_empty_skips_report(self, capsys):
        assert main(["coldstart", "finra-5", "--duration-s", "20",
                     "--service-samples", "2", "--out", ""]) == 0
        out = capsys.readouterr().out
        assert "report written" not in out

    def test_unknown_app_exits_2(self, capsys):
        assert main(["coldstart", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("chiron-repro: error:")


class TestKernelBenchCommand:
    def test_smoke_writes_report_and_table(self, capsys, tmp_path):
        out_file = tmp_path / "kernel.json"
        assert main(["bench", "--kernel", "--quick", "--check",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "kernel microbench" in out and "fleet scenario" in out
        assert "speedup vs pre-change kernel" in out

        import json
        report = json.loads(out_file.read_text())
        assert report["bench"] == "kernel"
        assert report["fleet"]["identical"] == {"des_calendar": True,
                                                "vectorized": True}
        rows = report["fleet"]["rows"]
        assert (rows["des_heap"]["events_processed"]
                == rows["des_calendar"]["events_processed"] > 0)


class TestDriftCommand:
    def test_smoke_single_scenario_writes_report(self, capsys, tmp_path):
        out_file = tmp_path / "drift.json"
        assert main(["drift", "--quick", "--scenario", "drift-recovery",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "closed-loop" in out and "open-loop" in out
        assert "flags:" in out

        import json
        report = json.loads(out_file.read_text())
        assert report["experiment"] == "drift-recovery"
        assert report["quick"] is True
        assert [s["name"] for s in report["scenarios"]] == ["drift-recovery"]
        assert report["summary"]["closed_loop_recovers"] is True
        assert report["summary"]["open_loop_stays_violating"] is True
        assert report["summary"]["deterministic"] is True

    def test_out_empty_skips_report(self, capsys):
        assert main(["drift", "--quick", "--scenario", "fault-storm",
                     "--out", ""]) == 0
        out = capsys.readouterr().out
        assert "report written" not in out


class TestBenchReportRoundTrip:
    def test_load_report_round_trips(self, tmp_path):
        from repro.bench import load_report, write_report
        path = tmp_path / "BENCH_x.json"
        write_report({"experiment": "x", "summary": {"ok": True}},
                     str(path))
        assert load_report(str(path))["summary"]["ok"] is True

    def test_load_report_missing_file_raises_repro_error(self, tmp_path):
        from repro.bench import load_report
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="no benchmark report"):
            load_report(str(tmp_path / "nope.json"))

    def test_load_report_malformed_raises_repro_error(self, tmp_path):
        from repro.bench import load_report
        from repro.errors import ReproError
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="malformed"):
            load_report(str(bad))
        lst = tmp_path / "list.json"
        lst.write_text("[1, 2]")
        with pytest.raises(ReproError, match="not a JSON object"):
            load_report(str(lst))
