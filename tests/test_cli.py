"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_run_parses_quick(self):
        args = build_parser().parse_args(["run", "fig04", "--quick"])
        assert args.experiment == "fig04" and args.quick


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "ablation-kl" in out

    def test_run_quick_experiment(self, capsys):
        assert main(["run", "fig04", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_run_unknown_experiment_errors(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["run", "fig99"])

    def test_plan_command(self, capsys):
        assert main(["plan", "--workload", "slapp", "--slo", "300"]) == 0
        out = capsys.readouterr().out
        assert "wrap-" in out and "stage" in out

    def test_plan_show_code(self, capsys):
        assert main(["plan", "--workload", "movie-review", "--slo", "200",
                     "--show-code"]) == 0
        out = capsys.readouterr().out
        assert "generated orchestrator" in out
        assert "def handle(req):" in out

    def test_demo_runs_real_execution(self, capsys):
        assert main(["demo", "--workload", "movie-review",
                     "--slo", "100"]) == 0
        out = capsys.readouterr().out
        assert "real execution" in out
