"""Portfolio and regression tests for the anytime plan search.

Three layers of guarantees:

* the portfolio never loses to plain KL (the KL arm + first-wins
  tie-break), checked across the full app catalog at the paper's SLO
  factors, and zero-budget SA degrades to exactly the KL seed plan;
* the shared prediction cache is actually doing the work — an SA run over
  an already-scheduled workflow must reuse the seed's per-stage entries
  (no new full evals on the seed re-read) and must count one delta eval
  per move; a cache regression (silent full re-evals) fails here, not just
  in a benchmark;
* the manager/scheduler wiring: ``search=`` flows through ``deploy``,
  tags the schedule span, and lands the result on the deployment.
"""

import pytest

from repro.apps.catalog import workload
from repro.bench import DEFAULT_SLO_FACTORS, DEFAULT_WORKLOADS
from repro.calibration import RuntimeCalibration
from repro.core.manager import ChironManager
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.search import SearchOptions, plan_cost, refine_plan
from repro.obs.tracer import Tracer

CAL = RuntimeCalibration.native()


def fresh(name, factor):
    wf = workload(name)
    predictor = LatencyPredictor(CAL, conservatism=1.05)
    slo = factor * wf.critical_path_ms
    plan = PGPScheduler(predictor).schedule(wf, slo)
    return wf, plan, slo, predictor


class TestPortfolioNeverWorse:
    @pytest.mark.parametrize("name", DEFAULT_WORKLOADS)
    def test_full_catalog_at_paper_slo_factors(self, name):
        wf = workload(name)
        predictor = LatencyPredictor(CAL, conservatism=1.05)
        scheduler = PGPScheduler(predictor)
        # small budgets: the guarantee is structural (KL arm + tie-break),
        # not a statistical one, so it must hold at any budget
        budget = 80 if wf.num_functions <= 20 else 30
        for factor in DEFAULT_SLO_FACTORS:
            slo = factor * wf.critical_path_ms
            kl_plan = scheduler.schedule(wf, slo)
            kl_cost = plan_cost(kl_plan.predicted_latency_ms,
                                kl_plan.total_cores, slo)
            res = refine_plan(
                wf, kl_plan, slo, predictor,
                SearchOptions(method="portfolio", budget=budget, seed=11,
                              restarts=1))
            assert res.cost <= kl_cost + 1e-9, (
                f"{name} f={factor}: portfolio {res.cost} > KL {kl_cost}")
            assert res.arms["kl"] == pytest.approx(kl_cost), (
                "the KL arm must score exactly the seed plan")
            res.plan.validate(wf)

    def test_zero_budget_portfolio_returns_kl_seed(self):
        wf, plan, slo, predictor = fresh("social-network", 1.5)
        res = refine_plan(wf, plan, slo, predictor,
                          SearchOptions(method="portfolio", budget=0,
                                        restarts=2, seed=0))
        assert res.winner == "kl"
        assert res.plan.fingerprint(wf) == plan.fingerprint(wf)

    def test_zero_budget_sa_degrades_to_kl_seed(self):
        wf, plan, slo, predictor = fresh("movie-review", 1.2)
        res = refine_plan(wf, plan, slo, predictor,
                          SearchOptions(budget=0, seed=3))
        assert res.evaluations == 0
        assert res.plan.fingerprint(wf) == plan.fingerprint(wf)
        assert res.plan.predicted_latency_ms == plan.predicted_latency_ms
        assert res.cost == res.seed_cost


class TestCacheCounters:
    """A silent cache regression must fail these, not just a benchmark."""

    def test_seed_plan_predictions_come_from_cache(self):
        # ISSUE 6 satellite: when SA runs after KL, the seed plan's stage
        # values must be cache hits, not recomputations
        wf, plan, slo, predictor = fresh("social-network", 1.5)
        metrics = predictor.cache.metrics
        full_before = metrics.counter("pgp.evals.full").value
        hits_before = metrics.counter("pgp.cache.hit").value
        res = refine_plan(wf, plan, slo, predictor,
                          SearchOptions(budget=0, seed=0))
        assert res.evaluations == 0
        assert metrics.counter("pgp.evals.full").value == full_before, (
            "zero-budget search recomputed the KL seed's stage predictions")
        assert (metrics.counter("pgp.cache.hit").value
                >= hits_before + len(wf.stages))

    def test_repeat_refine_is_all_hits(self):
        wf, plan, slo, predictor = fresh("slapp", 1.2)
        opts = SearchOptions(budget=150, seed=7)
        refine_plan(wf, plan, slo, predictor, opts)
        metrics = predictor.cache.metrics
        full_before = metrics.counter("pgp.evals.full").value
        res = refine_plan(wf, plan, slo, predictor, opts)  # identical walk
        assert metrics.counter("pgp.evals.full").value == full_before, (
            "replaying an identical search re-simulated cached stages")
        assert res.evaluations > 0

    def test_each_move_eval_counts_one_delta(self):
        wf, plan, slo, predictor = fresh("finra-5", 1.2)
        metrics = predictor.cache.metrics
        delta_before = metrics.counter("pgp.evals.delta").value
        res = refine_plan(wf, plan, slo, predictor,
                          SearchOptions(budget=120, seed=5))
        gained = metrics.counter("pgp.evals.delta").value - delta_before
        assert gained >= res.evaluations, (
            f"{res.evaluations} move evals but only {gained} delta evals — "
            f"moves are being full-evaluated")

    def test_search_counters_accumulate(self):
        wf, plan, slo, predictor = fresh("movie-review", 1.5)
        res = refine_plan(wf, plan, slo, predictor,
                          SearchOptions(budget=100, seed=2))
        counters = predictor.cache.metrics.counters()
        assert counters["search.moves.proposed"] >= res.evaluations
        assert counters["search.moves.accepted"] == res.accepted
        assert (counters["search.moves.accepted"]
                + counters["search.moves.rejected"] == res.evaluations)
        assert counters["search.best.updates"] == len(res.timeline) - 1


class TestManagerWiring:
    def test_deploy_with_sa_search(self):
        wf = workload("finra-5")
        manager = ChironManager(conservatism=1.05)
        tracer = Tracer()
        slo = 1.2 * wf.critical_path_ms
        dep = manager.deploy(wf, slo, generate_code=False, tracer=tracer,
                             search=SearchOptions(budget=200, seed=1))
        assert dep.search_result is not None
        assert dep.search_result.method == "sa"
        assert dep.plan.fingerprint() == \
            dep.search_result.plan.fingerprint()
        assert dep.search_result.cost <= dep.search_result.seed_cost + 1e-9
        names = {e.name for e in tracer.events}
        assert "search.start" in names and "search.done" in names
        spans = [s for s in tracer.spans(entity="manager")
                 if s.tags.get("op") == "manager.schedule"]
        assert spans and spans[0].tags["search"] == "sa"

    def test_manager_default_search_and_per_deploy_override(self):
        wf = workload("social-network")
        manager = ChironManager(conservatism=1.05,
                                search=SearchOptions(budget=60, seed=4))
        slo = 2.0 * wf.critical_path_ms
        dep = manager.deploy(wf, slo, generate_code=False)
        assert dep.search_result is not None
        off = manager.deploy(wf, slo, generate_code=False, search="none")
        assert off.search_result is None

    def test_scheduler_search_kwarg_matches_refine(self):
        wf, plan, slo, predictor = fresh("slapp", 1.5)
        scheduler = PGPScheduler(predictor)
        opts = SearchOptions(budget=150, seed=9)
        via_kwarg = scheduler.schedule(wf, slo, search=opts)
        assert scheduler.last_search is not None
        direct = refine_plan(wf, plan, slo, predictor, opts)
        assert via_kwarg.fingerprint(wf) == direct.plan.fingerprint(wf)
        assert scheduler.last_search.cost == direct.cost
        # a plain schedule() resets the marker
        scheduler.schedule(wf, slo)
        assert scheduler.last_search is None
