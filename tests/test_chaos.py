"""The chaos experiment and workflow HA layer (PR 8)."""

import json
import math

import pytest

from repro.core.ha import (HA_MODES, HAPolicy, ha_adjusted_p99_ms)
from repro.core.manager import ChironManager
from repro.errors import ReproError, SimulationError
from repro.experiments.chaos import (ARMS, SCHEDULES, chaos_workflow,
                                     format_chaos_table, make_params,
                                     make_plan, sweep)
from repro.experiments.common import get_experiment
from repro.lifecycle.policy import BootTier, boot_cost_ms
from repro.platforms.chiron import ChironPlatform


@pytest.fixture(scope="module")
def deployment():
    wf = chaos_workflow()
    manager = ChironManager()
    dep = manager.deploy(wf, 2_500.0)
    return wf, manager, dep


@pytest.fixture(scope="module")
def quick_report():
    return sweep(seed=7, quick=True, schedules=("machine-kill",))


# ---------------------------------------------------------------------------
# HA policy pricing
# ---------------------------------------------------------------------------

def test_ha_policy_modes_and_validation():
    assert HA_MODES == ("none", "retry", "checkpoint", "standby")
    with pytest.raises(SimulationError, match="unknown HA mode"):
        HAPolicy(mode="prayer")
    with pytest.raises(SimulationError):
        HAPolicy(checkpoint_mb=-1)
    assert not HAPolicy(mode="retry").checkpointed
    assert HAPolicy(mode="standby").checkpointed


def test_ha_policy_prices_every_mode(deployment):
    _, manager, _ = deployment
    cal = manager.cal
    retry, ckpt, standby = (HAPolicy(mode=m)
                            for m in ("retry", "checkpoint", "standby"))
    # checkpoints cost a storage op per stage; retry writes nothing
    assert retry.checkpoint_op_ms() == 0.0
    assert ckpt.checkpoint_op_ms() > 0.0
    # a hot standby boots at its tier, everything else re-boots cold
    assert standby.reboot_ms(cal) == boot_cost_ms(BootTier.WARM, cal)
    assert ckpt.reboot_ms(cal) == boot_cost_ms(BootTier.COLD, cal)
    assert standby.reboot_ms(cal) < ckpt.reboot_ms(cal)
    # and the standby holds doubled resident memory
    assert standby.standby_memory_mb(1024.0) == 1024.0
    assert ckpt.standby_memory_mb(1024.0) == 0.0


def test_ha_adjusted_p99_orders_the_modes(deployment):
    wf, manager, dep = deployment
    pred, plan = manager.predictor, dep.plan
    tails = {m: ha_adjusted_p99_ms(pred, wf, plan, HAPolicy(mode=m),
                                   kill_rate_per_min=1.0)
             for m in HA_MODES}
    # no recovery => the tail is unbounded once kills clear the 1% mass
    assert math.isinf(tails["none"])
    # replaying one stage beats replaying the workflow
    assert tails["checkpoint"] < tails["retry"]
    # failover at the warm tier beats a cold re-boot
    assert tails["standby"] < tails["checkpoint"]
    # with no kills, only the per-stage checkpoint overhead remains
    calm = ha_adjusted_p99_ms(pred, wf, plan, HAPolicy(mode="checkpoint"),
                              kill_rate_per_min=0.0)
    base = ha_adjusted_p99_ms(pred, wf, plan, HAPolicy(mode="retry"),
                              kill_rate_per_min=0.0)
    n_stages = len(wf.stages)
    expected = HAPolicy(mode="checkpoint").checkpoint_op_ms() * n_stages
    assert calm == pytest.approx(base + expected)
    with pytest.raises(SimulationError):
        ha_adjusted_p99_ms(pred, wf, plan, HAPolicy(),
                           kill_rate_per_min=-1.0)


# ---------------------------------------------------------------------------
# checkpoint / resume through the real platform
# ---------------------------------------------------------------------------

def test_platform_commits_checkpoint_per_stage(deployment):
    wf, manager, dep = deployment
    platform = ChironPlatform(dep.plan, manager.cal)
    plain = platform.run(wf, seed=42)
    res = platform.run(wf, seed=42, ha=HAPolicy(mode="checkpoint"))
    assert plain.ha is None
    assert res.ha["checkpoints"] == len(wf.stages)
    assert res.ha["committed_stage"] == len(wf.stages) - 1
    assert res.ha["restores"] == 0
    # checkpoints consume simulated time on every stage barrier
    assert res.latency_ms > plain.latency_ms
    assert res.ha["checkpoint_ms"] > 0.0


def test_platform_replays_from_last_committed_stage(deployment):
    wf, manager, dep = deployment
    platform = ChironPlatform(dep.plan, manager.cal)
    policy = HAPolicy(mode="checkpoint")
    full = platform.run(wf, seed=42, ha=policy)
    resumed = platform.run(wf, seed=42, ha=policy, ha_resume_stage=2)
    # only the incomplete stages run: the manifest read replaces stages 0-1
    assert len(resumed.stage_ends_ms) == len(wf.stages) - 2
    assert resumed.ha["restores"] == 1
    assert resumed.ha["resume_from"] == 2
    assert resumed.ha["checkpoints"] == len(wf.stages) - 2
    assert resumed.latency_ms < full.latency_ms
    with pytest.raises(SimulationError, match="resume_from"):
        platform.run(wf, seed=42, ha=policy, ha_resume_stage=-1)


def test_ha_none_mode_is_bit_identical_to_uninstrumented(deployment):
    wf, manager, dep = deployment
    platform = ChironPlatform(dep.plan, manager.cal)
    plain = platform.run(wf, seed=9)
    nul = platform.run(wf, seed=9, ha=HAPolicy(mode="none"))
    assert nul.latency_ms == plain.latency_ms
    assert nul.ha is None


# ---------------------------------------------------------------------------
# the chaos sweep
# ---------------------------------------------------------------------------

def test_make_plan_rejects_unknown_schedule():
    with pytest.raises(ReproError, match="unknown chaos schedule"):
        make_plan("meteor-strike", make_params(quick=True), seed=7)
    with pytest.raises(ReproError, match="unknown chaos schedule"):
        sweep(quick=True, schedules=("meteor-strike",))


def test_sweep_is_deterministic_across_runs(quick_report):
    again = sweep(seed=7, quick=True, schedules=("machine-kill",))
    assert again == quick_report
    # and the payload is pure JSON (round-trips losslessly)
    assert json.loads(json.dumps(quick_report, sort_keys=True)) == quick_report


def test_sweep_seed_changes_the_report(quick_report):
    other = sweep(seed=8, quick=True, schedules=("machine-kill",))
    assert other != quick_report


def test_quick_machine_kill_flags(quick_report):
    rows = quick_report["schedules"][0]["rows"]
    assert set(rows) == set(ARMS)
    summary = quick_report["summary"]
    assert summary["checkpoint_recovers_machine_kill"]
    assert summary["no_recovery_fails_machine_kill"]
    assert summary["standby_failover_no_reboot"]
    assert summary["crash_loop_quarantined"]
    assert summary["checkpoint_overhead_priced"]
    assert summary["deterministic"]
    # the no-recovery arm loses requests; the checkpointed arms do not
    assert rows["none"]["failed"] > 0
    assert rows["checkpoint"]["failed"] == 0
    assert rows["checkpoint"]["availability"] > rows["none"]["availability"]
    # standby fails over without paying any cold re-boot
    assert rows["standby"]["failovers"] >= 1
    assert rows["standby"]["reboots"] == 0


def test_sweep_prices_arms_honestly(quick_report):
    arms = quick_report["arms"]
    assert set(arms) == set(ARMS)
    # checkpointed service time includes the per-stage manifest puts
    assert arms["checkpoint"]["service_ms"] > arms["none"]["service_ms"]
    # only the hot standby holds extra resident memory
    assert arms["standby"]["extra_memory_mb"] > 0.0
    assert arms["checkpoint"]["extra_memory_mb"] == 0.0
    # 'none' has no bounded fault-adjusted tail; the HA modes do
    assert arms["none"]["predicted_fault_p99_ms"] is None
    assert arms["checkpoint"]["predicted_fault_p99_ms"] is not None


def test_chaos_experiment_registered(quick_report):
    assert get_experiment("chaos") is not None
    table = format_chaos_table(quick_report)
    assert "machine-kill" in table and "checkpoint" in table
    assert SCHEDULES == ("machine-kill", "zone-outage", "partition")
