"""Calendar-queue scheduler: equivalence, leak, and fast-path regressions.

The calendar queue must be *indistinguishable* from the legacy binary heap:
``(time, seq)`` is a total order, so any correct scheduler dispatches the
exact same sequence.  Property tests drive both implementations with the
same random operation streams (same-timestamp bursts, zero-delay pushes,
mid-batch requeues, inf timestamps) and assert equality at every step; an
end-to-end pin runs FINRA-5 under both kernels and compares full traces.
"""

import gc
import weakref

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.simcore.kernel as kernel_mod
from repro.cluster.fleetsim import (
    FleetScenario,
    default_scenario,
    scenario_draws,
    simulate_des,
    simulate_vectorized,
    verify_identity,
)
from repro.errors import CapacityError, SimulationError
from repro.simcore import CalendarQueue, Environment, HeapQueue

#: tie-heavy delay menu: repeats force same-timestamp collisions, the wide
#: values force bucket-ladder jumps, inf exercises the far bucket
DELAYS = (0.0625, 0.25, 0.25, 1.0, 7.5, 64.0, 1000.0, float("inf"))


# -- queue-level equivalence -------------------------------------------------
@given(st.data())
@settings(max_examples=80, deadline=None)
def test_queue_ops_match_heap_reference(data):
    hq, cq = HeapQueue(), CalendarQueue()
    now, seq = 0.0, 0
    for _ in range(data.draw(st.integers(1, 120), label="ops")):
        choices = ["push", "push", "push_now", "peek"]
        if hq._size:
            choices += ["pop", "pop", "pop_batch"]
        op = data.draw(st.sampled_from(choices), label="op")
        if op == "push":
            t = now + data.draw(st.sampled_from(DELAYS), label="delay")
            if t == now:  # _schedule's routing: t == now goes to the lane
                hq.push_now(t, seq, seq)
                cq.push_now(t, seq, seq)
            else:
                hq.push(t, seq, seq)
                cq.push(t, seq, seq)
            seq += 1
        elif op == "push_now":
            hq.push_now(now, seq, seq)
            cq.push_now(now, seq, seq)
            seq += 1
        elif op == "peek":
            assert hq.peek() == cq.peek()
        elif op == "pop":
            a, b = hq.pop(), cq.pop()
            assert a == b
            now = a[0]
        else:
            a, b = hq.pop_batch(), cq.pop_batch()
            assert a == b
            now = a[0][0]
            if len(a) > 1 and data.draw(st.booleans(), label="requeue"):
                # exception-path contract: the undispatched remainder goes
                # back to the front in order
                k = len(a) // 2
                hq.requeue_front(a[k:])
                cq.requeue_front(b[k:])
        assert hq._size == cq._size
    while hq._size:
        assert hq.pop() == cq.pop()
    assert cq._size == 0 and cq.peek() == float("inf")


def test_calendar_adaptive_widening_keeps_order():
    """Sparse singleton buckets trigger widening; order must not change."""
    hq, cq = HeapQueue(), CalendarQueue()
    seq = 0
    # hundreds of events spaced far beyond the initial width: every
    # activation is a singleton, so the width multiplies repeatedly
    for i in range(400):
        t = i * 37.5
        hq.push(t, seq, seq)
        cq.push(t, seq, seq)
        seq += 1
    out_h = [hq.pop() for _ in range(400)]
    out_c = [cq.pop() for _ in range(400)]
    assert out_h == out_c
    assert cq._width > 1.0  # the adaptation actually fired


# -- environment-level equivalence -------------------------------------------
@st.composite
def workloads(draw):
    n = draw(st.integers(1, 6))
    return [
        draw(st.lists(
            st.tuples(
                st.sampled_from(
                    ["timeout", "burst", "anyof", "allof", "failer"]),
                st.sampled_from([0.0, 0.25, 0.25, 0.5, 1.0, 3.75, 64.0]),
                st.integers(1, 3)),
            min_size=1, max_size=5))
        for _ in range(n)
    ]


def _run_workload(procs, queue):
    env = Environment(queue=queue)
    log = []

    def body(env, steps, label):
        for kind, delay, k in steps:
            if kind == "timeout":
                yield env.timeout(delay)
            elif kind == "burst":
                # k timeouts at the SAME timestamp: the batch fast path
                yield env.all_of([env.timeout(delay) for _ in range(k)])
            elif kind == "anyof":
                yield env.any_of(
                    [env.timeout(delay * (j + 1)) for j in range(k)])
            elif kind == "allof":
                yield env.all_of(
                    [env.timeout(delay * (j + 1)) for j in range(k)])
            else:  # failer: a child process fails, the parent absorbs it

                def doomed(env, d=delay):
                    yield env.timeout(d)
                    raise RuntimeError("boom")

                try:
                    yield env.process(doomed(env))
                except RuntimeError:
                    pass
            log.append((env.now, label, kind))

    for i, steps in enumerate(procs):
        env.process(body(env, steps, i))
    env.run()
    return log, env.events_processed, env.now


@given(workloads())
@settings(max_examples=60, deadline=None)
def test_random_workloads_dispatch_identically(procs):
    assert _run_workload(procs, "heap") == _run_workload(procs, "calendar")


def test_unknown_queue_kind_rejected():
    with pytest.raises(SimulationError):
        Environment(queue="splay")


def test_past_scheduling_rejected_at_push():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env._schedule(env.event(), -5.0)


# -- run()/drain fast-path regressions ---------------------------------------
def _ladder(env, n=40):
    def worker(env, k):
        for _ in range(6):
            yield env.timeout(0.5 + (k % 5) * 0.25)

    for k in range(n):
        env.process(worker(env, k))


def test_drain_fast_path_event_count_unchanged():
    """run() (batched drain) counts exactly what per-event stepping did."""
    counts = {}
    for queue in ("heap", "calendar"):
        env = Environment(queue=queue)
        _ladder(env)
        env.run()
        counts[queue] = (env.events_processed, env.now)
    stepped = Environment(queue="calendar")
    _ladder(stepped)
    n = 0
    while stepped.peek() != float("inf"):
        stepped.step()
        n += 1
    assert counts["heap"] == counts["calendar"]
    assert counts["calendar"] == (n, stepped.now)
    assert n == stepped.events_processed


def test_run_until_time_and_event_match_heap():
    for until in (1.6, 2.0, float("inf")):
        results = []
        for queue in ("heap", "calendar"):
            env = Environment(queue=queue)
            _ladder(env)
            env.run(until=until)
            results.append((env.now, env.events_processed))
        assert results[0] == results[1]
        if until != float("inf"):
            assert results[0][0] == until  # clock lands on the deadline


def test_run_until_event_stops_at_same_point():
    results = []
    for queue in ("heap", "calendar"):
        env = Environment(queue=queue)
        _ladder(env)

        def waiter(env):
            yield env.timeout(1.25)
            return "stopped"

        stop = env.process(waiter(env))
        value = env.run(until=stop)
        results.append((value, env.now, env.events_processed))
    assert results[0] == results[1]


def test_run_batch_dispatches_whole_timestamp():
    env = Environment(queue="calendar")
    fired = []
    for i in range(5):
        t = env.timeout(1.0, value=i)
        t.callbacks.append(lambda ev: fired.append(ev._value))
    env.timeout(2.0)
    assert env.run_batch() == 5  # the whole same-time burst in one call
    assert fired == [0, 1, 2, 3, 4]
    assert env.now == 1.0
    assert env.run_batch() == 1
    assert env.run_batch() == 0


# -- condition detach / loser leak --------------------------------------------
def test_anyof_detaches_and_loser_is_collectable():
    env = Environment()
    winner = env.timeout(1.0)
    loser = env.event()  # never fires on its own
    cond = env.any_of([winner, loser])
    ref = weakref.ref(cond)
    env.run()
    assert cond.ok and winner in cond.value
    # the condition's _check must be gone from the loser's callback list
    assert all(getattr(cb, "__self__", None) is not cond
               for cb in loser.callbacks)
    del cond
    gc.collect()
    assert ref() is None, "loser kept the fired condition alive"
    # historical contract: a loser failing AFTER the condition fired is
    # still defused — nobody is waiting, the kernel must not re-raise
    loser.fail(RuntimeError("late failure"))
    env.run()


def test_allof_failure_detaches_pending_constituents():
    env = Environment()

    def doomed(env):
        yield env.timeout(0.5)
        raise RuntimeError("boom")

    slow = env.timeout(100.0)
    cond = env.all_of([env.process(doomed(env)), slow])
    cond.defuse()  # nobody waits on it; absorb the expected failure
    env.run(until=2.0)
    assert cond.triggered and not cond.ok
    assert all(getattr(cb, "__self__", None) is not cond
               for cb in slow.callbacks)
    env.run()  # drain the slow timeout; no re-raise


def test_anyof_winner_value_and_interrupt_still_work():
    env = Environment()
    out = {}

    def waiter(env):
        t1 = env.timeout(5.0, value="slow")
        t2 = env.timeout(1.0, value="fast")
        got = yield env.any_of([t1, t2])
        out["value"] = list(got.values())

    env.process(waiter(env))
    env.run()
    assert out["value"] == ["fast"]


# -- vectorization contracts ---------------------------------------------------
def test_numpy_batched_draws_match_scalar_stream():
    """The loadgen/fleetsim vectorization rests on these three identities."""
    pool = [3.0, 7.5, 11.0, 42.0]
    a, b = np.random.default_rng(9), np.random.default_rng(9)
    assert [float(a.choice(pool)) for _ in range(200)] == \
        [float(x) for x in b.choice(np.asarray(pool), size=200)]
    a, b = np.random.default_rng(11), np.random.default_rng(11)
    assert [float(a.exponential(12.5)) for _ in range(200)] == \
        [float(x) for x in b.exponential(12.5, size=200)]
    gaps = np.random.default_rng(13).exponential(5.0, size=500)
    acc, seq_sums = 0.0, []
    for g in gaps:
        acc = acc + float(g)
        seq_sums.append(acc)
    assert seq_sums == [float(x) for x in np.cumsum(gaps)]


def test_fleetsim_three_ways_bit_identical():
    sc = FleetScenario(servers=3, rps=40.0, requests=1500, seed=5)
    heap = simulate_des(sc, queue="heap")
    cal = simulate_des(sc, queue="calendar")
    vec = simulate_vectorized(sc)
    verify_identity(heap, cal, what="heap vs calendar DES")
    verify_identity(heap, vec, what="DES vs vectorized")
    assert heap.events_processed == cal.events_processed > 0
    assert vec.events_processed == 0


def test_fleetsim_saturated_regime_bit_identical():
    # servers deliberately undersized: deep queues, every request waits
    sc = FleetScenario(servers=2, rps=60.0, requests=800, seed=2)
    verify_identity(simulate_des(sc, queue="heap"),
                    simulate_vectorized(sc), what="saturated")


def test_fleetsim_validation():
    with pytest.raises(CapacityError):
        FleetScenario(servers=0, rps=10.0, requests=5)
    with pytest.raises(CapacityError):
        FleetScenario(servers=1, rps=10.0, requests=5, service_pool_ms=())
    gaps, services = scenario_draws(default_scenario(requests=64))
    assert gaps.shape == services.shape == (64,)


# -- end-to-end kernel pinning -------------------------------------------------
def test_finra5_bit_identical_across_kernels(monkeypatch):
    """The golden-trace workload produces the same request under both
    schedulers — latency, event count, and full span timeline."""
    from repro.apps import finra
    from repro.calibration import RuntimeCalibration
    from repro.obs import Tracer
    from repro.platforms import FaastlanePlatform

    def run(queue_kind):
        monkeypatch.setattr(kernel_mod, "DEFAULT_QUEUE", queue_kind)
        tracer = Tracer()
        result = FaastlanePlatform(RuntimeCalibration.native()).run(
            finra(5), seed=123, tracer=tracer)
        spans = sorted(
            (s.entity, str(s.tags.get("op", s.kind)), s.start_ms, s.end_ms)
            for s in tracer)
        return result.latency_ms, spans

    assert run("heap") == run("calendar")
