"""Tests for the orchestrator generator, SLO policy and Chiron manager."""

import pytest

from repro.core import ChironManager, OrchestratorGenerator, SloPolicy
from repro.core.pgp import PGPOptions
from repro.errors import SchedulingError
from repro.workflow import FunctionBehavior, WorkflowBuilder


def sample_workflow():
    return (WorkflowBuilder("sample")
            .sequential("ingest", ("fetch", FunctionBehavior.of(
                ("cpu", 1.0), ("io", 10.0))))
            .parallel("fan", [(f"rule-{i}", FunctionBehavior.cpu(6.0))
                              for i in range(8)])
            .build())


class TestSloPolicy:
    def test_positive_required(self):
        with pytest.raises(SchedulingError):
            SloPolicy(0.0)

    def test_from_baseline_adds_slack(self):
        assert SloPolicy.from_baseline(90.0).slo_ms == pytest.approx(100.0)
        assert SloPolicy.from_baseline(90.0, slack_ms=5).slo_ms == 95.0

    def test_violation(self):
        policy = SloPolicy(100.0)
        assert policy.violated(100.1)
        assert not policy.violated(100.0)

    def test_violation_rate(self):
        policy = SloPolicy(100.0)
        rate = policy.violation_rate([90, 95, 101, 150])
        assert rate == pytest.approx(0.5)

    def test_violation_rate_empty_rejected(self):
        with pytest.raises(SchedulingError):
            SloPolicy(1.0).violation_rate([])


class TestManager:
    def test_deploy_produces_consistent_bundle(self):
        wf = sample_workflow()
        dep = ChironManager().deploy(wf, slo_ms=80.0)
        dep.plan.validate(dep.profiled_workflow)
        assert set(dep.profiles) == {f.name for f in wf.functions}
        assert set(dep.orchestrator_sources) == {w.name for w in dep.plan.wraps}
        assert dep.predicted_latency_ms is not None

    def test_plan_shortcut_matches_deploy(self):
        wf = sample_workflow()
        mgr = ChironManager()
        plan = mgr.plan(wf, slo_ms=80.0)
        assert plan.slo_ms == 80.0

    def test_conservatism_keeps_margin(self):
        """The manager's predictor over-estimates, so an accepted plan's
        *raw* prediction sits below the SLO (the Figure 14 mechanism)."""
        from repro.core import LatencyPredictor
        from repro.core.profiler import Profiler

        wf = sample_workflow()
        mgr = ChironManager(conservatism=1.2)
        dep = mgr.deploy(wf, slo_ms=120.0)
        raw = LatencyPredictor(mgr.cal, conservatism=1.0).predict_workflow(
            dep.profiled_workflow, dep.plan)
        assert raw <= dep.plan.predicted_latency_ms
        assert raw == pytest.approx(dep.plan.predicted_latency_ms / 1.2)

    def test_refresh_reruns_pipeline(self):
        wf = sample_workflow()
        mgr = ChironManager()
        dep = mgr.deploy(wf, slo_ms=80.0)
        dep2 = mgr.refresh(dep)
        assert dep2.plan.slo_ms == 80.0

    def test_refresh_without_slo_needs_explicit(self):
        wf = sample_workflow()
        mgr = ChironManager()
        dep = mgr.deploy(wf, slo_ms=80.0)
        object.__setattr__(dep.plan, "slo_ms", None)
        with pytest.raises(ValueError):
            mgr.refresh(dep)

    def test_pgp_options_forwarded(self):
        wf = sample_workflow()
        mgr = ChironManager(options=PGPOptions(strict=True))
        with pytest.raises(SchedulingError):
            mgr.plan(wf, slo_ms=0.5)


class TestGenerator:
    def test_sources_mention_every_function(self):
        wf = sample_workflow()
        dep = ChironManager().deploy(wf, slo_ms=60.0)
        joined = "\n".join(dep.orchestrator_sources.values())
        for fn in wf.functions:
            assert repr(fn.name) in joined

    def test_source_is_valid_python(self):
        wf = sample_workflow()
        dep = ChironManager().deploy(wf, slo_ms=60.0)
        for name, source in dep.orchestrator_sources.items():
            compile(source, f"<{name}>", "exec")  # must not raise

    def test_wrap1_invokes_peer_wraps(self):
        wf = sample_workflow()
        dep = ChironManager().deploy(wf, slo_ms=35.0)
        if dep.plan.n_wraps > 1:
            src = dep.orchestrator_sources[dep.plan.wraps[0].name]
            assert "invoke_wrap" in src

    def test_affinity_reflects_cores(self):
        wf = sample_workflow()
        dep = ChironManager().deploy(wf, slo_ms=60.0)
        wrap = dep.plan.wraps[0]
        src = dep.orchestrator_sources[wrap.name]
        assert f"CPU_AFFINITY = {list(range(dep.plan.cores_for(wrap)))}" in src

    def test_manifest_shape(self):
        wf = sample_workflow()
        dep = ChironManager().deploy(wf, slo_ms=60.0)
        manifest = OrchestratorGenerator.deployment_manifest(
            dep.profiled_workflow, dep.plan)
        assert manifest["provider"]["name"] == "openfaas"
        assert set(manifest["functions"]) == {w.name for w in dep.plan.wraps}
        for spec in manifest["functions"].values():
            assert spec["lang"] == "python3-flask"
            assert int(spec["limits"]["cpu"]) >= 1
