"""Tests for plan JSON round-trips and calibration variants."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.serialize import (
    FORMAT_VERSION,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from repro.errors import DeploymentError
from repro.platforms import ChironPlatform
from repro.workflow import random_workflow


def make_plan(seed=0, slo=200.0):
    wf = random_workflow(seed, max_stages=3, max_parallelism=5,
                         max_segment_ms=8.0)
    plan = PGPScheduler(LatencyPredictor()).schedule(wf, slo)
    return wf, plan


class TestPlanCodec:
    def test_round_trip_preserves_structure(self):
        wf, plan = make_plan(3)
        restored = plan_from_json(plan_to_json(plan))
        assert restored.workflow_name == plan.workflow_name
        assert restored.cores == plan.cores
        assert restored.pool_workers == plan.pool_workers
        assert restored.slo_ms == plan.slo_ms
        assert len(restored.wraps) == len(plan.wraps)
        for a, b in zip(restored.wraps, plan.wraps):
            assert a == b
        restored.validate(wf)  # still a legal plan for the workflow

    def test_round_tripped_plan_executes_identically(self):
        wf, plan = make_plan(7)
        restored = plan_from_json(plan_to_json(plan))
        original = ChironPlatform(plan).run(wf).latency_ms
        rerun = ChironPlatform(restored).run(wf).latency_ms
        assert original == rerun

    def test_json_is_plain_data(self):
        _wf, plan = make_plan(1)
        doc = json.loads(plan_to_json(plan))
        assert doc["version"] == FORMAT_VERSION
        assert isinstance(doc["wraps"], list)

    def test_bad_version_rejected(self):
        _wf, plan = make_plan(2)
        doc = plan_to_dict(plan)
        doc["version"] = 999
        with pytest.raises(DeploymentError):
            plan_from_dict(doc)

    def test_malformed_document_rejected(self):
        with pytest.raises(DeploymentError):
            plan_from_json("{not json")
        with pytest.raises(DeploymentError):
            plan_from_json("[]")
        with pytest.raises(DeploymentError):
            plan_from_dict({"version": FORMAT_VERSION})

    def test_bad_mode_rejected(self):
        _wf, plan = make_plan(4)
        doc = plan_to_dict(plan)
        doc["wraps"][0]["stages"][0]["processes"][0]["mode"] = "fiber"
        with pytest.raises(DeploymentError):
            plan_from_dict(doc)

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=0, max_value=100))
    def test_property_round_trip_any_plan(self, seed):
        wf, plan = make_plan(seed, slo=500.0)
        restored = plan_from_json(plan_to_json(plan))
        assert plan_to_dict(restored) == plan_to_dict(plan)


class TestCalibrationVariants:
    def test_nodejs_worker_threads_expensive(self):
        node = RuntimeCalibration.nodejs()
        py = RuntimeCalibration.native()
        assert node.thread_startup_ms >= 50.0
        assert node.thread_startup_ms > 100 * py.thread_startup_ms
        assert node.has_gil  # event-loop pseudo-parallelism

    def test_nodejs_thread_fanout_doubles_median_function(self):
        """§2.1: 50 ms spawn on ~60 ms functions doubles latency."""
        from repro.workflow import FunctionBehavior

        predictor = LatencyPredictor(RuntimeCalibration.nodejs())
        b = [FunctionBehavior.of(("cpu", 5.0), ("io", 55.0))] * 2
        t = predictor.predict_multithread_exec(b)
        solo = 60.0
        assert t > 1.8 * solo

    def test_evolve_returns_modified_copy(self):
        base = RuntimeCalibration.native()
        tweaked = base.evolve(t_rpc_ms=99.0)
        assert tweaked.t_rpc_ms == 99.0
        assert base.t_rpc_ms != 99.0

    def test_isolation_presets(self):
        assert RuntimeCalibration.mpk().exec_overhead_cpu == pytest.approx(0.352)
        assert RuntimeCalibration.sfi().isolation_startup_ms == 18.0
        assert not RuntimeCalibration.no_gil().has_gil
