"""Placement layer: policy hook, cost model, annealing, owner labels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.controlplane import MachineHealthMonitor
from repro.core.search import SearchOptions
from repro.errors import CapacityError, SchedulingError
from repro.faults.domains import Topology
from repro.fleet import (
    CostParams,
    FleetPlacer,
    PlacementPlan,
    compile_fleet,
    placement_cost,
    synth_fleet,
)
from repro.runtime.machine import (
    PLACEMENT_POLICIES,
    Cluster,
    Machine,
    choose_machine,
)


@pytest.fixture(scope="module")
def fleet():
    spec = synth_fleet(tenants=2, workloads_per_tenant=2,
                       requests_per_stream=50, rps=30.0, seed=3)
    return compile_fleet(spec)


@pytest.fixture(scope="module")
def placer(fleet):
    return FleetPlacer(fleet)


# -- satellite 1: the pluggable placement-policy hook -----------------------

def _machines():
    return [Machine("z0/r0/m0", cores=4.0, zone="z0", rack="z0/r0"),
            Machine("z0/r0/m1", cores=4.0, zone="z0", rack="z0/r0"),
            Machine("z1/r0/m0", cores=4.0, zone="z1", rack="z1/r0")]


def test_choose_machine_first_fit_takes_list_order():
    machines = _machines()
    assert choose_machine(machines, 2.0, 64.0) is machines[0]
    machines[0].allocate(3.0, 64.0)
    assert choose_machine(machines, 2.0, 64.0,
                          policy="first-fit") is machines[1]


def test_choose_machine_best_fit_takes_tightest():
    machines = _machines()
    machines[1].allocate(3.0, 64.0)   # 1 core free: tightest fit for 1
    assert choose_machine(machines, 1.0, 64.0,
                          policy="best-fit") is machines[1]


def test_choose_machine_spread_balances_zones():
    machines = _machines()
    machines[0].allocate(2.0, 64.0)   # z0 loaded -> spread goes to z1
    assert choose_machine(machines, 1.0, 64.0,
                          policy="spread") is machines[2]


def test_choose_machine_none_when_nothing_fits():
    assert choose_machine(_machines(), 99.0, 64.0) is None


def test_choose_machine_rejects_unknown_policy():
    with pytest.raises(CapacityError):
        choose_machine(_machines(), 1.0, 64.0, policy="round-robin")


def test_cluster_routes_through_policy_hook():
    cluster = Cluster.of(_machines(), policy="best-fit")
    assert cluster.policy in PLACEMENT_POLICIES
    cluster.machines[1].allocate(3.0, 64.0)
    allocation = cluster.place(1.0, 64.0, owner="tenant-a/wf")
    assert allocation.machine.name == "z0/r0/m1"
    assert allocation.owner == "tenant-a/wf"
    # per-call override beats the cluster default
    allocation2 = cluster.place(1.0, 64.0, policy="first-fit")
    assert allocation2.machine.name == "z0/r0/m0"


# -- satellite 2: owner labels attribute displaced work ---------------------

def test_displaced_allocations_keep_owner_labels():
    topology = Topology.grid(zones=1, racks_per_zone=1,
                             machines_per_rack=2, cores=4.0)
    monitor = MachineHealthMonitor(topology)
    machine = topology.machines[0]
    machine.allocate(1.0, 32.0, owner="tenant-a/finra-5")
    machine.allocate(1.0, 32.0, owner="tenant-a/finra-5")
    machine.allocate(1.0, 32.0, owner="tenant-b/slapp")
    machine.allocate(1.0, 32.0)
    machine.fail()
    assert monitor.displaced_by_owner() == {
        "tenant-a/finra-5": 2, "tenant-b/slapp": 1, "unattributed": 1}
    # freed-then-failed allocations are not displaced
    other = topology.machines[1]
    allocation = other.allocate(1.0, 32.0, owner="tenant-c/x")
    allocation.release()
    other.fail()
    assert "tenant-c/x" not in monitor.displaced_by_owner()


# -- placement plans over a compiled fleet ----------------------------------

def test_every_method_validates_and_covers_the_fleet(fleet, placer):
    for method in ("random", "first-fit", "greedy", "anneal"):
        plan = placer.place(method,
                            options=SearchOptions(budget=300, seed=0))
        assert len(plan.assignment) == len(fleet.units)
        plan.validate(fleet)         # raises on over-commit / dead target


def test_plan_cost_matches_fresh_recost(fleet, placer):
    plan = placer.greedy()
    cost, breakdown = placement_cost(fleet, plan.assignment)
    assert plan.cost == cost
    assert plan.breakdown == breakdown


def test_greedy_and_anneal_hold_zone_spread(fleet, placer):
    assert placer.greedy().spread_violations(fleet) == 0
    plan = placer.anneal(SearchOptions(budget=300, seed=0))
    assert plan.spread_violations(fleet) == 0


def test_anneal_never_worse_than_greedy_seed(fleet, placer):
    seed_cost = placer.greedy().cost
    for budget in (50, 400):
        plan = placer.anneal(SearchOptions(budget=budget, seed=11))
        assert plan.cost <= seed_cost
        assert plan.seed_cost == seed_cost


def test_anneal_bit_deterministic_for_fixed_seed(fleet, placer):
    opts = SearchOptions(budget=400, seed=5)
    a = placer.anneal(opts)
    b = FleetPlacer(fleet).anneal(SearchOptions(budget=400, seed=5))
    assert a.assignment == b.assignment
    assert a.cost == b.cost
    assert a.breakdown == b.breakdown


def test_validate_rejects_overcommit_and_dead_targets(fleet):
    stacked = PlacementPlan(assignment=(0,) * len(fleet.units),
                            method="manual", cost=0.0, breakdown={})
    with pytest.raises(CapacityError):
        stacked.validate(fleet)
    plan = FleetPlacer(fleet).greedy()
    victim = fleet.machines[plan.assignment[0]]
    victim.fail()
    try:
        with pytest.raises(CapacityError):
            plan.validate(fleet)
    finally:
        victim.recover()


def test_unknown_method_raises(placer):
    with pytest.raises(SchedulingError):
        placer.place("tetris")


# -- hypothesis property tests (satellite 4) --------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_place_never_overcommits(fleet, seed):
    plan = FleetPlacer(fleet).random_place(seed=seed)
    plan.validate(fleet)             # core+memory accounting would raise
    assert 0.0 < plan.packing_fraction(fleet) <= 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000),
       budget=st.integers(min_value=10, max_value=200))
def test_anneal_properties_hold_for_any_seed(fleet, seed, budget):
    placer = FleetPlacer(fleet)
    plan = placer.anneal(SearchOptions(budget=budget, seed=seed))
    plan.validate(fleet)
    assert plan.cost <= plan.seed_cost          # never worse than the seed
    assert plan.spread_violations(fleet) == 0   # spread holds
    again = placer.anneal(SearchOptions(budget=budget, seed=seed))
    assert again.assignment == plan.assignment  # bit-deterministic


@settings(max_examples=20, deadline=None)
@given(cores=st.floats(min_value=0.5, max_value=5.0),
       memory=st.floats(min_value=1.0, max_value=1024.0),
       policy=st.sampled_from(PLACEMENT_POLICIES))
def test_choose_machine_result_always_fits(cores, memory, policy):
    machines = _machines()
    machines[0].allocate(2.0, 100.0)
    chosen = choose_machine(machines, cores, memory, policy=policy)
    if chosen is not None:
        assert chosen.can_fit(cores, memory)
    else:
        assert all(not m.can_fit(cores, memory) for m in machines)
