"""Tests for the adaptive (drift-triggered) re-planning loop (§3.4)."""

import pytest

from repro.core.adaptive import AdaptiveDeployer
from repro.errors import SchedulingError
from repro.platforms import ChironPlatform
from repro.workflow import FunctionBehavior, WorkflowBuilder


def fanout(cpu_ms, n=10, name="adaptive-wf"):
    return (WorkflowBuilder(name)
            .parallel("fan", [(f"f-{i}", FunctionBehavior.cpu(cpu_ms))
                              for i in range(n)])
            .build())


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(SchedulingError):
            AdaptiveDeployer(window=1)
        with pytest.raises(SchedulingError):
            AdaptiveDeployer(pressure_fraction=0.3, slack_fraction=0.5)

    def test_observe_before_deploy_rejected(self):
        with pytest.raises(SchedulingError):
            AdaptiveDeployer().observe(10.0)


class TestAdaptation:
    def test_steady_workload_never_refreshes(self):
        deployer = AdaptiveDeployer(window=5, cooldown=0)
        wf = fanout(5.0)
        deployer.deploy(wf, slo_ms=80.0)
        platform = ChironPlatform(deployer.deployment.plan)
        for r in range(30):
            lat = platform.run(wf, seed=r).latency_ms
            assert deployer.observe(lat) is None
        assert deployer.events == []

    def test_heavier_workload_triggers_scale_up(self):
        """Functions drift 5 ms -> 20 ms: p90 blows past the SLO and the
        refresh re-profiles + re-plans with more processes."""
        deployer = AdaptiveDeployer(window=5, cooldown=0)
        light = fanout(5.0)
        deployer.deploy(light, slo_ms=80.0)
        old_cores = deployer.deployment.plan.total_cores

        heavy = fanout(20.0)  # the drifted reality
        platform = ChironPlatform(deployer.deployment.plan)
        event = None
        for r in range(20):
            lat = platform.run(heavy, seed=r).latency_ms
            event = deployer.observe(lat, current_workflow=heavy)
            if event is not None:
                break
        assert event is not None and event.reason == "slo-pressure"
        assert deployer.deployment.plan.total_cores > old_cores
        # the refreshed plan actually meets the SLO on the heavy workload
        refreshed = ChironPlatform(deployer.deployment.plan)
        assert refreshed.run(heavy).latency_ms <= 80.0

    def test_lighter_workload_triggers_scale_down(self):
        deployer = AdaptiveDeployer(window=5, cooldown=0,
                                    slack_fraction=0.45)
        heavy = fanout(20.0)
        deployer.deploy(heavy, slo_ms=80.0)
        old_cores = deployer.deployment.plan.total_cores
        assert old_cores > 1

        light = fanout(2.0)
        platform = ChironPlatform(deployer.deployment.plan)
        event = None
        for r in range(20):
            lat = platform.run(light, seed=r).latency_ms
            event = deployer.observe(lat, current_workflow=light)
            if event is not None:
                break
        assert event is not None and event.reason == "over-provisioned"
        assert deployer.deployment.plan.total_cores < old_cores

    def test_cooldown_prevents_thrashing(self):
        deployer = AdaptiveDeployer(window=3, cooldown=50)
        wf = fanout(5.0)
        deployer.deploy(wf, slo_ms=80.0)
        # feed latencies that would otherwise trigger immediately
        for _ in range(10):
            assert deployer.observe(200.0) is None  # still in cooldown

    def test_events_are_recorded(self):
        deployer = AdaptiveDeployer(window=3, cooldown=0)
        wf = fanout(5.0)
        deployer.deploy(wf, slo_ms=80.0)
        for _ in range(3):
            deployer.observe(200.0, current_workflow=fanout(20.0))
        assert len(deployer.events) >= 1
        event = deployer.events[0]
        assert event.p90_ms > 80.0
        assert event.request_index >= 3


class TestRefreshFailure:
    def test_scheduling_error_keeps_the_incumbent(self, monkeypatch):
        """An unschedulable drifted workload must degrade the adaptation,
        not crash the serving loop."""
        deployer = AdaptiveDeployer(window=3, cooldown=0)
        deployer.deploy(fanout(5.0), slo_ms=80.0)
        incumbent = deployer.deployment

        def boom(*args, **kwargs):
            raise SchedulingError("cannot meet SLO at any partitioning")

        monkeypatch.setattr(deployer.manager, "deploy", boom)
        event = None
        for _ in range(5):
            event = deployer.observe(200.0, current_workflow=fanout(50.0))
        assert event is None
        assert deployer.deployment is incumbent
        assert deployer.events == []
        assert deployer.refresh_failures >= 1
        counters = deployer.metrics.counters()
        assert counters["adaptation.refresh_failed"] >= 1
        assert "adaptation.refreshes" not in counters

    def test_failed_refresh_reenters_cooldown(self, monkeypatch):
        deployer = AdaptiveDeployer(window=2, cooldown=6)
        deployer.deploy(fanout(5.0), slo_ms=80.0)
        monkeypatch.setattr(
            deployer.manager, "deploy",
            lambda *a, **k: (_ for _ in ()).throw(SchedulingError("no")))
        # burn the post-deploy cooldown, then trip one failing refresh
        while deployer.refresh_failures == 0:
            deployer.observe(200.0)
        observed_at_failure = deployer._requests_seen
        # the failure cleared the window and restarted the cooldown: the
        # next attempt cannot land inside it
        for _ in range(deployer.cooldown):
            deployer.observe(200.0)
            assert deployer.refresh_failures == 1
        while deployer.refresh_failures == 1:
            deployer.observe(200.0)
        assert (deployer._requests_seen - observed_at_failure
                > deployer.cooldown)


class TestFlapSuppression:
    """Deterministic hysteresis behaviour on a flapping latency feed."""

    # one 200 ms blip every 3 requests; the all-clean windows in between
    # reset the breach streak, so windowed p90 flips breach/health forever
    FLAPPY_FEED = [200.0, 60.0, 60.0] * 10

    def test_hysteresis_suppresses_a_flapping_feed(self):
        deployer = AdaptiveDeployer(window=2, cooldown=0, hysteresis=3)
        deployer.deploy(fanout(5.0), slo_ms=80.0)
        for latency in self.FLAPPY_FEED:
            assert deployer.observe(latency) is None
        assert deployer.events == []

    def test_hysteresis_one_control_does_refresh(self):
        """The same feed with the historical trigger-on-first-breach
        behaviour refreshes — proving the feed genuinely breaches."""
        deployer = AdaptiveDeployer(window=2, cooldown=0, hysteresis=1)
        deployer.deploy(fanout(5.0), slo_ms=80.0)
        events = [deployer.observe(l) for l in self.FLAPPY_FEED]
        assert any(e is not None for e in events)

    def test_sustained_breach_still_fires_through_hysteresis(self):
        deployer = AdaptiveDeployer(window=2, cooldown=0, hysteresis=3)
        deployer.deploy(fanout(5.0), slo_ms=80.0)
        event = None
        for _ in range(2 + 3):      # fill the window, then 3-streak
            event = deployer.observe(200.0)
            if event is not None:
                break
        assert event is not None and event.reason == "slo-pressure"

    def test_cooldown_after_refresh_is_deterministic(self):
        deployer = AdaptiveDeployer(window=2, cooldown=10, hysteresis=1)
        deployer.deploy(fanout(5.0), slo_ms=80.0)
        fired_at = []
        for i in range(40):
            if deployer.observe(200.0) is not None:
                fired_at.append(i)
        assert len(fired_at) >= 2
        # consecutive refreshes are separated by cooldown + window refill
        gaps = [b - a for a, b in zip(fired_at, fired_at[1:])]
        assert all(gap > deployer.cooldown for gap in gaps)
