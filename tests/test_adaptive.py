"""Tests for the adaptive (drift-triggered) re-planning loop (§3.4)."""

import pytest

from repro.core.adaptive import AdaptiveDeployer
from repro.errors import SchedulingError
from repro.platforms import ChironPlatform
from repro.workflow import FunctionBehavior, WorkflowBuilder


def fanout(cpu_ms, n=10, name="adaptive-wf"):
    return (WorkflowBuilder(name)
            .parallel("fan", [(f"f-{i}", FunctionBehavior.cpu(cpu_ms))
                              for i in range(n)])
            .build())


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(SchedulingError):
            AdaptiveDeployer(window=1)
        with pytest.raises(SchedulingError):
            AdaptiveDeployer(pressure_fraction=0.3, slack_fraction=0.5)

    def test_observe_before_deploy_rejected(self):
        with pytest.raises(SchedulingError):
            AdaptiveDeployer().observe(10.0)


class TestAdaptation:
    def test_steady_workload_never_refreshes(self):
        deployer = AdaptiveDeployer(window=5, cooldown=0)
        wf = fanout(5.0)
        deployer.deploy(wf, slo_ms=80.0)
        platform = ChironPlatform(deployer.deployment.plan)
        for r in range(30):
            lat = platform.run(wf, seed=r).latency_ms
            assert deployer.observe(lat) is None
        assert deployer.events == []

    def test_heavier_workload_triggers_scale_up(self):
        """Functions drift 5 ms -> 20 ms: p90 blows past the SLO and the
        refresh re-profiles + re-plans with more processes."""
        deployer = AdaptiveDeployer(window=5, cooldown=0)
        light = fanout(5.0)
        deployer.deploy(light, slo_ms=80.0)
        old_cores = deployer.deployment.plan.total_cores

        heavy = fanout(20.0)  # the drifted reality
        platform = ChironPlatform(deployer.deployment.plan)
        event = None
        for r in range(20):
            lat = platform.run(heavy, seed=r).latency_ms
            event = deployer.observe(lat, current_workflow=heavy)
            if event is not None:
                break
        assert event is not None and event.reason == "slo-pressure"
        assert deployer.deployment.plan.total_cores > old_cores
        # the refreshed plan actually meets the SLO on the heavy workload
        refreshed = ChironPlatform(deployer.deployment.plan)
        assert refreshed.run(heavy).latency_ms <= 80.0

    def test_lighter_workload_triggers_scale_down(self):
        deployer = AdaptiveDeployer(window=5, cooldown=0,
                                    slack_fraction=0.45)
        heavy = fanout(20.0)
        deployer.deploy(heavy, slo_ms=80.0)
        old_cores = deployer.deployment.plan.total_cores
        assert old_cores > 1

        light = fanout(2.0)
        platform = ChironPlatform(deployer.deployment.plan)
        event = None
        for r in range(20):
            lat = platform.run(light, seed=r).latency_ms
            event = deployer.observe(lat, current_workflow=light)
            if event is not None:
                break
        assert event is not None and event.reason == "over-provisioned"
        assert deployer.deployment.plan.total_cores < old_cores

    def test_cooldown_prevents_thrashing(self):
        deployer = AdaptiveDeployer(window=3, cooldown=50)
        wf = fanout(5.0)
        deployer.deploy(wf, slo_ms=80.0)
        # feed latencies that would otherwise trigger immediately
        for _ in range(10):
            assert deployer.observe(200.0) is None  # still in cooldown

    def test_events_are_recorded(self):
        deployer = AdaptiveDeployer(window=3, cooldown=0)
        wf = fanout(5.0)
        deployer.deploy(wf, slo_ms=80.0)
        for _ in range(3):
            deployer.observe(200.0, current_workflow=fanout(20.0))
        assert len(deployer.events) >= 1
        event = deployer.events[0]
        assert event.p90_ms > 80.0
        assert event.request_index >= 3
