"""Tests for the overload control plane: admission, deadlines, breakers,
brownout — and the zero-policy bit-identity contract."""

import numpy as np
import pytest

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.cluster import (
    AutoscalerConfig,
    constant_arrivals,
    run_autoscaled,
    run_closed_loop,
    run_open_loop,
)
from repro.core import ChironManager
from repro.errors import (
    CapacityError,
    CircuitOpen,
    DeadlineExceeded,
    EmptySampleError,
    FaultError,
    OverloadError,
    ReproError,
    RetryExhausted,
    SimulationError,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.metrics.stats import (
    EMPTY_SUMMARY,
    cdf,
    percentile,
    summarize_latencies,
)
from repro.overload import (
    AdmissionController,
    AdmissionOutcome,
    AdmissionPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    DeadlineBudget,
    TokenBucket,
    check_deadline,
    degrade_plan,
)
from repro.platforms import (
    ChironPlatform,
    FaastlanePlatform,
    OpenFaaSPlatform,
)
from repro.simcore import Environment, Resource

CAL = RuntimeCalibration.native()
NO_JITTER = RetryPolicy(max_attempts=6, backoff_base_ms=1.0,
                        backoff_jitter=0.0)


class TestTokenBucket:
    def test_starts_full_and_caps_at_burst(self):
        b = TokenBucket(10.0, 3)
        assert [b.try_take(0.0) for _ in range(4)] == [True] * 3 + [False]
        b._refill(10_000.0)  # 100 tokens earned, capped
        assert b.tokens == 3.0

    def test_refills_at_rate(self):
        b = TokenBucket(10.0, 1)  # one token per 100 ms
        assert b.try_take(0.0)
        assert not b.try_take(50.0)
        assert b.try_take(150.0)

    def test_validation(self):
        with pytest.raises(CapacityError):
            TokenBucket(0.0, 1)
        with pytest.raises(CapacityError):
            TokenBucket(5.0, 0)


class TestAdmissionPolicy:
    def test_validation(self):
        with pytest.raises(CapacityError):
            AdmissionPolicy(rate_rps=0.0)
        with pytest.raises(CapacityError):
            AdmissionPolicy(burst=0)
        with pytest.raises(CapacityError):
            AdmissionPolicy(max_queue_per_replica=-1)

    def test_null_policy(self):
        assert AdmissionPolicy(rate_rps=None,
                               max_queue_per_replica=None).is_null
        assert not AdmissionPolicy().is_null


class TestAdmissionController:
    def _controller(self, policy, capacity=2):
        env = Environment()
        servers = Resource(env, capacity=capacity)
        return env, servers, AdmissionController(env, policy, servers)

    def test_rate_limit_rejects(self):
        env, _s, ctl = self._controller(
            AdmissionPolicy(rate_rps=10.0, burst=2,
                            max_queue_per_replica=None))
        outcomes = [ctl.admit() for _ in range(3)]
        assert outcomes == [AdmissionOutcome.ADMITTED,
                            AdmissionOutcome.ADMITTED,
                            AdmissionOutcome.REJECTED]
        assert ctl.summary() == {"admitted": 2, "shed": 0, "rejected": 1}

    def test_queue_bound_sheds(self):
        env, servers, ctl = self._controller(
            AdmissionPolicy(max_queue_per_replica=1), capacity=2)

        def holder(env):
            with servers.request() as req:
                yield req
                yield env.timeout(100.0)

        for _ in range(4):  # 2 serving + 2 waiting = bound (1 * 2 replicas)
            env.process(holder(env))
        env.run(until=1.0)
        assert servers.queue_len == 2
        assert ctl.admit() is AdmissionOutcome.SHED
        assert ctl.shed == 1

    def test_bound_scales_with_capacity(self):
        env, servers, ctl = self._controller(
            AdmissionPolicy(max_queue_per_replica=1), capacity=2)

        def holder(env):
            with servers.request() as req:
                yield req
                yield env.timeout(100.0)

        for _ in range(4):
            env.process(holder(env))
        env.run(until=1.0)
        servers.set_capacity(4)  # autoscaler grew: backlog is admissible now
        assert ctl.admit() is AdmissionOutcome.ADMITTED


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        b = CircuitBreaker("rpc", BreakerPolicy(failure_threshold=3))
        for _ in range(2):
            b.record_failure(0.0, "e")
        assert b.state is BreakerState.CLOSED
        b.record_failure(0.0, "e")
        assert b.state is BreakerState.OPEN and b.trips == 1

    def test_open_fastfails_until_cooldown(self):
        b = CircuitBreaker("rpc", BreakerPolicy(failure_threshold=1,
                                                cooldown_ms=100.0))
        b.record_failure(0.0, "e")
        with pytest.raises(CircuitOpen) as exc:
            b.check(50.0, "e")
        assert exc.value.mechanism == "breaker.open"
        assert exc.value.scope == "rpc"
        assert isinstance(exc.value, FaultError)  # retry loops back off it

    def test_half_open_probe_quota(self):
        b = CircuitBreaker("rpc", BreakerPolicy(failure_threshold=1,
                                                cooldown_ms=100.0,
                                                half_open_probes=1))
        b.record_failure(0.0, "e")
        b.check(150.0, "e")  # cooldown elapsed: the probe goes through
        assert b.state is BreakerState.HALF_OPEN and b.probes == 1
        with pytest.raises(CircuitOpen):
            b.check(150.0, "e")  # quota spent

    def test_probe_failure_reopens(self):
        b = CircuitBreaker("rpc", BreakerPolicy(failure_threshold=1,
                                                cooldown_ms=100.0))
        b.record_failure(0.0, "e")
        b.check(150.0, "e")
        b.record_failure(160.0, "e")
        assert b.state is BreakerState.OPEN and b.trips == 2
        with pytest.raises(CircuitOpen):
            b.check(200.0, "e")  # new cooldown anchored at the re-open

    def test_probe_success_closes(self):
        b = CircuitBreaker("rpc", BreakerPolicy(failure_threshold=2,
                                                cooldown_ms=100.0))
        b.record_failure(0.0, "e")
        b.record_failure(0.0, "e")
        b.check(150.0, "e")
        b.record_success(160.0, "e")
        assert b.state is BreakerState.CLOSED
        b.check(161.0, "e")  # closed again: no fastfail

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("rpc", BreakerPolicy(failure_threshold=2))
        b.record_failure(0.0, "e")
        b.record_success(1.0, "e")
        b.record_failure(2.0, "e")
        assert b.state is BreakerState.CLOSED  # 1 + 1, never 2 in a row

    def test_policy_validation(self):
        with pytest.raises(SimulationError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(SimulationError):
            BreakerPolicy(cooldown_ms=-1.0)
        with pytest.raises(SimulationError):
            BreakerPolicy(half_open_probes=0)


class TestBreakerFaultIntegration:
    """The board wired into the gateway / sandbox-boot / recovery paths."""

    def test_rpc_exhaustion_reports_breaker_mechanism(self):
        wf = finra(5)
        p = OpenFaaSPlatform(CAL)
        plan = FaultPlan(seed=3, rpc_drop_rate=1.0)
        pol = RetryPolicy(max_attempts=5, backoff_base_ms=1.0,
                          backoff_jitter=0.0)
        with pytest.raises(RetryExhausted) as no_breaker:
            p.run(wf, faults=plan, retry=pol, fault_seed=0)
        assert no_breaker.value.mechanism == "rpc.drop"
        with pytest.raises(RetryExhausted) as with_breaker:
            p.run(wf, faults=plan, retry=pol, fault_seed=0,
                  overload=BreakerPolicy(failure_threshold=2,
                                         cooldown_ms=1e9))
        # once tripped, later attempts fast-fail instead of burning the
        # rpc timeout; the exhaustion records the breaker as last fault
        assert with_breaker.value.mechanism == "breaker.open"

    def test_rpc_ledger_surfaces_on_success(self):
        wf = finra(5)
        p = OpenFaaSPlatform(CAL)
        r = p.run(wf, faults=FaultPlan(seed=5, rpc_drop_rate=0.3),
                  retry=NO_JITTER, fault_seed=4,
                  overload=BreakerPolicy(failure_threshold=1,
                                         cooldown_ms=5.0))
        rpc = r.overload["rpc"]
        assert rpc["trips"] >= 1 and rpc["probes"] >= 1
        assert rpc["state"] == "closed"  # recovered before the run ended

    def test_sandbox_boot_breaker_trips_on_crashes(self):
        wf = finra(5)
        p = FaastlanePlatform(CAL)
        r = p.run(wf, faults=FaultPlan(seed=2, sandbox_crash_rate=0.15),
                  retry=NO_JITTER, fault_seed=3,
                  overload=BreakerPolicy(failure_threshold=2,
                                         cooldown_ms=1.0))
        boot = r.overload["sandbox.boot"]
        assert boot["trips"] >= 1       # consecutive crashes tripped it
        assert boot["state"] == "closed"  # and the recovery closed it again

    def test_no_policy_reports_no_ledger(self):
        r = FaastlanePlatform(CAL).run(finra(5))
        assert r.overload is None and r.deadline is None


class TestDeadline:
    def test_budget_validation(self):
        with pytest.raises(SimulationError):
            DeadlineBudget(0.0)
        with pytest.raises(SimulationError):
            DeadlineBudget(-5.0)

    def test_check_without_budget_is_noop(self):
        env = Environment()
        check_deadline(env, entity="x")  # env.deadline is None

    def test_budget_arithmetic(self):
        b = DeadlineBudget(100.0, start_ms=50.0)
        assert b.remaining_ms(100.0) == 50.0
        assert not b.expired(149.0)
        assert b.expired(150.0)

    def test_cancel_ledgers_wasted_work(self):
        b = DeadlineBudget(100.0, start_ms=0.0)
        exc = b.cancel("request", 130.0, completed_stages=2)
        assert isinstance(exc, DeadlineExceeded)
        assert isinstance(exc, OverloadError)
        assert not isinstance(exc, FaultError)  # retries must not eat it
        assert exc.wasted_ms == 130.0
        assert exc.completed_stages == 2
        assert b.cancelled == 1 and b.expired_at_ms == 130.0

    @pytest.mark.parametrize("platform_cls", [OpenFaaSPlatform,
                                              FaastlanePlatform])
    def test_generous_deadline_changes_nothing(self, platform_cls):
        wf = finra(5)
        p = platform_cls(CAL)
        base = p.run(wf).latency_ms
        r = p.run(wf, deadline_ms=base * 10)
        assert r.latency_ms == base
        assert r.deadline == {"deadline_ms": base * 10,
                              "cancelled_checks": 0, "expired_at_ms": None}

    @pytest.mark.parametrize("platform_cls", [OpenFaaSPlatform,
                                              FaastlanePlatform])
    def test_tight_deadline_cancels_downstream(self, platform_cls):
        wf = finra(5)
        p = platform_cls(CAL)
        base = p.run(wf).latency_ms
        with pytest.raises(DeadlineExceeded) as exc:
            p.run(wf, deadline_ms=base * 0.3)
        assert exc.value.wasted_ms > 0  # some work ran before the cut

    def test_tight_deadline_on_chiron_plan(self):
        wf = finra(5)
        plan = ChironManager().plan(wf, slo_ms=150.0)
        p = ChironPlatform(plan)
        base = p.run(wf).latency_ms
        with pytest.raises(DeadlineExceeded):
            p.run(wf, deadline_ms=base * 0.3)

    def test_deadline_not_retried_under_faults(self):
        """A doomed request is cancelled once; the retry loop must not
        resurrect it (DeadlineExceeded is not a FaultError)."""
        wf = finra(5)
        p = FaastlanePlatform(CAL)
        base = p.run(wf).latency_ms
        with pytest.raises(DeadlineExceeded):
            p.run(wf, faults=FaultPlan(seed=1), retry=NO_JITTER,
                  deadline_ms=base * 0.3)


class TestBrownoutPlan:
    def _plan(self):
        # 100 ms is tight enough that PGP forks the parallel stage
        return ChironManager().plan(finra(5), slo_ms=100.0)

    def test_degrade_caps_process_peak(self):
        plan = self._plan()
        peak = max(w.max_concurrent_processes for w in plan.wraps)
        assert peak > 1  # the SLO forces forked parallelism
        degraded = degrade_plan(plan, max_processes_per_wrap=1)
        assert all(w.max_concurrent_processes == 1 for w in degraded.wraps)
        assert degraded.total_cores < plan.total_cores
        assert degraded.predicted_latency_ms is None  # prediction voided
        degraded.validate(finra(5))  # still a runnable plan

    def test_degraded_plan_runs_slower_on_fewer_cores(self):
        plan = self._plan()
        wf = finra(5)
        degraded = degrade_plan(plan, max_processes_per_wrap=1)
        assert ChironPlatform(degraded).run(wf).latency_ms \
            > ChironPlatform(plan).run(wf).latency_ms

    def test_cap_validation(self):
        with pytest.raises(CapacityError):
            degrade_plan(self._plan(), max_processes_per_wrap=0)

    def test_manager_brownout_levels(self):
        manager = ChironManager()
        plan = manager.plan(finra(5), slo_ms=90.0)  # peak of 3 processes
        assert manager.brownout(plan, level=0) is plan
        peak = max(w.max_concurrent_processes for w in plan.wraps)
        level1 = manager.brownout(plan, level=1)
        assert max(w.max_concurrent_processes for w in level1.wraps) \
            <= max(1, peak // 2)
        with pytest.raises(ValueError):
            manager.brownout(plan, level=-1)


class TestLoadgenOverload:
    def _setup(self):
        return FaastlanePlatform(CAL), finra(5)

    def test_admission_keeps_goodput_past_saturation(self):
        p, wf = self._setup()
        service = p.run(wf).latency_ms
        capacity = 2 * 1000.0 / service
        deadline = 3.0 * service
        kwargs = dict(instances=2, rps=capacity * 2, requests=200, seed=7,
                      service_pool=8, deadline_ms=deadline)
        base = run_open_loop(p, wf, cancel_expired=False, **kwargs)
        guarded = run_open_loop(
            p, wf, admission=AdmissionPolicy(rate_rps=capacity * 0.95,
                                             burst=8,
                                             max_queue_per_replica=2),
            **kwargs)
        assert base.goodput_rps < 0.3 * capacity  # collapse
        assert guarded.goodput_rps > 0.8 * capacity  # rescue
        assert guarded.shed + guarded.rejected > 0
        assert guarded.completed < base.completed  # load was actually shed

    def test_closed_loop_accepts_overload_knobs(self):
        p, wf = self._setup()
        r = run_closed_loop(p, wf, instances=1, clients=4, requests=20,
                            seed=3, service_pool=6,
                            admission=AdmissionPolicy(max_queue_per_replica=1),
                            deadline_ms=10_000.0)
        assert r.completed + r.shed + r.rejected + r.expired == 20
        assert r.met_deadline is not None

    def test_null_admission_is_no_controller(self):
        p, wf = self._setup()
        null = AdmissionPolicy(rate_rps=None, max_queue_per_replica=None)
        a = run_open_loop(p, wf, instances=2, rps=5.0, requests=20, seed=9,
                          service_pool=6)
        b = run_open_loop(p, wf, instances=2, rps=5.0, requests=20, seed=9,
                          service_pool=6, admission=null)
        assert a == b


class TestZeroPolicyPins:
    """Captured pre-overload floats: any drift in the zero-policy paths —
    an extra RNG draw, a reordered event — shows up here bit-for-bit."""

    def _setup(self):
        return FaastlanePlatform(CAL), finra(5)

    def test_platform_run_matches_explicit_none(self):
        p, wf = self._setup()
        assert p.run(wf).latency_ms \
            == p.run(wf, deadline_ms=None, overload=None).latency_ms \
            == pytest.approx(97.23333333333336, abs=0, rel=0)

    def test_open_loop_pin(self):
        p, wf = self._setup()
        r = run_open_loop(p, wf, instances=2, rps=5.0, requests=40, seed=9,
                          service_pool=6)
        assert r.sojourn.mean_ms == 93.68349282640963
        assert r.sojourn.p99_ms == 106.08386519911248
        assert r.duration_ms == 6717.752332026055
        assert (r.completed, r.shed, r.rejected, r.expired) == (40, 0, 0, 0)
        assert r.met_deadline is None and r.deadline_ms is None
        assert r.goodput_rps == r.achieved_rps

    def test_closed_loop_pin(self):
        p, wf = self._setup()
        r = run_closed_loop(p, wf, instances=2, clients=3, requests=30,
                            seed=4, service_pool=6)
        assert r.sojourn.mean_ms == 143.1142211032416
        assert r.duration_ms == 1476.195948687522
        assert r.completed == 30

    def test_autoscale_pin(self):
        p, wf = self._setup()
        r = run_autoscaled(
            p, wf, arrivals=constant_arrivals(20.0, 3000.0, seed=11),
            config=AutoscalerConfig(min_replicas=1, max_replicas=8,
                                    evaluation_interval_ms=250.0),
            service_pool=6)
        assert r.sojourn.mean_ms == 170.73450511902624
        assert r.duration_ms == 3195.862403566639
        assert r.completed == 63
        assert r.mean_replicas == 3.93224039135985
        assert r.brownout_timeline == [] and r.shed == 0


class TestStatsEmptySamples:
    def test_percentile_raises_value_error(self):
        with pytest.raises(ValueError, match="empty latency sample"):
            percentile([], 99)
        with pytest.raises(EmptySampleError):
            percentile(np.array([]), 50)  # numpy input, clear error

    def test_cdf_raises(self):
        with pytest.raises(EmptySampleError):
            cdf([])

    def test_summarize_raises_unless_allowed(self):
        with pytest.raises(EmptySampleError):
            summarize_latencies([])
        s = summarize_latencies([], allow_empty=True)
        assert s is EMPTY_SUMMARY
        assert s.count == 0 and np.isnan(s.p99_ms)

    def test_empty_sample_error_taxonomy(self):
        assert issubclass(EmptySampleError, ValueError)
        assert issubclass(EmptySampleError, ReproError)

    def test_nonempty_still_works(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0


class TestGoodputExperiment:
    def test_collapse_and_rescue(self):
        """The PR's acceptance criterion: baseline goodput collapses past
        the knee; the admitted arm holds >= 90% of the knee at 2x load."""
        from repro.experiments.overload_goodput import knee_goodput, sweep

        rows = sweep("finra-5", requests=150, factors=(0.5, 2.0))
        knee = knee_goodput(rows)
        by = {(r["factor"], r["policy"]): r for r in rows}
        assert by[(2.0, "none")]["goodput_rps"] < 0.3 * knee
        assert by[(2.0, "admit")]["goodput_rps"] >= 0.9 * knee
        assert by[(2.0, "admit")]["shed"] + by[(2.0, "admit")]["rejected"] > 0
        # below the knee the policies are indistinguishable
        assert by[(0.5, "admit")]["goodput_rps"] \
            == by[(0.5, "none")]["goodput_rps"]

    def test_registered(self):
        from repro.experiments import EXPERIMENTS
        assert "overload-goodput" in EXPERIMENTS
