"""Tests for the supplementary experiments and the ASCII chart renderer."""

import pytest

from repro.errors import ReproError
from repro.experiments import run_experiment
from repro.experiments.common import ExperimentResult
from repro.experiments.render import bar_chart


class TestColdStart:
    def test_one_to_one_pays_cascading_boots(self):
        res = run_experiment("coldstart-cascade", quick=True)
        by = {row["system"]: row for row in res.rows}
        # FINRA has 2 stages: one-to-one pays 2 boot waves, shared pays 1
        assert by["openfaas"]["penalty_ms"] == pytest.approx(334.0, rel=0.05)
        for shared in ("sand", "faastlane", "chiron"):
            assert by[shared]["penalty_ms"] == pytest.approx(167.0, rel=0.05)

    def test_sandbox_counts_reported(self):
        res = run_experiment("coldstart-cascade", quick=True)
        by = {row["system"]: row for row in res.rows}
        assert by["openfaas"]["sandboxes"] == 6
        assert by["faastlane"]["sandboxes"] == 1


class TestRuntimes:
    def test_nodejs_thread_fanout_pathological(self):
        res = run_experiment("runtimes", quick=True)
        by = {(row["runtime"], row["system"]): row["latency_ms"]
              for row in res.rows}
        # §2.1: worker_threads spawn cost makes thread mode *worse* than
        # processes on Node.js, the opposite of CPython at low parallelism
        assert by[("nodejs", "faastlane-t")] > by[("nodejs", "faastlane")]
        assert by[("python", "faastlane-t")] < by[("python", "faastlane")]
        # Java threads: cheap spawn + true parallelism = best of both
        assert by[("java", "faastlane-t")] <= by[("python", "faastlane-t")]


class TestRender:
    def _result(self):
        res = ExperimentResult("x", "demo", columns=["name", "value"])
        res.add(name="a", value=10.0)
        res.add(name="bb", value=40.0)
        return res

    def test_bars_scale_linearly(self):
        chart = bar_chart(self._result(), label_cols=["name"],
                          value_col="value", width=40)
        lines = chart.splitlines()[1:]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 40

    def test_log_scale_compresses(self):
        res = ExperimentResult("x", "demo", columns=["name", "value"])
        res.add(name="small", value=1.0)
        res.add(name="huge", value=10000.0)
        chart = bar_chart(res, label_cols=["name"], value_col="value",
                          width=40, log=True)
        lines = chart.splitlines()[1:]
        assert lines[0].count("#") > 2  # visible despite the 1e4 spread

    def test_unknown_column_rejected(self):
        with pytest.raises(ReproError):
            bar_chart(self._result(), label_cols=["name"], value_col="zzz")

    def test_negative_values_rejected(self):
        res = ExperimentResult("x", "demo", columns=["name", "value"])
        res.add(name="a", value=-1.0)
        with pytest.raises(ReproError):
            bar_chart(res, label_cols=["name"], value_col="value")

    def test_empty_rejected(self):
        res = ExperimentResult("x", "demo", columns=["name", "value"])
        with pytest.raises(ReproError):
            bar_chart(res, label_cols=["name"], value_col="value")
