"""Tests for the predictor-vs-runtime divergence reporter."""

import pytest

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.obs import Tracer, compare
from repro.workflow import FunctionBehavior, WorkflowBuilder

CAL = RuntimeCalibration.native()


def parallel_workflow(n=4, cpu_ms=8.0):
    return (WorkflowBuilder("div-wf")
            .sequential("prep", ("prep", FunctionBehavior.of(
                ("cpu", 2.0), ("io", 4.0))))
            .parallel("work", [(f"w-{i}", FunctionBehavior.of(
                ("cpu", cpu_ms), ("io", 1.0))) for i in range(n)])
            .build())


def best_latency_plan(wf):
    """Tight SLO -> PGP forks the parallel stage into real processes."""
    return PGPScheduler(LatencyPredictor(CAL)).schedule(wf, slo_ms=1.0)


class TestWellCalibrated:
    def test_report_is_tight_when_calibrations_match(self):
        wf = parallel_workflow()
        report = compare(wf, best_latency_plan(wf), cal=CAL)
        # Eq. 4's (j-1)*fork_block wait vs the runtime's serialized forks
        # leaves a small, known residual; the totals still track closely.
        assert report.measured_total_ms == pytest.approx(
            report.predicted_total_ms, rel=0.15)
        # mechanisms modelled on both sides with matching span counts must
        # agree almost exactly (rpc differs by gateway queueing only)
        for mech in report.mechanisms:
            if mech.predicted_spans == mech.measured_spans > 0:
                assert abs(mech.delta_ms) < 1.0, (mech.op, mech.delta_ms)

    def test_per_function_rows_cover_workflow(self):
        wf = parallel_workflow()
        report = compare(wf, best_latency_plan(wf), cal=CAL)
        assert {f.name for f in report.functions} == \
            {f.name for f in wf.functions}
        for f in report.functions:
            assert f.measured_end_ms is not None
            assert f.predicted_end_ms is not None

    def test_text_report_has_tables(self):
        wf = parallel_workflow()
        text = compare(wf, best_latency_plan(wf), cal=CAL).to_text()
        assert "per-function completion" in text
        assert "per-mechanism totals" in text
        assert "largest mechanism gap" in text


class TestMiscalibratedForkCost:
    """A predictor planning with half the true fork cost must show up as a
    ``fork`` mechanism gap, not as diffuse noise."""

    def _report(self):
        wf = parallel_workflow()
        plan = best_latency_plan(wf)
        lying_cal = CAL.evolve(fork_block_ms=CAL.fork_block_ms / 2)
        return compare(wf, plan, cal=CAL,
                       predictor=LatencyPredictor(lying_cal))

    def test_fork_mechanism_flagged(self):
        report = self._report()
        fork = report.mechanism("fork")
        assert fork is not None
        # runtime paid full fork_block per child; predictor only half
        assert fork.delta_ms == pytest.approx(
            fork.measured_ms / 2, rel=0.01)
        assert fork.predicted_spans == fork.measured_spans

    def test_gap_is_localized_to_fork(self):
        report = self._report()
        fork = report.mechanism("fork")
        others = [m for m in report.mechanisms
                  if m.op not in ("fork", "fork.block")
                  and m.predicted_spans and m.measured_spans]
        for m in others:
            assert abs(m.delta_ms) < abs(fork.delta_ms) / 2, \
                (m.op, m.delta_ms)

    def test_worst_mechanism_ranking(self):
        report = self._report()
        ranked = [m.op for m in report.mechanisms[:2]]
        assert "fork" in ranked or "fork.block" in ranked


class TestDetailTracer:
    def test_detail_tracer_reaches_report(self):
        wf = parallel_workflow()
        tracer = Tracer()
        report = compare(wf, best_latency_plan(wf), cal=CAL, tracer=tracer)
        assert report.runtime_trace is tracer
        assert len(tracer) > 0

    def test_cold_run_blames_sandbox_boot(self):
        wf = parallel_workflow()
        report = compare(wf, best_latency_plan(wf), cal=CAL, cold=True,
                         tracer=Tracer())
        worst = report.worst_mechanism
        assert worst is not None and worst.op == "sandbox.boot"


class TestEdgeCases:
    """Degenerate reports must stay well-formed — no ZeroDivisionError."""

    def _empty_report(self, fault_summary=None):
        from repro.obs.divergence import DivergenceReport
        return DivergenceReport(workflow="empty", predicted_total_ms=0.0,
                                measured_total_ms=5.0,
                                fault_summary=fault_summary)

    def test_zero_prediction_rel_is_none(self):
        report = self._empty_report()
        assert report.rel is None
        assert report.model_error_rel is None
        assert report.total_delta_ms == pytest.approx(5.0)

    def test_zero_prediction_renders_text(self):
        text = self._empty_report().to_text()
        assert "nan" in text
        assert "divergence report: empty" in text

    def test_fault_only_report_is_well_formed(self):
        """All measured latency is fault-induced: model error can go
        negative (the run beat the prediction net of faults), rel stays
        None, and the text report still renders."""
        report = self._empty_report(fault_summary={
            "wasted_wall_ms": 5.0, "injected": {"sandbox.crash": 1},
            "retries": 1, "exhausted": 0, "rerun_work_ms": 3.0})
        assert report.fault_induced_ms == pytest.approx(5.0)
        assert report.model_error_ms == pytest.approx(0.0)
        assert report.model_error_rel is None
        assert "fault attribution" in report.to_text()

    def test_worst_function_none_without_rows(self):
        report = self._empty_report()
        assert report.worst_function is None
        assert report.worst_mechanism is None


class TestRuntimeWorkflowSplit:
    """compare(runtime_workflow=...) separates belief from reality."""

    def test_drifted_reality_shows_model_error(self):
        belief = parallel_workflow(cpu_ms=8.0)
        reality = parallel_workflow(cpu_ms=32.0)
        plan = best_latency_plan(belief)
        report = compare(belief, plan, cal=CAL, runtime_workflow=reality)
        assert report.measured_total_ms > report.predicted_total_ms
        assert report.model_error_ms > 0
        assert report.model_error_rel > 0.3

    def test_undrifted_reality_stays_tight(self):
        belief = parallel_workflow()
        plan = best_latency_plan(belief)
        report = compare(belief, plan, cal=CAL, runtime_workflow=belief)
        assert abs(report.rel) < 0.25

    def test_function_rename_rejected(self):
        belief = parallel_workflow()
        renamed = (WorkflowBuilder("div-wf")
                   .sequential("prep", ("other", FunctionBehavior.cpu(2.0)))
                   .build())
        with pytest.raises(ValueError, match="function"):
            compare(belief, best_latency_plan(belief),
                    cal=CAL, runtime_workflow=renamed)
