"""Dedicated coverage for :mod:`repro.cluster.traces`.

The generators feed the autoscaler and the coldstart lifecycle sweep, so
their contract — sorted output, determinism under a fixed seed, rate-bound
enforcement, and a diurnal shape that actually peaks — is pinned here
independently of the consumers (see also tests/test_traces_autoscale.py
for consumer-side behaviour).
"""

import math

import pytest

from repro.cluster.traces import (
    burst_arrivals,
    constant_arrivals,
    diurnal_arrivals,
    interarrival_stats,
    nonhomogeneous_poisson,
)
from repro.errors import ReproError


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = diurnal_arrivals(0.5, 5.0, period_ms=60_000.0,
                             duration_ms=120_000.0, seed=42)
        b = diurnal_arrivals(0.5, 5.0, period_ms=60_000.0,
                             duration_ms=120_000.0, seed=42)
        assert a == b

    def test_different_seed_different_trace(self):
        a = constant_arrivals(2.0, 60_000.0, seed=1)
        b = constant_arrivals(2.0, 60_000.0, seed=2)
        assert a != b

    def test_burst_trace_deterministic(self):
        kw = dict(burst_every_ms=30_000.0, burst_len_ms=3_000.0,
                  duration_ms=90_000.0, seed=7)
        assert burst_arrivals(0.2, 8.0, **kw) == burst_arrivals(0.2, 8.0,
                                                                **kw)


class TestSortedOutput:
    @pytest.mark.parametrize("arrivals", [
        constant_arrivals(3.0, 60_000.0, seed=3),
        diurnal_arrivals(0.5, 6.0, period_ms=20_000.0,
                         duration_ms=80_000.0, seed=3),
        burst_arrivals(0.3, 9.0, burst_every_ms=20_000.0,
                       burst_len_ms=2_000.0, duration_ms=80_000.0, seed=3),
    ], ids=["constant", "diurnal", "burst"])
    def test_strictly_increasing_within_duration(self, arrivals):
        assert len(arrivals) > 10
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[0] >= 0.0
        assert arrivals[-1] < 80_001.0


class TestRateBounds:
    def test_rate_above_peak_rejected(self):
        with pytest.raises(ReproError, match="outside"):
            nonhomogeneous_poisson(lambda t: 5.0, peak_rps=1.0,
                                   duration_ms=60_000.0, seed=0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ReproError, match="outside"):
            nonhomogeneous_poisson(lambda t: -0.5, peak_rps=1.0,
                                   duration_ms=60_000.0, seed=0)

    def test_nonpositive_peak_or_duration_rejected(self):
        with pytest.raises(ReproError):
            nonhomogeneous_poisson(lambda t: 1.0, peak_rps=0.0,
                                   duration_ms=1_000.0)
        with pytest.raises(ReproError):
            nonhomogeneous_poisson(lambda t: 1.0, peak_rps=1.0,
                                   duration_ms=0.0)

    def test_diurnal_base_above_peak_rejected(self):
        with pytest.raises(ReproError):
            diurnal_arrivals(5.0, 1.0, period_ms=10_000.0,
                             duration_ms=10_000.0)

    def test_burst_shape_rejected(self):
        with pytest.raises(ReproError):
            burst_arrivals(2.0, 1.0, burst_every_ms=10_000.0,
                           burst_len_ms=1_000.0, duration_ms=10_000.0)
        with pytest.raises(ReproError):
            burst_arrivals(0.5, 2.0, burst_every_ms=1_000.0,
                           burst_len_ms=2_000.0, duration_ms=10_000.0)


class TestDiurnalShape:
    def test_peak_windows_denser_than_trough(self):
        period = 100_000.0
        arrivals = diurnal_arrivals(0.5, 8.0, period_ms=period,
                                    duration_ms=4 * period, seed=13)
        # the sinusoid peaks at period/4 and bottoms out at 3*period/4:
        # count arrivals in the half-period around each extreme
        peak = trough = 0
        for t in arrivals:
            phase = math.sin(2 * math.pi * t / period)
            if phase > 0.5:
                peak += 1
            elif phase < -0.5:
                trough += 1
        assert peak > 2 * trough

    def test_burstier_traces_have_higher_cv(self):
        dur = 300_000.0
        _, cv_const = interarrival_stats(constant_arrivals(2.0, dur, seed=5))
        _, cv_burst = interarrival_stats(
            burst_arrivals(0.2, 10.0, burst_every_ms=30_000.0,
                           burst_len_ms=3_000.0, duration_ms=dur, seed=5))
        assert cv_const == pytest.approx(1.0, abs=0.15)  # Poisson: CV ~ 1
        assert cv_burst > 1.5

    def test_interarrival_stats_rejects_short_traces(self):
        with pytest.raises(ReproError):
            interarrival_stats([1.0])
