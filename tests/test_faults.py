"""Fault injection, retry recovery, and graceful degradation.

The load-bearing guarantees under test:

* **zero overhead** — with no fault plan (or a null one) every platform is
  bit-identical to the pre-fault-subsystem behavior;
* **determinism** — a fixed ``(FaultPlan, fault_seed)`` reproduces the same
  crashes, retries, latency, and exported trace byte-for-byte, and no hidden
  ``random`` use sneaks in;
* **blast radius ordering** — under sandbox crashes the wasted-work ratio is
  strictly ordered 1-to-1 < Chiron wraps < many-to-1, because the retry unit
  grows with co-location;
* **graceful degradation** — the manager splits wraps when the
  fault-adjusted p99 blows the SLO.
"""

import io

import pytest

from repro.apps.catalog import workload
from repro.errors import RetryExhausted, SimulationError
from repro.faults import (FAULT_EVENT_TYPES, FaultInjector, FaultPlan,
                          OneShotFault, RetryPolicy, adjusted_p99_ms, preset,
                          split_largest_wrap, unit_failure_prob)
from repro.platforms.registry import build_platform

WF = workload("finra-5")


def run_once(platform_name, faults=None, retry=None, fault_seed=0,
             tracer=None):
    platform = build_platform(platform_name, WF)
    return platform.run(WF, faults=faults, retry=retry, fault_seed=fault_seed,
                        tracer=tracer)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(SimulationError, match="sandbox_crash_rate"):
            FaultPlan(sandbox_crash_rate=1.5)
        with pytest.raises(SimulationError, match="seed"):
            FaultPlan(seed=-1)
        with pytest.raises(SimulationError, match="straggler_factor"):
            FaultPlan(straggler_factor=0.5)

    def test_one_shot_validated(self):
        with pytest.raises(SimulationError, match="unknown fault mechanism"):
            OneShotFault("disk.melt")
        with pytest.raises(SimulationError, match="occurrence"):
            OneShotFault("rpc.drop", occurrence=0)

    def test_is_null(self):
        assert FaultPlan().is_null
        assert not FaultPlan(sandbox_crash_rate=0.01).is_null
        assert not FaultPlan(scheduled=(OneShotFault("rpc.drop"),)).is_null

    def test_uniform_leaves_stragglers_off(self):
        plan = FaultPlan.uniform(0.1, seed=3)
        assert plan.rpc_drop_rate == 0.1 and plan.sandbox_crash_rate == 0.1
        assert plan.straggler_rate == 0.0 and plan.seed == 3

    def test_rate_for_unknown_mechanism(self):
        with pytest.raises(SimulationError, match="unknown fault mechanism"):
            FaultPlan().rate_for("gamma.ray")


class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(backoff_base_ms=5.0, backoff_factor=2.0,
                        backoff_jitter=0.0)
        assert [p.backoff_ms(a) for a in (1, 2, 3)] == [5.0, 10.0, 20.0]

    def test_jitter_bounds(self):
        import numpy as np

        p = RetryPolicy(backoff_base_ms=10.0, backoff_factor=1.0,
                        backoff_jitter=0.3)
        rng = np.random.default_rng(0)
        delays = [p.backoff_ms(1, rng) for _ in range(200)]
        assert all(7.0 <= d <= 13.0 for d in delays)
        assert max(delays) > 12.0 and min(delays) < 8.0  # jitter is live

    def test_validation(self):
        with pytest.raises(SimulationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_presets(self):
        assert preset("none").max_attempts == 1
        assert preset("eager").reboot_cold is False
        with pytest.raises(SimulationError, match="eager"):
            preset("bogus")


@pytest.mark.parametrize("name", ["openfaas", "asf", "sand", "faastlane",
                                  "chiron"])
class TestZeroOverhead:
    """Fault rate 0 must be bit-identical to no fault machinery at all."""

    def test_null_plan_matches_plain_run(self, name):
        base = run_once(name)
        nulled = run_once(name, faults=FaultPlan(), retry=RetryPolicy())
        assert nulled.latency_ms == base.latency_ms
        assert nulled.faults is None  # injector never armed

    def test_armed_at_zero_rate_matches(self, name):
        armed = run_once(name, faults=FaultPlan(sandbox_crash_rate=0.0,
                                                rpc_drop_rate=0.0))
        assert armed.latency_ms == run_once(name).latency_ms


class TestDeterminism:
    PLAN = FaultPlan(seed=5, sandbox_crash_rate=0.08, rpc_drop_rate=0.03)

    def test_same_seed_identical_run(self):
        a = run_once("chiron", faults=self.PLAN, fault_seed=4)
        b = run_once("chiron", faults=self.PLAN, fault_seed=4)
        assert a.latency_ms == b.latency_ms
        assert a.faults == b.faults

    def test_same_seed_byte_identical_trace_export(self):
        from repro.obs import Tracer, write_chrome_trace

        exports = []
        for _ in range(2):
            tracer = Tracer()
            run_once("openfaas", faults=self.PLAN, fault_seed=2,
                     tracer=tracer)
            buf = io.StringIO()
            write_chrome_trace(tracer, buf)
            exports.append(buf.getvalue().encode())
        assert exports[0] == exports[1]

    def test_different_seeds_differ(self):
        summaries = {
            seed: run_once("faastlane", faults=self.PLAN,
                           fault_seed=seed).faults["injected"]
            for seed in range(8)}
        assert len({tuple(sorted(s.items()))
                    for s in summaries.values()}) > 1

    def test_no_hidden_stdlib_random(self, monkeypatch):
        import random

        def poisoned(*_a, **_k):
            raise AssertionError("fault path consulted stdlib random")

        for fn in ("random", "uniform", "randint", "choice", "gauss"):
            monkeypatch.setattr(random, fn, poisoned)
        r = run_once("chiron", faults=self.PLAN, fault_seed=1)
        assert r.latency_ms > 0


def one_shot(mechanism, **kw):
    return FaultPlan(scheduled=(OneShotFault(mechanism, **kw),))


class TestMechanisms:
    """Each mechanism fires, is recovered from, and lands in the ledger."""

    def test_sandbox_crash_retries(self):
        base = run_once("openfaas").latency_ms
        r = run_once("openfaas", faults=one_shot("sandbox.crash"))
        assert r.faults["injected"] == {"sandbox.crash": 1}
        assert r.faults["retries"] == 1 and r.faults["exhausted"] == 0
        assert r.faults["wasted_wall_ms"] > 0
        assert r.latency_ms > base

    def test_rpc_drop_pays_timeout(self):
        plan = one_shot("rpc.drop")
        base = run_once("openfaas").latency_ms
        r = run_once("openfaas", faults=plan)
        assert r.faults["injected"] == {"rpc.drop": 1}
        assert r.latency_ms > base + plan.rpc_timeout_ms * 0.9

    @pytest.mark.parametrize("mechanism", ["storage.read", "storage.write"])
    def test_storage_errors(self, mechanism):
        r = run_once("openfaas", faults=one_shot(mechanism))
        assert r.faults["injected"] == {mechanism: 1}
        assert r.faults["retries"] == 1
        assert r.latency_ms > run_once("openfaas").latency_ms

    def test_fork_failure_reruns_workflow(self):
        base = run_once("faastlane").latency_ms
        r = run_once("faastlane", faults=one_shot("fork.fail"))
        assert r.faults["injected"] == {"fork.fail": 1}
        assert r.faults["retries"] == 1
        # many-to-1 re-runs everything: wasted work ~ the whole attempt
        assert r.faults["rerun_work_ms"] == pytest.approx(WF.total_work_ms)
        assert r.latency_ms > base

    def test_pool_worker_self_heals(self):
        base = run_once("chiron-p").latency_ms
        r = run_once("chiron-p", faults=one_shot("pool.worker"))
        assert r.faults["injected"] == {"pool.worker": 1}
        assert r.faults["retries"] == 0  # respawn, not retry
        assert r.latency_ms > base  # pays one interpreter startup

    def test_straggler_slows_without_error(self):
        base = run_once("sand").latency_ms
        plan = FaultPlan(scheduled=(OneShotFault("straggler"),),
                         straggler_factor=4.0)
        r = run_once("sand", faults=plan)
        assert r.faults["injected"] == {"straggler": 1}
        assert r.faults["retries"] == 0
        assert r.latency_ms > base

    def test_entity_scoped_one_shot(self):
        plan = FaultPlan(scheduled=(
            OneShotFault("sandbox.crash", entity="no-such-sandbox"),))
        r = run_once("openfaas", faults=plan)
        assert r.faults["injected"] == {}  # filter never matched

    def test_retry_exhausted_with_none_policy(self):
        with pytest.raises(RetryExhausted) as exc:
            run_once("openfaas", faults=one_shot("sandbox.crash"),
                     retry=preset("none"))
        assert exc.value.mechanism == "sandbox.crash"

    def test_exhaustion_after_repeated_crashes(self):
        plan = FaultPlan(scheduled=tuple(
            OneShotFault("sandbox.crash", occurrence=i) for i in (1, 2, 3)))
        with pytest.raises(RetryExhausted):
            run_once("openfaas", faults=plan,
                     retry=RetryPolicy(max_attempts=3))


class TestBlastRadius:
    def test_wasted_work_strictly_ordered_by_colocation(self):
        from repro.experiments.fault_blast_radius import measure

        plan = FaultPlan(seed=1, sandbox_crash_rate=0.05)
        ratios = {
            name: measure("finra-5", name, plan, requests=40,
                          crash_only=True)["wasted_ratio"]
            for name in ("openfaas", "chiron", "faastlane")}
        assert 0 < ratios["openfaas"] < ratios["chiron"] < ratios["faastlane"]

    def test_zero_rate_row_is_clean(self):
        from repro.experiments.fault_blast_radius import measure

        row = measure("finra-5", "chiron", FaultPlan(), requests=3,
                      crash_only=True)
        assert row["faults"] == 0 and row["retries"] == 0
        assert row["wasted_ratio"] == 0.0 and row["failed"] == 0

    def test_experiment_registered(self):
        from repro.experiments import EXPERIMENTS

        assert "fault-blast" in EXPERIMENTS


class TestReliabilityModel:
    def test_unit_failure_prob_grows_with_width(self):
        plan = FaultPlan(sandbox_crash_rate=0.05)
        probs = [unit_failure_prob(plan, n) for n in (0, 1, 2, 5)]
        assert probs[0] == 0.0
        assert probs[1] == pytest.approx(0.05)
        assert probs == sorted(probs) and probs[3] < 1.0

    def test_adjusted_p99_null_plan_is_base(self):
        plan = build_platform("chiron", WF).plan
        assert adjusted_p99_ms(WF, plan, FaultPlan(), RetryPolicy(),
                               100.0) == 100.0

    def test_adjusted_p99_exceeds_base_under_faults(self):
        plan = build_platform("chiron", WF).plan
        fp = FaultPlan(sandbox_crash_rate=0.05)
        assert adjusted_p99_ms(WF, plan, fp, RetryPolicy(), 100.0) > 100.0

    def test_split_largest_wrap_stays_valid(self):
        plan = build_platform("chiron", WF).plan
        splits = 0
        while True:
            nxt = split_largest_wrap(plan)
            if nxt is None:
                break
            nxt.validate(WF)  # raises on malformed plans
            assert nxt.n_wraps == plan.n_wraps + 1
            plan, splits = nxt, splits + 1
        assert splits >= 1  # finra-5's single wrap is splittable
        # fully degraded: every retry unit (wrap-part per stage) is one
        # function wide — minimal blast radius
        part_widths = [len(sa.function_names)
                       for w in plan.wraps for sa in w.stages]
        assert max(part_widths) == 1


class TestManagerDegradation:
    def test_manager_splits_wraps_under_faults(self):
        from repro.core import ChironManager
        from repro.platforms.registry import default_slo_ms

        slo = default_slo_ms(WF)
        manager = ChironManager()
        clean = manager.deploy(WF, slo_ms=slo, generate_code=False)
        faulted = manager.deploy(
            WF, slo_ms=slo, generate_code=False,
            fault_plan=FaultPlan(seed=1, sandbox_crash_rate=0.05))
        assert faulted.fault_adjusted_p99_ms is not None
        assert faulted.plan.n_wraps > clean.plan.n_wraps
        faulted.plan.validate(WF)

    def test_null_fault_plan_changes_nothing(self):
        from repro.core import ChironManager
        from repro.platforms.registry import default_slo_ms

        slo = default_slo_ms(WF)
        manager = ChironManager()
        clean = manager.deploy(WF, slo_ms=slo, generate_code=False)
        nulled = manager.deploy(WF, slo_ms=slo, generate_code=False,
                                fault_plan=FaultPlan())
        assert nulled.plan.n_wraps == clean.plan.n_wraps
        assert nulled.fault_adjusted_p99_ms is None


class TestObsIntegration:
    def test_typed_events_and_counters(self):
        from repro.obs import Tracer

        tracer = Tracer()
        run_once("openfaas", faults=one_shot("sandbox.crash"), tracer=tracer)
        names = {e.name for e in tracer.events}
        assert "fault.injected" in names and "retry.attempt" in names
        counters = tracer.metrics.counters()
        assert counters["faults.injected"] == 1
        assert counters["retries.attempted"] == 1
        assert counters["work.wasted_ms"] > 0

    def test_event_types_are_exported_schema(self):
        assert "fault.injected" in FAULT_EVENT_TYPES
        assert "retry.exhausted" in FAULT_EVENT_TYPES

    def test_divergence_report_attributes_faults(self):
        from repro.calibration import RuntimeCalibration
        from repro.obs import compare

        platform = build_platform("chiron", WF)
        report = compare(WF, platform.plan, cal=RuntimeCalibration.native(),
                         platform=platform,
                         faults=one_shot("sandbox.crash"))
        assert report.fault_summary is not None
        assert report.fault_induced_ms > 0
        assert report.model_error_ms == pytest.approx(
            report.total_delta_ms - report.fault_induced_ms)
        assert "fault attribution" in report.to_text()

    def test_fault_free_report_has_no_attribution(self):
        from repro.calibration import RuntimeCalibration
        from repro.obs import compare

        platform = build_platform("chiron", WF)
        report = compare(WF, platform.plan, cal=RuntimeCalibration.native(),
                         platform=platform)
        assert report.fault_summary is None
        assert report.fault_induced_ms == 0.0
        assert "fault attribution" not in report.to_text()


class TestInjectorUnit:
    def test_one_shot_fires_exactly_once(self):
        inj = FaultInjector(one_shot("rpc.drop"))
        hits = [inj.fires("rpc.drop", "gw") for _ in range(5)]
        assert hits == [True, False, False, False, False]

    def test_occurrence_counts_opportunities(self):
        inj = FaultInjector(FaultPlan(scheduled=(
            OneShotFault("fork.fail", occurrence=3),)))
        hits = [inj.fires("fork.fail", f"w-{i}") for i in range(4)]
        assert hits == [False, False, True, False]

    def test_draw_crash_offset_within_expected(self):
        inj = FaultInjector(FaultPlan(sandbox_crash_rate=0.5), seed=1)
        offsets = [inj.draw_crash("s", 3, 10.0) for _ in range(50)]
        drawn = [o for o in offsets if o is not None]
        assert drawn and all(0.0 <= o <= 10.0 for o in drawn)

    def test_summary_shape(self):
        inj = FaultInjector(FaultPlan())
        inj.record_injected("rpc.drop", "gw")
        inj.record_retry("gw", 1, "rpc.drop", 7.0, 3.0)
        s = inj.summary()
        assert s["injected"] == {"rpc.drop": 1}
        assert s["injected_total"] == 1 and s["retries"] == 1
        assert s["wasted_wall_ms"] == 7.0 and s["rerun_work_ms"] == 3.0
