"""Tests for FunctionBehavior segments, transforms and strace round-trips."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ProfilingError
from repro.workflow import FunctionBehavior, Segment, SegmentKind


class TestConstruction:
    def test_cpu_constructor(self):
        b = FunctionBehavior.cpu(3.0)
        assert b.cpu_ms == 3.0 and b.io_ms == 0.0 and b.solo_ms == 3.0

    def test_io_constructor(self):
        b = FunctionBehavior.io(7.5)
        assert b.io_ms == 7.5 and b.cpu_ms == 0.0

    def test_of_constructor(self):
        b = FunctionBehavior.of(("cpu", 1.0), ("io", 5.0), ("cpu", 2.0))
        assert b.cpu_ms == pytest.approx(3.0)
        assert b.io_ms == pytest.approx(5.0)
        assert len(b) == 3

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            FunctionBehavior([])

    def test_negative_duration_rejected(self):
        with pytest.raises(ProfilingError):
            Segment(SegmentKind.CPU, -1.0)

    def test_nan_duration_rejected(self):
        with pytest.raises(ProfilingError):
            Segment(SegmentKind.CPU, float("nan"))

    def test_negative_data_out_rejected(self):
        with pytest.raises(ProfilingError):
            FunctionBehavior.cpu(1.0, data_out_mb=-1.0)

    def test_equality_and_hash(self):
        a = FunctionBehavior.of(("cpu", 1.0), ("io", 2.0))
        b = FunctionBehavior.of(("cpu", 1.0), ("io", 2.0))
        c = FunctionBehavior.of(("cpu", 1.0), ("io", 3.0))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_contains_segments(self):
        assert "cpu:1" in repr(FunctionBehavior.cpu(1.0))


class TestTransforms:
    def test_scaled_applies_per_kind_factors(self):
        b = FunctionBehavior.of(("cpu", 10.0), ("io", 10.0))
        s = b.scaled(cpu_factor=1.5, io_factor=1.1)
        assert s.cpu_ms == pytest.approx(15.0)
        assert s.io_ms == pytest.approx(11.0)

    def test_scaled_preserves_metadata(self):
        b = FunctionBehavior.cpu(1.0, data_out_mb=0.5, memory_mb=2.0)
        s = b.scaled(cpu_factor=2.0)
        assert s.data_out_mb == 0.5 and s.memory_mb == 2.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ProfilingError):
            FunctionBehavior.cpu(1.0).scaled(cpu_factor=-1.0)

    def test_perturbed_is_seed_deterministic(self):
        b = FunctionBehavior.of(("cpu", 5.0), ("io", 5.0))
        p1 = b.perturbed(np.random.default_rng(7))
        p2 = b.perturbed(np.random.default_rng(7))
        assert p1 == p2

    def test_perturbed_zero_sigma_is_identity(self):
        b = FunctionBehavior.of(("cpu", 5.0), ("io", 5.0))
        assert b.perturbed(np.random.default_rng(0), sigma=0.0) == b

    def test_merged_coalesces_adjacent(self):
        b = FunctionBehavior.of(("cpu", 1.0), ("cpu", 2.0), ("io", 3.0))
        m = b.merged()
        assert len(m) == 2
        assert m.segments[0].duration_ms == pytest.approx(3.0)


class TestBlockPeriods:
    def test_block_periods_positions(self):
        b = FunctionBehavior.of(("cpu", 2.0), ("io", 5.0), ("cpu", 1.0), ("io", 4.0))
        assert b.block_periods() == [
            (pytest.approx(2.0), pytest.approx(7.0)),
            (pytest.approx(8.0), pytest.approx(12.0)),
        ]

    def test_round_trip_from_block_periods(self):
        b = FunctionBehavior.of(("cpu", 2.0), ("io", 5.0), ("cpu", 1.0))
        rebuilt = FunctionBehavior.from_block_periods(
            b.solo_ms, b.block_periods())
        assert rebuilt.cpu_ms == pytest.approx(b.cpu_ms)
        assert rebuilt.io_ms == pytest.approx(b.io_ms)
        assert rebuilt.block_periods() == b.block_periods()

    def test_paper_figure10_example(self):
        """Figure 10: sleep(1s) + tiny write + tiny read at given offsets."""
        periods = [(48.0, 1049.0), (1070.0, 1070.042), (1081.0, 1081.025)]
        b = FunctionBehavior.from_block_periods(1100.0, periods)
        assert b.io_ms == pytest.approx(1001.0 + 0.042 + 0.025)
        assert b.solo_ms == pytest.approx(1100.0)

    def test_overlapping_periods_rejected(self):
        with pytest.raises(ProfilingError):
            FunctionBehavior.from_block_periods(10.0, [(0.0, 5.0), (3.0, 6.0)])

    def test_total_shorter_than_blocks_rejected(self):
        with pytest.raises(ProfilingError):
            FunctionBehavior.from_block_periods(3.0, [(0.0, 5.0)])


@given(st.lists(
    st.tuples(st.sampled_from(["cpu", "io"]),
              st.floats(min_value=0.0, max_value=1e4, allow_nan=False)),
    min_size=1, max_size=20))
def test_property_solo_is_cpu_plus_io(pairs):
    b = FunctionBehavior.of(*pairs)
    assert b.solo_ms == pytest.approx(b.cpu_ms + b.io_ms)


@given(st.lists(
    st.tuples(st.sampled_from(["cpu", "io"]),
              st.floats(min_value=0.001, max_value=1e3, allow_nan=False)),
    min_size=1, max_size=12))
def test_property_block_period_round_trip(pairs):
    b = FunctionBehavior.of(*pairs)
    rebuilt = FunctionBehavior.from_block_periods(b.solo_ms, b.block_periods())
    assert rebuilt.io_ms == pytest.approx(b.io_ms, rel=1e-9, abs=1e-9)
    assert rebuilt.cpu_ms == pytest.approx(b.cpu_ms, rel=1e-9, abs=1e-9)


@given(st.lists(
    st.tuples(st.sampled_from(["cpu", "io"]),
              st.floats(min_value=0.0, max_value=1e3, allow_nan=False)),
    min_size=1, max_size=12),
    st.floats(min_value=0.0, max_value=3.0),
    st.floats(min_value=0.0, max_value=3.0))
def test_property_scaled_totals(pairs, cf, iof):
    b = FunctionBehavior.of(*pairs)
    s = b.scaled(cpu_factor=cf, io_factor=iof)
    assert s.cpu_ms == pytest.approx(b.cpu_ms * cf, rel=1e-9, abs=1e-9)
    assert s.io_ms == pytest.approx(b.io_ms * iof, rel=1e-9, abs=1e-9)


@given(st.lists(
    st.tuples(st.sampled_from(["cpu", "io"]),
              st.floats(min_value=0.0, max_value=1e3, allow_nan=False)),
    min_size=1, max_size=12))
def test_property_merged_preserves_totals(pairs):
    b = FunctionBehavior.of(*pairs)
    m = b.merged()
    assert m.cpu_ms == pytest.approx(b.cpu_ms)
    assert m.io_ms == pytest.approx(b.io_ms)
    # merged output strictly alternates kinds
    kinds = [s.kind for s in m.segments]
    assert all(a != b_ for a, b_ in zip(kinds, kinds[1:]))
