"""Tests for the GIL arbiter and SimThread execution semantics."""

import pytest

from repro.calibration import RuntimeCalibration
from repro.errors import SimulationError
from repro.runtime.cpusched import FluidCPU
from repro.runtime.gil import Gil
from repro.runtime.thread import SimThread
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder
from repro.workflow import FunctionBehavior

CAL = RuntimeCalibration.native()


def make_thread(env, cpu, gil, name="t", cal=CAL, trace=None):
    return SimThread(env, name=name, cpu=cpu, gil=gil, cal=cal, trace=trace)


class TestGil:
    def test_uncontended_acquire_immediate(self):
        env = Environment()
        gil = Gil(env)
        t = make_thread(env, FluidCPU(env, 1), gil)
        ev = gil.acquire(t)
        assert ev.triggered and gil.holder is t

    def test_double_acquire_rejected(self):
        env = Environment()
        gil = Gil(env)
        t = make_thread(env, FluidCPU(env, 1), gil)
        gil.acquire(t)
        with pytest.raises(SimulationError):
            gil.acquire(t)

    def test_release_by_non_holder_rejected(self):
        env = Environment()
        gil = Gil(env)
        cpu = FluidCPU(env, 1)
        a, b = make_thread(env, cpu, gil, "a"), make_thread(env, cpu, gil, "b")
        gil.acquire(a)
        with pytest.raises(SimulationError):
            gil.release(b)

    def test_handoff_picks_min_cpu_time(self):
        env = Environment()
        gil = Gil(env)
        cpu = FluidCPU(env, 1)
        holder = make_thread(env, cpu, gil, "holder")
        fat = make_thread(env, cpu, gil, "fat")
        lean = make_thread(env, cpu, gil, "lean")
        fat.cpu_time_ms = 100.0
        lean.cpu_time_ms = 1.0
        gil.acquire(holder)
        ev_fat = gil.acquire(fat)
        ev_lean = gil.acquire(lean)
        gil.release(holder)
        assert gil.holder is lean
        assert ev_lean.triggered and not ev_fat.triggered
        assert gil.switch_count == 1

    def test_tie_broken_by_arrival_order(self):
        env = Environment()
        gil = Gil(env)
        cpu = FluidCPU(env, 1)
        holder = make_thread(env, cpu, gil, "holder")
        first = make_thread(env, cpu, gil, "first")
        second = make_thread(env, cpu, gil, "second")
        gil.acquire(holder)
        gil.acquire(first)
        gil.acquire(second)
        gil.release(holder)
        assert gil.holder is first

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Gil(Environment(), switch_interval_ms=0)


class TestSimThreadGilSemantics:
    def test_single_cpu_thread_runs_solo_time(self):
        env = Environment()
        cpu = FluidCPU(env, 1)
        gil = Gil(env)
        t = make_thread(env, cpu, gil)
        p = env.process(t.run_behavior(FunctionBehavior.cpu(12.0)))
        env.run()
        assert p.value == pytest.approx(12.0)
        assert t.cpu_time_ms == pytest.approx(12.0)

    def test_two_cpu_threads_serialize_under_gil_despite_cores(self):
        """Pseudo-parallelism: 2 CPU-bound threads on 2 cores, one GIL."""
        env = Environment()
        cpu = FluidCPU(env, 2)       # plenty of cores
        gil = Gil(env, switch_interval_ms=5.0)
        a = make_thread(env, cpu, gil, "a")
        b = make_thread(env, cpu, gil, "b")
        pa = env.process(a.run_behavior(FunctionBehavior.cpu(20.0)))
        pb = env.process(b.run_behavior(FunctionBehavior.cpu(20.0)))
        env.run()
        # Total wall time ~= sum of CPU work: the GIL serializes execution.
        assert env.now == pytest.approx(40.0, rel=0.01)
        assert gil.switch_count > 0

    def test_two_cpu_threads_without_gil_run_parallel(self):
        env = Environment()
        cpu = FluidCPU(env, 2)
        a = make_thread(env, cpu, None, "a")
        b = make_thread(env, cpu, None, "b")
        env.process(a.run_behavior(FunctionBehavior.cpu(20.0)))
        env.process(b.run_behavior(FunctionBehavior.cpu(20.0)))
        env.run()
        assert env.now == pytest.approx(20.0)

    def test_io_overlaps_with_gil_holder(self):
        """Figure 2: block ops run concurrently with the GIL holder."""
        env = Environment()
        cpu = FluidCPU(env, 1)
        gil = Gil(env)
        io_thread = make_thread(env, cpu, gil, "io")
        cpu_thread = make_thread(env, cpu, gil, "cpu")
        p_io = env.process(io_thread.run_behavior(FunctionBehavior.io(30.0)))
        p_cpu = env.process(cpu_thread.run_behavior(FunctionBehavior.cpu(30.0)))
        env.run()
        # IO and CPU overlap: total is ~30, not 60.
        assert env.now == pytest.approx(30.0, rel=0.05)

    def test_gil_switch_interval_bounds_wait(self):
        """A waiter gets the GIL within one switch interval of asking."""
        env = Environment()
        cpu = FluidCPU(env, 1)
        gil = Gil(env, switch_interval_ms=5.0)
        hog = make_thread(env, cpu, gil, "hog")
        late = make_thread(env, cpu, gil, "late")
        first_cpu_at = {}

        def run_late(env):
            yield env.timeout(1.0)   # arrive while hog computes
            yield from late.consume_cpu(1.0)
            first_cpu_at["late"] = env.now

        env.process(hog.run_behavior(FunctionBehavior.cpu(100.0)))
        env.process(run_late(env))
        env.run()
        # late asked at t=1; hog's current 5ms chunk ends at t=5; late then
        # runs 1ms -> finishes by ~6ms, far before hog's 100ms.
        assert first_cpu_at["late"] <= 5.0 + 1.0 + 1e-6

    def test_mixed_behavior_latency(self):
        env = Environment()
        cpu = FluidCPU(env, 1)
        gil = Gil(env)
        t = make_thread(env, cpu, gil)
        b = FunctionBehavior.of(("cpu", 5.0), ("io", 10.0), ("cpu", 5.0))
        p = env.process(t.run_behavior(b))
        env.run()
        assert p.value == pytest.approx(20.0)

    def test_isolation_startup_and_exec_overheads_applied(self):
        env = Environment()
        cpu = FluidCPU(env, 1)
        cal = RuntimeCalibration.mpk()
        t = SimThread(env, name="t", cpu=cpu, gil=None, cal=cal)
        b = FunctionBehavior.of(("cpu", 10.0), ("io", 10.0))
        p = env.process(t.run_behavior(b))
        env.run()
        expected = 0.2 + 10.0 * 1.352 + 10.0 * 1.073
        assert p.value == pytest.approx(expected)

    def test_trace_records_exec_and_block(self):
        env = Environment()
        cpu = FluidCPU(env, 1)
        trace = TraceRecorder()
        t = SimThread(env, name="fn", cpu=cpu, gil=Gil(env), cal=CAL,
                      trace=trace)
        env.process(t.run_behavior(
            FunctionBehavior.of(("cpu", 3.0), ("io", 2.0))))
        env.run()
        assert trace.total("exec", "fn") == pytest.approx(3.0)
        assert trace.total("block", "fn") == pytest.approx(2.0)

    def test_negative_cpu_rejected(self):
        env = Environment()
        t = make_thread(env, FluidCPU(env, 1), None)

        def bad(env):
            yield from t.consume_cpu(-1.0)

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()


class TestGilFairness:
    def test_many_threads_roughly_fair(self):
        """10 CPU-bound threads on one GIL round-robin in 5 ms chunks: the
        CFS min-cpu-time pick keeps CPU time perfectly balanced, so finishes
        spread over exactly one final rotation."""
        env = Environment()
        cpu = FluidCPU(env, 4)
        interval = 5.0
        gil = Gil(env, switch_interval_ms=interval)
        threads = [make_thread(env, cpu, gil, f"t{i}") for i in range(10)]
        for t in threads:
            env.process(t.run_behavior(FunctionBehavior.cpu(20.0)))
        env.run()
        finishes = sorted(t.finished_at for t in threads)
        assert env.now == pytest.approx(200.0, rel=0.01)
        # Every thread got exactly its 20 ms of CPU.
        for t in threads:
            assert t.cpu_time_ms == pytest.approx(20.0)
        # Completion spread is one rotation: (n-1) * interval.
        assert finishes[-1] - finishes[0] <= 9 * interval + 1e-6
