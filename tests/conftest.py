"""Shared pytest machinery: golden-file comparison with --update-goldens."""

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite golden files from the current run instead of comparing")


@pytest.fixture
def golden(request):
    """Compare ``data`` against ``tests/goldens/<name>.json``.

    Run ``pytest --update-goldens`` after an intentional behavior change to
    regenerate the files; review the diff like any other code change.
    """
    update = request.config.getoption("--update-goldens")

    def check(name, data):
        path = GOLDEN_DIR / f"{name}.json"
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
            return
        assert path.exists(), (
            f"missing golden file {path}; generate it with "
            f"`pytest --update-goldens`")
        expected = json.loads(path.read_text())
        assert data == expected, (
            f"trace diverged from golden {path.name}; if the change is "
            f"intentional, refresh with `pytest --update-goldens`")

    return check
