"""Tests for the repro.obs tracing subsystem: spans, metrics, exporters."""

import io
import json

import pytest

from repro.calibration import RuntimeCalibration
from repro.obs import (
    NULL_TRACER,
    Registry,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import render_cdf, render_timeline
from repro.platforms import FaastlanePlatform
from repro.simcore.monitor import TraceRecorder
from repro.workflow import FunctionBehavior, WorkflowBuilder

CAL = RuntimeCalibration.native()


def small_workflow():
    return (WorkflowBuilder("obs-wf")
            .sequential("prep", ("prep", FunctionBehavior.of(
                ("cpu", 2.0), ("io", 3.0))))
            .parallel("work", [(f"w-{i}", FunctionBehavior.of(
                ("cpu", 4.0), ("io", 1.0))) for i in range(3)])
            .build())


class TestSpanNesting:
    def test_nested_spans_carry_parent_and_depth(self):
        tr = Tracer(clock=lambda: 0.0)
        outer = tr.begin("outer", entity="e")
        inner = tr.begin("inner", entity="e")
        tr.end(inner)
        tr.end(outer)
        inner_span, outer_span = tr.spans(entity="e")
        assert inner_span.tags["parent_id"] == outer.span_id
        assert inner_span.tags["depth"] == 1
        assert "parent_id" not in outer_span.tags
        assert outer_span.tags["depth"] == 0

    def test_span_context_manager_closes_on_exception(self):
        tr = Tracer(clock=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with tr.span("phase", entity="e"):
                raise RuntimeError("boom")
        (span,) = tr.spans(entity="e")
        assert span.tags["op"] == "phase"
        assert not tr._open["e"]  # stack drained

    def test_flat_record_inherits_open_span_as_parent(self):
        tr = Tracer(clock=lambda: 0.0)
        with tr.span("stage", entity="e") as handle:
            tr.record("e", "exec", 0.0, 1.0)
        flat = tr.spans(entity="e", kind="exec")[0]
        assert flat.tags["parent_id"] == handle.span_id
        assert flat.tags["depth"] == 1

    def test_double_end_rejected(self):
        tr = Tracer(clock=lambda: 0.0)
        h = tr.begin("x")
        tr.end(h)
        with pytest.raises(ValueError):
            tr.end(h)

    def test_separate_entities_have_separate_stacks(self):
        tr = Tracer(clock=lambda: 0.0)
        a = tr.begin("a", entity="one")
        b = tr.begin("b", entity="two")
        assert b.parent_id is None and b.depth == 0
        tr.end(b)
        tr.end(a)


class TestMetrics:
    def test_counter_accuracy(self):
        reg = Registry()
        for _ in range(7):
            reg.inc("forks")
        reg.inc("bytes", 2.5)
        assert reg.counters() == {"bytes": 2.5, "forks": 7.0}

    def test_counter_cannot_decrease(self):
        reg = Registry()
        with pytest.raises(ValueError):
            reg.inc("x", -1.0)

    def test_histogram_summary(self):
        reg = Registry()
        for v in (0.5, 1.5, 8.0):
            reg.observe("wait", v)
        h = reg.histogram("wait")
        assert h.count == 3
        assert h.min == 0.5 and h.max == 8.0
        assert h.mean == pytest.approx(10.0 / 3)
        assert sum(h.bucket_counts) == 3

    def test_event_bumps_counter(self):
        tr = Tracer(clock=lambda: 2.0)
        tr.event("gil.handoff", entity="t0")
        tr.event("gil.handoff", entity="t1")
        assert tr.metrics.counters()["event.gil.handoff"] == 2.0
        assert [e.ts_ms for e in tr.events] == [2.0, 2.0]

    def test_span_op_feeds_histogram(self):
        tr = Tracer(clock=lambda: 0.0)
        tr.record("e", "fork", 1.0, 4.0, op="fork")
        h = tr.metrics.histogram("span.fork.ms")
        assert h.count == 1 and h.total == pytest.approx(3.0)

    def test_registry_merge(self):
        a, b = Registry(), Registry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.observe("ms", 1.0)
        a.merge(b)
        assert a.counters()["n"] == 5.0
        assert a.histogram("ms").count == 1


class TestChromeExport:
    def test_schema_validity_on_real_run(self, tmp_path):
        tracer = Tracer()
        FaastlanePlatform(CAL).run(small_workflow(), tracer=tracer)
        doc = chrome_trace(tracer)
        events = doc["traceEvents"]
        assert events, "a run must produce trace events"
        tids_named = set()
        for ev in events:
            assert ev["ph"] in ("X", "i", "M")
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            assert isinstance(ev["name"], str)
            if ev["ph"] == "X":
                assert ev["ts"] >= 0 and ev["dur"] >= 0
            if ev["ph"] == "M" and ev["name"] == "thread_name":
                tids_named.add(ev["tid"])
        # every span/instant rides on a named track
        for ev in events:
            if ev["ph"] in ("X", "i"):
                assert ev["tid"] in tids_named
        # document is JSON-serializable and loadable
        out = tmp_path / "t.json"
        write_chrome_trace(tracer, str(out))
        loaded = json.loads(out.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"]["spans"] == len(tracer)

    def test_write_accepts_open_file(self):
        tr = Tracer(clock=lambda: 0.0)
        tr.record("e", "exec", 0.0, 1.0)
        buf = io.StringIO()
        write_chrome_trace(tr, buf)
        assert json.loads(buf.getvalue())["traceEvents"]

    def test_times_exported_in_microseconds(self):
        tr = Tracer(clock=lambda: 0.0)
        tr.record("e", "exec", 1.0, 3.5)
        xs = [e for e in chrome_trace(tr)["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["ts"] == pytest.approx(1000.0)
        assert xs[0]["dur"] == pytest.approx(2500.0)


class TestAsciiRenderers:
    def test_timeline_rows_and_bounds(self):
        tr = Tracer(clock=lambda: 0.0)
        tr.record("a", "exec", 0.0, 10.0)
        tr.record("b", "block", 5.0, 10.0)
        text = render_timeline(tr, width=40)
        lines = text.splitlines()
        assert lines[0].startswith("a ") and "#" in lines[0]
        assert "." in lines[1]
        assert "0.0 ms" in lines[-1] and "10.0 ms" in lines[-1]

    def test_cdf_monotone(self):
        text = render_cdf([1.0, 2.0, 3.0, 10.0], width=30, height=4)
        assert "100%" in text and "#" in text

    def test_empty_inputs(self):
        assert render_timeline(TraceRecorder()) == "(no spans)"
        assert render_cdf([]) == "(no samples)"


class TestNoOpOverhead:
    """With tracing off, hook points must not record or perturb anything."""

    def test_default_recorder_is_not_detail(self):
        assert TraceRecorder.detail is False
        assert NULL_TRACER.detail is False

    def test_detail_only_records_absent_without_tracer(self):
        res = FaastlanePlatform(CAL).run(small_workflow())
        assert res.trace.detail is False
        kinds = {s.kind for s in res.trace}
        assert "queue" not in kinds  # gateway queueing is detail-gated
        assert not any(s.kind.startswith("stage.") for s in res.trace)

    def test_tracing_does_not_change_simulation(self):
        wf = small_workflow()
        plain = FaastlanePlatform(CAL).run(wf)
        traced = FaastlanePlatform(CAL).run(wf, tracer=Tracer())
        assert traced.latency_ms == pytest.approx(plain.latency_ms, abs=1e-9)
        assert traced.function_spans == plain.function_spans

    def test_null_tracer_swallows_everything(self):
        NULL_TRACER.event("x")
        h = NULL_TRACER.begin("y")
        NULL_TRACER.end(h)
        NULL_TRACER.record("e", "exec", 0.0, 1.0)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events == []
