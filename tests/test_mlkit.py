"""Tests for the from-scratch ML kit, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.mlkit import (
    DecisionTreeRegressor,
    GCNRegressor,
    LSTMRegressor,
    RandomForestRegressor,
    mean_absolute_percentage_error,
)
from repro.mlkit.gnn import normalize_adjacency
from repro.mlkit.metrics import absolute_percentage_errors
from repro.mlkit.optim import Adam


def make_regression(n=120, d=5, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, d))
    y = (3.0 * X[:, 0] - 2.0 * X[:, 1] ** 2 + X[:, 2] * X[:, 3]
         + noise * rng.normal(size=n))
    return X, y


class TestDecisionTree:
    def test_fits_piecewise_constant_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_reduces_error_vs_mean_predictor(self):
        X, y = make_regression()
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        pred = tree.predict(X)
        assert np.mean((pred - y) ** 2) < 0.5 * y.var()

    def test_depth_one_is_a_stump(self):
        X, y = make_regression(n=60)
        stump = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert len(np.unique(stump.predict(X))) <= 2

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ReproError):
            DecisionTreeRegressor().predict(np.zeros((1, 3)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ReproError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_constant_targets_yield_leaf(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), 7.0)

    def test_single_row_prediction_shape(self):
        X, y = make_regression(n=30)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.predict(X[0]).shape == (1,)


class TestRandomForest:
    def test_beats_single_deep_tree_on_holdout(self):
        X, y = make_regression(n=200, noise=0.3)
        Xtr, ytr, Xte, yte = X[:150], y[:150], X[150:], y[150:]
        tree = DecisionTreeRegressor(max_depth=10).fit(Xtr, ytr)
        forest = RandomForestRegressor(n_estimators=40, max_depth=10,
                                       seed=1).fit(Xtr, ytr)
        mse_tree = np.mean((tree.predict(Xte) - yte) ** 2)
        mse_forest = np.mean((forest.predict(Xte) - yte) ** 2)
        assert mse_forest <= mse_tree * 1.05  # bagging shouldn't be worse

    def test_deterministic_given_seed(self):
        X, y = make_regression(n=50)
        a = RandomForestRegressor(n_estimators=5, seed=3).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=3).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            RandomForestRegressor(n_estimators=0)


class TestAdam:
    def test_minimizes_quadratic(self):
        params = {"x": np.array([5.0])}
        opt = Adam(params, lr=0.1)
        for _ in range(500):
            opt.step({"x": 2 * params["x"]})  # d/dx x^2
        assert abs(params["x"][0]) < 1e-2

    def test_unknown_grad_rejected(self):
        opt = Adam({"x": np.zeros(1)})
        with pytest.raises(ReproError):
            opt.step({"y": np.zeros(1)})


class TestLSTM:
    def test_gradient_check(self):
        """BPTT gradients match central finite differences."""
        model = LSTMRegressor(input_dim=2, hidden_dim=4, seed=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 2))
        target = 1.3
        _, grads = model.loss_and_grads(x, target)
        eps = 1e-6
        for key in ("Wx", "Wh", "b", "w_out", "b_out"):
            param = model.params[key]
            flat_idx = [0, param.size // 2, param.size - 1]
            for idx in flat_idx:
                orig = param.flat[idx]
                param.flat[idx] = orig + eps
                lp, _ = model.loss_and_grads(x, target)
                param.flat[idx] = orig - eps
                lm, _ = model.loss_and_grads(x, target)
                param.flat[idx] = orig
                numeric = (lp - lm) / (2 * eps)
                assert grads[key].flat[idx] == pytest.approx(
                    numeric, rel=1e-3, abs=1e-6), key

    def test_learns_sum_of_sequence(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(60, 4))
        y = X.sum(axis=1)
        model = LSTMRegressor(input_dim=1, hidden_dim=8, epochs=80, seed=0)
        model.fit(X, y)
        pred = model.predict(X)
        assert np.mean((pred - y) ** 2) < 0.25 * y.var()

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ReproError):
            LSTMRegressor(input_dim=1).predict(np.zeros((1, 3)))

    def test_input_dim_checked(self):
        model = LSTMRegressor(input_dim=2)
        with pytest.raises(ReproError):
            model.fit(np.zeros((4, 3, 3)), np.zeros(4))


class TestGCN:
    def _toy_graph(self, seed=0, n=6):
        rng = np.random.default_rng(seed)
        adj = (rng.uniform(size=(n, n)) < 0.4).astype(float)
        adj = np.triu(adj, 1)
        adj = adj + adj.T
        x = rng.normal(size=(n, 3))
        return adj, x

    def test_normalize_adjacency_rows_bounded(self):
        adj, _ = self._toy_graph()
        a_hat = normalize_adjacency(adj)
        assert np.all(a_hat >= 0)
        assert a_hat.shape == adj.shape
        # symmetric normalization keeps symmetry
        assert np.allclose(a_hat, a_hat.T)

    def test_bad_adjacency_rejected(self):
        with pytest.raises(ReproError):
            normalize_adjacency(np.zeros((2, 3)))

    def test_gradient_check(self):
        model = GCNRegressor(input_dim=3, hidden_dim=4, seed=5)
        adj, x = self._toy_graph(seed=3)
        target = 0.7
        _, grads = model.loss_and_grads(adj, x, target)
        eps = 1e-6
        for key in ("W1", "W2", "w_out", "b_out"):
            param = model.params[key]
            for idx in [0, param.size - 1]:
                orig = param.flat[idx]
                param.flat[idx] = orig + eps
                lp, _ = model.loss_and_grads(adj, x, target)
                param.flat[idx] = orig - eps
                lm, _ = model.loss_and_grads(adj, x, target)
                param.flat[idx] = orig
                numeric = (lp - lm) / (2 * eps)
                assert grads[key].flat[idx] == pytest.approx(
                    numeric, rel=1e-3, abs=1e-6), key

    def test_learns_mean_feature_signal(self):
        rng = np.random.default_rng(4)
        graphs, targets = [], []
        for i in range(40):
            adj, x = self._toy_graph(seed=100 + i)
            graphs.append((adj, x))
            targets.append(float(x[:, 0].mean() * 3.0 + 1.0))
        y = np.array(targets)
        model = GCNRegressor(input_dim=3, hidden_dim=8, epochs=120, seed=0)
        model.fit(graphs, y)
        pred = model.predict(graphs)
        assert np.mean((pred - y) ** 2) < 0.3 * y.var()


class TestMetrics:
    def test_mape_basic(self):
        assert mean_absolute_percentage_error(
            [100.0, 200.0], [110.0, 180.0]) == pytest.approx(10.0)

    def test_mape_rejects_nonpositive_truth(self):
        with pytest.raises(ReproError):
            mean_absolute_percentage_error([0.0], [1.0])

    def test_per_sample_errors(self):
        errs = absolute_percentage_errors([100.0, 50.0], [90.0, 55.0])
        assert np.allclose(errs, [10.0, 10.0])
