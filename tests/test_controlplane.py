"""Tests for the self-healing re-deployment control plane."""

import pytest

from repro.core.controlplane import (
    ControlPlaneConfig,
    DriftDetector,
    DriftSignal,
    PlanLedger,
    PlanRecord,
    RedeploymentControlPlane,
    breaker_brownout_hold,
)
from repro.core.manager import ChironManager
from repro.errors import SchedulingError
from repro.obs import compare
from repro.platforms import ChironPlatform
from repro.workflow import FunctionBehavior, WorkflowBuilder

SLO = 80.0


def fanout(cpu_ms, n=10, name="cp-wf"):
    return (WorkflowBuilder(name)
            .sequential("prep", ("prep", FunctionBehavior.of(
                ("cpu", 2.0), ("io", 3.0))))
            .parallel("fan", [(f"f-{i}", FunctionBehavior.cpu(cpu_ms))
                              for i in range(n)])
            .build())


def breach(latency_ms=200.0):
    return DriftSignal(latency_ms=latency_ms)


# ---------------------------------------------------------------------------
# DriftDetector
# ---------------------------------------------------------------------------

class TestDriftDetector:
    def test_invalid_parameters(self):
        with pytest.raises(SchedulingError):
            DriftDetector(window=1)
        with pytest.raises(SchedulingError):
            DriftDetector(pressure_fraction=0.3, slack_fraction=0.5)
        with pytest.raises(SchedulingError):
            DriftDetector(hysteresis=0)
        with pytest.raises(SchedulingError):
            DriftDetector(error_fraction=0.0)
        with pytest.raises(SchedulingError):
            DriftDetector(fault_share_threshold=1.5)
        with pytest.raises(SchedulingError):
            DriftDetector(flap_limit=0)

    def test_no_decision_until_window_fills(self):
        det = DriftDetector(window=4, hysteresis=1, cooldown=0)
        for _ in range(3):
            assert det.observe(breach(), 100.0) is None  # window not full
        assert det.observe(breach(), 100.0) is not None

    def test_hysteresis_requires_consecutive_breaches(self):
        det = DriftDetector(window=4, hysteresis=2, cooldown=0)
        decisions = [det.observe(breach(), 100.0) for _ in range(5)]
        # window fills at obs 4 (streak 1); obs 5 makes the streak 2
        assert decisions[:4] == [None] * 4
        assert decisions[4] is not None
        assert decisions[4].reason == "slo-pressure"
        assert decisions[4].p99_ms == pytest.approx(200.0)

    def test_cooldown_suppresses_retrips(self):
        det = DriftDetector(window=2, hysteresis=1, cooldown=5)
        first = [det.observe(breach(), 100.0) for _ in range(2)]
        assert first[-1] is not None
        # every one of the next `cooldown` breaching windows is swallowed
        assert all(det.observe(breach(), 100.0) is None for _ in range(5))
        assert det.observe(breach(), 100.0) is not None

    def test_clean_window_resets_the_streak(self):
        det = DriftDetector(window=2, hysteresis=3, cooldown=0)
        # periodic blips: one breach in every 3 observations never makes a
        # 3-streak because the all-clean window in between resets it
        feed = [200.0, 60.0, 60.0] * 6
        assert all(det.observe(breach(l), 100.0) is None for l in feed)

    def test_model_error_reason_without_pressure(self):
        det = DriftDetector(window=2, hysteresis=1, cooldown=0,
                            error_fraction=0.35)
        sig = DriftSignal(latency_ms=50.0, predicted_ms=50.0,
                          model_error_ms=30.0)
        det.observe(sig, 100.0)
        decision = det.observe(sig, 100.0)
        assert decision is not None and decision.reason == "model-error"
        assert decision.model_error_rel == pytest.approx(0.6)

    def test_fault_storm_reason_when_faults_dominate(self):
        det = DriftDetector(window=2, hysteresis=1, cooldown=0)
        sig = DriftSignal(latency_ms=200.0, predicted_ms=60.0,
                          model_error_ms=10.0, fault_induced_ms=90.0)
        det.observe(sig, 100.0)
        decision = det.observe(sig, 100.0)
        assert decision is not None and decision.reason == "fault-storm"
        assert decision.fault_share == pytest.approx(0.9)

    def test_over_provisioned_reason(self):
        det = DriftDetector(window=2, hysteresis=1, cooldown=0,
                            slack_fraction=0.35)
        det.observe(breach(20.0), 100.0)
        decision = det.observe(breach(20.0), 100.0)
        assert decision is not None
        assert decision.reason == "over-provisioned"

    def test_flap_tracking(self):
        det = DriftDetector(window=2, flap_limit=3, flap_window=50)
        assert not det.is_flapping
        for _ in range(3):
            det.note_flip()
        assert det.is_flapping
        det.clear_flips()
        assert not det.is_flapping

    def test_flips_age_out_of_the_flap_window(self):
        det = DriftDetector(window=2, hysteresis=1, cooldown=0,
                            flap_limit=2, flap_window=5)
        det.note_flip()
        det.note_flip()
        assert det.is_flapping
        for _ in range(10):     # advance the observation index past the
            det.observe(breach(60.0), 100.0)  # flap window
        assert not det.is_flapping


# ---------------------------------------------------------------------------
# PlanLedger
# ---------------------------------------------------------------------------

class TestPlanLedger:
    def test_depth_validated(self):
        with pytest.raises(SchedulingError):
            PlanLedger(maxlen=1)

    def test_last_good_skips_rolled_back(self):
        ledger = PlanLedger(maxlen=4)
        assert ledger.current is None and ledger.last_good is None
        ledger.push(PlanRecord("d1", 0, "good"))
        ledger.push(PlanRecord("d2", 5, "probation"))
        assert ledger.current.deployment == "d2"
        assert ledger.last_good.deployment == "d1"
        ledger.current.status = "rolled-back"
        assert ledger.last_good.deployment == "d1"

    def test_bounded_history_evicts_oldest(self):
        ledger = PlanLedger(maxlen=2)
        for i in range(4):
            ledger.push(PlanRecord(f"d{i}", i, "good"))
        assert len(ledger) == 2
        assert [r.deployment for r in ledger.records] == ["d2", "d3"]


# ---------------------------------------------------------------------------
# ControlPlaneConfig
# ---------------------------------------------------------------------------

class TestConfig:
    def test_invalid_knobs_rejected(self):
        with pytest.raises(SchedulingError):
            ControlPlaneConfig(guard_margin=0.0)
        with pytest.raises(SchedulingError):
            ControlPlaneConfig(promote_headroom=1.2)
        with pytest.raises(SchedulingError):
            ControlPlaneConfig(canary_replays=0)
        with pytest.raises(SchedulingError):
            ControlPlaneConfig(probation=0)
        with pytest.raises(SchedulingError):
            ControlPlaneConfig(freeze_for=0)

    def test_detector_factory_forwards_knobs(self):
        cfg = ControlPlaneConfig(window=7, hysteresis=4, cooldown=11)
        det = cfg.detector()
        assert (det.window, det.hysteresis, det.cooldown) == (7, 4, 11)


# ---------------------------------------------------------------------------
# the control plane itself
# ---------------------------------------------------------------------------

def make_plane(**overrides):
    defaults = dict(window=4, hysteresis=2, cooldown=4, probation=6,
                    rollback_budget=2, canary_replays=4, guard_margin=0.05,
                    flap_limit=3, flap_window=100, freeze_for=10)
    defaults.update(overrides)
    manager = ChironManager()
    return RedeploymentControlPlane(manager,
                                    config=ControlPlaneConfig(**defaults))


class TestControlPlane:
    def test_observe_before_deploy_rejected(self):
        with pytest.raises(SchedulingError):
            make_plane().observe(10.0)

    def test_drift_promotes_a_recalibrated_plan(self):
        """Heavier behaviours blow the SLO; the plane recalibrates,
        canaries and promotes a bigger plan, then verifies it."""
        plane = make_plane()
        light, heavy = fanout(5.0), fanout(20.0)
        plane.deploy(light, SLO)
        old_cores = plane.deployment.plan.total_cores
        manager = plane.manager

        promoted = None
        report = None
        for r in range(60):
            platform = ChironPlatform(plane.deployment.plan, manager.cal)
            latency = platform.run(heavy, seed=1_000 + r).latency_ms
            if r % 4 == 0:
                report = compare(plane.deployment.profiled_workflow,
                                 plane.deployment.plan, cal=manager.cal,
                                 predictor=manager.predictor,
                                 runtime_workflow=heavy)
            action = plane.observe(latency, report=report,
                                   current_workflow=heavy)
            if action is not None and action.kind == "promoted":
                promoted = action
                break
        assert promoted is not None
        assert plane.state == "probation"
        assert plane.deployment.plan.total_cores > old_cores
        assert len(plane.ledger) == 2
        assert plane.ledger.current.status == "probation"
        canary = promoted.detail["canary"]
        assert canary.verdict == "promote"
        assert canary.candidate_p99_ms <= SLO

        # probation: the new plan actually serves the heavy workload
        platform = ChironPlatform(plane.deployment.plan, manager.cal)
        for r in range(plane.config.probation):
            latency = platform.run(heavy, seed=5_000 + r).latency_ms
            assert latency <= SLO
            plane.observe(latency, current_workflow=heavy)
        assert plane.state == "steady"
        assert plane.ledger.current.status == "good"
        counters = plane.metrics.counters()
        assert counters["controlplane.promotions"] == 1
        assert counters["controlplane.verified"] == 1

    def test_probation_strikes_roll_back_to_last_known_good(self):
        plane = make_plane(rollback_budget=2, probation=10)
        light, heavy = fanout(5.0), fanout(20.0)
        initial = plane.deploy(light, SLO)
        manager = plane.manager

        # drive an honest promotion first
        report = None
        for r in range(60):
            platform = ChironPlatform(plane.deployment.plan, manager.cal)
            latency = platform.run(heavy, seed=1_000 + r).latency_ms
            if r % 4 == 0:
                report = compare(plane.deployment.profiled_workflow,
                                 plane.deployment.plan, cal=manager.cal,
                                 predictor=manager.predictor,
                                 runtime_workflow=heavy)
            action = plane.observe(latency, report=report,
                                   current_workflow=heavy)
            if action is not None and action.kind == "promoted":
                break
        assert plane.state == "probation"

        # the promoted plan turns out terrible: every request violates
        rolled = None
        for _ in range(plane.config.rollback_budget + 1):
            rolled = plane.observe(400.0)
        assert rolled is not None and rolled.kind == "rolled-back"
        assert rolled.detail["probation_elapsed"] <= plane.config.probation
        assert plane.state == "steady"
        assert plane.deployment is initial
        assert plane.ledger.records[-1].status == "rolled-back"
        assert plane.metrics.counters()["controlplane.rollbacks"] == 1

    def test_no_change_recalibration_is_rejected(self):
        """Noisy latency with undrifted behaviours replans to the identical
        plan — the plane must reject it, not churn the deployment."""
        plane = make_plane()
        light = fanout(5.0)
        deployed = plane.deploy(light, SLO)
        action = None
        for _ in range(20):
            action = plane.observe(200.0)
            if action is not None:
                break
        assert action is not None and action.kind == "rejected"
        assert action.detail["rule"] == "no-change"
        assert plane.deployment is deployed
        assert len(plane.ledger) == 1
        assert plane.metrics.counters()["controlplane.rejections"] == 1

    def test_fault_storm_defers_instead_of_replanning(self):
        from repro.obs.divergence import DivergenceReport

        plane = make_plane()
        plane.deploy(fanout(5.0), SLO)
        stormy = DivergenceReport(
            workflow="cp-wf", predicted_total_ms=60.0,
            measured_total_ms=200.0,
            fault_summary={"wasted_wall_ms": 120.0, "injected": {},
                           "retries": 3, "exhausted": 0,
                           "rerun_work_ms": 80.0})
        action = None
        for _ in range(20):
            action = plane.observe(200.0, report=stormy)
            if action is not None:
                break
        assert action is not None and action.kind == "deferred"
        assert action.reason == "fault-storm"
        assert plane.metrics.counters()["controlplane.deferred"] == 1
        assert "controlplane.recalibrations" not in plane.metrics.counters()

    def test_hold_defers_replans(self):
        plane_holds = {"reason": "breaker-open:sandbox.boot"}
        plane = RedeploymentControlPlane(
            ChironManager(),
            config=ControlPlaneConfig(window=4, hysteresis=2, cooldown=4),
            hold=lambda: plane_holds["reason"])
        plane.deploy(fanout(5.0), SLO)
        action = None
        for _ in range(20):
            action = plane.observe(200.0)
            if action is not None:
                break
        assert action is not None and action.kind == "deferred"
        assert action.reason == "breaker-open:sandbox.boot"

    def test_failed_refresh_keeps_the_incumbent(self, monkeypatch):
        plane = make_plane()
        deployed = plane.deploy(fanout(5.0), SLO)

        def boom(*args, **kwargs):
            raise SchedulingError("cannot meet SLO at any partitioning")

        monkeypatch.setattr(plane.manager, "refresh", boom)
        action = None
        for _ in range(20):
            action = plane.observe(200.0)
            if action is not None:
                break
        assert action is not None and action.kind == "refresh-failed"
        assert plane.deployment is deployed
        counters = plane.metrics.counters()
        assert counters["controlplane.refresh_failed"] == 1
        assert "controlplane.promotions" not in counters

    def test_flapping_freezes_the_plane(self):
        plane = make_plane(freeze_for=8)
        plane.deploy(fanout(5.0), SLO)
        for _ in range(plane.config.flap_limit):
            plane.detector.note_flip()

        action = None
        for _ in range(20):
            action = plane.observe(200.0)
            if action is not None:
                break
        assert action is not None and action.kind == "frozen"
        assert plane.state == "frozen"
        # while frozen, even violating latencies provoke nothing
        frozen_at = action.detail["until"]
        while plane._observations < frozen_at - 1:
            assert plane.observe(300.0) is None
        # after the freeze the plane thaws, clears flip history, and a
        # fresh drifted window can trip again
        for _ in range(20):
            action = plane.observe(300.0)
            if action is not None:
                break
        assert plane.state != "frozen"
        assert action is not None and action.kind != "frozen"
        assert plane.metrics.counters()["controlplane.freezes"] == 1


class TestBreakerBrownoutHold:
    def test_open_breaker_holds(self):
        from types import SimpleNamespace

        from repro.overload.breaker import BreakerState

        breaker = SimpleNamespace(state=BreakerState.OPEN)
        board = SimpleNamespace(_breakers={"sandbox.boot": breaker})
        hold = breaker_brownout_hold(board)
        assert hold() == "breaker-open:sandbox.boot"
        breaker.state = BreakerState.CLOSED
        assert hold() is None

    def test_brownout_holds(self):
        active = {"on": True}
        hold = breaker_brownout_hold(None, lambda: active["on"])
        assert hold() == "brownout"
        active["on"] = False
        assert hold() is None

    def test_no_inputs_never_holds(self):
        assert breaker_brownout_hold()() is None
