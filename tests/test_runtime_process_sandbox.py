"""Tests for SimProcess fork semantics, sandboxes, pools and machines."""

import pytest

from repro.calibration import RuntimeCalibration
from repro.errors import CapacityError, SimulationError
from repro.runtime.cpusched import FluidCPU
from repro.runtime.machine import Cluster, Machine
from repro.runtime.osproc import SimProcess, fork_children
from repro.runtime.pool import ProcessPool
from repro.runtime.sandbox import Sandbox
from repro.runtime.thread import SimThread
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder
from repro.workflow import FunctionBehavior, FunctionSpec

CAL = RuntimeCalibration.native()


def _fn(name, cpu=1.0, io=0.0):
    segs = [("cpu", cpu)] + ([("io", io)] if io else [])
    return FunctionSpec(name=name, behavior=FunctionBehavior.of(*segs))


class TestForkSemantics:
    def test_fork_block_serializes_children(self):
        """Observation 2: child j's startup begins after j serialized forks."""
        env = Environment()
        trace = TraceRecorder()
        cpu = FluidCPU(env, 50)  # ample cores so only fork order matters
        parent = SimProcess(env, name="orch", cpu=cpu, cal=CAL, trace=trace)
        groups = [[_fn(f"f{i}", cpu=0.5)] for i in range(5)]

        def orchestrate(env):
            result = yield from fork_children(env, parent, groups, cal=CAL,
                                              cpu=cpu, trace=trace)
            yield env.all_of(result.done_events)

        env.process(orchestrate(env))
        env.run()
        starts = [trace.spans(entity=f"proc-{j}", kind="startup")[0].start_ms
                  for j in range(5)]
        for j, start in enumerate(starts):
            assert start == pytest.approx((j + 1) * CAL.fork_block_ms, rel=0.01)

    def test_total_latency_matches_eq4_shape(self):
        """Last process latency ~ (n-1)*block + startup + exec (Eq. 4)."""
        env = Environment()
        cpu = FluidCPU(env, 50)
        parent = SimProcess(env, name="orch", cpu=cpu, cal=CAL)
        n = 10
        exec_ms = 0.75
        groups = [[_fn(f"f{i}", cpu=exec_ms)] for i in range(n)]

        def orchestrate(env):
            result = yield from fork_children(env, parent, groups, cal=CAL,
                                              cpu=cpu)
            yield env.all_of(result.done_events)

        env.process(orchestrate(env))
        env.run()
        expected = n * CAL.fork_block_ms + CAL.process_startup_ms + exec_ms
        assert env.now == pytest.approx(expected, rel=0.02)

    def test_children_run_truly_parallel(self):
        """With enough cores, n CPU-bound children overlap completely."""
        env = Environment()
        cpu = FluidCPU(env, 8)
        parent = SimProcess(env, name="orch", cpu=cpu, cal=CAL)
        groups = [[_fn(f"f{i}", cpu=20.0)] for i in range(4)]

        def orchestrate(env):
            result = yield from fork_children(env, parent, groups, cal=CAL,
                                              cpu=cpu)
            yield env.all_of(result.done_events)

        env.process(orchestrate(env))
        env.run()
        # The last child starts after 4 serialized forks + its startup, then
        # all four 20 ms bodies overlap: Eq. 4 with j = n.
        expected = 4 * CAL.fork_block_ms + CAL.process_startup_ms + 20.0
        assert env.now == pytest.approx(expected, rel=0.02)
        assert env.now < 4 * 20.0  # far below serialized execution

    def test_multi_function_group_uses_threads(self):
        env = Environment()
        cpu = FluidCPU(env, 4)
        parent = SimProcess(env, name="orch", cpu=cpu, cal=CAL)
        groups = [[_fn("a", cpu=10.0), _fn("b", cpu=10.0)]]

        def orchestrate(env):
            result = yield from fork_children(env, parent, groups, cal=CAL,
                                              cpu=cpu)
            yield env.all_of(result.done_events)
            return result

        p = env.process(orchestrate(env))
        env.run()
        child = p.value.children[0]
        assert len(child.threads) == 2
        # GIL pseudo-parallelism: both threads' CPU serialized -> >= 20ms
        assert env.now >= 20.0

    def test_run_functions_in_existing_process(self):
        """Faastlane-T style: threads spawned straight into a live process."""
        env = Environment()
        cpu = FluidCPU(env, 4)
        proc = SimProcess(env, name="p", cpu=cpu, cal=CAL)
        fns = [_fn(f"f{i}", cpu=5.0) for i in range(3)]
        env.process(proc.run_functions(fns))
        env.run()
        # thread spawn costs + GIL-serialized 15ms of CPU
        assert env.now == pytest.approx(15.0 + 3 * CAL.thread_startup_ms,
                                        rel=0.05)


class TestSandbox:
    def test_cold_boot_pays_container_start(self):
        env = Environment()
        sb = Sandbox(env, name="sb", cores=1, cal=CAL)

        def boot(env):
            yield from sb.boot(cold=True)

        env.process(boot(env))
        env.run()
        assert env.now == pytest.approx(CAL.sandbox_cold_start_ms)
        assert sb.booted

    def test_warm_boot_free(self):
        env = Environment()
        sb = Sandbox(env, name="sb", cores=1, cal=CAL)

        def boot(env):
            yield from sb.boot(cold=False)

        env.process(boot(env))
        env.run()
        assert env.now == pytest.approx(0.0)

    def test_invalid_cores(self):
        with pytest.raises(SimulationError):
            Sandbox(Environment(), name="sb", cores=0, cal=CAL)

    def test_pool_created_once(self):
        env = Environment()
        sb = Sandbox(env, name="sb", cores=2, cal=CAL)
        pool = sb.init_pool(4)
        assert sb.pool is pool
        with pytest.raises(SimulationError):
            sb.init_pool(4)


class TestProcessPool:
    def test_pool_needs_workers(self):
        env = Environment()
        with pytest.raises(SimulationError):
            ProcessPool(env, workers=0, cpu=FluidCPU(env, 1), cal=CAL)

    def test_true_parallelism_without_gil_contention(self):
        env = Environment()
        cpu = FluidCPU(env, 4)
        pool = ProcessPool(env, workers=4, cpu=cpu, cal=CAL)
        dispatcher = SimThread(env, name="d", cpu=cpu, gil=None, cal=CAL)
        fns = [_fn(f"f{i}", cpu=20.0) for i in range(4)]

        def run(env):
            events = yield from pool.map(dispatcher, fns)
            yield env.all_of(events)

        env.process(run(env))
        env.run()
        # 4 dispatches (0.5ms each, serialized) + parallel 20ms
        assert env.now == pytest.approx(20.0 + 4 * CAL.pool_dispatch_ms,
                                        rel=0.05)
        assert pool.completed == 4

    def test_tasks_queue_for_free_workers(self):
        env = Environment()
        cpu = FluidCPU(env, 8)
        pool = ProcessPool(env, workers=2, cpu=cpu, cal=CAL)
        dispatcher = SimThread(env, name="d", cpu=cpu, gil=None, cal=CAL)
        fns = [_fn(f"f{i}", cpu=10.0) for i in range(4)]

        def run(env):
            events = yield from pool.map(dispatcher, fns)
            yield env.all_of(events)

        env.process(run(env))
        env.run()
        # two waves of 10ms each
        assert env.now >= 20.0

    def test_longest_first_ordering(self):
        env = Environment()
        cpu = FluidCPU(env, 8)
        pool = ProcessPool(env, workers=1, cpu=cpu, cal=CAL)
        dispatcher = SimThread(env, name="d", cpu=cpu, gil=None, cal=CAL)
        short, long_ = _fn("short", cpu=1.0), _fn("long", cpu=30.0)
        finish = {}

        def run(env):
            events = yield from pool.map(dispatcher, [short, long_],
                                         longest_first=True)
            for name, ev in zip(["long", "short"], events):
                ev.callbacks.append(
                    lambda _e, n=name: finish.setdefault(n, env.now))
            yield env.all_of(events)

        env.process(run(env))
        env.run()
        assert finish["long"] < finish["short"]

    def test_pool_memory_accounting(self):
        env = Environment()
        pool = ProcessPool(env, workers=5, cpu=FluidCPU(env, 1), cal=CAL)
        assert pool.memory_mb == pytest.approx(5 * CAL.pool_worker_memory_mb)


class TestMachines:
    def test_allocate_and_release(self):
        m = Machine("n", cores=4, memory_mb=1000)
        alloc = m.allocate(2, 300)
        assert m.cores_free == 2 and m.memory_free_mb == 700
        alloc.release()
        assert m.cores_free == 4 and m.memory_free_mb == 1000
        alloc.release()  # idempotent
        assert m.cores_free == 4

    def test_over_allocation_raises(self):
        m = Machine("n", cores=2, memory_mb=100)
        with pytest.raises(CapacityError):
            m.allocate(3, 10)
        with pytest.raises(CapacityError):
            m.allocate(1, 200)

    def test_negative_request_raises(self):
        with pytest.raises(CapacityError):
            Machine("n", cores=2, memory_mb=100).allocate(-1, 10)

    def test_cluster_first_fit_spills_to_next_node(self):
        cluster = Cluster(nodes=2, cores_per_node=4, memory_per_node_mb=100)
        a1 = cluster.place(3, 50)
        a2 = cluster.place(3, 50)
        assert a1.machine.name != a2.machine.name

    def test_cluster_exhaustion_raises(self):
        cluster = Cluster(nodes=1, cores_per_node=1, memory_per_node_mb=10)
        cluster.place(1, 5)
        with pytest.raises(CapacityError):
            cluster.place(1, 5)

    def test_cluster_totals(self):
        cluster = Cluster(nodes=2, cores_per_node=4, memory_per_node_mb=100)
        cluster.place(1, 30)
        assert cluster.total_cores_free == pytest.approx(7)
        assert cluster.total_memory_free_mb == pytest.approx(170)
