"""Unit tests for simcore resources, stores, and the trace recorder."""

import pytest

from repro.errors import SimulationError
from repro.simcore import Environment, Resource, Store
from repro.simcore.monitor import Span, TraceRecorder


class TestResource:
    def test_capacity_validated(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_serializes_beyond_capacity(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(env, name):
            with res.request() as req:
                yield req
                log.append((name, "in", env.now))
                yield env.timeout(5.0)
            log.append((name, "out", env.now))

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert log == [
            ("a", "in", pytest.approx(0.0)),
            ("a", "out", pytest.approx(5.0)),
            ("b", "in", pytest.approx(5.0)),
            ("b", "out", pytest.approx(10.0)),
        ]

    def test_parallel_within_capacity(self):
        env = Environment()
        res = Resource(env, capacity=3)
        done = []

        def user(env, name):
            with res.request() as req:
                yield req
                yield env.timeout(4.0)
            done.append((name, env.now))

        for name in "abc":
            env.process(user(env, name))
        env.run()
        assert all(t == pytest.approx(4.0) for _, t in done)

    def test_count_and_queue_len(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10.0)

        def waiter(env):
            with res.request() as req:
                yield req

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1.0)
        assert res.count == 1
        assert res.queue_len == 1

    def test_priority_grants_lowest_first(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)

        def user(env, name, prio):
            yield env.timeout(0.1)  # arrive after the holder
            with res.request(priority=prio) as req:
                yield req
                order.append(name)
                yield env.timeout(0.5)

        env.process(holder(env))
        env.process(user(env, "low-prio-number", 0))
        env.process(user(env, "high-prio-number", 5))
        env.process(user(env, "mid", 2))
        env.run()
        assert order == ["low-prio-number", "mid", "high-prio-number"]

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        def impatient(env):
            req = res.request()
            yield env.timeout(1.0)
            res.release(req)  # cancel before grant
            return "gave up"

        env.process(holder(env))
        p = env.process(impatient(env))
        env.run()
        assert p.value == "gave up"
        assert res.queue_len == 0


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def producer(env):
            yield store.put("x")

        def consumer(env):
            item = yield store.get()
            return item

        env.process(producer(env))
        p = env.process(consumer(env))
        env.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (item, env.now)

        def producer(env):
            yield env.timeout(6.0)
            yield store.put("late")

        p = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert p.value == ("late", pytest.approx(6.0))

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put(1)
            log.append(("put1", env.now))
            yield store.put(2)
            log.append(("put2", env.now))

        def consumer(env):
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("put1", pytest.approx(0.0)), ("put2", pytest.approx(3.0))]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for i in range(3):
                yield store.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store(Environment(), capacity=0)


class TestTraceRecorder:
    def test_record_and_filter(self):
        rec = TraceRecorder()
        rec.record("f1", "exec", 0.0, 5.0)
        rec.record("f1", "block", 5.0, 8.0)
        rec.record("f2", "exec", 1.0, 2.0)
        assert len(rec) == 3
        assert rec.total("exec") == pytest.approx(6.0)
        assert rec.total("exec", entity="f2") == pytest.approx(1.0)
        assert rec.entities() == ["f1", "f2"]

    def test_bad_span_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            rec.record("f1", "exec", 5.0, 2.0)

    def test_span_duration(self):
        span = Span("e", "exec", 1.0, 4.5)
        assert span.duration_ms == pytest.approx(3.5)

    def test_gantt_renders_all_entities(self):
        rec = TraceRecorder()
        rec.record("alpha", "startup", 0.0, 2.0)
        rec.record("alpha", "exec", 2.0, 10.0)
        rec.record("beta", "block", 3.0, 7.0)
        chart = rec.gantt(width=40)
        assert "alpha" in chart and "beta" in chart
        assert "#" in chart and "." in chart and "s" in chart

    def test_gantt_empty(self):
        assert TraceRecorder().gantt() == "(no spans)"
