"""Golden-trace regression tests.

A full event-sequence snapshot of FINRA-5 on Faastlane catches *semantic*
runtime drift — reordered forks, changed GIL handoff points, shifted span
boundaries — that aggregate latency assertions would miss.  The two variants
pin down both execution modes: ``native`` forks one process per parallel
function, ``T`` runs everything as GIL-sharing threads.

Regenerate after intentional runtime changes with ``pytest --update-goldens``
and review the JSON diff.
"""

import pytest

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.obs import Tracer
from repro.platforms import FaastlanePlatform

CAL = RuntimeCalibration.native()


def canonical(tracer):
    """A stable, diff-friendly projection of one trace.

    Spans are sorted by (start, entity, name) so recording-order churn that
    does not change the timeline does not invalidate goldens; timestamps are
    rounded to 1 ns to absorb float formatting noise.  ``fault_schema``,
    ``overload_schema``, ``lifecycle_schema``, ``pgp_schema`` and
    ``search_schema`` pin the typed fault/retry, overload and
    sandbox-lifecycle event/counter vocabularies plus the
    prediction-engine and plan-search counter names: adding a mechanism
    invalidates the golden loudly instead of slipping in unreviewed.
    """
    from repro.core.controlplane import (CONTROLPLANE_COUNTERS,
                                         CONTROLPLANE_EVENT_TYPES)
    from repro.core.ha import HA_COUNTERS, HA_EVENT_TYPES
    from repro.core.predictor import PGP_COUNTERS
    from repro.core.search import SEARCH_COUNTERS, SEARCH_EVENT_TYPES
    from repro.faults import (CHAOS_COUNTERS, CHAOS_EVENT_TYPES,
                              FAULT_EVENT_TYPES)
    from repro.fleet import FLEET_COUNTERS, FLEET_EVENT_TYPES
    from repro.lifecycle import LIFECYCLE_COUNTERS, LIFECYCLE_EVENT_TYPES
    from repro.overload import OVERLOAD_COUNTERS, OVERLOAD_EVENT_TYPES

    spans = sorted(
        [s.entity, str(s.tags.get("op", s.kind)),
         round(s.start_ms, 6), round(s.end_ms, 6)]
        for s in tracer)
    events = sorted(
        [e.entity, e.name, round(e.ts_ms, 6)]
        for e in tracer.events)
    return {"spans": spans, "events": events,
            "fault_schema": sorted(FAULT_EVENT_TYPES),
            "overload_schema": sorted(OVERLOAD_EVENT_TYPES
                                      + OVERLOAD_COUNTERS),
            "lifecycle_schema": sorted(LIFECYCLE_EVENT_TYPES
                                       + LIFECYCLE_COUNTERS),
            "pgp_schema": sorted(PGP_COUNTERS),
            "search_schema": sorted(SEARCH_EVENT_TYPES + SEARCH_COUNTERS),
            "controlplane_schema": sorted(CONTROLPLANE_EVENT_TYPES
                                          + CONTROLPLANE_COUNTERS),
            "chaos_schema": sorted(CHAOS_EVENT_TYPES + CHAOS_COUNTERS),
            "ha_schema": sorted(HA_EVENT_TYPES + HA_COUNTERS),
            "fleet_schema": sorted(FLEET_EVENT_TYPES + FLEET_COUNTERS)}


@pytest.mark.parametrize("variant", ["native", "T"])
def test_finra5_event_sequence_matches_golden(variant, golden):
    wf = finra(5)
    tracer = Tracer()
    FaastlanePlatform(CAL, variant=variant).run(wf, tracer=tracer)
    golden(f"finra5_faastlane_{variant}", canonical(tracer))


def test_variants_actually_differ():
    """Sanity: the two goldens cannot silently collapse into one."""
    wf = finra(5)
    traces = {}
    for variant in ("native", "T"):
        tracer = Tracer()
        FaastlanePlatform(CAL, variant=variant).run(wf, tracer=tracer)
        traces[variant] = canonical(tracer)
    assert traces["native"] != traces["T"]
    native_ops = {s[1] for s in traces["native"]["spans"]}
    thread_ops = {s[1] for s in traces["T"]["spans"]}
    assert "fork" in native_ops          # parallel stage forks processes
    assert "fork" not in thread_ops      # threads-only variant never forks


class TestGoldenFailureMessages:
    """A stale golden must tell the developer how to refresh it."""

    @pytest.fixture(autouse=True)
    def _skip_when_updating(self, request):
        if request.config.getoption("--update-goldens"):
            pytest.skip("failure-message tests would write junk goldens")

    def test_mismatch_mentions_update_flag(self, golden):
        with pytest.raises(AssertionError, match="--update-goldens"):
            golden("finra5_faastlane_native", {"spans": [], "events": [],
                                               "fault_schema": [],
                                               "overload_schema": [],
                                               "lifecycle_schema": [],
                                               "pgp_schema": [],
                                               "search_schema": [],
                                               "controlplane_schema": [],
                                               "chaos_schema": [],
                                               "ha_schema": [],
                                               "fleet_schema": []})

    def test_missing_golden_mentions_update_flag(self, golden):
        with pytest.raises(AssertionError, match="--update-goldens"):
            golden("no_such_golden_file", {"anything": 1})
