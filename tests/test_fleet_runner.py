"""Fleet runner: degenerate identity, chaos, accounting, observability."""

import pytest

from repro.cluster.fleetsim import (
    FleetScenario,
    simulate_des,
    simulate_vectorized,
)
from repro.core.search import SearchOptions
from repro.errors import SimulationError
from repro.faults.domains import ChaosPlan
from repro.fleet import (
    FLEET_COUNTERS,
    FLEET_EVENT_TYPES,
    FleetPlacer,
    PlacementPlan,
    compile_fleet,
    fleet_from_scenario,
    run_fleet,
    synth_fleet,
)
from repro.obs.metrics import Registry
from repro.obs.tracer import Tracer


@pytest.fixture(scope="module")
def fleet():
    spec = synth_fleet(tenants=2, workloads_per_tenant=2,
                       requests_per_stream=200, rps=30.0, seed=3)
    return compile_fleet(spec)


@pytest.fixture(scope="module")
def placement(fleet):
    plan = FleetPlacer(fleet).anneal(SearchOptions(budget=300, seed=0))
    plan.validate(fleet)
    return plan


# -- satellite 3: the degenerate fleet is bit-identical to the kernel -------

def test_single_unit_fleet_bit_identical_to_kernel_pipelines():
    scenario = FleetScenario(servers=6, rps=50.0, requests=2_000, seed=3)
    fleet = fleet_from_scenario(scenario)
    placement = PlacementPlan(assignment=(0,), method="manual",
                              cost=0.0, breakdown={})
    report = run_fleet(fleet, placement)
    des = simulate_des(scenario)
    vec = simulate_vectorized(scenario)
    assert des.quality_fields() == vec.quality_fields()
    assert report.quality_fields() == vec.quality_fields()  # bit-exact


def test_degenerate_fleet_has_no_remote_traffic():
    fleet = fleet_from_scenario(
        FleetScenario(servers=2, rps=20.0, requests=100, seed=1))
    report = run_fleet(fleet, PlacementPlan(assignment=(0,),
                                            method="manual", cost=0.0,
                                            breakdown={}))
    assert report.cross_machine_traffic == 0.0
    assert report.cross_zone_traffic == 0.0
    assert report.machines_used == 1
    assert report.disrupted == 0


# -- deterministic execution ------------------------------------------------

def test_run_fleet_bit_deterministic(fleet, placement):
    a = run_fleet(fleet, placement)
    b = run_fleet(fleet, placement)
    assert a.quality_fields() == b.quality_fields()
    assert a.fleet_fields() == b.fleet_fields()
    assert a.jobs == b.jobs


def test_run_fleet_bit_deterministic_under_chaos(fleet, placement):
    machine = fleet.machines[placement.assignment[0]]
    chaos = (ChaosPlan(seed=1).kill(machine.name, 50.0, 2_000.0)
             .compile(fleet.topology))
    a = run_fleet(fleet, placement, chaos=chaos)
    b = run_fleet(fleet, placement, chaos=chaos)
    assert a.quality_fields() == b.quality_fields()
    assert a.disrupted == b.disrupted > 0
    # the outage only ever delays work: sojourns cannot improve
    clean = run_fleet(fleet, placement)
    assert a.sojourn.mean_ms >= clean.sojourn.mean_ms
    assert a.goodput_fraction <= clean.goodput_fraction


def test_chaos_outside_the_run_window_disrupts_nothing(fleet, placement):
    machine = fleet.machines[placement.assignment[0]]
    chaos = (ChaosPlan(seed=1).kill(machine.name, 1e12, 1_000.0)
             .compile(fleet.topology))
    report = run_fleet(fleet, placement, chaos=chaos)
    assert report.disrupted == 0
    assert (report.quality_fields()
            == run_fleet(fleet, placement).quality_fields())


# -- accounting -------------------------------------------------------------

def test_per_tenant_accounting_sums_to_fleet_totals(fleet, placement):
    report = run_fleet(fleet, placement)
    assert report.completed == fleet.spec.total_requests
    assert sum(t.requests for t in report.per_tenant.values()) \
        == report.completed
    assert sum(t.good for t in report.per_tenant.values()) \
        == round(report.goodput_fraction * report.completed)
    assert 0.0 < report.fairness_jain <= 1.0
    assert 0.0 < report.packing_fraction <= 1.0
    for tenant in report.per_tenant.values():
        assert 0.0 <= tenant.goodput_fraction <= 1.0
        assert tenant.demand_cores > 0.0


def test_placement_must_cover_the_fleet(fleet):
    with pytest.raises(SimulationError):
        run_fleet(fleet, PlacementPlan(assignment=(0,), method="manual",
                                       cost=0.0, breakdown={}))


# -- satellite 6: the fleet.* observability surface -------------------------

def test_fleet_counters_and_events_match_the_pinned_schema(fleet):
    registry = Registry()
    tracer = Tracer()
    placer = FleetPlacer(fleet, registry=registry, tracer=tracer)
    plan = placer.anneal(SearchOptions(budget=100, seed=0))
    run_fleet(fleet, plan, registry=registry, tracer=tracer)
    seen_counters = {name for name in registry.counters()
                     if name.startswith("fleet.")}
    assert seen_counters == set(FLEET_COUNTERS)
    seen_events = {e.name for e in tracer.events
                   if e.name.startswith("fleet.")}
    assert seen_events == set(FLEET_EVENT_TYPES)
