"""Machine allocation invariants and the failure-domain layer (PR 8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityError, SimulationError
from repro.faults.domains import (ChaosEvent, ChaosPlan, FleetState,
                                  Topology)
from repro.faults.registry import (is_registered, mechanism_names,
                                   mechanism_spec, register_mechanism)
from repro.runtime.machine import Cluster, Machine


# ---------------------------------------------------------------------------
# Machine allocation accounting
# ---------------------------------------------------------------------------

def test_allocate_release_roundtrip():
    m = Machine("m", cores=4, memory_mb=1024)
    a = m.allocate(2, 512)
    assert m.cores_used == 2 and m.memory_used_mb == 512
    a.release()
    assert m.cores_used == 0.0 and m.memory_used_mb == 0.0


def test_double_release_is_safe_noop():
    m = Machine("m", cores=4, memory_mb=1024)
    a = m.allocate(2, 512)
    b = m.allocate(1, 256)
    a.release()
    a.release()  # must not free b's share
    assert m.cores_used == 1 and m.memory_used_mb == 256
    b.release()
    assert m.cores_used == 0.0


def test_overfree_raises_naming_machine():
    from repro.runtime.machine import Allocation

    m = Machine("worker-7", cores=4, memory_mb=1024)
    m.allocate(1, 128)
    rogue = Allocation(m, 3.0, 999.0, epoch=m.epoch)
    with pytest.raises(CapacityError, match="worker-7"):
        rogue.release()


def test_allocate_when_full_raises_naming_machine():
    m = Machine("worker-3", cores=2, memory_mb=512)
    m.allocate(2, 512)
    with pytest.raises(CapacityError, match="worker-3"):
        m.allocate(1, 1)


def test_allocate_on_dead_machine_raises():
    m = Machine("m", cores=2, memory_mb=512)
    m.fail(at_ms=10.0)
    with pytest.raises(CapacityError, match="down"):
        m.allocate(1, 1)
    assert m.failed_at == 10.0 and m.crash_count == 1


def test_negative_request_rejected():
    m = Machine("m")
    with pytest.raises(CapacityError):
        m.allocate(-1, 10)
    with pytest.raises(CapacityError):
        m.allocate(1, -10)


def test_float_drift_clamped_to_zero():
    m = Machine("m", cores=1, memory_mb=100)
    allocs = [m.allocate(0.1, 10.0) for _ in range(10)]
    for a in allocs:
        a.release()
    # 10 x 0.1 does not sum to 1.0 in floats; the clamp erases the residue
    assert m.cores_used == 0.0 and m.memory_used_mb == 0.0


def test_stale_epoch_release_is_noop_after_recovery():
    m = Machine("m", cores=4, memory_mb=1024)
    old = m.allocate(2, 512)
    m.fail(at_ms=5.0)
    m.recover(at_ms=6.0)
    fresh = m.allocate(3, 700)
    old.release()  # died with the crash; must not free fresh capacity
    assert m.cores_used == 3 and m.memory_used_mb == 700
    fresh.release()
    assert m.cores_used == 0.0


def test_fail_recover_idempotent():
    m = Machine("m")
    m.fail(1.0)
    m.fail(2.0)  # already dead: no double count
    assert m.crash_count == 1 and m.failed_at == 1.0
    m.recover(3.0)
    m.recover(4.0)
    assert m.epoch == 1 and m.alive


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["alloc", "release", "fail",
                                           "recover"]),
                          st.floats(0.0, 2.0),
                          st.floats(0.0, 300.0)),
                max_size=40))
def test_machine_invariants_under_random_ops(ops):
    """No allocate/release/fail/recover sequence breaks the accounting."""
    m = Machine("prop", cores=4, memory_mb=1024)
    live = []
    for kind, cores, mem in ops:
        if kind == "alloc":
            try:
                live.append(m.allocate(cores, mem))
            except CapacityError:
                pass
        elif kind == "release" and live:
            # deterministic pick keyed off the op's floats
            live.pop(int(cores * 7 + mem) % len(live)).release()
        elif kind == "fail":
            m.fail()
        elif kind == "recover":
            m.recover()
        assert 0.0 <= m.cores_used <= m.cores + 1e-9
        assert 0.0 <= m.memory_used_mb <= m.memory_mb + 1e-9
    for a in live:
        a.release()  # stale-epoch ones are no-ops, fresh ones free
        a.release()  # and double release never corrupts
    if m.alive:
        assert 0.0 <= m.cores_used <= m.cores + 1e-9


def test_cluster_place_skips_dead_machines():
    c = Cluster(nodes=2, cores_per_node=2, memory_per_node_mb=512)
    c.machines[0].fail()
    a = c.place(1, 100)
    assert a.machine is c.machines[1]
    assert c.live_machines == [c.machines[1]]
    c.machines[1].allocate(1, 412)
    with pytest.raises(CapacityError, match="no live node"):
        c.place(1, 200)


# ---------------------------------------------------------------------------
# topology
# ---------------------------------------------------------------------------

def test_grid_topology_names_and_members():
    topo = Topology.grid(zones=2, racks_per_zone=2, machines_per_rack=2)
    assert len(topo.machines) == 8
    assert topo.zones == ("z0", "z1")
    assert "z0/r1" in topo.racks
    assert topo.members("zone:z1") == ("z1/r0/m0", "z1/r0/m1",
                                       "z1/r1/m0", "z1/r1/m1")
    assert topo.members("rack:z0/r0") == ("z0/r0/m0", "z0/r0/m1")
    assert topo.members("z0/r1/m0") == ("z0/r1/m0",)


def test_topology_unknown_targets_raise_listing_known():
    topo = Topology.grid(zones=1, racks_per_zone=1, machines_per_rack=1)
    with pytest.raises(SimulationError, match="unknown zone"):
        topo.members("zone:z9")
    with pytest.raises(SimulationError, match="unknown rack"):
        topo.members("rack:z0/r9")
    with pytest.raises(SimulationError, match="unknown machine"):
        topo.members("nope")
    with pytest.raises(SimulationError, match="duplicate"):
        Topology([Machine("a"), Machine("a")])


# ---------------------------------------------------------------------------
# chaos plans: determinism and interval math
# ---------------------------------------------------------------------------

def _stochastic_plan(seed):
    return ChaosPlan(seed=seed, duration_ms=120_000.0,
                     machine_crash_rate_per_min=2.0,
                     machine_downtime_ms=4_000.0)


def test_same_plan_same_seed_identical_schedule():
    events_a = _stochastic_plan(11).compile(
        Topology.grid(zones=2, racks_per_zone=2, machines_per_rack=2)).events
    events_b = _stochastic_plan(11).compile(
        Topology.grid(zones=2, racks_per_zone=2, machines_per_rack=2)).events
    assert events_a == events_b
    assert len(events_a) > 0


def test_different_seed_different_schedule():
    topo = lambda: Topology.grid(zones=2, racks_per_zone=2,  # noqa: E731
                                 machines_per_rack=2)
    assert (_stochastic_plan(11).compile(topo()).events
            != _stochastic_plan(12).compile(topo()).events)


def test_plan_builders_are_pure():
    base = ChaosPlan(seed=3, duration_ms=1_000.0)
    killed = base.kill("z0/r0/m0", 100.0, 50.0)
    assert base.is_null and base.scheduled == ()
    assert not killed.is_null and len(killed.scheduled) == 1


def test_plan_validation():
    with pytest.raises(SimulationError):
        ChaosPlan(seed=-1)
    with pytest.raises(SimulationError):
        ChaosPlan(duration_ms=0)
    with pytest.raises(SimulationError):
        ChaosPlan(machine_crash_rate_per_min=-0.1)
    with pytest.raises(SimulationError):
        ChaosEvent(10.0, "sandbox.crash", "m")  # not machine-scale


def test_schedule_down_and_cut_intervals():
    topo = Topology.grid(zones=2, racks_per_zone=1, machines_per_rack=1)
    plan = (ChaosPlan(seed=0, duration_ms=10_000.0)
            .kill("z0/r0/m0", 1_000.0, 2_000.0)
            .partition("zone:z1", 4_000.0, 1_000.0))
    sched = plan.compile(topo)
    assert sched.down_intervals("z0/r0/m0") == ((1_000.0, 3_000.0),)
    assert sched.is_down("z0/r0/m0", 1_500.0)
    assert not sched.is_down("z0/r0/m0", 3_000.0)
    assert sched.next_up("z0/r0/m0", 2_000.0) == 3_000.0
    # the partition cuts exactly the cross-zone path, not same-machine
    assert sched.cut_intervals("z0/r0/m0", "z1/r0/m0") == ((4_000.0,
                                                            5_000.0),)
    assert sched.cut_intervals("z1/r0/m0", "z1/r0/m0") == ()
    hit = sched.interruptions(["z0/r0/m0"], 0.0, 10_000.0)
    assert hit == (1_000.0, "down", "z0/r0/m0")


def test_open_ended_crash_runs_to_recover_or_horizon():
    topo = Topology.grid(zones=1, racks_per_zone=1, machines_per_rack=2)
    plan = (ChaosPlan(seed=0, duration_ms=10_000.0)
            .with_event(ChaosEvent(1_000.0, "machine.crash", "z0/r0/m0"))
            .with_event(ChaosEvent(6_000.0, "machine.recover", "z0/r0/m0"))
            .with_event(ChaosEvent(2_000.0, "machine.crash", "z0/r0/m1")))
    sched = plan.compile(topo)
    assert sched.down_intervals("z0/r0/m0") == ((1_000.0, 6_000.0),)
    assert sched.down_intervals("z0/r0/m1") == ((2_000.0, 10_000.0),)


# ---------------------------------------------------------------------------
# fleet state
# ---------------------------------------------------------------------------

def test_fleet_state_applies_events_and_counts():
    topo = Topology.grid(zones=2, racks_per_zone=1, machines_per_rack=1)
    plan = (ChaosPlan(seed=0, duration_ms=20_000.0)
            .kill("z0/r0/m0", 1_000.0, 2_000.0)
            .partition("zone:z1", 5_000.0, 3_000.0))
    fleet = FleetState(plan.compile(topo))
    seen = []
    fleet.subscribe(lambda ev: seen.append(ev.mechanism))

    fleet.advance(1_500.0)
    assert not fleet.up("z0/r0/m0") and fleet.machines_down == 1
    # windowed crash splices its own recovery into the pending tail
    fleet.advance(6_000.0)
    assert fleet.up("z0/r0/m0") and fleet.machines_down == 0
    assert not fleet.reachable("z0/r0/m0", "z1/r0/m0")
    assert fleet.reachable("z1/r0/m0", "z1/r0/m0")
    fleet.advance(9_000.0)
    assert fleet.reachable("z0/r0/m0", "z1/r0/m0")
    assert (fleet.crashes, fleet.recoveries, fleet.partitions) == (1, 1, 1)
    assert seen == ["machine.crash", "machine.recover", "net.partition"]
    with pytest.raises(SimulationError, match="backwards"):
        fleet.advance(1_000.0)


def test_fleet_metrics_counters():
    topo = Topology.grid(zones=1, racks_per_zone=1, machines_per_rack=1)
    plan = ChaosPlan(seed=0, duration_ms=5_000.0).kill(
        "z0/r0/m0", 100.0, 200.0)
    fleet = FleetState(plan.compile(topo))
    fleet.advance(5_000.0)
    counters = fleet.metrics.counters()
    assert counters["chaos.machine.crashes"] == 1
    assert counters["chaos.machine.recoveries"] == 1


def test_one_schedule_drives_independent_replays():
    """FleetState must not mutate the compiled schedule's event list."""
    topo = Topology.grid(zones=1, racks_per_zone=1, machines_per_rack=1)
    sched = ChaosPlan(seed=0, duration_ms=5_000.0).kill(
        "z0/r0/m0", 100.0, 200.0).compile(topo)
    before = sched.events
    FleetState(sched).advance(5_000.0)
    assert sched.events == before
    topo.machine("z0/r0/m0").recover()
    fleet2 = FleetState(sched)
    fleet2.advance(5_000.0)
    assert fleet2.crashes == 1 and fleet2.recoveries == 1


# ---------------------------------------------------------------------------
# machine health: quarantine and drain
# ---------------------------------------------------------------------------

def test_health_monitor_quarantines_crash_looper():
    from repro.core.controlplane import MachineHealthMonitor

    topo = Topology.grid(zones=1, racks_per_zone=1, machines_per_rack=2)
    mon = MachineHealthMonitor(topo)
    assert mon.observe(ChaosEvent(1_000.0, "machine.crash",
                                  "z0/r0/m0", 100.0)) == []
    actions = mon.observe(ChaosEvent(30_000.0, "machine.crash",
                                     "z0/r0/m0", 100.0))
    assert ("quarantine", "z0/r0/m0") in actions
    assert not mon.schedulable("z0/r0/m0")
    topo.machine("z0/r0/m0").recover()
    assert not mon.schedulable("z0/r0/m0")  # quarantine outlives recovery
    mon.release("z0/r0/m0")
    assert mon.schedulable("z0/r0/m0")


def test_health_monitor_drains_rack_of_quarantined_machines():
    from repro.core.controlplane import MachineHealthMonitor

    topo = Topology.grid(zones=1, racks_per_zone=2, machines_per_rack=2)
    mon = MachineHealthMonitor(topo)
    # two crashes each for both machines of rack z0/r0
    for name in ("z0/r0/m0", "z0/r0/m1"):
        mon.observe(ChaosEvent(1_000.0, "machine.crash", name, 10.0))
        actions = mon.observe(ChaosEvent(2_000.0, "machine.crash", name,
                                         10.0))
    assert ("drain", "z0/r0") in actions
    assert mon.drained_racks == {"z0/r0"}
    for m in topo.machines:
        m.recover()
    # the drained rack is untrusted even for machines never quarantined
    assert not mon.schedulable("z0/r0/m0")
    assert mon.schedulable("z0/r1/m0")
    assert {m.name for m in mon.candidates()} == {"z0/r1/m0", "z0/r1/m1"}
    mon.release("z0/r0/m0")
    assert "z0/r0" not in mon.drained_racks


def test_health_monitor_crash_window_expires():
    from repro.core.controlplane import (MachineHealthConfig,
                                         MachineHealthMonitor)

    topo = Topology.grid(zones=1, racks_per_zone=1, machines_per_rack=1)
    mon = MachineHealthMonitor(topo, MachineHealthConfig(
        crash_threshold=2, crash_window_ms=10_000.0))
    mon.observe(ChaosEvent(0.0, "machine.crash", "z0/r0/m0", 10.0))
    # second crash far outside the window: not a crash loop
    assert mon.observe(ChaosEvent(50_000.0, "machine.crash", "z0/r0/m0",
                                  10.0)) == []
    assert mon.quarantined == set()


# ---------------------------------------------------------------------------
# mechanism registry
# ---------------------------------------------------------------------------

def test_machine_mechanisms_registered():
    for name in ("machine.crash", "machine.recover", "domain.outage",
                 "net.partition"):
        assert is_registered(name)
        assert mechanism_spec(name).name == name
    assert mechanism_spec("net.partition").rate_attr == "net_partition_rate"


def test_unknown_mechanism_raises_listing_names():
    with pytest.raises(SimulationError, match="machine.crash"):
        mechanism_spec("volcano.eruption")


def test_registry_idempotent_but_conflict_raises():
    spec = mechanism_spec("machine.crash")
    again = register_mechanism("machine.crash", doc=spec.doc)
    assert again is spec
    with pytest.raises(SimulationError, match="different spec"):
        register_mechanism("machine.crash", doc="something else entirely")
    with pytest.raises(SimulationError, match="lowercase"):
        register_mechanism("Machine.Crash")
    assert "machine.crash" in mechanism_names()
