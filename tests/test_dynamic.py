"""Tests for dynamic DAGs (the §7 Video-FFmpeg scenario, our extension)."""

import pytest

from repro.apps import video_ffmpeg
from repro.core.dynamic import DynamicChironManager, DynamicChironPlatform
from repro.errors import DeploymentError, WorkflowError
from repro.workflow import FunctionBehavior, FunctionSpec, Stage
from repro.workflow.dynamic import (
    Branch,
    DynamicWorkflow,
    probabilistic_selector,
)


def _stage(name, *fns):
    return Stage(name, [FunctionSpec(n, FunctionBehavior.cpu(d))
                        for n, d in fns])


def simple_dynamic():
    return DynamicWorkflow(
        "dyn",
        prefix=(_stage("in", ("ingest", 2.0)),),
        branches=(
            Branch("heavy", (_stage("h", ("h-0", 20.0), ("h-1", 20.0)),)),
            Branch("light", (_stage("l", ("l-0", 1.0),),)),
        ),
        suffix=(_stage("out", ("respond", 1.0)),))


class TestDynamicWorkflow:
    def test_variants_flatten_correctly(self):
        dwf = simple_dynamic()
        heavy = dwf.variant("heavy")
        assert [s.name for s in heavy.stages] == ["in", "h", "out"]
        assert heavy.num_functions == 4
        light = dwf.variant("light")
        assert light.num_functions == 3

    def test_variant_names_are_distinct(self):
        dwf = simple_dynamic()
        names = {v.name for v in dwf.variants().values()}
        assert names == {"dyn#heavy", "dyn#light"}

    def test_max_parallelism_spans_branches(self):
        assert simple_dynamic().max_parallelism == 2

    def test_unknown_branch_rejected(self):
        with pytest.raises(WorkflowError):
            simple_dynamic().variant("ghost")

    def test_duplicate_branch_names_rejected(self):
        b = Branch("x", (_stage("s", ("f", 1.0)),))
        b2 = Branch("x", (_stage("s2", ("g", 1.0)),))
        with pytest.raises(WorkflowError):
            DynamicWorkflow("d", prefix=(), branches=(b, b2))

    def test_duplicate_function_across_prefix_and_branch_rejected(self):
        # variant flattening must surface name collisions
        with pytest.raises(WorkflowError):
            DynamicWorkflow(
                "d",
                prefix=(_stage("p", ("same", 1.0)),),
                branches=(Branch("b", (_stage("s", ("same", 1.0)),)),))

    def test_empty_branch_rejected(self):
        with pytest.raises(WorkflowError):
            Branch("b", ())

    def test_video_ffmpeg_shape(self):
        dwf = video_ffmpeg(split_parallelism=4)
        assert set(dwf.branch_names) == {"split", "simple"}
        split = dwf.variant("split")
        assert split.max_parallelism == 4
        assert split.num_functions == 1 + 1 + 4 + 1 + 1
        simple = dwf.variant("simple")
        assert simple.num_functions == 3


class TestSelector:
    def test_probabilities_respected(self):
        sel = probabilistic_selector({"a": 0.8, "b": 0.2}, seed=1)
        picks = [sel(None) for _ in range(500)]
        frac_a = picks.count("a") / len(picks)
        assert 0.7 <= frac_a <= 0.9

    def test_deterministic_given_seed(self):
        s1 = probabilistic_selector({"a": 0.5, "b": 0.5}, seed=3)
        s2 = probabilistic_selector({"a": 0.5, "b": 0.5}, seed=3)
        assert [s1(None) for _ in range(20)] == [s2(None) for _ in range(20)]

    def test_bad_weights_rejected(self):
        with pytest.raises(WorkflowError):
            probabilistic_selector({})
        with pytest.raises(WorkflowError):
            probabilistic_selector({"a": -1.0})


class TestDynamicDeployment:
    def test_plans_every_branch(self):
        dwf = simple_dynamic()
        deployment = DynamicChironManager().deploy(dwf, slo_ms=100.0)
        assert set(deployment.plans) == {"heavy", "light"}
        assert deployment.total_cores >= 2
        assert deployment.worst_predicted_ms <= 100.0

    def test_requests_route_by_selector(self):
        dwf = simple_dynamic()
        deployment = DynamicChironManager().deploy(dwf, slo_ms=100.0)
        platform = DynamicChironPlatform(
            deployment, probabilistic_selector({"heavy": 0.5, "light": 0.5},
                                               seed=7))
        for _ in range(20):
            platform.run()
        assert platform.routed["heavy"] + platform.routed["light"] == 20
        assert platform.routed["heavy"] > 0 and platform.routed["light"] > 0

    def test_branch_override_and_latency_gap(self):
        dwf = simple_dynamic()
        deployment = DynamicChironManager().deploy(dwf, slo_ms=100.0)
        platform = DynamicChironPlatform(
            deployment, probabilistic_selector({"heavy": 1.0}, seed=0))
        heavy = platform.run(branch="heavy").latency_ms
        light = platform.run(branch="light").latency_ms
        assert heavy > 2 * light  # 40 ms of CPU vs 1 ms down the branch

    def test_unknown_branch_from_selector_rejected(self):
        dwf = simple_dynamic()
        deployment = DynamicChironManager().deploy(dwf, slo_ms=100.0)
        platform = DynamicChironPlatform(deployment, lambda _s: "ghost")
        with pytest.raises(DeploymentError):
            platform.run()

    def test_video_ffmpeg_end_to_end(self):
        dwf = video_ffmpeg()
        deployment = DynamicChironManager().deploy(dwf, slo_ms=250.0)
        platform = DynamicChironPlatform(
            deployment,
            probabilistic_selector({"split": 0.3, "simple": 0.7}, seed=11))
        latencies = {"split": [], "simple": []}
        for i in range(12):
            chosen = "split" if i % 3 == 0 else "simple"
            latencies[chosen].append(
                platform.run(branch=chosen, seed=40 + i).latency_ms)
        # every request met the planned SLO
        for values in latencies.values():
            assert all(v <= 250.0 for v in values)
        # the split path is the heavier chain
        assert (sum(latencies["split"]) / len(latencies["split"])
                > sum(latencies["simple"]) / len(latencies["simple"]))


class TestDynamicRefresh:
    def test_refresh_replans_drifted_branches(self):
        manager = DynamicChironManager()
        deployment = manager.deploy(simple_dynamic(), slo_ms=100.0)
        light_cores = deployment.plans["light"].total_cores

        drifted = DynamicWorkflow(
            "dyn",
            prefix=(_stage("in", ("ingest", 2.0)),),
            branches=(
                Branch("heavy", (_stage("h", ("h-0", 45.0),
                                        ("h-1", 45.0)),)),
                Branch("light", (_stage("l", ("l-0", 1.0),),)),
            ),
            suffix=(_stage("out", ("respond", 1.0)),))
        refreshed = manager.refresh(deployment, workflow=drifted)
        assert set(refreshed.plans) == {"heavy", "light"}
        # the heavy branch got heavier -> at least as many cores; the
        # untouched light branch re-plans identically
        assert (refreshed.plans["heavy"].total_cores
                >= deployment.plans["heavy"].total_cores)
        assert refreshed.plans["light"].total_cores == light_cores
        assert refreshed.worst_predicted_ms <= 100.0

    def test_refresh_rejects_branch_set_changes(self):
        manager = DynamicChironManager()
        deployment = manager.deploy(simple_dynamic(), slo_ms=100.0)
        missing_branch = DynamicWorkflow(
            "dyn",
            prefix=(_stage("in", ("ingest", 2.0)),),
            branches=(Branch("heavy", (_stage("h", ("h-0", 20.0),
                                              ("h-1", 20.0)),)),),
            suffix=(_stage("out", ("respond", 1.0)),))
        with pytest.raises(DeploymentError, match="branches"):
            manager.refresh(deployment, workflow=missing_branch)
