"""Tests for the (simulated) strace profiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiler import Profiler, StraceLog, SyscallRecord
from repro.errors import ProfilingError
from repro.workflow import FunctionBehavior, FunctionSpec


def _fn(name="f", *segs, **kw):
    return FunctionSpec(name, FunctionBehavior.of(*segs), **kw)


class TestTrace:
    def test_noise_free_trace_reproduces_block_periods(self):
        profiler = Profiler(strace_overhead=0.0, noise_sigma=0.0)
        fn = _fn("f", ("cpu", 2.0), ("io", 5.0), ("cpu", 1.0), ("io", 3.0))
        log = profiler.trace(fn)
        assert len(log.records) == 2
        assert log.records[0].start_ms == pytest.approx(2.0)
        assert log.records[0].duration_ms == pytest.approx(5.0)
        assert log.records[1].start_ms == pytest.approx(8.0)
        assert log.untraced_latency_ms == pytest.approx(11.0)

    def test_strace_overhead_inflates_traced_run(self):
        profiler = Profiler(strace_overhead=0.5, noise_sigma=0.0)
        fn = _fn("f", ("cpu", 2.0), ("io", 10.0))
        log = profiler.trace(fn)
        assert log.records[0].duration_ms == pytest.approx(15.0)
        assert log.traced_latency_ms > log.untraced_latency_ms

    def test_syscall_names_look_like_strace(self):
        profiler = Profiler(noise_sigma=0.0)
        fn = _fn("f", ("io", 1.0), ("cpu", 1.0), ("io", 1.0))
        names = [r.name for r in profiler.trace(fn).records]
        assert all(isinstance(n, str) and n for n in names)

    def test_invalid_parameters(self):
        with pytest.raises(ProfilingError):
            Profiler(strace_overhead=-0.1)
        with pytest.raises(ProfilingError):
            Profiler(noise_sigma=-0.1)


class TestReconstruct:
    def test_correction_step_recovers_true_behavior(self):
        """With zero noise, reconstruct inverts the strace inflation
        exactly (the §3.2 scale-down step)."""
        profiler = Profiler(strace_overhead=0.25, noise_sigma=0.0)
        fn = _fn("f", ("cpu", 4.0), ("io", 8.0), ("cpu", 2.0))
        prof = profiler.profile(fn)
        assert prof.solo_latency_ms == pytest.approx(14.0)
        assert prof.behavior.io_ms == pytest.approx(8.0, rel=0.02)
        assert prof.behavior.cpu_ms == pytest.approx(6.0, rel=0.05)

    def test_noisy_profile_close_but_not_exact(self):
        profiler = Profiler(strace_overhead=0.12, noise_sigma=0.05, seed=3)
        fn = _fn("f", ("cpu", 10.0), ("io", 10.0))
        prof = profiler.profile(fn)
        assert prof.behavior.solo_ms == pytest.approx(20.0, rel=0.25)
        assert prof.behavior.solo_ms != pytest.approx(20.0, abs=1e-9)

    def test_empty_trace_rejected(self):
        profiler = Profiler()
        log = StraceLog(function="f", records=(), traced_latency_ms=0.0,
                        untraced_latency_ms=0.0)
        with pytest.raises(ProfilingError):
            profiler.reconstruct(log)

    def test_deterministic_given_seed(self):
        fn = _fn("f", ("cpu", 3.0), ("io", 7.0))
        p1 = Profiler(seed=11).profile(fn)
        p2 = Profiler(seed=11).profile(fn)
        assert p1.behavior == p2.behavior

    def test_files_metadata_carried(self):
        profiler = Profiler(noise_sigma=0.0)
        fn = _fn("f", ("cpu", 1.0), files_written=frozenset({"/tmp/x"}))
        assert profiler.profile(fn).files_written == frozenset({"/tmp/x"})


class TestWorkflowProfiling:
    def test_profile_workflow_covers_all_functions(self):
        from repro.workflow import random_workflow

        wf = random_workflow(5)
        profiles = Profiler(seed=1).profile_workflow(wf)
        assert set(profiles) == {f.name for f in wf.functions}

    def test_profiled_workflow_swaps_behaviors(self):
        from repro.workflow import random_workflow

        wf = random_workflow(6)
        profiler = Profiler(seed=2, noise_sigma=0.05)
        profiles = profiler.profile_workflow(wf)
        swapped = Profiler.profiled_workflow(wf, profiles)
        assert swapped.name == wf.name
        for fn in swapped.functions:
            assert fn.behavior == profiles[fn.name].behavior

    def test_profiled_workflow_missing_profile_rejected(self):
        from repro.workflow import random_workflow

        wf = random_workflow(7)
        with pytest.raises(ProfilingError):
            Profiler.profiled_workflow(wf, {})


@settings(deadline=None, max_examples=30)
@given(st.lists(
    st.tuples(st.sampled_from(["cpu", "io"]),
              st.floats(min_value=0.01, max_value=100.0, allow_nan=False)),
    min_size=1, max_size=8),
    st.floats(min_value=0.0, max_value=0.5))
def test_property_noise_free_reconstruction_is_lossless(pairs, overhead):
    """For any behaviour and any strace overhead, zero-noise profiling
    recovers CPU/IO totals (the correction step is exact)."""
    fn = FunctionSpec("f", FunctionBehavior.of(*pairs))
    prof = Profiler(strace_overhead=overhead, noise_sigma=0.0).profile(fn)
    # The correction scales all block periods by untraced/traced ratio, so
    # totals match up to the proportional redistribution error.
    assert prof.behavior.solo_ms == pytest.approx(fn.behavior.solo_ms,
                                                  rel=1e-9)
    assert prof.behavior.io_ms <= fn.behavior.io_ms * (1 + 1e-9)
