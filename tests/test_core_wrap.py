"""Tests for the wrap abstraction and deployment-plan validation."""

import pytest

from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.errors import DeploymentError
from repro.workflow import FunctionBehavior, FunctionSpec, Stage, Workflow


def _wf():
    return Workflow("wf", [
        Stage("s0", [FunctionSpec("a", FunctionBehavior.cpu(1.0))]),
        Stage("s1", [FunctionSpec(n, FunctionBehavior.cpu(1.0))
                     for n in ("b", "c", "d")]),
    ])


def _plan(wraps, **kw):
    return DeploymentPlan(workflow_name="wf", wraps=tuple(wraps), **kw)


def proc(*fns, mode=ExecMode.PROCESS):
    return ProcessAssignment(functions=tuple(fns), mode=mode)


class TestDataModel:
    def test_empty_process_rejected(self):
        with pytest.raises(DeploymentError):
            ProcessAssignment(functions=())

    def test_duplicate_in_process_rejected(self):
        with pytest.raises(DeploymentError):
            proc("a", "a")

    def test_duplicate_across_processes_rejected(self):
        with pytest.raises(DeploymentError):
            StageAssignment(stage_index=0,
                            processes=(proc("a"), proc("a")))

    def test_stage_assignment_views(self):
        sa = StageAssignment(stage_index=1, processes=(
            proc("b", mode=ExecMode.THREAD), proc("c"), proc("d")))
        assert sa.function_names == ["b", "c", "d"]
        assert len(sa.thread_groups) == 1
        assert len(sa.forked_processes) == 2

    def test_wrap_duplicate_stage_rejected(self):
        sa = StageAssignment(stage_index=0, processes=(proc("a"),))
        with pytest.raises(DeploymentError):
            Wrap(name="w", stages=(sa, sa))

    def test_wrap_peak_processes(self):
        wrap = Wrap(name="w", stages=(
            StageAssignment(stage_index=0, processes=(
                proc("a", mode=ExecMode.THREAD),)),
            StageAssignment(stage_index=1, processes=(
                proc("b", mode=ExecMode.THREAD), proc("c"), proc("d"))),
        ))
        # stage 1: 2 forked + orchestrator = 3
        assert wrap.max_concurrent_processes == 3

    def test_plan_needs_wraps(self):
        with pytest.raises(DeploymentError):
            DeploymentPlan(workflow_name="wf", wraps=())

    def test_plan_duplicate_wrap_names(self):
        w = Wrap(name="w", stages=(
            StageAssignment(stage_index=0, processes=(proc("a"),)),))
        with pytest.raises(DeploymentError):
            _plan([w, w])


class TestValidation:
    def _full_plan(self):
        w1 = Wrap(name="w1", stages=(
            StageAssignment(0, (proc("a", mode=ExecMode.THREAD),)),
            StageAssignment(1, (proc("b", "c", mode=ExecMode.THREAD),)),
        ))
        w2 = Wrap(name="w2", stages=(
            StageAssignment(1, (proc("d", mode=ExecMode.THREAD),)),))
        return _plan([w1, w2])

    def test_valid_plan_passes(self):
        self._full_plan().validate(_wf())

    def test_wrong_workflow_name(self):
        plan = self._full_plan()
        with pytest.raises(DeploymentError):
            plan.validate(Workflow("other", _wf().stages))

    def test_missing_function_detected(self):
        w1 = Wrap(name="w1", stages=(
            StageAssignment(0, (proc("a"),)),
            StageAssignment(1, (proc("b", "c"),)),
        ))
        with pytest.raises(DeploymentError, match="not deployed"):
            _plan([w1]).validate(_wf())

    def test_double_assignment_detected(self):
        w1 = Wrap(name="w1", stages=(
            StageAssignment(0, (proc("a"),)),
            StageAssignment(1, (proc("b", "c", "d"),)),
        ))
        w2 = Wrap(name="w2", stages=(StageAssignment(1, (proc("d"),)),))
        with pytest.raises(DeploymentError, match="assigned twice"):
            _plan([w1, w2]).validate(_wf())

    def test_function_in_wrong_stage_detected(self):
        w1 = Wrap(name="w1", stages=(
            StageAssignment(0, (proc("b"),)),))
        with pytest.raises(DeploymentError):
            _plan([w1]).validate(_wf())

    def test_stage_out_of_range_detected(self):
        w1 = Wrap(name="w1", stages=(StageAssignment(7, (proc("a"),)),))
        with pytest.raises(DeploymentError, match="beyond workflow depth"):
            _plan([w1]).validate(_wf())

    def test_conflicting_functions_cannot_share_wrap(self):
        wf = Workflow("wf", [
            Stage("s0", [
                FunctionSpec("a", FunctionBehavior.cpu(1.0),
                             files_written=frozenset({"/tmp/x"})),
                FunctionSpec("b", FunctionBehavior.cpu(1.0),
                             files_written=frozenset({"/tmp/x"})),
            ]),
        ])
        w = Wrap(name="w1", stages=(StageAssignment(0, (proc("a", "b"),)),))
        with pytest.raises(DeploymentError, match="conflicting"):
            _plan([w]).validate(wf)

    def test_cores_default_to_process_peak(self):
        plan = self._full_plan()
        for wrap in plan.wraps:
            assert plan.cores_for(wrap) == wrap.max_concurrent_processes
        assert plan.total_cores == sum(
            w.max_concurrent_processes for w in plan.wraps)

    def test_explicit_cores_override(self):
        w1 = Wrap(name="w1", stages=(StageAssignment(0, (proc("a"),)),))
        plan = _plan([w1], cores={"w1": 4})
        assert plan.cores_for(w1) == 4

    def test_stage_wraps_order(self):
        plan = self._full_plan()
        parts = plan.stage_wraps(1)
        assert [w.name for w, _ in parts] == ["w1", "w2"]
        assert plan.processes_in_stage(1) == 2

    def test_negative_pool_workers_rejected(self):
        w1 = Wrap(name="w1", stages=(StageAssignment(0, (proc("a"),)),))
        with pytest.raises(DeploymentError):
            _plan([w1], pool_workers=-1)
