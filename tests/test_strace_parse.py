"""Tests for the strace text parser (real `strace -ttt -T` format)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiler import Profiler, StraceLog, SyscallRecord
from repro.core.strace_parse import format_strace, parse_strace
from repro.errors import ProfilingError
from repro.workflow import FunctionBehavior, FunctionSpec

PAPER_FIGURE10_LOG = """\
1690000000.000000 brk(NULL) = 0x5600000 <0.000004>
1690000000.048000 select(0, NULL, NULL, NULL, {tv_sec=1, tv_usec=0}) = 0 <1.001000>
1690000001.070000 write(3, "1", 1) = 1 <0.000042>
1690000001.081000 read(3, "1", 1) = 1 <0.000025>
1690000001.100000 exit_group(0) = ? <0.000000>
"""


class TestParse:
    def test_paper_figure10_block_periods(self):
        """The exact example of Figure 10: sleep(1) + write + read."""
        log = parse_strace(PAPER_FIGURE10_LOG, function="handle",
                           untraced_latency_ms=1100.0)
        assert [r.name for r in log.records] == ["select", "write", "read"]
        assert log.records[0].start_ms == pytest.approx(48.0, abs=1e-3)
        assert log.records[0].duration_ms == pytest.approx(1001.0, abs=1e-3)
        assert log.records[1].start_ms == pytest.approx(1070.0, abs=1e-3)
        assert log.records[1].duration_ms == pytest.approx(0.042, abs=1e-3)
        assert log.records[2].duration_ms == pytest.approx(0.025, abs=1e-3)
        prof = Profiler().reconstruct(log)
        assert prof.behavior.io_ms == pytest.approx(1001.067, rel=0.01)

    def test_non_blocking_syscalls_are_cpu(self):
        text = ("1000.000000 brk(NULL) = 0 <0.000002>\n"
                "1000.000100 mmap(NULL, 4096) = 0x7f <0.000003>\n"
                "1000.010000 getpid() = 42 <0.000001>\n")
        log = parse_strace(text)
        assert log.records == ()

    def test_pid_prefix_accepted(self):
        text = "[pid 1234] 1000.000000 read(3, \"\", 1) = 0 <0.005000>\n"
        log = parse_strace(text)
        assert log.records[0].name == "read"
        assert log.records[0].duration_ms == pytest.approx(5.0)

    def test_unfinished_resumed_joined(self):
        text = ("1000.000000 select(4, [3], NULL, NULL, NULL <unfinished ...>\n"
                "1000.250000 <... select resumed> ) = 1 <0.250000>\n")
        log = parse_strace(text)
        assert len(log.records) == 1
        assert log.records[0].duration_ms == pytest.approx(250.0)
        assert log.records[0].start_ms == pytest.approx(0.0)

    def test_signals_and_exit_markers_skipped(self):
        text = ("1000.000000 read(3, \"\", 1) = 0 <0.001000>\n"
                "--- SIGCHLD {si_signo=SIGCHLD} ---\n"
                "+++ exited with 0 +++\n")
        assert len(parse_strace(text).records) == 1

    def test_garbage_rejected(self):
        with pytest.raises(ProfilingError):
            parse_strace("this is not strace output\n")

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            parse_strace("\n\n")

    def test_timestamps_rebased_to_zero(self):
        text = "1700000123.500000 poll([{fd=3}], 1, 100) = 1 <0.100000>\n"
        log = parse_strace(text)
        assert log.records[0].start_ms == pytest.approx(0.0)


class TestRoundTrip:
    def test_format_then_parse_preserves_records(self):
        profiler = Profiler(noise_sigma=0.0, strace_overhead=0.0)
        fn = FunctionSpec("f", FunctionBehavior.of(
            ("cpu", 3.0), ("io", 12.0), ("cpu", 2.0), ("io", 4.0)))
        log = profiler.trace(fn)
        text = format_strace(log)
        parsed = parse_strace(text, function="f",
                              untraced_latency_ms=log.untraced_latency_ms)
        assert len(parsed.records) == len(log.records)
        for a, b in zip(parsed.records, log.records):
            assert a.start_ms == pytest.approx(b.start_ms, abs=5e-3)
            assert a.duration_ms == pytest.approx(b.duration_ms, abs=5e-3)

    def test_end_to_end_profile_via_text(self):
        """behavior -> synthetic strace text -> parse -> reconstruct."""
        profiler = Profiler(noise_sigma=0.0, strace_overhead=0.1)
        fn = FunctionSpec("f", FunctionBehavior.of(("cpu", 5.0), ("io", 20.0)))
        log = profiler.trace(fn)
        text = format_strace(log)
        parsed = parse_strace(text, function="f",
                              untraced_latency_ms=log.untraced_latency_ms)
        prof = profiler.reconstruct(parsed)
        assert prof.behavior.io_ms == pytest.approx(20.0, rel=0.02)
        assert prof.behavior.cpu_ms == pytest.approx(5.0, rel=0.05)

    @settings(deadline=None, max_examples=25)
    @given(st.lists(
        st.tuples(st.sampled_from(["cpu", "io"]),
                  st.floats(min_value=0.05, max_value=200.0,
                            allow_nan=False)),
        min_size=1, max_size=8))
    def test_property_text_round_trip(self, pairs):
        profiler = Profiler(noise_sigma=0.0, strace_overhead=0.0)
        fn = FunctionSpec("f", FunctionBehavior.of(*pairs))
        log = profiler.trace(fn)
        parsed = parse_strace(format_strace(log), function="f",
                              untraced_latency_ms=log.untraced_latency_ms)
        rebuilt = profiler.reconstruct(parsed)
        assert rebuilt.behavior.io_ms == pytest.approx(
            fn.behavior.io_ms, rel=1e-3, abs=0.05)
