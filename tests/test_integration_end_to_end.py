"""End-to-end integration: the full Chiron lifecycle across subsystems.

workflow JSON -> profile -> PGP plan -> JSON persistence -> simulated
execution -> real (thread/process) execution -> cost/throughput accounting,
all on one deployment.
"""

import json

import pytest

from repro.core import ChironManager, plan_from_json, plan_to_json
from repro.localexec import LocalExecutor
from repro.metrics import CostModel, throughput_report
from repro.platforms import ChironPlatform, FaastlanePlatform
from repro.workflow import from_state_machine, to_state_machine

PIPELINE = {
    "Comment": "etl-pipeline",
    "StartAt": "Extract",
    "States": {
        "Extract": {"Type": "Task",
                    "Behavior": {"segments": [["cpu", 1.0], ["io", 6.0]],
                                 "data_out_mb": 0.2},
                    "Next": "Transform"},
        "Transform": {"Type": "Parallel", "Next": "Load",
                      "Branches": [
                          {"Name": f"shard-{i}",
                           "Behavior": {"segments": [["cpu", 4.0],
                                                     ["io", 1.0]]}}
                          for i in range(6)]},
        "Load": {"Type": "Task",
                 "Behavior": {"segments": [["cpu", 0.5], ["io", 5.0]]},
                 "End": True},
    },
}


@pytest.fixture(scope="module")
def lifecycle():
    workflow = from_state_machine(json.dumps(PIPELINE))
    manager = ChironManager()
    deployment = manager.deploy(workflow, slo_ms=60.0)
    return workflow, deployment


class TestLifecycle:
    def test_state_machine_round_trip(self, lifecycle):
        workflow, _ = lifecycle
        again = from_state_machine(to_state_machine(workflow))
        assert [len(s) for s in again.stages] == [1, 6, 1]

    def test_plan_meets_slo_in_simulation(self, lifecycle):
        workflow, deployment = lifecycle
        platform = ChironPlatform(deployment.plan)
        latency = platform.average_latency_ms(workflow, repeats=8)
        assert latency <= 60.0
        assert deployment.plan.predicted_latency_ms <= 60.0

    def test_plan_survives_json_and_behaves_identically(self, lifecycle):
        workflow, deployment = lifecycle
        restored = plan_from_json(plan_to_json(deployment.plan))
        a = ChironPlatform(deployment.plan).run(workflow, seed=5).latency_ms
        b = ChironPlatform(restored).run(workflow, seed=5).latency_ms
        assert a == b

    def test_generated_code_compiles_for_every_wrap(self, lifecycle):
        _, deployment = lifecycle
        assert deployment.orchestrator_sources
        for name, source in deployment.orchestrator_sources.items():
            compile(source, f"<{name}>", "exec")

    def test_real_execution_runs_the_same_plan(self, lifecycle):
        workflow, deployment = lifecycle
        # scale down so the real run stays fast on any machine
        small = workflow.map_behaviors(
            lambda b: b.scaled(cpu_factor=0.25, io_factor=0.25))
        with LocalExecutor(small, deployment.plan) as executor:
            result = executor.run()
        assert set(result.function_ms) == {f.name for f in workflow.functions}
        assert result.latency_ms > 0

    def test_accounting_is_consistent(self, lifecycle):
        workflow, deployment = lifecycle
        chiron = ChironPlatform(deployment.plan)
        faastlane = FaastlanePlatform()
        cost = CostModel()
        c_cost = cost.request_cost(chiron, workflow).total_usd
        f_cost = cost.request_cost(faastlane, workflow).total_usd
        assert c_cost < f_cost
        c_rep = throughput_report(chiron, workflow)
        f_rep = throughput_report(faastlane, workflow)
        assert c_rep.rps > f_rep.rps

    def test_refresh_keeps_slo(self, lifecycle):
        workflow, deployment = lifecycle
        manager = ChironManager()
        refreshed = manager.refresh(deployment)
        assert refreshed.plan.slo_ms == 60.0
        refreshed.plan.validate(refreshed.profiled_workflow)
