"""Tests for the simulated platforms: semantics, ordering, accounting."""

import math

import pytest

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.errors import DeploymentError
from repro.platforms import (
    ASFPlatform,
    ChironPlatform,
    FaastlanePlatform,
    OpenFaaSPlatform,
    SANDPlatform,
    build_platform,
    jittered,
)
from repro.workflow import FunctionBehavior, WorkflowBuilder

CAL = RuntimeCalibration.native()


def finra(n=5, cpu_ms=6.0, io_ms=1.5):
    return (WorkflowBuilder(f"finra-{n}")
            .sequential("fetch", ("fetch", FunctionBehavior.of(
                ("cpu", 2.0), ("io", 20.0))))
            .parallel("validate", [(f"rule-{i}", FunctionBehavior.of(
                ("cpu", cpu_ms), ("io", io_ms))) for i in range(n)])
            .build())


def chiron(wf, slo_ms=1.0):
    """Performance-first Chiron (tight SLO -> best-latency plan)."""
    plan = PGPScheduler(LatencyPredictor(CAL)).schedule(wf, slo_ms)
    return ChironPlatform(plan, CAL)


class TestBasicExecution:
    @pytest.mark.parametrize("platform_cls", [
        ASFPlatform, OpenFaaSPlatform, SANDPlatform, FaastlanePlatform])
    def test_runs_and_reports_all_functions(self, platform_cls):
        wf = finra(5)
        result = platform_cls(CAL).run(wf)
        assert result.latency_ms > 0
        assert set(result.function_spans) == {f.name for f in wf.functions}
        assert len(result.stage_ends_ms) == len(wf.stages)

    def test_chiron_reports_all_functions(self):
        wf = finra(5)
        result = chiron(wf).run(wf)
        assert set(result.function_spans) == {f.name for f in wf.functions}

    def test_stage_barrier_ordering(self):
        wf = finra(4)
        result = FaastlanePlatform(CAL).run(wf)
        fetch_end = result.function_spans["fetch"][1]
        for i in range(4):
            start = result.function_spans[f"rule-{i}"][0]
            assert start >= fetch_end - 1e-6

    def test_results_deterministic_without_seed(self):
        wf = finra(5)
        a = OpenFaaSPlatform(CAL).run(wf).latency_ms
        b = OpenFaaSPlatform(CAL).run(wf).latency_ms
        assert a == b

    def test_seed_jitter_changes_latency(self):
        wf = finra(5)
        p = OpenFaaSPlatform(CAL)
        assert (p.run(wf, seed=1).latency_ms != p.run(wf, seed=2).latency_ms)

    def test_jittered_none_is_identity(self):
        wf = finra(3)
        assert jittered(wf, None) is wf

    def test_average_latency_uses_repeats(self):
        wf = finra(3)
        avg = FaastlanePlatform(CAL).average_latency_ms(wf, repeats=5)
        assert avg > 0

    def test_cold_start_cascades_per_stage(self):
        """One-to-one cold starts cascade: one boot wave per stage (§1),
        while a shared sandbox pays a single boot."""
        wf = finra(3)  # 2 stages
        p = OpenFaaSPlatform(CAL)
        warm = p.run(wf).latency_ms
        cold = p.run(wf, cold=True).latency_ms
        assert cold == pytest.approx(warm + 2 * CAL.sandbox_cold_start_ms,
                                     rel=0.05)
        f = FaastlanePlatform(CAL)
        f_cold = f.run(wf, cold=True).latency_ms
        f_warm = f.run(wf).latency_ms
        assert f_cold == pytest.approx(f_warm + CAL.sandbox_cold_start_ms,
                                       rel=0.05)


class TestPaperShapes:
    """The qualitative relationships the paper's observations assert."""

    def test_obs1_asf_dominated_by_scheduling(self):
        wf = finra(50)
        asf = ASFPlatform(CAL).run(wf)
        exec_only = wf.critical_path_ms
        assert asf.latency_ms > 4 * exec_only  # scheduling dominates

    def test_obs1_openfaas_overhead_grows_superlinearly(self):
        lat = {n: OpenFaaSPlatform(CAL).run(finra(n)).latency_ms
               for n in (5, 25, 50)}
        overhead = {n: lat[n] - finra(n).critical_path_ms for n in lat}
        # marginal overhead per added function keeps increasing
        assert (overhead[50] - overhead[25]) / 25 > (overhead[25]
                                                     - overhead[5]) / 20
        assert overhead[50] > 100.0  # Figure 3's ~180 ms territory

    def test_obs2_faastlane_block_time_grows_with_parallelism(self):
        lat5 = FaastlanePlatform(CAL).run(finra(5)).latency_ms
        lat50 = FaastlanePlatform(CAL).run(finra(50)).latency_ms
        # 45 extra forks at ~3.4ms each dominate the growth
        assert lat50 - lat5 > 40 * CAL.fork_block_ms * 0.8

    def test_obs3_thread_mode_wins_small_loses_large(self):
        """Faastlane-T best at FINRA-5, worst at FINRA-50 (Figure 6)."""
        f, t = FaastlanePlatform(CAL), FaastlanePlatform(CAL, variant="T")
        o = OpenFaaSPlatform(CAL)
        assert t.run(finra(5)).latency_ms < f.run(finra(5)).latency_ms
        wf50 = finra(50)
        assert t.run(wf50).latency_ms > f.run(wf50).latency_ms
        assert t.run(wf50).latency_ms > o.run(wf50).latency_ms

    def test_obs3_chiron_beats_all_baselines(self):
        wf = finra(50)
        c = chiron(wf).run(wf).latency_ms
        for p in (OpenFaaSPlatform(CAL), SANDPlatform(CAL),
                  FaastlanePlatform(CAL),
                  FaastlanePlatform(CAL, variant="T"),
                  FaastlanePlatform(CAL, variant="plus")):
            assert c < p.run(wf).latency_ms

    def test_obs4_memory_one_to_one_worst(self):
        wf = finra(25)
        open_mem = OpenFaaSPlatform(CAL).memory_mb(wf)
        faast_mem = FaastlanePlatform(CAL).memory_mb(wf)
        # memory claims use the SLO-driven Chiron (few wraps, Figure 16),
        # not the performance-first many-wrap configuration
        slo = FaastlanePlatform(CAL).average_latency_ms(wf) + 10.0
        chiron_mem = chiron(wf, slo_ms=slo).memory_mb(wf)
        assert open_mem > 5 * faast_mem
        assert chiron_mem <= faast_mem * 1.1

    def test_obs4_chiron_cpu_efficiency_with_slo(self):
        """At the paper's SLO (Faastlane + 10 ms) Chiron uses far fewer
        CPUs than Faastlane's max-parallelism allocation (Figure 17)."""
        wf = finra(50)
        slo = FaastlanePlatform(CAL).average_latency_ms(wf) + 10.0
        c = chiron(wf, slo_ms=slo)
        assert c.allocated_cores(wf) <= 6
        assert FaastlanePlatform(CAL).allocated_cores(wf) == 50
        # ... while still meeting the SLO
        assert c.average_latency_ms(wf) <= slo

    def test_pool_has_lowest_startup_but_heavy_memory(self):
        wf = finra(25)
        pool = FaastlanePlatform(CAL, variant="P")
        native = FaastlanePlatform(CAL)
        assert pool.run(wf).latency_ms < native.run(wf).latency_ms
        assert pool.memory_mb(wf) > 3 * native.memory_mb(wf)

    def test_mpk_variant_slower_than_native_threads(self):
        wf = finra(5)
        t = FaastlanePlatform(CAL, variant="T").run(wf).latency_ms
        m = FaastlanePlatform(CAL, variant="M").run(wf).latency_ms
        # -M forks parallel functions (native), so compare the sequential
        # stage span where MPK overhead applies
        assert m >= t or True  # structure differs; assert via spans below
        rm = FaastlanePlatform(CAL, variant="M").run(wf)
        rn = FaastlanePlatform(CAL).run(wf)
        mpk_fetch = rm.function_spans["fetch"][1] - rm.function_spans["fetch"][0]
        native_fetch = rn.function_spans["fetch"][1] - rn.function_spans["fetch"][0]
        assert mpk_fetch > native_fetch


class TestFaastlaneVariants:
    def test_unknown_variant_rejected(self):
        with pytest.raises(DeploymentError):
            FaastlanePlatform(CAL, variant="X")

    def test_plus_sandbox_count(self):
        assert FaastlanePlatform(CAL, variant="plus")._plus_sandboxes(
            finra(50)) == 10
        assert FaastlanePlatform(CAL, variant="plus")._plus_sandboxes(
            finra(3)) == 1

    def test_variant_names(self):
        assert FaastlanePlatform(CAL).name == "faastlane"
        assert FaastlanePlatform(CAL, variant="T").name == "faastlane-t"
        assert FaastlanePlatform(CAL, variant="plus").name == "faastlane+"
        assert FaastlanePlatform(CAL, variant="M").name == "faastlane-m"
        assert FaastlanePlatform(CAL, variant="P").name == "faastlane-p"

    def test_t_variant_allocates_one_core(self):
        assert FaastlanePlatform(CAL, variant="T").allocated_cores(
            finra(50)) == 1


class TestAccounting:
    def test_one_to_one_cores_equal_functions(self):
        wf = finra(7)
        assert OpenFaaSPlatform(CAL).allocated_cores(wf) == 8
        assert ASFPlatform(CAL).allocated_cores(wf) == 8

    def test_many_to_one_cores_equal_max_parallelism(self):
        wf = finra(7)
        assert SANDPlatform(CAL).allocated_cores(wf) == 7
        assert FaastlanePlatform(CAL).allocated_cores(wf) == 7

    def test_asf_bills_state_transitions(self):
        wf = finra(5)
        assert ASFPlatform(CAL).state_transitions(wf) == 2 * 6 + 2 * 2
        assert OpenFaaSPlatform(CAL).state_transitions(wf) == 0

    def test_footprint_counts(self):
        wf = finra(5)
        fps = OpenFaaSPlatform(CAL).footprints(wf)
        assert len(fps) == 6 and all(fp.functions == 1 for fp in fps)
        fps = SANDPlatform(CAL).footprints(wf)
        assert len(fps) == 1 and fps[0].processes == 6


class TestRegistry:
    def test_all_names_buildable(self):
        wf = finra(3)
        for name in ("asf", "openfaas", "sand", "faastlane", "faastlane-t",
                     "faastlane+", "faastlane-m", "faastlane-p"):
            p = build_platform(name, wf)
            assert p.name == name

    def test_chiron_builders_produce_valid_plans(self):
        wf = finra(4)
        for name in ("chiron", "chiron-m", "chiron-p"):
            p = build_platform(name, wf, slo_ms=200.0)
            assert p.run(wf).latency_ms > 0

    def test_chiron_m_forks_parallel_functions(self):
        wf = finra(4)
        p = build_platform("chiron-m", wf, slo_ms=200.0)
        for _, sa in p.plan.stage_wraps(1):
            for group in sa.processes:
                assert len(group.functions) == 1

    def test_chiron_p_is_pool_plan(self):
        wf = finra(4)
        p = build_platform("chiron-p", wf, slo_ms=200.0)
        assert p.plan.pool_workers == 4

    def test_unknown_platform_rejected(self):
        with pytest.raises(DeploymentError):
            build_platform("knative", finra(2))
