"""Tests for :mod:`repro.lifecycle` — boot tiers, keep-alive policies, the
sandbox state machine, prewarm pools, trace replay, and the wiring into
platforms, faults, the autoscaler and the predictor."""

import pytest

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.errors import CapacityError, LifecycleError
from repro.lifecycle import (
    BootTier,
    FixedTTLPolicy,
    HistogramPolicy,
    LifecycleManager,
    PrewarmPool,
    SandboxRecord,
    SandboxState,
    boot_cost_ms,
    coldest_first,
    reclaim_coldest,
    replay_keepalive,
)
from repro.platforms import build_platform

CAL = RuntimeCalibration.native()
WF = finra(5)
KEY = ("plat", "wf")


# ---------------------------------------------------------------------------
# boot tiers
# ---------------------------------------------------------------------------

class TestBootTiers:
    def test_cold_pays_full_container_start(self):
        assert boot_cost_ms(BootTier.COLD, CAL) == CAL.sandbox_cold_start_ms

    def test_first_cold_boot_pays_snapshot_creation(self):
        assert boot_cost_ms(BootTier.COLD, CAL, creating_snapshot=True) == \
            CAL.sandbox_cold_start_ms + CAL.snapshot_create_ms

    def test_snapshot_restore_is_calibrated_fraction(self):
        restore = boot_cost_ms(BootTier.SNAPSHOT, CAL)
        assert restore == pytest.approx(
            CAL.sandbox_cold_start_ms * CAL.snapshot_restore_fraction)
        assert restore < boot_cost_ms(BootTier.COLD, CAL)

    @pytest.mark.parametrize("tier", [BootTier.WARM, BootTier.POOL])
    def test_warm_tiers_are_free(self, tier):
        assert boot_cost_ms(tier, CAL) == 0.0


# ---------------------------------------------------------------------------
# keep-alive policies
# ---------------------------------------------------------------------------

class TestFixedTTLPolicy:
    def test_flat_window(self):
        assert FixedTTLPolicy(60_000.0).keepalive_ms(KEY) == 60_000.0
        assert FixedTTLPolicy(0.0).keepalive_ms(KEY) == 0.0

    def test_invalid_ttl_rejected(self):
        with pytest.raises(LifecycleError):
            FixedTTLPolicy(-1.0)
        with pytest.raises(LifecycleError):
            FixedTTLPolicy(float("inf"))


class TestHistogramPolicy:
    def test_defaults_until_enough_observations(self):
        p = HistogramPolicy(min_observations=8, default_ttl_ms=60_000.0)
        for _ in range(7):
            p.observe(KEY, 900.0)
        assert p.keepalive_ms(KEY) == 60_000.0

    def test_learns_keepalive_from_gap_percentile(self):
        p = HistogramPolicy(bucket_ms=1000.0, margin=1.2)
        for _ in range(20):
            p.observe(KEY, 900.0)
        # all gaps in the first bucket: keepalive = 1000 ms edge x margin
        assert p.keepalive_ms(KEY) == pytest.approx(1200.0)

    def test_irregular_arrivals_cap_at_max_track(self):
        p = HistogramPolicy(max_track_ms=120_000.0, min_observations=4)
        for _ in range(10):
            p.observe(KEY, 500_000.0)  # all beyond the tracked range
        assert p.keepalive_ms(KEY) == 120_000.0

    def test_prewarm_lead_time_from_low_quantile(self):
        p = HistogramPolicy(bucket_ms=1000.0)
        for _ in range(20):
            p.observe(KEY, 4_500.0)
        # lower edge of the 5th-bucket quantile: 4000 ms
        assert p.prewarm_ms(KEY) == pytest.approx(4000.0)

    def test_keys_are_independent(self):
        p = HistogramPolicy(min_observations=1)
        p.observe(("a",), 900.0)
        assert p.observations(("a",)) == 1
        assert p.observations(("b",)) == 0

    def test_negative_gap_rejected(self):
        with pytest.raises(LifecycleError):
            HistogramPolicy().observe(KEY, -1.0)

    def test_constructor_validation(self):
        with pytest.raises(LifecycleError):
            HistogramPolicy(bucket_ms=0.0)
        with pytest.raises(LifecycleError):
            HistogramPolicy(bucket_ms=2000.0, max_track_ms=1000.0)
        with pytest.raises(LifecycleError):
            HistogramPolicy(prewarm_quantile=0.9, keepalive_quantile=0.5)
        with pytest.raises(LifecycleError):
            HistogramPolicy(margin=0.5)


# ---------------------------------------------------------------------------
# the sandbox state machine
# ---------------------------------------------------------------------------

def _record(mem=100.0):
    return SandboxRecord(key=KEY, name="sb", memory_mb=mem,
                         state=SandboxState.PROVISIONING, since_ms=0.0)


class TestStateMachine:
    def test_happy_path(self):
        rec = _record()
        rec.to_warm(10.0, BootTier.COLD)
        assert rec.state is SandboxState.WARM
        rec.to_idle(50.0, 150.0)
        assert rec.idle_at(100.0)
        rec.to_warm(100.0, BootTier.WARM)  # revive
        rec.to_idle(120.0, 220.0)
        rec.to_reclaimed(220.0)
        assert rec.state is SandboxState.RECLAIMED
        assert rec.boots == {"cold": 1, "warm": 1}

    def test_invalid_transitions_raise(self):
        rec = _record()
        with pytest.raises(LifecycleError, match="invalid"):
            rec.to_idle(0.0, 10.0)  # provisioning cannot go idle
        rec.to_warm(0.0, BootTier.COLD)
        rec.to_reclaimed(1.0)
        with pytest.raises(LifecycleError, match="invalid"):
            rec.to_warm(2.0, BootTier.WARM)  # reclaimed is terminal

    def test_keepalive_window_must_be_forward(self):
        rec = _record()
        rec.to_warm(0.0, BootTier.COLD)
        with pytest.raises(LifecycleError, match="expires before"):
            rec.to_idle(100.0, 50.0)

    def test_pending_idle_not_revivable_until_reached(self):
        """since_ms in the future models an in-flight request whose outcome
        is already recorded — the sandbox is not revivable before then."""
        rec = _record()
        rec.to_warm(0.0, BootTier.COLD)
        rec.to_idle(500.0, 1_500.0)
        assert not rec.idle_at(100.0)
        assert rec.idle_at(500.0)
        assert not rec.idle_at(1_501.0)
        assert rec.expired_at(1_501.0)

    def test_coldest_first_orders_by_idle_entry(self):
        recs = []
        for t in (300.0, 100.0, 200.0):
            r = _record()
            r.to_warm(0.0, BootTier.COLD)
            r.to_idle(t, 10_000.0)
            recs.append(r)
        assert [r.since_ms for r in coldest_first(recs, 400.0)] == \
            [100.0, 200.0, 300.0]

    def test_reclaim_coldest_frees_needed(self):
        recs = []
        for t in (100.0, 200.0, 300.0):
            r = _record(mem=50.0)
            r.to_warm(0.0, BootTier.COLD)
            r.to_idle(t, 10_000.0)
            recs.append(r)
        evicted = reclaim_coldest(recs, needed_mb=80.0, now_ms=400.0)
        # the two longest-idle records go (idle since 100 and 200)
        assert [r.serial for r in evicted] == [recs[0].serial,
                                               recs[1].serial]
        assert all(r.state is SandboxState.RECLAIMED for r in evicted)

    def test_reclaim_coldest_respects_budget(self):
        recs = []
        for t in (100.0, 200.0, 300.0):
            r = _record(mem=50.0)
            r.to_warm(0.0, BootTier.COLD)
            r.to_idle(t, 10_000.0)
            recs.append(r)
        # 150 MB idle, budget 100: evict the single coldest
        evicted = reclaim_coldest(recs, needed_mb=0.0, now_ms=400.0,
                                  budget_mb=100.0)
        assert [r.serial for r in evicted] == [recs[0].serial]

    def test_negative_need_rejected(self):
        with pytest.raises(LifecycleError):
            reclaim_coldest([], needed_mb=-1.0, now_ms=0.0)


# ---------------------------------------------------------------------------
# prewarm pools
# ---------------------------------------------------------------------------

class TestPrewarmPool:
    def test_starts_full_and_respawns(self):
        pool = PrewarmPool()
        pool.configure(KEY, target=2, respawn_ms=100.0)
        assert pool.available(KEY, 0.0) == 2
        assert pool.draw(KEY, 0.0) and pool.draw(KEY, 0.0)
        assert not pool.draw(KEY, 50.0)      # empty, respawns due at 100
        assert pool.available(KEY, 100.0) == 2
        assert pool.draw(KEY, 100.0)

    def test_brownout_shrink_and_restore(self):
        pool = PrewarmPool()
        pool.configure(KEY, target=4, respawn_ms=100.0)
        pool.shrink(0.5)
        assert pool.available(KEY, 0.0) == 2
        assert pool.draw(KEY, 0.0) and pool.draw(KEY, 0.0)
        assert not pool.draw(KEY, 0.0)
        pool.restore()
        # the draw respawns landed; shrink-dropped slots respawn one
        # respawn_ms after the pool is next touched post-restore
        assert pool.available(KEY, 200.0) == 2
        assert pool.available(KEY, 300.0) == 4

    def test_memory_accounting(self):
        pool = PrewarmPool()
        pool.configure(KEY, target=3, respawn_ms=100.0, memory_mb=40.0)
        assert pool.memory_mb(0.0) == pytest.approx(120.0)
        pool.draw(KEY, 0.0)
        assert pool.memory_mb(0.0) == pytest.approx(80.0)

    def test_unknown_key_never_hits(self):
        assert not PrewarmPool().draw(("nope",), 0.0)

    def test_validation(self):
        pool = PrewarmPool()
        with pytest.raises(LifecycleError):
            pool.configure(KEY, target=-1, respawn_ms=10.0)
        with pytest.raises(LifecycleError):
            pool.shrink(1.5)


# ---------------------------------------------------------------------------
# the lifecycle manager
# ---------------------------------------------------------------------------

class TestLifecycleManager:
    def test_cold_then_warm_revive(self):
        mgr = LifecycleManager(FixedTTLPolicy(60_000.0), snapshots=False)
        s1 = mgr.request(KEY, 0.0)
        tier, cost = s1.acquire("sb", CAL)
        assert tier is BootTier.COLD
        assert cost == CAL.sandbox_cold_start_ms
        s1.finish(200.0)
        s2 = mgr.request(KEY, 1_000.0)
        tier, cost = s2.acquire("sb", CAL)
        assert tier is BootTier.WARM and cost == 0.0
        assert mgr.warm_hit_rate() == pytest.approx(0.5)

    def test_expired_keepalive_falls_back_to_snapshot(self):
        mgr = LifecycleManager(FixedTTLPolicy(5_000.0), snapshots=True)
        s1 = mgr.request(KEY, 0.0)
        _tier, cost = s1.acquire("sb", CAL)
        # first cold boot pays the one-time snapshot-creation charge
        assert cost == CAL.sandbox_cold_start_ms + CAL.snapshot_create_ms
        s1.finish(100.0)
        s2 = mgr.request(KEY, 20_000.0)  # idle window closed at 5 100
        tier, cost = s2.acquire("sb", CAL)
        assert tier is BootTier.SNAPSHOT
        assert cost == pytest.approx(CAL.sandbox_cold_start_ms
                                     * CAL.snapshot_restore_fraction)
        assert mgr.counts["lifecycle.keepalive.expired"] == 1

    def test_zero_ttl_reclaims_on_finish(self):
        mgr = LifecycleManager(FixedTTLPolicy(0.0), snapshots=False)
        s1 = mgr.request(KEY, 0.0)
        s1.acquire("sb", CAL)
        s1.finish(100.0)
        assert mgr.idle_memory_mb(100.0) == 0.0
        s2 = mgr.request(KEY, 200.0)
        tier, _cost = s2.acquire("sb", CAL)
        assert tier is BootTier.COLD
        assert mgr.warm_hit_rate() == 0.0

    def test_memory_budget_evicts_coldest(self):
        mgr = LifecycleManager(FixedTTLPolicy(60_000.0), snapshots=False,
                               memory_budget_mb=100.0,
                               default_memory_mb=60.0)
        # two overlapping requests -> two sandboxes; 120 MB idle > 100
        s1 = mgr.request(KEY, 0.0)
        s1.acquire("a", CAL)
        s2 = mgr.request(KEY, 10.0)
        s2.acquire("b", CAL)
        s1.finish(300.0)
        s2.finish(400.0)
        assert mgr.counts["lifecycle.evicted"] == 1
        assert mgr.idle_memory_mb(500.0) == pytest.approx(60.0)

    def test_pool_draw_between_tiers(self):
        mgr = LifecycleManager(FixedTTLPolicy(0.0), snapshots=False)
        mgr.configure_pool(KEY, target=1, respawn_ms=1e9)
        s1 = mgr.request(KEY, 0.0)
        tier, cost = s1.acquire("sb", CAL)
        assert tier is BootTier.POOL and cost == 0.0
        s1.finish(100.0)
        s2 = mgr.request(KEY, 200.0)  # pool empty, nothing idle (ttl 0)
        tier, _cost = s2.acquire("sb", CAL)
        assert tier is BootTier.COLD

    def test_backwards_arrivals_rejected(self):
        mgr = LifecycleManager(FixedTTLPolicy(0.0))
        mgr.request(KEY, 100.0)
        with pytest.raises(LifecycleError, match="backwards"):
            mgr.request(KEY, 50.0)

    def test_acquire_after_finish_rejected(self):
        mgr = LifecycleManager(FixedTTLPolicy(0.0))
        s = mgr.request(KEY, 0.0)
        s.finish(10.0)
        with pytest.raises(LifecycleError, match="finished"):
            s.acquire("sb", CAL)

    def test_arrivals_feed_the_policy(self):
        policy = HistogramPolicy(min_observations=1)
        mgr = LifecycleManager(policy)
        for t in (0.0, 900.0, 1_800.0):
            mgr.request(KEY, t).finish(t + 1.0)
        assert policy.observations(KEY) == 2

    def test_session_summary_ledger(self):
        mgr = LifecycleManager(FixedTTLPolicy(60_000.0), snapshots=False)
        s = mgr.request(KEY, 0.0)
        s.acquire("a", CAL)
        s.acquire("b", CAL)
        s.finish(100.0)
        assert s.summary() == {
            "boots": {"cold": 2},
            "boot_ms": 2 * CAL.sandbox_cold_start_ms,
            "policy": "ttl-60000ms"}


# ---------------------------------------------------------------------------
# trace replay (the coldstart experiment's inner loop)
# ---------------------------------------------------------------------------

ARRIVALS = [float(t) for t in range(0, 30_000, 400)]


class TestReplay:
    def _replay(self, platform_name="chiron", **kw):
        plat = build_platform(platform_name, WF)
        kw.setdefault("service_pool", [100.0])
        kw.setdefault("arrivals_ms", ARRIVALS)
        return replay_keepalive(plat, WF, **kw)

    def test_deterministic(self):
        a = self._replay(policy=FixedTTLPolicy(1_000.0), service_pool=None,
                         service_samples=3)
        b = self._replay(policy=FixedTTLPolicy(1_000.0), service_pool=None,
                         service_samples=3)
        assert a.latencies_ms == b.latencies_ms
        assert a.boots == b.boots

    def test_ttl0_is_always_cold(self):
        r = self._replay(policy=FixedTTLPolicy(0.0), snapshots=False)
        assert r.boots["cold"] == len(ARRIVALS)
        assert r.warm_hit_rate == 0.0
        assert r.latency.p50_ms == pytest.approx(
            100.0 + CAL.sandbox_cold_start_ms)

    def test_keepalive_revives_warm(self):
        r = self._replay(policy=FixedTTLPolicy(60_000.0), snapshots=False)
        assert r.boots["cold"] == 1
        assert r.boots["warm"] == len(ARRIVALS) - 1
        assert r.warm_hit_rate == pytest.approx(1 - 1 / len(ARRIVALS))

    def test_hybrid_beats_ttl0_p99(self):
        cold = self._replay(policy=FixedTTLPolicy(0.0), snapshots=False)
        hybrid = self._replay(policy=HistogramPolicy())
        assert hybrid.latency.p99_ms < cold.latency.p99_ms

    def test_chiron_tops_warm_hit_at_equal_memory(self):
        """The deployment-model story: at the same idle-memory budget the
        smaller m-to-n instances stay revivable where monoliths cannot."""
        chiron = build_platform("chiron", WF)
        sand = build_platform("sand", WF)
        budget = 1.05 * chiron.memory_mb(WF)  # one chiron slot, zero sand
        assert sand.memory_mb(WF) > budget
        kw = dict(arrivals_ms=ARRIVALS, policy=FixedTTLPolicy(60_000.0),
                  memory_budget_mb=budget, service_pool=[100.0])
        r_chiron = replay_keepalive(chiron, WF, **kw)
        r_sand = replay_keepalive(sand, WF, **kw)
        assert r_chiron.warm_hit_rate > r_sand.warm_hit_rate

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(LifecycleError, match="sorted"):
            self._replay(policy=FixedTTLPolicy(0.0),
                         arrivals_ms=[100.0, 50.0])

    def test_empty_trace_rejected(self):
        with pytest.raises(LifecycleError, match="empty"):
            self._replay(policy=FixedTTLPolicy(0.0), arrivals_ms=[])


# ---------------------------------------------------------------------------
# platform integration: env.lifecycle across requests
# ---------------------------------------------------------------------------

class TestPlatformIntegration:
    def test_boot_tiers_shape_request_latency(self):
        plat = build_platform("faastlane", WF)
        base = plat.run(WF).latency_ms
        mgr = LifecycleManager(FixedTTLPolicy(60_000.0), snapshots=True)
        first = plat.run(WF, lifecycle=mgr, arrival_ms=0.0)
        second = plat.run(WF, lifecycle=mgr, arrival_ms=5_000.0)
        # first request pays cold + one-time snapshot creation, second
        # revives the idle sandbox for free
        assert first.latency_ms == pytest.approx(
            base + CAL.sandbox_cold_start_ms + CAL.snapshot_create_ms)
        assert second.latency_ms == pytest.approx(base)
        assert first.lifecycle["boots"] == {"cold": 1}
        assert second.lifecycle["boots"] == {"warm": 1}

    def test_disabled_lifecycle_is_bit_identical(self):
        plat = build_platform("chiron", WF)
        assert plat.run(WF).latency_ms == plat.run(WF).latency_ms
        assert plat.run(WF, seed=3).latency_ms == \
            plat.run(WF, seed=3).latency_ms
        r = plat.run(WF)
        assert r.lifecycle is None

    def test_ttl0_manager_reboots_every_request(self):
        plat = build_platform("sand", WF)
        mgr = LifecycleManager(FixedTTLPolicy(0.0), snapshots=False)
        plat.run(WF, lifecycle=mgr, arrival_ms=0.0)
        plat.run(WF, lifecycle=mgr, arrival_ms=1_000.0)
        assert mgr.counts["lifecycle.boots.cold"] == 2
        assert mgr.warm_hit_rate() == 0.0

    def test_lifecycle_events_in_detail_trace(self):
        from repro.obs import Tracer

        plat = build_platform("faastlane", WF)
        mgr = LifecycleManager(FixedTTLPolicy(60_000.0), snapshots=True)
        tracer = Tracer()
        plat.run(WF, lifecycle=mgr, arrival_ms=0.0, tracer=tracer)
        names = {e.name for e in tracer.events}
        assert {"lifecycle.boot", "lifecycle.snapshot.created",
                "lifecycle.idle"} <= names
        assert tracer.metrics.counter("lifecycle.boots.cold").value == 1


# ---------------------------------------------------------------------------
# the reclaim fault: recoverable, lifecycle-aware
# ---------------------------------------------------------------------------

class TestReclaimFault:
    def _one_shot(self):
        from repro.faults import FaultPlan, OneShotFault

        return FaultPlan(scheduled=(OneShotFault("sandbox.reclaim"),))

    def test_reclaim_is_recovered_and_ledgered(self):
        plat = build_platform("openfaas", WF)
        base = plat.run(WF).latency_ms
        r = plat.run(WF, faults=self._one_shot())
        assert r.faults["injected"] == {"sandbox.reclaim": 1}
        assert r.latency_ms > base  # the replacement re-boots cold

    def test_reclaim_rate_validated_and_excluded_from_uniform(self):
        from repro.errors import SimulationError
        from repro.faults import FaultPlan

        with pytest.raises(SimulationError, match="sandbox_reclaim_rate"):
            FaultPlan(sandbox_reclaim_rate=2.0)
        assert FaultPlan.uniform(0.1).sandbox_reclaim_rate == 0.0

    def test_zero_rate_keeps_fault_runs_bit_identical(self):
        from repro.faults import FaultPlan

        plat = build_platform("chiron", WF)
        armed = FaultPlan(seed=5, sandbox_crash_rate=0.08)
        with_reclaim = FaultPlan(seed=5, sandbox_crash_rate=0.08,
                                 sandbox_reclaim_rate=0.0)
        a = plat.run(WF, faults=armed, fault_seed=3)
        b = plat.run(WF, faults=with_reclaim, fault_seed=3)
        assert a.latency_ms == b.latency_ms
        assert a.faults["injected"] == b.faults["injected"]

    def test_reclaim_updates_lifecycle_ledger(self):
        plat = build_platform("openfaas", WF)
        mgr = LifecycleManager(FixedTTLPolicy(60_000.0), snapshots=False)
        r = plat.run(WF, faults=self._one_shot(), lifecycle=mgr,
                     arrival_ms=0.0)
        assert r.faults["injected"] == {"sandbox.reclaim": 1}
        assert mgr.counts["lifecycle.reclaimed"] >= 1
        # the replacement boot also routed through the manager
        assert mgr.counts["lifecycle.boots.cold"] >= 2


# ---------------------------------------------------------------------------
# autoscaler integration
# ---------------------------------------------------------------------------

class TestAutoscaleLifecycle:
    # two dense bursts (inflight ~4 at ~100 ms service) with a quiet gap:
    # the first forces scale-up, the gap forces scale-down, the second
    # shows whether torn-down capacity was kept revivable
    BURSTS = ([float(t) for t in range(0, 4_000, 25)]           # burst 1
              + [float(t) for t in range(30_000, 34_000, 25)])  # burst 2

    def _run(self, lifecycle=None, **kw):
        from repro.cluster import AutoscalerConfig, run_autoscaled

        plat = build_platform("faastlane", WF)
        kw.setdefault("config", AutoscalerConfig(max_replicas=4))
        return run_autoscaled(plat, WF, arrivals=self.BURSTS, seed=2,
                              lifecycle=lifecycle, **kw)

    def test_provision_delay_resolves_from_platform_calibration(self):
        """Satellite: the default is read from the live calibration at
        simulation time, not frozen at import."""
        from repro.cluster import AutoscalerConfig

        plat = build_platform("faastlane", WF)
        default = self._run()
        explicit = self._run(config=AutoscalerConfig(
            max_replicas=4,
            provision_delay_ms=plat.cal.sandbox_cold_start_ms))
        assert default.sojourn.p99_ms == explicit.sojourn.p99_ms
        assert default.replica_timeline == explicit.replica_timeline

    def test_second_burst_draws_from_idle_replicas(self):
        from repro.cluster import LifecycleConfig

        off = self._run()
        on = self._run(lifecycle=LifecycleConfig(
            policy=FixedTTLPolicy(60_000.0)))
        assert on.boots  # the provision path recorded its tiers
        assert on.boots.get("warm", 0) > 0  # burst 2 revived burst 1's idles
        assert on.warm_hit_rate > 0.0
        assert [t for _ms, t in on.boot_timeline].count("warm") == \
            on.boots["warm"]
        # lifecycle off: no boot bookkeeping at all (zero-overhead slot)
        assert off.boots == {} and off.warm_hit_rate is None

    def test_zero_ttl_tears_down_instead_of_parking(self):
        from repro.cluster import LifecycleConfig

        r = self._run(lifecycle=LifecycleConfig(policy=FixedTTLPolicy(0.0),
                                                snapshots=False))
        assert r.boots.get("warm", 0) == 0
        assert r.reclaimed > 0

    def test_prewarm_pool_absorbs_first_burst(self):
        from repro.cluster import LifecycleConfig

        no_pool = self._run(lifecycle=LifecycleConfig(
            policy=FixedTTLPolicy(0.0), snapshots=False))
        pooled = self._run(lifecycle=LifecycleConfig(
            policy=FixedTTLPolicy(0.0), snapshots=False, prewarm_target=3))
        assert pooled.boots.get("pool", 0) > 0
        assert pooled.sojourn.p99_ms <= no_pool.sojourn.p99_ms

    def test_lifecycle_config_validation(self):
        from repro.cluster import LifecycleConfig

        with pytest.raises(CapacityError):
            LifecycleConfig(policy=FixedTTLPolicy(0.0), prewarm_target=-1)
        with pytest.raises(CapacityError):
            LifecycleConfig(policy=FixedTTLPolicy(0.0),
                            pool_brownout_factor=2.0)


# ---------------------------------------------------------------------------
# cold-start-aware prediction and deployment
# ---------------------------------------------------------------------------

class TestBootAwarePrediction:
    def test_boot_penalty_follows_tier_and_waves(self):
        from repro.core import ChironManager

        mgr = ChironManager()
        dep = mgr.deploy(WF, slo_ms=2_000.0, generate_code=False)
        waves = mgr.predictor.boot_waves(dep.plan, dep.profiled_workflow)
        assert waves >= 1
        cold = mgr.predictor.boot_penalty_ms(dep.plan,
                                             dep.profiled_workflow,
                                             BootTier.COLD)
        snap = mgr.predictor.boot_penalty_ms(dep.plan,
                                             dep.profiled_workflow,
                                             BootTier.SNAPSHOT)
        warm = mgr.predictor.boot_penalty_ms(dep.plan,
                                             dep.profiled_workflow,
                                             BootTier.WARM)
        assert cold == pytest.approx(waves * CAL.sandbox_cold_start_ms)
        assert snap == pytest.approx(
            waves * CAL.sandbox_cold_start_ms * CAL.snapshot_restore_fraction)
        assert warm == 0.0

    def test_first_invocation_adds_penalty(self):
        from repro.core import ChironManager

        mgr = ChironManager()
        dep = mgr.deploy(WF, slo_ms=2_000.0, generate_code=False)
        warm_pred = mgr.predictor.predict_workflow(dep.profiled_workflow,
                                                   dep.plan)
        first = mgr.predictor.predict_first_invocation(
            dep.profiled_workflow, dep.plan, tier=BootTier.COLD)
        assert first == pytest.approx(
            warm_pred + mgr.predictor.boot_penalty_ms(
                dep.plan, dep.profiled_workflow, BootTier.COLD))

    def test_deploy_with_boot_tier_meets_slo_including_cold_start(self):
        from repro.core import ChironManager

        mgr = ChironManager()
        dep = mgr.deploy(WF, slo_ms=2_000.0, generate_code=False,
                         boot_tier=BootTier.COLD)
        assert dep.boot_tier == "cold"
        assert dep.first_invocation_ms is not None
        assert dep.first_invocation_ms <= 2_000.0
        assert dep.first_invocation_ms > dep.plan.predicted_latency_ms

    def test_warm_only_deploy_records_no_tier(self):
        from repro.core import ChironManager

        dep = ChironManager().deploy(WF, slo_ms=2_000.0,
                                     generate_code=False)
        assert dep.boot_tier is None and dep.first_invocation_ms is None


# ---------------------------------------------------------------------------
# satellite: scale_max zero-footprint guard
# ---------------------------------------------------------------------------

class TestScaleMaxGuard:
    def test_zero_footprint_raises_instead_of_looping(self):
        """Satellite: a deployment that costs nothing would place forever —
        scale_max must refuse it instead of spinning."""
        import dataclasses

        from repro.cluster import ClusterDeployment
        from repro.runtime.machine import Cluster
        from repro.runtime.memory import SandboxFootprint

        free_cal = dataclasses.replace(
            CAL, sandbox_overhead_memory_mb=0.0, runtime_base_memory_mb=0.0,
            function_unique_memory_mb=0.0, process_cow_memory_mb=0.0,
            thread_memory_mb=0.0, pool_worker_memory_mb=0.0)

        class _FreePlatform:
            name = "free"
            cal = free_cal

            def footprints(self, wf):
                return [SandboxFootprint(functions=1)]

            def per_sandbox_cores(self, wf):
                return [0.0]

        with pytest.raises(CapacityError, match="footprint"):
            ClusterDeployment(_FreePlatform(), WF,
                              Cluster(nodes=1)).scale_max()

    def test_empty_footprints_also_refused(self):
        from repro.cluster import ClusterDeployment
        from repro.runtime.machine import Cluster

        class _EmptyPlatform:
            name = "empty"
            cal = CAL

            def footprints(self, wf):
                return []

            def per_sandbox_cores(self, wf):
                return []

        with pytest.raises(CapacityError, match="footprint"):
            ClusterDeployment(_EmptyPlatform(), WF,
                              Cluster(nodes=1)).scale_max()


# ---------------------------------------------------------------------------
# the coldstart experiment's acceptance flags (reduced grid for speed)
# ---------------------------------------------------------------------------

class TestColdstartExperiment:
    def test_acceptance_flags_on_reduced_grid(self):
        from repro.experiments.coldstart import summary_flags, sweep

        rows = sweep("finra-5", platforms=("chiron", "sand"),
                     traces=("diurnal",), arms=("ttl0", "hybrid"),
                     duration_ms=60_000.0, service_samples=3)
        flags = summary_flags(rows)
        assert flags["hybrid_beats_ttl0_p99"] is True
        assert flags["chiron_tops_warm_hit"] is True
        # every arm ran under the same idle-memory budget
        assert len({row["budget_mb"] for row in rows}) == 1

    def test_registered_under_coldstart_id(self):
        from repro.experiments import get_experiment
        from repro.experiments.coldstart import run

        assert get_experiment("coldstart") is run
        # the old supplementary cascade table kept its own id
        assert get_experiment("coldstart-cascade") is not run
