"""Tests for the benchmark catalog and the cost/throughput/stats metrics."""

import numpy as np
import pytest

from repro.apps import ALL_WORKLOADS, finra, movie_review, slapp, slapp_v, \
    social_network, workload
from repro.calibration import RuntimeCalibration
from repro.errors import CapacityError, ReproError, WorkflowError
from repro.metrics import (
    CostModel,
    cdf,
    max_throughput_rps,
    percentile,
    summarize_latencies,
    throughput_report,
)
from repro.metrics.throughput import simulate_closed_loop
from repro.platforms import ASFPlatform, FaastlanePlatform, OpenFaaSPlatform

CAL = RuntimeCalibration.native()


class TestCatalog:
    def test_paper_shapes(self):
        """Stage/function/parallelism counts match §6's benchmark table."""
        sn = social_network()
        assert len(sn.stages) == 4 and sn.num_functions == 10
        assert sn.max_parallelism == 5
        mr = movie_review()
        assert len(mr.stages) == 4 and mr.num_functions == 9
        assert mr.max_parallelism == 4
        sl = slapp()
        assert len(sl.stages) == 2 and sl.num_functions == 7
        assert sl.max_parallelism == 4
        assert all(len(s) > 1 for s in sl.stages)  # "no sequential function"
        slv = slapp_v()
        assert len(slv.stages) == 5 and slv.num_functions == 10
        assert slv.max_parallelism == 5

    def test_finra_parallelism_parameter(self):
        for n in (5, 50, 200):
            wf = finra(n)
            assert len(wf.stages) == 2
            assert wf.max_parallelism == n
            assert wf.num_functions == n + 1

    def test_finra_rejects_bad_parallelism(self):
        with pytest.raises(WorkflowError):
            finra(0)

    def test_slapp_archetypes_have_similar_latency(self):
        """§2.2: 'various execution behaviors but similar latency'."""
        from repro.apps.catalog import SLAPP_ARCHETYPES

        solos = [b.solo_ms for b in SLAPP_ARCHETYPES.values()]
        assert max(solos) / min(solos) < 1.15
        # but very different CPU fractions
        fracs = [b.cpu_ms / b.solo_ms for b in SLAPP_ARCHETYPES.values()]
        assert max(fracs) > 0.9 and min(fracs) < 0.15

    def test_registry_covers_figure13_axis(self):
        assert set(ALL_WORKLOADS) == {
            "social-network", "movie-review", "slapp", "slapp-v",
            "finra-5", "finra-50", "finra-100", "finra-200"}
        for name in ALL_WORKLOADS:
            assert workload(name).num_functions >= 6

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkflowError):
            workload("not-a-workload")


class TestCostModel:
    def test_components_positive_and_sum(self):
        wf = finra(5)
        cost = CostModel().request_cost(OpenFaaSPlatform(CAL), wf)
        assert cost.memory_usd > 0 and cost.cpu_usd > 0
        assert cost.transitions_usd == 0
        assert cost.total_usd == pytest.approx(
            cost.memory_usd + cost.cpu_usd)

    def test_asf_pays_transitions(self):
        wf = finra(5)
        cost = CostModel().request_cost(ASFPlatform(CAL), wf,
                                        latency_ms=500.0)
        assert cost.transitions_usd > 0

    def test_per_million_scale(self):
        wf = finra(5)
        cost = CostModel().request_cost(FaastlanePlatform(CAL), wf,
                                        latency_ms=100.0)
        assert cost.per_million() == pytest.approx(cost.total_usd * 1e6)

    def test_figure19_cost_ordering(self):
        """Figure 19: OpenFaaS and Faastlane near-tie on FINRA-50 (12.3 vs
        11.6 normalized); ASF far above both; Chiron far below."""
        from repro.core.pgp import PGPScheduler
        from repro.core.predictor import LatencyPredictor
        from repro.platforms import ChironPlatform

        wf = finra(50)
        model = CostModel()
        ofs = model.request_cost(OpenFaaSPlatform(CAL), wf).total_usd
        fl = model.request_cost(FaastlanePlatform(CAL), wf).total_usd
        asf = model.request_cost(ASFPlatform(CAL), wf,
                                 latency_ms=2000.0).total_usd
        slo = FaastlanePlatform(CAL).average_latency_ms(wf, repeats=3) + 10
        plan = PGPScheduler(LatencyPredictor(CAL)).schedule(wf, slo)
        chiron = model.request_cost(ChironPlatform(plan, CAL), wf).total_usd
        assert 0.5 < ofs / fl < 2.0       # the near-tie
        assert asf > 3 * max(ofs, fl)     # transitions dominate
        assert chiron < 0.5 * fl          # resource efficiency pays off

    def test_negative_latency_rejected(self):
        with pytest.raises(ReproError):
            CostModel().request_cost(FaastlanePlatform(CAL), finra(2),
                                     latency_ms=-1.0)

    def test_negative_price_rejected(self):
        with pytest.raises(ReproError):
            CostModel(price_gb_second=-1.0)


class TestThroughput:
    def test_report_fields(self):
        wf = finra(5)
        rep = throughput_report(FaastlanePlatform(CAL), wf)
        assert rep.instances_per_node >= 1
        assert rep.rps == pytest.approx(
            rep.instances_per_node * 1000.0 / rep.latency_ms)

    def test_fewer_cores_means_more_instances(self):
        wf = finra(25)
        fl = throughput_report(FaastlanePlatform(CAL), wf)
        t = throughput_report(FaastlanePlatform(CAL, variant="T"), wf)
        assert t.instances_per_node > fl.instances_per_node

    def test_oversized_instance_gets_fractional_share(self):
        """An instance spanning multiple nodes yields < 1 instance/node."""
        wf = finra(50)
        rep = throughput_report(FaastlanePlatform(CAL), wf, node_cores=8)
        assert 0 < rep.instances_per_node < 1
        assert rep.rps == pytest.approx(
            rep.instances_per_node * 1000.0 / rep.latency_ms)

    def test_invalid_node_capacity_rejected(self):
        with pytest.raises(CapacityError):
            throughput_report(FaastlanePlatform(CAL), finra(2), node_cores=0)

    def test_closed_loop_consistent_with_capacity_model(self):
        wf = finra(5)
        p = FaastlanePlatform(CAL)
        per_instance = simulate_closed_loop(p, wf, requests=5)
        rep = throughput_report(p, wf)
        assert per_instance * rep.instances_per_node == pytest.approx(
            rep.rps, rel=0.25)

    def test_max_throughput_shortcut(self):
        wf = finra(5)
        assert max_throughput_rps(FaastlanePlatform(CAL), wf) > 0

    def test_requests_validated(self):
        with pytest.raises(CapacityError):
            simulate_closed_loop(FaastlanePlatform(CAL), finra(2), requests=0)


class TestStats:
    def test_percentiles(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == pytest.approx(50.5)
        assert percentile(data, 99) == pytest.approx(99.01)
        with pytest.raises(ReproError):
            percentile([], 50)
        with pytest.raises(ReproError):
            percentile([1.0], 150)

    def test_cdf_monotone_and_ends_at_100(self):
        values, fracs = cdf([5.0, 1.0, 3.0, 2.0])
        assert np.all(np.diff(values) >= 0)
        assert fracs[-1] == pytest.approx(100.0)
        assert len(values) == 4

    def test_cdf_empty_rejected(self):
        with pytest.raises(ReproError):
            cdf([])

    def test_summary(self):
        s = summarize_latencies([10.0, 20.0, 30.0])
        assert s.count == 3
        assert s.mean_ms == pytest.approx(20.0)
        assert s.min_ms == 10.0 and s.max_ms == 30.0
