"""Tests for the white-box latency predictor (Algorithm 1 + Eq. 1-4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import RuntimeCalibration
from repro.core.predictor import LatencyPredictor
from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.errors import DeploymentError
from repro.workflow import FunctionBehavior, FunctionSpec, Stage, Workflow

CAL = RuntimeCalibration.native()


def predictor(**kw):
    return LatencyPredictor(CAL, **kw)


def behaviors(*solo_cpu):
    return [FunctionBehavior.cpu(ms) for ms in solo_cpu]


class TestAlgorithm1:
    def test_empty_is_zero(self):
        assert predictor().predict_multithread_exec([]) == 0.0

    def test_single_thread_is_solo_plus_spawn(self):
        t = predictor().predict_multithread_exec(behaviors(10.0))
        assert t == pytest.approx(10.0 + CAL.thread_startup_ms, rel=0.01)

    def test_cpu_threads_serialize(self):
        """GIL: total ~ sum of CPU work regardless of thread count."""
        t = predictor().predict_multithread_exec(behaviors(10.0, 10.0, 10.0))
        assert t == pytest.approx(30.0 + 3 * CAL.thread_startup_ms, rel=0.02)

    def test_io_overlaps(self):
        """Blocking ops overlap with the GIL holder (Figure 2)."""
        b = [FunctionBehavior.io(50.0), FunctionBehavior.cpu(50.0)]
        t = predictor().predict_multithread_exec(b)
        assert t == pytest.approx(50.0, rel=0.05)

    def test_all_io_threads_fully_overlap(self):
        b = [FunctionBehavior.io(40.0) for _ in range(8)]
        t = predictor().predict_multithread_exec(b)
        # spawn serialization plus one overlapping 40ms block
        assert t == pytest.approx(40.0 + 8 * CAL.thread_startup_ms, rel=0.10)

    def test_interleaved_cpu_io(self):
        """Two threads alternating cpu/io can hide each other's blocks."""
        b = [FunctionBehavior.of(("cpu", 5.0), ("io", 5.0), ("cpu", 5.0)),
             FunctionBehavior.of(("cpu", 5.0), ("io", 5.0), ("cpu", 5.0))]
        t = predictor().predict_multithread_exec(b)
        # 20ms CPU total; blocks overlap compute: well under 30ms serial
        assert t < 30.0
        assert t >= 20.0

    def test_spawn_excluded_when_requested(self):
        p = predictor()
        with_spawn = p.predict_multithread_exec(behaviors(10.0))
        without = p.predict_multithread_exec(behaviors(10.0),
                                             include_spawn=False)
        assert with_spawn > without
        assert without == pytest.approx(10.0)

    def test_no_gil_runtime_parallel(self):
        p = LatencyPredictor(RuntimeCalibration.no_gil())
        t = p.predict_multithread_exec(behaviors(10.0, 10.0, 10.0, 10.0))
        assert t == pytest.approx(10.0, rel=0.05)

    def test_isolation_overheads_enter_prediction(self):
        p_native = LatencyPredictor(RuntimeCalibration.native())
        p_mpk = LatencyPredictor(RuntimeCalibration.mpk())
        b = behaviors(10.0)
        assert (p_mpk.predict_multithread_exec(b)
                > p_native.predict_multithread_exec(b))

    def test_deterministic(self):
        b = [FunctionBehavior.of(("cpu", 3.0), ("io", 2.0))] * 7
        assert (predictor().predict_multithread_exec(b)
                == predictor().predict_multithread_exec(b))


class TestFluidPrediction:
    def test_needs_positive_cores(self):
        with pytest.raises(DeploymentError):
            predictor().predict_parallel_exec(behaviors(1.0), cores=0)

    def test_four_tasks_three_cores(self):
        t = predictor().predict_parallel_exec(behaviors(*[30.0] * 4), cores=3)
        assert t == pytest.approx(40.0, rel=0.01)

    def test_enough_cores_is_max(self):
        t = predictor().predict_parallel_exec(behaviors(10.0, 25.0, 5.0),
                                              cores=8)
        assert t == pytest.approx(25.0, rel=0.01)

    def test_max_concurrent_queues_tasks(self):
        t = predictor().predict_parallel_exec(behaviors(*[10.0] * 4),
                                              cores=8, max_concurrent=2)
        assert t == pytest.approx(20.0, rel=0.01)

    def test_start_offsets_shift_completion(self):
        t = predictor().predict_parallel_exec(
            behaviors(10.0, 10.0), cores=4, start_offsets=[0.0, 15.0])
        assert t == pytest.approx(25.0, rel=0.01)

    def test_offsets_length_checked(self):
        with pytest.raises(DeploymentError):
            predictor().predict_parallel_exec(behaviors(1.0), cores=1,
                                              start_offsets=[0.0, 1.0])

    def test_io_does_not_occupy_cores(self):
        b = [FunctionBehavior.of(("cpu", 5.0), ("io", 20.0)),
             FunctionBehavior.cpu(25.0)]
        t = predictor().predict_parallel_exec(b, cores=1)
        # io task's block overlaps the cpu task's compute
        assert t < 50.0 - 5.0


class TestEq4:
    def test_orchestrator_thread_group_skips_fork(self):
        p = predictor()
        t0 = p.predict_process(behaviors(10.0), fork_position=0)
        t1 = p.predict_process(behaviors(10.0), fork_position=1)
        assert t1 - t0 == pytest.approx(CAL.process_startup_ms)

    def test_fork_position_adds_block_time(self):
        p = predictor()
        t1 = p.predict_process(behaviors(10.0), fork_position=1)
        t5 = p.predict_process(behaviors(10.0), fork_position=5)
        assert t5 - t1 == pytest.approx(4 * CAL.fork_block_ms)


def _staged_workflow_and_plan(groups, modes=None):
    """One parallel stage partitioned into the given name groups."""
    names = [n for g in groups for n in g]
    wf = Workflow("wf", [Stage("s0", [
        FunctionSpec(n, FunctionBehavior.cpu(5.0)) for n in names])])
    procs = []
    for i, g in enumerate(groups):
        mode = (modes[i] if modes else
                (ExecMode.THREAD if i == 0 else ExecMode.PROCESS))
        procs.append(ProcessAssignment(functions=tuple(g), mode=mode))
    wrap = Wrap(name="w1", stages=(StageAssignment(0, tuple(procs)),))
    plan = DeploymentPlan(workflow_name="wf", wraps=(wrap,))
    return wf, plan


class TestEq3Eq2Eq1:
    def test_wrap_ipc_pairs(self):
        wf, plan = _staged_workflow_and_plan([["a"], ["b"], ["c"]])
        p = predictor()
        t = p.predict_wrap_stage(plan.wraps[0].stages[0], wf)
        base = p.predict_process([wf.function("b").behavior], fork_position=2)
        assert t == pytest.approx(base + 2 * CAL.t_ipc_ms, rel=0.05)

    def test_single_process_no_ipc(self):
        wf, plan = _staged_workflow_and_plan([["a", "b"]])
        p = predictor()
        t = p.predict_wrap_stage(plan.wraps[0].stages[0], wf)
        exec_t = p.predict_multithread_exec(
            [wf.function("a").behavior, wf.function("b").behavior])
        assert t == pytest.approx(exec_t)

    def test_multi_wrap_stage_pays_rpc_and_inv(self):
        names = ["a", "b", "c"]
        wf = Workflow("wf", [Stage("s0", [
            FunctionSpec(n, FunctionBehavior.cpu(5.0)) for n in names])])
        w1 = Wrap(name="w1", stages=(StageAssignment(0, (
            ProcessAssignment(("a",), ExecMode.THREAD),)),))
        w2 = Wrap(name="w2", stages=(StageAssignment(0, (
            ProcessAssignment(("b",), ExecMode.THREAD),)),))
        w3 = Wrap(name="w3", stages=(StageAssignment(0, (
            ProcessAssignment(("c",), ExecMode.THREAD),)),))
        plan = DeploymentPlan(workflow_name="wf", wraps=(w1, w2, w3))
        p = predictor()
        t = p.predict_stage(plan, wf, 0)
        solo = p.predict_process([wf.function("c").behavior], fork_position=0)
        expected = solo + 2 * CAL.t_inv_ms + CAL.t_rpc_ms  # k=3 wrap
        assert t == pytest.approx(expected, rel=0.01)

    def test_stage_without_wrap_rejected(self):
        wf, plan = _staged_workflow_and_plan([["a"]])
        with pytest.raises(DeploymentError):
            predictor().predict_stage(plan, wf, 3)

    def test_workflow_sums_stages(self):
        wf = Workflow("wf", [
            Stage("s0", [FunctionSpec("a", FunctionBehavior.cpu(5.0))]),
            Stage("s1", [FunctionSpec("b", FunctionBehavior.cpu(7.0))]),
        ])
        wrap = Wrap(name="w1", stages=(
            StageAssignment(0, (ProcessAssignment(("a",), ExecMode.THREAD),)),
            StageAssignment(1, (ProcessAssignment(("b",), ExecMode.THREAD),)),
        ))
        plan = DeploymentPlan(workflow_name="wf", wraps=(wrap,))
        p = predictor()
        total = p.predict_workflow(wf, plan)
        s0 = p.predict_stage(plan, wf, 0)
        s1 = p.predict_stage(plan, wf, 1)
        assert total == pytest.approx(s0 + s1)

    def test_conservatism_scales_prediction(self):
        wf, plan = _staged_workflow_and_plan([["a", "b"]])
        base = predictor().predict_workflow(wf, plan)
        inflated = predictor(conservatism=1.2).predict_workflow(wf, plan)
        assert inflated == pytest.approx(1.2 * base)

    def test_pool_plan_prediction(self):
        names = [f"f{i}" for i in range(6)]
        wf = Workflow("wf", [Stage("s0", [
            FunctionSpec(n, FunctionBehavior.cpu(10.0)) for n in names])])
        wrap = Wrap(name="w1", stages=(StageAssignment(0, (
            ProcessAssignment(tuple(names), ExecMode.POOL),)),))
        plan = DeploymentPlan(workflow_name="wf", wraps=(wrap,),
                              cores={"w1": 3}, pool_workers=6)
        t = predictor().predict_stage(plan, wf, 0)
        # 60ms work on 3 cores -> >= 20ms; well under GIL-serial 60ms
        assert 20.0 <= t <= 30.0


@settings(deadline=None, max_examples=25)
@given(st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1,
                max_size=8))
def test_property_gil_exec_bounded(works):
    """Algorithm 1 output lies between max(solo) and sum(solo)+spawn."""
    p = predictor()
    t = p.predict_multithread_exec(behaviors(*works))
    spawn = len(works) * CAL.thread_startup_ms
    assert t >= max(works) - 1e-6
    assert t <= sum(works) + spawn + 1e-6


@settings(deadline=None, max_examples=25)
@given(st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1,
                max_size=8),
       st.integers(min_value=1, max_value=8))
def test_property_fluid_work_conservation(works, cores):
    p = predictor()
    t = p.predict_parallel_exec(behaviors(*works), cores=cores)
    assert t >= max(works) - 1e-6
    assert t >= sum(works) / cores - 1e-6
    assert t <= sum(works) + 1e-6
