"""Cross-validation: the white-box Predictor vs the simulated runtime.

The predictor (Algorithm 1 + Eq. 1-4) and the DES runtime are independent
implementations of the same mechanisms; Figure 12's headline (6.7 % mean
error) only makes sense if they track each other across arbitrary
workloads and plans.  These property tests pin that agreement.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.platforms import ChironPlatform
from repro.workflow import random_workflow

CAL = RuntimeCalibration.native()


def agreement(wf, plan, repeats=1):
    predictor = LatencyPredictor(CAL, conservatism=1.0)
    predicted = predictor.predict_workflow(wf, plan)
    platform = ChironPlatform(plan, CAL)
    if repeats == 1:
        measured = platform.run(wf).latency_ms  # jitter-free median run
    else:
        measured = platform.average_latency_ms(wf, repeats=repeats)
    return predicted, measured


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(min_value=0, max_value=500),
       slo_scale=st.sampled_from([0.6, 1.5, 4.0]))
def test_property_prediction_tracks_runtime(seed, slo_scale):
    """Jitter-free runs stay within 25 % of the prediction."""
    wf = random_workflow(seed, max_stages=3, max_parallelism=6,
                         max_segment_ms=12.0)
    slo = max(wf.critical_path_ms * slo_scale, 5.0)
    plan = PGPScheduler(LatencyPredictor(CAL)).schedule(wf, slo)
    predicted, measured = agreement(wf, plan)
    assert predicted == pytest.approx(measured, rel=0.25, abs=3.0)


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(min_value=0, max_value=300))
def test_property_prediction_tracks_forked_plans(seed):
    """Agreement also holds when every group forks (process-only plans)."""
    wf = random_workflow(seed, max_stages=2, max_parallelism=6,
                         max_segment_ms=10.0)
    sched = PGPScheduler(LatencyPredictor(CAL),
                         options=PGPOptions(orchestrator_threads=False))
    plan = sched.schedule(wf, wf.critical_path_ms * 1.2)
    predicted, measured = agreement(wf, plan)
    assert predicted == pytest.approx(measured, rel=0.30, abs=5.0)


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(min_value=0, max_value=300))
def test_property_pool_prediction_tracks_runtime(seed):
    wf = random_workflow(seed, max_stages=2, max_parallelism=5,
                         max_segment_ms=10.0)
    sched = PGPScheduler(LatencyPredictor(CAL))
    plan = sched.schedule_pool(wf, wf.total_work_ms * 2)
    predicted, measured = agreement(wf, plan)
    assert predicted == pytest.approx(measured, rel=0.35, abs=5.0)


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(min_value=0, max_value=300))
def test_property_prediction_never_wildly_low(seed):
    """The predictor must not underestimate by more than ~20 % — PGP's SLO
    guarantee (Figure 14) rests on this one-sidedness plus conservatism."""
    wf = random_workflow(seed, max_stages=3, max_parallelism=5,
                         max_segment_ms=10.0)
    plan = PGPScheduler(LatencyPredictor(CAL)).schedule(
        wf, wf.critical_path_ms * 2.0)
    predicted, measured = agreement(wf, plan)
    assert predicted >= 0.8 * measured


def test_agreement_on_the_paper_workloads():
    """Point check on the calibrated apps (tighter tolerance)."""
    from repro.apps import finra, movie_review, social_network

    for wf in (social_network(), movie_review(), finra(25)):
        plan = PGPScheduler(LatencyPredictor(CAL)).schedule(
            wf, wf.critical_path_ms * 3)
        predicted, measured = agreement(wf, plan, repeats=5)
        assert predicted == pytest.approx(measured, rel=0.15)
