"""Tests for the processor-sharing CPU model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.runtime.cpusched import FluidCPU
from repro.simcore import Environment


def run_tasks(capacity, works, stagger=0.0):
    """Run CPU tasks; return list of (start, end) per task."""
    env = Environment()
    cpu = FluidCPU(env, capacity)
    spans = []

    def task(env, work, delay):
        yield env.timeout(delay)
        t0 = env.now
        yield cpu.run(work)
        spans.append((t0, env.now))

    for i, work in enumerate(works):
        env.process(task(env, work, stagger * i))
    env.run()
    return sorted(spans), cpu


def test_invalid_capacity():
    with pytest.raises(SimulationError):
        FluidCPU(Environment(), 0)


def test_negative_work_rejected():
    env = Environment()
    cpu = FluidCPU(env, 1)
    with pytest.raises(SimulationError):
        cpu.run(-1.0)


def test_zero_work_completes_instantly():
    env = Environment()
    cpu = FluidCPU(env, 1)
    ev = cpu.run(0.0)
    assert ev.triggered and ev.ok


def test_single_task_runs_at_full_speed():
    spans, _ = run_tasks(1, [10.0])
    assert spans[0][1] == pytest.approx(10.0)


def test_task_cannot_exceed_one_core():
    """One task on a 4-core cpuset still takes its full work time."""
    spans, _ = run_tasks(4, [10.0])
    assert spans[0][1] == pytest.approx(10.0)


def test_two_tasks_one_core_share_equally():
    spans, _ = run_tasks(1, [10.0, 10.0])
    assert spans[0][1] == pytest.approx(20.0)
    assert spans[1][1] == pytest.approx(20.0)


def test_four_tasks_three_cores_stretch_by_four_thirds():
    """The Figure 7 effect: 4 parallel tasks on 3 CPUs -> 4/3 slowdown."""
    spans, _ = run_tasks(3, [30.0] * 4)
    for _, end in spans:
        assert end == pytest.approx(40.0)


def test_unequal_works_short_leaves_early():
    # Two tasks, one core: both at rate 1/2 until the short one finishes at
    # t=10 (5 work done each), then the long one runs alone.
    spans, _ = run_tasks(1, [5.0, 20.0])
    assert spans[0][1] == pytest.approx(10.0)
    assert spans[1][1] == pytest.approx(25.0)


def test_late_arrival_slows_running_task():
    # Task A (work 10) starts alone; at t=5, B (work 10) arrives.
    # A: 5 done by t=5, remaining 5 at rate 1/2 -> ends t=15.
    # B: from t=5 at 1/2 until t=15 (5 done), then alone -> ends t=20.
    spans, _ = run_tasks(1, [10.0, 10.0], stagger=5.0)
    assert spans[0] == (pytest.approx(0.0), pytest.approx(15.0))
    assert spans[1] == (pytest.approx(5.0), pytest.approx(20.0))


def test_consumed_accounting():
    _, cpu = run_tasks(2, [7.0, 3.0, 5.0])
    assert cpu.consumed_core_ms == pytest.approx(15.0, rel=1e-6)


def test_utilization_and_runnable():
    env = Environment()
    cpu = FluidCPU(env, 2)
    assert cpu.runnable == 0 and cpu.utilization() == 0.0

    def task(env):
        yield cpu.run(10.0)

    env.process(task(env))
    env.process(task(env))
    env.process(task(env))
    env.run(until=1.0)
    assert cpu.runnable == 3
    assert cpu.utilization() == pytest.approx(1.0)


def test_weighted_sharing():
    env = Environment()
    cpu = FluidCPU(env, 1)
    ends = {}

    def task(env, name, work, weight):
        yield cpu.run(work, weight=weight)
        ends[name] = env.now

    env.process(task(env, "heavy", 10.0, 3.0))
    env.process(task(env, "light", 10.0, 1.0))
    env.run()
    # heavy gets 3/4 of the core: finishes its 10 work at t=13.33; light has
    # 10/4=... light got 13.33/4=3.33 done, then runs alone: 13.33+6.67=20.
    assert ends["heavy"] == pytest.approx(40.0 / 3.0)
    assert ends["light"] == pytest.approx(20.0)


def test_fractional_capacity():
    """cgroup-style fractional cpusets slow a single task down? No - a task
    on a 0.5-core set runs at 0.5 rate only when contended by weight; a
    single task is capped by min(1, cap/n) = 0.5."""
    spans, _ = run_tasks(0.5, [10.0])
    assert spans[0][1] == pytest.approx(20.0)


@settings(deadline=None, max_examples=40)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    works=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1,
                   max_size=12),
)
def test_property_conservation_and_bounds(capacity, works):
    """Total completion time respects work conservation and solo bounds."""
    spans, cpu = run_tasks(capacity, works)
    makespan = max(end for _, end in spans)
    total_work = sum(works)
    # Work conservation: the busy cpuset cannot finish faster than work/cores
    # nor faster than the largest single task.
    assert makespan >= max(works) - 1e-6
    assert makespan >= total_work / capacity - 1e-6
    # And never slower than fully serialized execution.
    assert makespan <= total_work + 1e-6
    assert cpu.consumed_core_ms == pytest.approx(total_work, rel=1e-5)
    assert cpu.runnable == 0
