"""Tests for gateway/ASF invocation paths, IPC, storage and isolation."""

import pytest
from hypothesis import given, strategies as st

from repro.calibration import (
    ASF_DISPATCH_LATENCY_MS,
    RuntimeCalibration,
)
from repro.errors import IsolationFault, SimulationError
from repro.runtime.isolation import (
    MPK,
    NATIVE,
    SFI,
    AccessMode,
    MpkDomain,
    private_arenas_for,
)
from repro.runtime.memory import SandboxFootprint, deployment_memory_mb, sandbox_memory_mb
from repro.runtime.network import ASFDispatcher, Gateway, ipc_collect
from repro.runtime.storage import StorageService
from repro.simcore import Environment
from repro.workflow import FunctionBehavior

CAL = RuntimeCalibration.native()


class TestGateway:
    def test_single_invocation_cost(self):
        env = Environment()
        gw = Gateway(env, CAL)

        def call(env):
            yield from gw.invoke()

        env.process(call(env))
        env.run()
        expected = (CAL.gateway_service_base_ms
                    + CAL.gateway_service_per_inflight_ms + CAL.t_rpc_ms)
        assert env.now == pytest.approx(expected)
        assert gw.invocations == 1

    def test_contention_raises_per_invocation_cost(self):
        """The superlinear Figure 3 effect: more in-flight -> slower each."""

        def overhead(n):
            env = Environment()
            gw = Gateway(env, CAL)

            def call(env):
                yield from gw.invoke()

            for _ in range(n):
                env.process(call(env))
            env.run()
            return env.now

        assert overhead(50) > overhead(5) > overhead(1)

    def test_payload_transfer_cost(self):
        env = Environment()
        gw = Gateway(env, CAL)

        def call(env):
            yield from gw.invoke(payload_mb=15.0)

        env.process(call(env))
        env.run()
        assert env.now >= 15.0 / CAL.pipe_bandwidth_mb_per_ms


class TestASF:
    def test_first_dispatch_costs_dispatch_latency(self):
        env = Environment()
        asf = ASFDispatcher(env)

        def call(env):
            yield from asf.dispatch(0)

        env.process(call(env))
        env.run()
        assert env.now == pytest.approx(ASF_DISPATCH_LATENCY_MS)
        assert asf.transitions == 1

    def test_parallel_stage_scheduling_overhead_shape(self):
        """Figure 3: ~150 ms at 5 branches, ~1.6 s at 50."""

        def stage_overhead(n):
            env = Environment()
            asf = ASFDispatcher(env)

            def branch(env, i):
                yield from asf.dispatch(i)

            for i in range(n):
                env.process(branch(env, i))
            env.run()
            return env.now

        t5, t25, t50 = stage_overhead(5), stage_overhead(25), stage_overhead(50)
        assert t5 == pytest.approx(150 + 4 * 31, rel=0.05)
        assert 600 <= t25 <= 1100
        assert 1300 <= t50 <= 2000
        assert t50 / t5 > 4  # strongly superlinear vs parallelism


class TestIpc:
    def test_pairs_scaling(self):
        env = Environment()

        def run(env):
            yield from ipc_collect(env, n_processes=5, data_mb=0.0, cal=CAL)

        env.process(run(env))
        env.run()
        assert env.now == pytest.approx(4 * CAL.t_ipc_ms)

    def test_single_process_free(self):
        env = Environment()

        def run(env):
            yield from ipc_collect(env, n_processes=1, data_mb=0.0, cal=CAL)

        env.process(run(env))
        env.run()
        assert env.now == pytest.approx(0.0)

    def test_data_streaming_cost(self):
        env = Environment()

        def run(env):
            yield from ipc_collect(env, n_processes=2, data_mb=3.0, cal=CAL)

        env.process(run(env))
        env.run()
        assert env.now == pytest.approx(
            CAL.t_ipc_ms + 3.0 / CAL.pipe_bandwidth_mb_per_ms)


class TestStorage:
    def test_s3_smallest_exchange_hits_52ms_floor(self):
        env = Environment()
        s3 = StorageService.s3(env)
        assert s3.exchange_latency_ms(1e-6) == pytest.approx(52.0, rel=0.01)

    def test_s3_1gb_exchange_about_25s(self):
        env = Environment()
        s3 = StorageService.s3(env)
        assert s3.exchange_latency_ms(1024.0) == pytest.approx(25652.0, rel=0.02)

    def test_minio_much_faster_locally(self):
        env = Environment()
        s3 = StorageService.s3(env)
        minio = StorageService.minio(env)
        for mb in (1e-6, 1.0, 1024.0):
            assert minio.exchange_latency_ms(mb) < s3.exchange_latency_ms(mb)

    def test_simulated_exchange_matches_closed_form(self):
        env = Environment()
        minio = StorageService.minio(env)

        def run(env):
            yield from minio.exchange(10.0)

        env.process(run(env))
        env.run()
        assert env.now == pytest.approx(minio.exchange_latency_ms(10.0))
        assert minio.operations == 2
        assert minio.bytes_moved_mb == pytest.approx(20.0)

    def test_negative_payload_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            StorageService.s3(env).op_latency_ms(-1.0)

    @given(st.floats(min_value=0.0, max_value=4096.0))
    def test_property_monotone_in_size(self, mb):
        env = Environment()
        s3 = StorageService.s3(env)
        assert s3.exchange_latency_ms(mb + 1.0) > s3.exchange_latency_ms(mb)


class TestIsolationCosts:
    def test_table1_ordering_mpk_cheaper_than_sfi(self):
        fib = FunctionBehavior.cpu(10.0)
        disk = FunctionBehavior.of(("cpu", 2.0), ("io", 8.0))
        for behavior in (fib, disk):
            assert (MPK.function_latency_ms(behavior)
                    < SFI.function_latency_ms(behavior))
            assert (NATIVE.function_latency_ms(behavior)
                    < MPK.function_latency_ms(behavior))

    def test_exec_overhead_percentages(self):
        fib = FunctionBehavior.cpu(100.0)
        assert SFI.apply(fib).solo_ms == pytest.approx(152.9)
        assert MPK.apply(fib).solo_ms == pytest.approx(135.2)


class TestMpkDomain:
    def test_private_arena_blocks_other_threads(self):
        dom = MpkDomain()
        arenas = private_arenas_for(dom, ["t1", "t2"])
        dom.write("t1", arenas["t1"], "secret", 42)
        assert dom.read("t1", arenas["t1"], "secret") == 42
        with pytest.raises(IsolationFault):
            dom.read("t2", arenas["t1"], "secret")
        with pytest.raises(IsolationFault):
            dom.write("t2", arenas["t1"], "secret", 0)

    def test_grant_enables_access(self):
        dom = MpkDomain()
        arenas = private_arenas_for(dom, ["t1", "t2"])
        dom.grant("t2", dom.key_of(arenas["t1"]), AccessMode.READ)
        dom.write("t1", arenas["t1"], "x", "shared")
        assert dom.read("t2", arenas["t1"], "x") == "shared"
        with pytest.raises(IsolationFault):
            dom.write("t2", arenas["t1"], "x", "nope")  # read-only grant

    def test_revoke_removes_access(self):
        dom = MpkDomain()
        key = dom.create_arena("a")
        dom.grant("t", key)
        dom.write("t", "a", "v", 1)
        dom.revoke("t", key)
        with pytest.raises(IsolationFault):
            dom.read("t", "a", "v")

    def test_key_exhaustion(self):
        dom = MpkDomain()
        for i in range(15):  # keys 1..15
            dom.create_arena(f"a{i}")
        with pytest.raises(IsolationFault):
            dom.create_arena("one-too-many")

    def test_duplicate_arena_rejected(self):
        dom = MpkDomain()
        dom.create_arena("a")
        with pytest.raises(IsolationFault):
            dom.create_arena("a")

    def test_unknown_arena_rejected(self):
        with pytest.raises(IsolationFault):
            MpkDomain().key_of("ghost")

    def test_missing_field_faults(self):
        dom = MpkDomain()
        key = dom.create_arena("a")
        dom.grant("t", key)
        with pytest.raises(IsolationFault):
            dom.read("t", "a", "missing")


class TestMemoryModel:
    def test_one_to_one_duplicates_runtime(self):
        """N single-function sandboxes cost ~N runtimes; one shared sandbox
        costs ~1 runtime + deltas (Observation 4's redundancy)."""
        n = 10
        one_to_one = [SandboxFootprint(functions=1) for _ in range(n)]
        many_to_one = [SandboxFootprint(functions=n, processes=n)]
        m1 = deployment_memory_mb(one_to_one, CAL)
        m2 = deployment_memory_mb(many_to_one, CAL)
        assert m2 < m1 * 0.35  # >65% saving from de-duplication

    def test_threads_cheaper_than_processes(self):
        procs = SandboxFootprint(functions=10, processes=10)
        threads = SandboxFootprint(functions=10, processes=1, threads=10)
        assert (sandbox_memory_mb(threads, CAL)
                < sandbox_memory_mb(procs, CAL))

    def test_pool_workers_expensive(self):
        pool = SandboxFootprint(functions=10, processes=1, pool_workers=10)
        threads = SandboxFootprint(functions=10, processes=1, threads=10)
        assert (sandbox_memory_mb(pool, CAL)
                > 3 * sandbox_memory_mb(threads, CAL))

    def test_invalid_footprint(self):
        from repro.errors import DeploymentError
        with pytest.raises(DeploymentError):
            SandboxFootprint(functions=-1)
        with pytest.raises(DeploymentError):
            SandboxFootprint(functions=1, processes=0)
