"""Tests for ML feature extraction and shared-cpuset wrap prediction."""

import numpy as np
import pytest

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.mlkit.features import (
    FUNCTION_FEATURE_DIM,
    graph_features,
    sequence_features,
    vector_features,
)
from repro.workflow import FunctionBehavior, FunctionSpec, Stage, Workflow

CAL = RuntimeCalibration.native()


def _workflow(n=4, cpu=5.0):
    return Workflow("wf", [Stage("s0", [
        FunctionSpec(f"f{i}", FunctionBehavior.of(("cpu", cpu), ("io", 2.0)))
        for i in range(n)])])


def _plan(wf, groups, modes=None, cores=None):
    procs = []
    for i, g in enumerate(groups):
        mode = modes[i] if modes else (
            ExecMode.THREAD if i == 0 else ExecMode.PROCESS)
        procs.append(ProcessAssignment(tuple(g), mode))
    wrap = Wrap(name="w1", stages=(StageAssignment(0, tuple(procs)),))
    return DeploymentPlan(workflow_name="wf", wraps=(wrap,),
                          cores=cores or {})


class TestFeatureExtraction:
    def test_vector_width_is_stable(self):
        wf = _workflow(4)
        plan = _plan(wf, [["f0", "f1"], ["f2", "f3"]])
        vec = vector_features(wf, plan, max_functions=6)
        assert vec.shape == (6 * FUNCTION_FEATURE_DIM + 6,)

    def test_vector_padding_for_small_plans(self):
        wf = _workflow(2)
        plan = _plan(wf, [["f0", "f1"]])
        vec = vector_features(wf, plan, max_functions=5)
        per_fn = vec[:5 * FUNCTION_FEATURE_DIM].reshape(5, -1)
        # rows beyond the 2 real functions are zero padding
        assert np.allclose(per_fn[2:], 0.0)

    def test_vector_deterministic_ordering(self):
        wf = _workflow(4)
        a = vector_features(wf, _plan(wf, [["f0", "f1"], ["f2", "f3"]]), 4)
        b = vector_features(wf, _plan(wf, [["f1", "f0"], ["f3", "f2"]]), 4)
        # rows sort by solo latency, so intra-process order is irrelevant
        assert np.allclose(a, b)

    def test_mode_encoded_in_features(self):
        wf = _workflow(2)
        threads = _plan(wf, [["f0", "f1"]], modes=[ExecMode.THREAD])
        procs = _plan(wf, [["f0", "f1"]], modes=[ExecMode.PROCESS])
        assert not np.allclose(vector_features(wf, threads, 2),
                               vector_features(wf, procs, 2))

    def test_sequence_shape(self):
        wf = _workflow(3)
        seq = sequence_features(wf, _plan(wf, [["f0", "f1", "f2"]]), 3)
        assert seq.shape == (3, FUNCTION_FEATURE_DIM)

    def test_graph_structure(self):
        wf = _workflow(4)
        plan = _plan(wf, [["f0", "f1"], ["f2", "f3"]])
        adj, nodes = graph_features(wf, plan)
        # workflow + 1 stage + 2 processes + 4 functions = 8 nodes
        assert nodes.shape == (8, FUNCTION_FEATURE_DIM)
        assert adj.shape == (8, 8)
        assert np.allclose(adj, adj.T)
        # containment edges only: workflow-stage(1) + stage-proc(2) +
        # proc-fn(4) = 7 undirected edges
        assert adj.sum() == pytest.approx(2 * 7)


class TestSharedCpusetPrediction:
    def test_shared_equals_dedicated_when_cores_suffice(self):
        wf = _workflow(3)
        sa = _plan(wf, [["f0"], ["f1"], ["f2"]]).wraps[0].stages[0]
        p = LatencyPredictor(CAL)
        dedicated = p.predict_wrap_stage(sa, wf)
        shared = p.predict_wrap_stage_shared(sa, wf, cores=3)
        assert shared == pytest.approx(dedicated, rel=0.15)

    def test_fewer_cores_predicts_slower(self):
        wf = _workflow(4, cpu=20.0)
        sa = _plan(wf, [["f0"], ["f1"], ["f2"], ["f3"]],
                   modes=[ExecMode.PROCESS] * 4).wraps[0].stages[0]
        p = LatencyPredictor(CAL)
        lat = [p.predict_wrap_stage_shared(sa, wf, cores=c)
               for c in (4, 2, 1)]
        assert lat[0] < lat[1] < lat[2]

    def test_predict_stage_uses_shared_model_when_trimmed(self):
        wf = _workflow(4, cpu=20.0)
        full = _plan(wf, [["f0"], ["f1"], ["f2"], ["f3"]],
                     modes=[ExecMode.PROCESS] * 4, cores={"w1": 4})
        trimmed = _plan(wf, [["f0"], ["f1"], ["f2"], ["f3"]],
                        modes=[ExecMode.PROCESS] * 4, cores={"w1": 1})
        p = LatencyPredictor(CAL)
        assert (p.predict_stage(trimmed, wf, 0)
                > p.predict_stage(full, wf, 0) * 1.5)

    def test_trim_cores_respects_slo_against_runtime(self):
        """trim_cores' shared-model predictions hold up in the simulator."""
        from repro.platforms import ChironPlatform

        wf = _workflow(6, cpu=15.0)
        sched = PGPScheduler(LatencyPredictor(CAL, conservatism=1.1))
        slo = 80.0
        plan = sched.schedule(wf, slo)
        trimmed = sched.trim_cores(wf, plan, slo)
        assert trimmed.total_cores <= plan.total_cores
        if (trimmed.predicted_latency_ms or 0) <= slo:
            measured = ChironPlatform(trimmed, CAL).run(wf).latency_ms
            assert measured <= slo * 1.05
