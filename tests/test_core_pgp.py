"""Tests for the PGP scheduler (Algorithm 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.wrap import ExecMode
from repro.errors import SchedulingError
from repro.workflow import (
    FunctionBehavior,
    FunctionSpec,
    Stage,
    Workflow,
    WorkflowBuilder,
    random_workflow,
)

CAL = RuntimeCalibration.native()


def scheduler(**kw):
    opts = PGPOptions(**kw.pop("options", {}))
    return PGPScheduler(LatencyPredictor(CAL, conservatism=1.0), options=opts)


def fanout_workflow(n=20, cpu_ms=8.0, name="fan"):
    return (WorkflowBuilder(name)
            .parallel("fan", [(f"f-{i}", FunctionBehavior.cpu(cpu_ms))
                              for i in range(n)])
            .build())


class TestScheduleBasics:
    def test_invalid_slo(self):
        with pytest.raises(SchedulingError):
            scheduler().schedule(fanout_workflow(), slo_ms=0)

    def test_loose_slo_yields_single_wrap_single_process(self):
        plan = scheduler().schedule(fanout_workflow(), slo_ms=10_000)
        assert plan.n_wraps == 1
        assert plan.processes_in_stage(0) == 1
        assert plan.total_cores == 1
        assert plan.predicted_latency_ms <= 10_000

    def test_tight_slo_adds_processes(self):
        loose = scheduler().schedule(fanout_workflow(), slo_ms=10_000)
        tight = scheduler().schedule(fanout_workflow(), slo_ms=60)
        assert tight.processes_in_stage(0) > loose.processes_in_stage(0)
        assert tight.predicted_latency_ms <= 60

    def test_plan_records_slo_and_prediction(self):
        plan = scheduler().schedule(fanout_workflow(), slo_ms=100)
        assert plan.slo_ms == 100
        assert plan.predicted_latency_ms is not None

    def test_unsatisfiable_slo_returns_best_effort(self):
        plan = scheduler().schedule(fanout_workflow(), slo_ms=1.0)
        assert plan.predicted_latency_ms > 1.0  # best effort, flagged

    def test_unsatisfiable_slo_strict_raises(self):
        sched = scheduler(options={"strict": True})
        with pytest.raises(SchedulingError):
            sched.schedule(fanout_workflow(), slo_ms=1.0)

    def test_plan_validates_against_workflow(self):
        wf = fanout_workflow()
        plan = scheduler().schedule(wf, slo_ms=80)
        plan.validate(wf)  # must not raise

    def test_cpu_grows_monotonically_with_tightness(self):
        """Figure 17's premise: tighter SLOs buy more CPUs."""
        wf = fanout_workflow(30, cpu_ms=6.0)
        cores = [scheduler().schedule(wf, slo_ms=slo).total_cores
                 for slo in (2000, 200, 100, 60)]
        assert cores == sorted(cores)

    def test_sequential_stage_rides_in_wrap1_as_thread(self):
        wf = (WorkflowBuilder("seq")
              .sequential("a", ("a", FunctionBehavior.cpu(2.0)))
              .parallel("fan", [(f"f-{i}", FunctionBehavior.cpu(5.0))
                                for i in range(10)])
              .build())
        plan = scheduler().schedule(wf, slo_ms=40)
        wrap1 = plan.wraps[0]
        sa0 = wrap1.stage(0)
        assert sa0 is not None
        assert sa0.processes[0].mode is ExecMode.THREAD
        assert sa0.processes[0].functions == ("a",)


class TestConflicts:
    def test_runtime_conflicts_get_solo_wraps(self):
        wf = Workflow("wf", [Stage("s0", [
            FunctionSpec("py2", FunctionBehavior.cpu(3.0), runtime="python2"),
            FunctionSpec("py3a", FunctionBehavior.cpu(3.0)),
            FunctionSpec("py3b", FunctionBehavior.cpu(3.0)),
        ])])
        plan = scheduler().schedule(wf, slo_ms=1000)
        plan.validate(wf)
        solo_wraps = [w for w in plan.wraps if w.name.startswith("wrap-solo")]
        assert {f for w in solo_wraps for f in w.function_names} == {"py2"}

    def test_file_conflicts_get_solo_wraps(self):
        wf = Workflow("wf", [Stage("s0", [
            FunctionSpec("w1", FunctionBehavior.cpu(3.0),
                         files_written=frozenset({"/tmp/shared"})),
            FunctionSpec("w2", FunctionBehavior.cpu(3.0),
                         files_written=frozenset({"/tmp/shared"})),
            FunctionSpec("clean", FunctionBehavior.cpu(3.0)),
        ])])
        plan = scheduler().schedule(wf, slo_ms=1000)
        plan.validate(wf)  # validate() itself rejects co-located conflicts
        solo = {f for w in plan.wraps if w.name.startswith("wrap-solo")
                for f in w.function_names}
        # pinning either writer isolates the pair; "clean" is never pinned
        assert len(solo) == 1 and solo < {"w1", "w2"}

    def test_all_conflicted_stage_still_schedulable(self):
        wf = Workflow("wf", [Stage("s0", [
            FunctionSpec("a", FunctionBehavior.cpu(1.0), runtime="python2"),
            FunctionSpec("b", FunctionBehavior.cpu(1.0), runtime="python3"),
        ])])
        plan = scheduler().schedule(wf, slo_ms=1000)
        plan.validate(wf)
        assert plan.n_wraps == 2


class TestKernighanLin:
    def test_kl_balances_heterogeneous_functions(self):
        """Round-robin puts the two heavy fns in different processes only by
        luck; KL must end with them split regardless of input order."""
        durations = [20.0, 20.0, 1.0, 1.0, 1.0, 1.0]
        wf = (WorkflowBuilder("hetero")
              .parallel("mix", [(f"f-{i}", FunctionBehavior.cpu(d))
                                for i, d in enumerate(durations)])
              .build())
        plan = scheduler().schedule(wf, slo_ms=35.0)
        stage_parts = plan.stage_wraps(0)
        heavy_homes = set()
        for _, sa in stage_parts:
            for proc in sa.processes:
                if "f-0" in proc.functions:
                    heavy_homes.add(("h0", tuple(proc.functions)))
                if "f-1" in proc.functions:
                    heavy_homes.add(("h1", tuple(proc.functions)))
        homes = {h[1] for h in heavy_homes}
        assert len(homes) == 2  # the two heavy functions are separated
        assert plan.predicted_latency_ms <= 35.0

    def test_kl_improves_over_round_robin(self):
        durations = [18.0, 1.0, 18.0, 1.0, 18.0, 1.0]
        wf = (WorkflowBuilder("rr-bad")
              .parallel("mix", [(f"f-{i}", FunctionBehavior.cpu(d))
                                for i, d in enumerate(durations)])
              .build())
        with_kl = scheduler().schedule(wf, slo_ms=10_000)
        no_kl = scheduler(options={"kernighan_lin": False}).schedule(
            wf, slo_ms=10_000)
        # with n=1 both are equal; force multi-process by tight SLO
        with_kl = scheduler().schedule(wf, slo_ms=25.0)
        no_kl = scheduler(options={"kernighan_lin": False}).schedule(
            wf, slo_ms=25.0)
        # KL optimizes the max-exec proxy; terms it deliberately ignores
        # (IPC data streaming, wrap grouping) can shift the final prediction
        # by up to its own noise floor, so compare at that granularity.
        noise = PGPScheduler._KL_MIN_GAIN_ABS_MS
        assert (with_kl.predicted_latency_ms
                <= no_kl.predicted_latency_ms + noise)


class TestSearchVariants:
    def test_incremental_and_exponential_agree_on_satisfiability(self):
        wf = fanout_workflow(16, cpu_ms=6.0)
        for slo in (40.0, 80.0, 400.0):
            inc = scheduler(options={"search": "incremental"}).schedule(wf, slo)
            exp = scheduler(options={"search": "exponential"}).schedule(wf, slo)
            assert ((inc.predicted_latency_ms <= slo)
                    == (exp.predicted_latency_ms <= slo))

    def test_unknown_search_rejected(self):
        with pytest.raises(SchedulingError):
            scheduler(options={"search": "magic"}).schedule(
                fanout_workflow(4), slo_ms=100)

    def test_orchestrator_threads_off_forks_everything(self):
        wf = fanout_workflow(6, cpu_ms=5.0)
        plan = scheduler(options={"orchestrator_threads": False}).schedule(
            wf, slo_ms=25.0)
        for _, sa in plan.stage_wraps(0):
            for proc in sa.processes:
                assert proc.mode is ExecMode.PROCESS


class TestRepacking:
    def test_repack_reduces_wrap_count_when_slo_allows(self):
        wf = fanout_workflow(24, cpu_ms=6.0)
        plan = scheduler().schedule(wf, slo_ms=80.0)
        # with a satisfiable SLO the packer should use far fewer sandboxes
        # than one per process
        assert plan.n_wraps <= plan.processes_in_stage(0)
        assert plan.predicted_latency_ms <= 80.0

    def test_wraps_have_cores_assigned(self):
        plan = scheduler().schedule(fanout_workflow(10, 6.0), slo_ms=40.0)
        for wrap in plan.wraps:
            assert plan.cores.get(wrap.name, 0) >= 1


@settings(deadline=None, max_examples=12)
@given(st.integers(min_value=0, max_value=60),
       st.sampled_from([30.0, 120.0, 600.0]))
def test_property_plans_always_valid(seed, slo):
    """Any random workflow yields a structurally valid plan, and satisfiable
    predictions never exceed the SLO."""
    wf = random_workflow(seed, max_stages=3, max_parallelism=6,
                         max_segment_ms=10.0)
    plan = scheduler().schedule(wf, slo_ms=slo)
    plan.validate(wf)
    assert plan.predicted_latency_ms is not None
