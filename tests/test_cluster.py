"""Tests for cluster placement, load generation and saturation search."""

import math

import pytest

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.cluster import (
    ClusterDeployment,
    find_saturation_rps,
    place_on_node,
    run_closed_loop,
    run_open_loop,
)
from repro.errors import CapacityError
from repro.metrics import throughput_report
from repro.platforms import FaastlanePlatform, OpenFaaSPlatform
from repro.runtime.machine import Cluster

CAL = RuntimeCalibration.native()


@pytest.fixture(scope="module")
def wf():
    return finra(5)


class TestPlacement:
    def test_scale_to_and_teardown(self, wf):
        cluster = Cluster(nodes=2, cores_per_node=40,
                          memory_per_node_mb=64 * 1024)
        dep = ClusterDeployment(FaastlanePlatform(CAL), wf, cluster)
        dep.scale_to(3)
        assert dep.count == 3
        used = sum(m.cores_used for m in cluster.machines)
        assert used == pytest.approx(3 * 5)  # 5 cores per instance
        dep.scale_to(1)
        assert dep.count == 1
        dep.teardown()
        assert all(m.cores_used == 0 for m in cluster.machines)

    def test_scale_max_fills_node_by_cpu(self, wf):
        dep = place_on_node(FaastlanePlatform(CAL), wf)
        # 40 cores / 5 cores per instance = 8 instances
        assert dep.count == 8

    def test_one_to_one_places_separate_sandboxes(self, wf):
        dep = place_on_node(OpenFaaSPlatform(CAL), wf)
        # 6 sandboxes x 1 core each -> 6 instances of 6 cores on 40 cores
        assert dep.count == 6
        node = dep.cluster.machines[0]
        assert node.cores_used == pytest.approx(36)

    def test_all_or_nothing_placement(self, wf):
        cluster = Cluster(nodes=1, cores_per_node=7,
                          memory_per_node_mb=64 * 1024)
        dep = ClusterDeployment(FaastlanePlatform(CAL), wf, cluster)
        dep.scale_max()
        assert dep.count == 1  # a second 5-core instance does not fit
        # the failed placement attempt must not leak partial allocations
        assert cluster.machines[0].cores_used == pytest.approx(5)

    def test_placement_capacity_matches_throughput_model(self, wf):
        platform = FaastlanePlatform(CAL)
        dep = place_on_node(platform, wf)
        rep = throughput_report(platform, wf)
        assert dep.count == rep.instances_per_node

    def test_chiron_plan_cores_flow_into_placement(self):
        """Multi-wrap plans place each wrap with its exact cpuset."""
        from repro.core.pgp import PGPScheduler
        from repro.core.predictor import LatencyPredictor
        from repro.platforms import ChironPlatform

        workflow = finra(12)
        plan = PGPScheduler(LatencyPredictor(CAL)).schedule(workflow, 1.0)
        platform = ChironPlatform(plan, CAL)
        assert plan.n_wraps > 1  # performance-first plans fan out
        cores = platform.per_sandbox_cores(workflow)
        assert len(cores) == plan.n_wraps
        assert sum(cores) == plan.total_cores
        dep = place_on_node(platform, workflow)
        used = dep.cluster.machines[0].cores_used
        assert used == pytest.approx(dep.count * plan.total_cores)
        dep.teardown()


class TestLoadGen:
    def test_parameters_validated(self, wf):
        p = FaastlanePlatform(CAL)
        with pytest.raises(CapacityError):
            run_open_loop(p, wf, instances=0, rps=10)
        with pytest.raises(CapacityError):
            run_open_loop(p, wf, instances=1, rps=0)
        with pytest.raises(CapacityError):
            run_closed_loop(p, wf, instances=1, clients=0)

    def test_light_load_no_queueing(self, wf):
        p = FaastlanePlatform(CAL)
        result = run_open_loop(p, wf, instances=4, rps=2.0, requests=60,
                               seed=3, service_pool=8)
        assert result.completed == 60
        assert result.queueing_ratio < 1.1
        assert result.mean_queue_len < 0.5

    def test_overload_builds_queue(self, wf):
        p = FaastlanePlatform(CAL)
        service = p.run(wf).latency_ms            # ~95 ms -> 1 inst ~ 10 rps
        overload = 3 * 1000.0 / service
        result = run_open_loop(p, wf, instances=1, rps=overload,
                               requests=80, seed=3, service_pool=8)
        assert result.queueing_ratio > 1.5
        assert result.mean_queue_len > 1.0

    def test_closed_loop_throughput_scales_with_instances(self, wf):
        p = FaastlanePlatform(CAL)
        one = run_closed_loop(p, wf, instances=1, clients=4, requests=40,
                              seed=5, service_pool=8)
        four = run_closed_loop(p, wf, instances=4, clients=4, requests=40,
                               seed=5, service_pool=8)
        assert four.achieved_rps > 2.5 * one.achieved_rps

    def test_results_deterministic(self, wf):
        p = FaastlanePlatform(CAL)
        a = run_open_loop(p, wf, instances=2, rps=5.0, requests=40, seed=9,
                          service_pool=6)
        b = run_open_loop(p, wf, instances=2, rps=5.0, requests=40, seed=9,
                          service_pool=6)
        assert a.sojourn.mean_ms == b.sojourn.mean_ms


class TestSaturation:
    def test_saturation_near_capacity_model(self, wf):
        """Measured saturation lands in the ballpark of instances/latency."""
        p = FaastlanePlatform(CAL)
        measured = find_saturation_rps(p, wf, requests=200, seed=2,
                                       tolerance=0.15)
        rep = throughput_report(p, wf)
        # finite-horizon tests overshoot steady state by O(10%) (see
        # saturation.py); the capacity model must still be the ballpark
        assert 0.4 * rep.rps <= measured <= 1.5 * rep.rps

    def test_ratio_validated(self, wf):
        with pytest.raises(CapacityError):
            find_saturation_rps(FaastlanePlatform(CAL), wf,
                                max_queueing_ratio=1.0)
