"""Property tests for the anytime plan search (repro.core.search).

The four guarantees the module claims, proven on real catalog apps:

1. every SA-visited plan is structurally valid (functions placed exactly
   once, conflicts respected, wrap/core invariants hold);
2. delta-costed move evaluation bit-matches a from-scratch full prediction
   of the mutated plan — per move kind, and in aggregate;
3. anytime monotonicity: best-so-far cost is non-increasing within a run
   and across budgets (a longer run with the same seed is a trajectory
   prefix-extension of a shorter one);
4. determinism: same seed + same budget => identical plan, identical move
   trace, identical timeline.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.catalog import workload
from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.search import (
    MOVE_KINDS,
    SearchOptions,
    anneal,
    cost_at_budget,
    plan_cost,
    random_plan,
    refine_plan,
)
from repro.errors import SchedulingError

CAL = RuntimeCalibration.native()


def seeded(name="social-network", factor=1.5):
    """A (workflow, kl_plan, slo, predictor) quadruple on a shared cache."""
    wf = workload(name)
    predictor = LatencyPredictor(CAL, conservatism=1.05)
    slo = factor * wf.critical_path_ms
    plan = PGPScheduler(predictor).schedule(wf, slo)
    return wf, plan, slo, predictor


class TestVisitedPlanValidity:
    @settings(deadline=None, max_examples=8)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_every_visited_plan_is_valid(self, seed):
        wf, plan, slo, predictor = seeded()
        visited = []

        def on_visit(candidate):
            candidate.validate(wf)
            visited.append(candidate)

        refine_plan(wf, plan, slo, predictor,
                    SearchOptions(budget=120, seed=seed), on_visit=on_visit)
        assert visited, "search with budget evaluated no candidates"

    def test_visited_plans_respect_conflicts(self):
        # a python2 straggler among python3 peers must stay pinned solo
        from repro.workflow import FunctionBehavior, FunctionSpec, Stage, \
            Workflow

        wf = Workflow("conflicted", [
            Stage("fan", [
                FunctionSpec("py2", FunctionBehavior.cpu(3.0),
                             runtime="python2"),
                FunctionSpec("a", FunctionBehavior.cpu(3.0)),
                FunctionSpec("b", FunctionBehavior.cpu(4.0)),
                FunctionSpec("c", FunctionBehavior.cpu(5.0)),
            ]),
            Stage("join", [FunctionSpec("join",
                                        FunctionBehavior.cpu(2.0))]),
        ])
        predictor = LatencyPredictor(CAL, conservatism=1.05)
        slo = 1.2 * wf.critical_path_ms
        plan = PGPScheduler(predictor).schedule(wf, slo)
        pinned = {w.name for w in plan.wraps if w.name.startswith("wrap-solo")}
        assert pinned, "expected a conflicted solo wrap"

        def on_visit(candidate):
            candidate.validate(wf)  # raises if a conflict pair shares a wrap
            names = {w.name for w in candidate.wraps}
            assert pinned <= names

        refine_plan(wf, plan, slo, predictor,
                    SearchOptions(budget=200, seed=3), on_visit=on_visit)

    def test_result_plan_is_valid_and_annotated(self):
        wf, plan, slo, predictor = seeded("finra-5", 1.2)
        res = refine_plan(wf, plan, slo, predictor,
                          SearchOptions(budget=300, seed=1))
        res.plan.validate(wf)
        assert res.plan.predicted_latency_ms is not None
        assert res.plan.slo_ms == slo
        assert res.feasible == (res.plan.predicted_latency_ms <= slo)
        # the recorded cost is exactly the plan's cost
        assert res.cost == plan_cost(res.plan.predicted_latency_ms,
                                     res.plan.total_cores, slo)


class TestDeltaCostBitIdentity:
    """Delta-costed evaluation == from-scratch full prediction, bitwise."""

    @pytest.mark.parametrize("kind", MOVE_KINDS)
    def test_single_move_kind_matches_full_eval(self, kind):
        # drive only one move kind by replaying propose() directly against
        # a live state; tight SLOs give wide seed plans so every kind has
        # structural room (merge/retrim/swap are impossible on one wrap)
        import random as _random

        from repro.core.pgp import conflicted_functions
        from repro.core.search import _PRUNED, _PlanState

        checked = 0
        for name in ("social-network", "finra-5"):
            wf, plan, slo, predictor = seeded(name, 1.2)
            reference = LatencyPredictor(
                predictor.cal, conservatism=predictor.conservatism,
                gil_handoff=predictor.gil_handoff, cache=False)
            state = _PlanState(wf, plan, slo, predictor,
                               conflicted_functions(wf))
            state.refresh_all()
            rng = _random.Random(7)
            for _ in range(120):
                move = state.propose(kind, rng)
                if move is None or move is _PRUNED:
                    continue
                _detail, affected, undo = move
                mutated = state.to_plan()
                state.refresh_stages(mutated, sorted(affected))
                delta_total = state.total_ms()
                full_total = reference.predict_workflow(wf, mutated)
                assert delta_total == full_total, (
                    f"{kind}: delta {delta_total!r} != full {full_total!r}")
                checked += 1
                # keep the move applied half the time for shape diversity
                if checked % 2:
                    undo()
                    state.refresh_stages(state.to_plan(), sorted(affected))
        assert checked >= 5, f"move kind {kind} produced too few candidates"

    def test_verify_deltas_covers_every_kind_in_aggregate(self):
        verified = {k: 0 for k in MOVE_KINDS}
        for name, factor, seed in (("finra-5", 1.2, 1),
                                   ("social-network", 1.2, 2),
                                   ("movie-review", 1.5, 3),
                                   ("slapp", 1.5, 4)):
            wf, plan, slo, predictor = seeded(name, factor)
            res = refine_plan(
                wf, plan, slo, predictor,
                SearchOptions(budget=250, seed=seed, verify_deltas=True))
            for kind, count in res.delta_verified.items():
                verified[kind] += count
        assert all(v > 0 for v in verified.values()), verified


class TestAnytimeMonotonicity:
    def test_timeline_is_non_increasing(self):
        wf, plan, slo, predictor = seeded("slapp", 1.2)
        res = refine_plan(wf, plan, slo, predictor,
                          SearchOptions(budget=600, seed=5))
        costs = [c for _, c in res.timeline]
        assert costs == sorted(costs, reverse=True)
        assert res.cost == costs[-1]
        assert res.cost <= res.seed_cost

    @settings(deadline=None, max_examples=6)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_best_cost_non_increasing_across_budgets(self, seed):
        wf, plan, slo, predictor = seeded("finra-5", 1.2)
        budgets = [0, 50, 200, 500]
        results = [refine_plan(wf, plan, slo, predictor,
                               SearchOptions(budget=b, seed=seed))
                   for b in budgets]
        costs = [r.cost for r in results]
        assert costs == sorted(costs, reverse=True), (
            f"best-so-far worsened with budget: {dict(zip(budgets, costs))}")

    def test_longer_run_is_prefix_extension(self):
        """The fixed per-move cooling makes a big-budget trajectory extend a
        small-budget one move for move — the exact anytime property."""
        wf, plan, slo, predictor = seeded("social-network", 1.2)
        short = refine_plan(wf, plan, slo, predictor,
                            SearchOptions(budget=150, seed=9))
        long = refine_plan(wf, plan, slo, predictor,
                           SearchOptions(budget=450, seed=9))
        assert long.moves[:len(short.moves)] == short.moves
        # and the timeline read-off at the short budget matches exactly
        assert cost_at_budget(long.timeline, 150) == short.cost


class TestDeterminism:
    @settings(deadline=None, max_examples=6)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=300))
    def test_same_seed_same_budget_identical(self, seed, budget):
        wf, plan, slo, predictor = seeded("movie-review", 1.2)
        opts = SearchOptions(budget=budget, seed=seed)
        a = refine_plan(wf, plan, slo, predictor, opts)
        b = refine_plan(wf, plan, slo, predictor, opts)
        assert a.plan.fingerprint(wf) == b.plan.fingerprint(wf)
        assert a.plan.predicted_latency_ms == b.plan.predicted_latency_ms
        assert a.cost == b.cost
        assert a.moves == b.moves
        assert a.timeline == b.timeline

    def test_different_seeds_diverge(self):
        wf, plan, slo, predictor = seeded("movie-review", 1.2)
        a = refine_plan(wf, plan, slo, predictor,
                        SearchOptions(budget=200, seed=1))
        b = refine_plan(wf, plan, slo, predictor,
                        SearchOptions(budget=200, seed=2))
        assert a.moves != b.moves  # astronomically unlikely to collide

    def test_random_plan_is_deterministic_and_valid(self):
        import random as _random

        wf = workload("slapp-v")
        slo = 2.0 * wf.critical_path_ms
        p1 = random_plan(wf, slo, _random.Random(42))
        p2 = random_plan(wf, slo, _random.Random(42))
        p1.validate(wf)
        assert p1.fingerprint(wf) == p2.fingerprint(wf)


class TestSearchOptions:
    def test_coerce(self):
        assert SearchOptions.coerce(None) is None
        assert SearchOptions.coerce("none") is None
        assert SearchOptions.coerce("kl") is None
        assert SearchOptions.coerce("sa").method == "sa"
        assert SearchOptions.coerce("portfolio").method == "portfolio"
        opts = SearchOptions(budget=7)
        assert SearchOptions.coerce(opts) is opts
        with pytest.raises(SchedulingError):
            SearchOptions.coerce("genetic")

    def test_rejects_bad_values(self):
        with pytest.raises(SchedulingError):
            SearchOptions(method="tabu")
        with pytest.raises(SchedulingError):
            SearchOptions(budget=-1)
        with pytest.raises(SchedulingError):
            SearchOptions(cooling=0.0)
        with pytest.raises(SchedulingError):
            SearchOptions(restarts=-1)

    def test_plan_cost_orders_feasible_before_infeasible(self):
        slo = 100.0
        feasible = plan_cost(90.0, 8, slo)
        tight = plan_cost(99.9, 2, slo)
        infeasible = plan_cost(100.1, 1, slo)
        assert tight < feasible < infeasible
        with pytest.raises(SchedulingError):
            plan_cost(1.0, 1, 0.0)


class TestDeadline:
    def test_deadline_cuts_the_run_but_result_stays_valid(self):
        wf, plan, slo, predictor = seeded("finra-50", 1.2)
        res = anneal(wf, plan, slo, predictor,
                     SearchOptions(budget=100_000, deadline_ms=50.0))
        assert res.evaluations < 100_000
        res.plan.validate(wf)
        assert res.cost <= res.seed_cost
