"""Unit tests for the discrete-event kernel (environment, events, processes)."""

import pytest

from repro.errors import SimulationError
from repro.simcore import Environment, Event, Interrupt, Timeout


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_can_start_elsewhere():
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(3.0)
    assert p.value == pytest.approx(3.0)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for d in (1.0, 2.0, 4.0):
            yield env.timeout(d)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [pytest.approx(1.0), pytest.approx(3.0), pytest.approx(7.0)]


def test_simultaneous_events_fire_fifo():
    env = Environment()
    order = []

    def proc(env, label):
        yield env.timeout(5.0)
        order.append(label)

    for label in "abc":
        env.process(proc(env, label))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_early():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)

    p = env.process(proc(env))
    env.run(until=4.0)
    assert env.now == pytest.approx(4.0)
    assert p.is_alive


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "payload"

    p = env.process(proc(env))
    assert env.run(until=p) == "payload"


def test_run_until_event_never_fired_raises():
    env = Environment()
    ev = env.event()  # never triggered

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_process_waits_on_process():
    env = Environment()

    def inner(env):
        yield env.timeout(3.0)
        return 99

    def outer(env):
        value = yield env.process(inner(env))
        return value + 1

    p = env.process(outer(env))
    env.run()
    assert p.value == 100


def test_manual_event_value_passthrough():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def opener(env):
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [(pytest.approx(7.0), "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_uncaught_process_failure_raises_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("exploded")

    env.process(bad(env))
    with pytest.raises(ValueError, match="exploded"):
        env.run()


def test_waiting_on_failed_process_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def outer(env):
        try:
            yield env.process(bad(env))
        except ValueError:
            return "handled"

    p = env.process(outer(env))
    env.run()
    assert p.value == "handled"


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(2.0, value="a")
        t2 = env.timeout(5.0, value="b")
        results = yield env.all_of([t1, t2])
        return sorted(results.values()), env.now

    p = env.process(proc(env))
    env.run()
    values, when = p.value
    assert values == ["a", "b"]
    assert when == pytest.approx(5.0)


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(2.0, value="fast")
        t2 = env.timeout(9.0, value="slow")
        results = yield env.any_of([t1, t2])
        return list(results.values()), env.now

    p = env.process(proc(env))
    env.run()
    values, when = p.value
    assert values == ["fast"]
    assert when == pytest.approx(2.0)


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_interrupt_raises_inside_process():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(env, target):
        yield env.timeout(3.0)
        target.interrupt(cause="preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(pytest.approx(3.0), "preempted")]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 42  # not an Event

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(8.0)
    assert env.peek() == pytest.approx(8.0)
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_interrupted_process_can_keep_running():
    env = Environment()

    def victim(env):
        waited = 0.0
        try:
            yield env.timeout(50.0)
            waited = 50.0
        except Interrupt:
            pass
        yield env.timeout(2.0)
        return (env.now, waited)

    def attacker(env, target):
        yield env.timeout(10.0)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    when, waited = v.value
    assert waited == 0.0
    assert when == pytest.approx(12.0)


def test_deterministic_replay():
    """Two identical simulations produce identical event orderings."""

    def build():
        env = Environment()
        log = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            log.append((name, env.now))
            yield env.timeout(delay)
            log.append((name, env.now))

        for i, d in enumerate([3.0, 1.0, 3.0, 2.0]):
            env.process(proc(env, f"p{i}", d))
        env.run()
        return log

    assert build() == build()
