"""Shared helpers for the per-figure benchmark harness.

Every ``bench_*`` module wraps one experiment: it times the full experiment
body once (``benchmark.pedantic`` with a single round — experiments are
seconds-long, statistical repetition happens *inside* them) and then asserts
the paper's qualitative shape on the produced rows, so the harness doubles
as an end-to-end regression gate for every figure.
"""

import pytest


from repro.experiments import run_experiment  # imported once, not timed


def run_once(benchmark, experiment_id: str, quick: bool = True):
    """Run one experiment under the benchmark timer and return its result."""
    return benchmark.pedantic(
        lambda: run_experiment(experiment_id, quick=quick),
        rounds=1, iterations=1)


@pytest.fixture
def rows_by():
    """Index an ExperimentResult's rows by one or more key columns."""

    def index(result, *keys):
        return {tuple(row[k] for k in keys): row for row in result.rows}

    return index
