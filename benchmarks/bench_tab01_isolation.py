"""Table 1 benchmark: SFI vs Intel MPK isolation overheads."""

from conftest import run_once


def test_tab01_isolation_costs(benchmark, rows_by):
    result = run_once(benchmark, "tab01")
    by = rows_by(result, "mechanism")
    sfi, mpk = by[("sfi",)], by[("mpk",)]
    # Table 1's ordering: MPK dominates SFI on every axis
    assert mpk["startup_ms"] < sfi["startup_ms"]
    assert mpk["interaction_ms"] <= sfi["interaction_ms"]
    assert mpk["fibonacci_overhead_pct"] < sfi["fibonacci_overhead_pct"]
    assert mpk["diskio_overhead_pct"] < sfi["diskio_overhead_pct"]
    # absolute values near the paper's measurements
    assert abs(sfi["fibonacci_overhead_pct"] - 52.9) < 5.0
    assert abs(mpk["fibonacci_overhead_pct"] - 35.2) < 5.0
    assert abs(mpk["diskio_overhead_pct"] - 7.3) < 5.0
    print("\n" + result.to_table())
