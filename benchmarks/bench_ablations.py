"""Ablation benchmarks for the design choices DESIGN.md §5 lists."""

from conftest import run_once


def test_ablation_kernighan_lin(benchmark, rows_by):
    result = run_once(benchmark, "ablation-kl")
    by = rows_by(result, "slo_ms")
    # under a satisfiable SLO, KL never needs more cores than round-robin
    for slo in (40.0, 60.0):
        assert by[(slo,)]["kl_cores"] <= by[(slo,)]["rr_cores"]
    # and somewhere the saving is strict
    assert any(by[(s,)]["kl_cores"] < by[(s,)]["rr_cores"]
               for s in (30.0, 40.0, 60.0))
    print("\n" + result.to_table())


def test_ablation_search_strategies(benchmark):
    result = run_once(benchmark, "ablation-search")
    # both searches produce equivalently-sized plans
    assert all(result.column("same_cores"))
    print("\n" + result.to_table())


def test_ablation_wrap_packing(benchmark, rows_by):
    result = run_once(benchmark, "ablation-packing")
    # packing never uses more sandboxes than one-process-per-wrap
    for row in result.rows:
        assert row["packed_wraps"] <= row["sparse_wraps"]
    print("\n" + result.to_table())


def test_ablation_gil_handoff(benchmark):
    result = run_once(benchmark, "ablation-handoff")
    # the CFS pick tracks the runtime at least as well as FIFO
    for row in result.rows:
        assert row["cfs_err_pct"] <= row["fifo_err_pct"] + 1.0
        assert row["cfs_err_pct"] < 15.0
    print("\n" + result.to_table())


def test_ablation_longest_first_dispatch(benchmark):
    result = run_once(benchmark, "ablation-longest-first")
    for row in result.rows:
        # starting the long functions first never hurts the makespan
        assert row["longest_first_ms"] <= row["fifo_ms"] + 1.0
    print("\n" + result.to_table())
