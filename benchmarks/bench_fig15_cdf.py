"""Figure 15 benchmark: function completion-time distributions, FINRA-50."""

from conftest import run_once


def test_fig15_completion_cdf(benchmark, rows_by):
    result = run_once(benchmark, "fig15", quick=False)
    by = rows_by(result, "system")
    # pool variant starts (and finishes its median) earliest: pre-forked
    # workers skip fork/startup entirely
    assert by[("faastlane-p",)]["p50"] <= by[("faastlane",)]["p50"]
    # chiron finishes its slowest function no later than faastlane
    assert by[("chiron",)]["p100"] <= by[("faastlane",)]["p100"] * 1.05
    # one-to-one is the slowest to complete everything
    assert by[("openfaas",)]["p100"] >= by[("chiron",)]["p100"]
    print("\n" + result.to_table())
