"""Figure 8 benchmark: memory and CPU cost of FINRA deployments."""

from conftest import run_once


def test_fig08_resource_costs(benchmark, rows_by):
    result = run_once(benchmark, "fig08", quick=False)
    by = rows_by(result, "parallelism", "system")
    for n in (5, 25, 50):
        openfaas = by[(n, "openfaas")]
        faastlane = by[(n, "faastlane")]
        chiron = by[(n, "chiron")]
        # memory: one-to-one duplicates runtimes (paper: -85.5% Faastlane)
        assert faastlane["memory_mb"] < openfaas["memory_mb"] * 0.35
        # chiron trims further (paper: -8.3% vs Faastlane)
        assert chiron["memory_mb"] <= faastlane["memory_mb"] * 1.05
        # CPU: chiron far below both (paper: -82.7% vs Faastlane)
        assert chiron["cpu_cores"] <= faastlane["cpu_cores"] * 0.5
        assert openfaas["cpu_cores"] >= faastlane["cpu_cores"]
    print("\n" + result.to_table())
