"""Figure 18 benchmark: the no-GIL (Java) latency/throughput comparison."""

from conftest import run_once


def test_fig18_no_gil(benchmark, rows_by):
    result = run_once(benchmark, "fig18")
    by = rows_by(result, "workload", "system")
    for wf in ("slapp", "finra-5"):
        chiron = by[(wf, "chiron")]
        one = by[(wf, "one-to-one")]
        many = by[(wf, "many-to-one")]
        # without a GIL Chiron still wins throughput through resource
        # efficiency (paper: 5x and 3.1x vs one-to-one / many-to-one)
        assert chiron["rps"] > 2.0 * many["rps"]
        assert chiron["rps"] > 2.0 * one["rps"]
        # and never at a latency premium over the one-to-one model
        assert chiron["latency_ms"] <= one["latency_ms"] * 1.05
    print("\n" + result.to_table())
