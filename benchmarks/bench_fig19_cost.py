"""Figure 19 benchmark: dollar cost per million requests."""

from conftest import run_once


def test_fig19_dollar_cost(benchmark, rows_by):
    result = run_once(benchmark, "fig19")
    by = rows_by(result, "workload", "system")
    workloads = sorted({row["workload"] for row in result.rows})
    for name in workloads:
        # ASF's per-transition billing dominates everything
        # (paper: up to 272x Chiron)
        assert by[(name, "asf")]["normalized"] > 20.0
        # Chiron cheapest or tied among the native/MPK systems
        # (paper: saves 44.4-95.3% vs Faastlane)
        assert (by[(name, "chiron")]["usd_per_million"]
                < by[(name, "faastlane")]["usd_per_million"] * 0.6)
        assert (by[(name, "chiron-m")]["usd_per_million"]
                <= by[(name, "faastlane-m")]["usd_per_million"] * 1.05)
    print("\n" + result.to_table())
