"""Benchmark the incremental prediction engine behind PGP scheduling.

Runs the same SLO sweep with the prediction cache disabled (every stage and
thread-group prediction pays a full Algorithm-1 replay — the pre-cache
scheduler) and enabled, asserting the two produce bit-identical plans while
the cached run does at least 3x fewer full evaluations on KL-enabled
multi-stage workflows.

Runnable both under pytest (``pytest benchmarks/bench_pgp_scheduler.py``)
and as a script (``python benchmarks/bench_pgp_scheduler.py``), which
prints the table and writes ``BENCH_pgp.json``.
"""

from repro.bench import (
    QUICK_WORKLOADS,
    bench_workload,
    format_table,
    run_bench,
    write_report,
)


def test_bench_quick_matrix(benchmark):
    """CI smoke: small matrix, verify mode, >= 3x fewer full evaluations."""
    report = benchmark.pedantic(
        lambda: run_bench(QUICK_WORKLOADS, check=True),
        rounds=1, iterations=1)
    assert report["summary"]["identical"]
    assert report["summary"]["min_full_eval_ratio"] >= 3.0
    print("\n" + format_table(report))


def test_bench_kl_fanout_workload(benchmark):
    """The headline claim on a KL-enabled wide fan-out workflow."""
    result = benchmark.pedantic(
        lambda: bench_workload("finra-50", slo_factors=(1.2, 1.5, 2.0, 3.0)),
        rounds=1, iterations=1)
    assert result["identical"]
    assert result["kernighan_lin"]
    assert result["stages"] >= 2
    assert result["full_eval_ratio"] >= 3.0
    # the sweep actually exercised delta (partially cached) evaluations
    assert result["cached"]["counters"]["pgp.evals.delta"] > 0


if __name__ == "__main__":
    report = run_bench(check=True)
    print(format_table(report))
    write_report(report, "BENCH_pgp.json")
    print("report written to BENCH_pgp.json")
