"""Figure 6 benchmark: deployment-model latency comparison on FINRA."""

from conftest import run_once


def test_fig06_deployment_models(benchmark, rows_by):
    result = run_once(benchmark, "fig06", quick=False)
    by = rows_by(result, "parallelism")
    # Observation 3 at low parallelism: thread mode beats process mode
    assert by[(5,)]["faastlane_t_ms"] < by[(5,)]["faastlane_ms"]
    # ... and collapses at high parallelism (paper: 77% slower than OpenFaaS)
    assert by[(50,)]["faastlane_t_ms"] > by[(50,)]["faastlane_ms"]
    assert by[(50,)]["faastlane_t_ms"] > by[(50,)]["openfaas_ms"]
    # Chiron is lowest in every configuration (paper: 15.9-74.1% reduction)
    for n in (5, 25, 50):
        row = by[(n,)]
        others = [row["openfaas_ms"], row["faastlane_ms"],
                  row["faastlane_t_ms"], row["faastlane_plus_ms"]]
        assert row["chiron_ms"] <= min(others) * 1.02
    print("\n" + result.to_table())
