#!/usr/bin/env python
"""CI gate over the committed ``BENCH_*.json`` benchmark trajectory.

The repo commits one benchmark report per subsystem (prediction-cache,
simulation kernel, plan search, cold starts, drift recovery, chaos/HA,
fleet placement).  This script re-validates the *quality* invariants of
every committed report — plan quality, divergence attribution,
determinism, closed-loop recovery, fault recovery under machine-scale
chaos, fleet placement dominance — and, when given a freshly generated
smoke report (``--fresh-drift`` / ``--fresh-chaos`` /
``--fresh-fleet``), fails if any acceptance flag that held in the
committed trajectory regressed in the fresh run.

It never gates on wall time: CI boxes are too noisy for latency
assertions, and every pinned quantity here is a simulated-milliseconds or
count invariant that is bit-deterministic for a given seed.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/check_trajectory.py \
        [--fresh-drift BENCH_drift_quick.json] \
        [--fresh-chaos BENCH_chaos_quick.json]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import load_report  # noqa: E402
from repro.errors import ReproError  # noqa: E402

FAILURES: list[str] = []


def check(condition: bool, message: str) -> None:
    if not condition:
        FAILURES.append(message)


def check_pgp(path: str) -> None:
    report = load_report(path)
    s = report["summary"]
    check(s["identical"], f"{path}: cached plans diverged from full eval")
    check(s["min_full_eval_ratio"] >= 3.0,
          f"{path}: full-eval reduction only "
          f"{s['min_full_eval_ratio']:.1f}x (< 3.0x)")


def check_kernel(path: str) -> None:
    """Gate the committed kernel report on correctness + recorded speedup.

    The speedup gated here is the one *recorded in the committed report*
    (produced by a full-size ``bench --kernel`` run at commit time) — a
    fresh CI run's wall clock is never consulted.
    """
    report = load_report(path)
    micro = report["microbench"]
    check(micro["heap"]["events"] == micro["calendar"]["events"] > 0,
          f"{path}: microbench event counts diverged "
          f"({micro['heap']['events']} vs {micro['calendar']['events']})")
    fleet = report["fleet"]
    for name, same in sorted(fleet["identical"].items()):
        check(bool(same),
              f"{path}: fleet pipeline {name} diverged from heap DES")
    rows = fleet["rows"]
    check(rows["des_heap"]["events_processed"]
          == rows["des_calendar"]["events_processed"] > 0,
          f"{path}: DES kernels dispatched different event counts")
    check(rows["vectorized"]["events_processed"] == 0,
          f"{path}: the vectorized pipeline should dispatch no events")
    check(rows["des_heap"]["completed"] == fleet["scenario"]["requests"],
          f"{path}: fleet run did not complete every request")
    check(fleet["meets_10x"],
          f"{path}: recorded vectorized speedup "
          f"{fleet['speedup']['vectorized_vs_heap']:.1f}x below 10x")


def check_search(path: str) -> None:
    report = load_report(path)
    s = report["summary"]
    check(s["sa_never_worse_than_kl"], f"{path}: SA lost to greedy KL")
    check(s["portfolio_never_worse_than_kl"],
          f"{path}: portfolio lost to greedy KL")
    check(s["delta_verify_all_kinds"],
          f"{path}: delta-cost mismatch {s['delta_verified_by_kind']}")
    check(s["deterministic"], f"{path}: seeded search runs diverged")


def check_coldstart(path: str) -> None:
    report = load_report(path)
    s = report["summary"]
    check(s["hybrid_beats_ttl0_p99"],
          f"{path}: hybrid keep-alive lost to always-cold")
    hits = s["warm_hit_rate"]
    check(all(v > 0.0 for v in hits.values()),
          f"{path}: no warm hits: {hits}")


def check_drift(path: str) -> dict:
    """Validate one drift report's closed-loop quality; return its flags."""
    report = load_report(path)
    flags = report["summary"]
    for name, value in sorted(flags.items()):
        check(bool(value), f"{path}: acceptance flag {name} is {value}")
    slo = report["slo_ms"]
    probation = report["config"]["probation"]
    for scenario in report["scenarios"]:
        closed = scenario["arms"]["closed-loop"]
        opened = scenario["arms"]["open-loop"]
        name = scenario["name"]
        if name in ("drift-recovery", "bad-replan"):
            check(closed["violations"] < opened["violations"],
                  f"{path}/{name}: closed loop did not reduce violations "
                  f"({closed['violations']} vs {opened['violations']})")
            check(closed["p99_final_ms"] <= slo,
                  f"{path}/{name}: closed loop ends over the SLO "
                  f"({closed['p99_final_ms']} > {slo})")
        if name == "bad-replan":
            check(closed["rollbacks"] >= 1,
                  f"{path}/{name}: bad replan was never rolled back")
            check(closed["rollback_elapsed"] is not None
                  and closed["rollback_elapsed"] <= probation,
                  f"{path}/{name}: rollback took "
                  f"{closed['rollback_elapsed']} observations "
                  f"(budget {probation})")
        if name == "fault-storm":
            check(closed["promotions"] == 0,
                  f"{path}/{name}: the plane replanned during a fault "
                  f"storm ({closed['promotions']} promotions)")
            check(closed["deferred"] >= 1,
                  f"{path}/{name}: the storm never deferred a replan")
    return flags


def check_chaos(path: str) -> dict:
    """Validate one chaos report's HA quality; return its flags.

    Every quantity gated here is simulated (availability fractions,
    simulated-ms recovery windows, counters) — never wall time.
    """
    report = load_report(path)
    flags = report["summary"]
    for name, value in sorted(flags.items()):
        check(bool(value), f"{path}: acceptance flag {name} is {value}")
    window = report["params"]["recovery_window_ms"]
    for scenario in report["schedules"]:
        rows = scenario["rows"]
        name = scenario["name"]
        ckpt, none = rows["checkpoint"], rows["none"]
        check(ckpt["failed"] == 0,
              f"{path}/{name}: checkpointed HA lost "
              f"{ckpt['failed']} requests")
        check(none["failed"] > 0,
              f"{path}/{name}: the no-recovery baseline lost nothing — "
              f"the schedule is not exercising the fault")
        check(ckpt["availability"] > none["availability"],
              f"{path}/{name}: checkpointed availability "
              f"{ckpt['availability']} did not beat no-recovery "
              f"{none['availability']}")
        if name in ("machine-kill", "zone-outage"):
            check(ckpt["recovered_within_window"]
                  and (ckpt["recovery_ms"] or 0.0) <= window,
                  f"{path}/{name}: checkpointed HA recovery "
                  f"{ckpt['recovery_ms']} ms exceeds the {window} ms window")
            check(not none["recovered_within_window"],
                  f"{path}/{name}: the no-recovery baseline recovered "
                  f"inside the window — the fault is too mild to gate on")
        if name == "zone-outage":
            retry = rows["retry"]
            check(retry["fault_availability"]
                  <= ckpt["fault_availability"] - 0.2,
                  f"{path}/{name}: naive retry did not collapse "
                  f"({retry['fault_availability']} vs checkpointed "
                  f"{ckpt['fault_availability']})")
        if name == "machine-kill":
            check("z0/r0/m0" in ckpt["quarantined"],
                  f"{path}/{name}: the crash-looping machine was never "
                  f"quarantined")
    return flags


def check_fleet(path: str) -> dict:
    """Validate the committed fleet placement report; return its flags.

    Gates quality and determinism only: placement cost ordering, packing
    fraction, p99/goodput dominance and the bit-reproducibility of the
    annealed arm.  Per-arm ``wall_s`` and ``compile_s`` are trend data and
    are never consulted.
    """
    report = load_report(path)
    flags = report["summary"]
    for name, value in sorted(flags.items()):
        check(bool(value), f"{path}: acceptance flag {name} is {value}")
    check(report["spec"]["total_requests"] >= 1_000_000 or report["quick"],
          f"{path}: full fleet bench ran only "
          f"{report['spec']['total_requests']} requests (< 1M)")
    arms = report["arms"]
    annealed, ff = arms["annealed"], arms["first-fit"]
    check(annealed["run"]["sojourn_p99_ms"]
          < ff["run"]["sojourn_p99_ms"],
          f"{path}: annealed p99 did not beat first-fit")
    check(annealed["placement"]["packing_fraction"]
          > ff["placement"]["packing_fraction"],
          f"{path}: annealed packing did not beat first-fit")
    for name, arm in sorted(arms.items()):
        check(arm["run"]["completed"] == report["spec"]["total_requests"],
              f"{path}/{name}: run did not complete every request")
    det = report["determinism"]
    check(det["identical_assignment"] and det["identical_run_fields"],
          f"{path}: annealed replay diverged: {det}")
    return flags


def check_fresh_against_committed(fresh_flags: dict,
                                  committed_flags: dict,
                                  label: str = "drift") -> None:
    """A flag that held in the committed trajectory must still hold."""
    for name, committed in sorted(committed_flags.items()):
        if not committed:
            continue
        fresh = fresh_flags.get(name)
        check(bool(fresh),
              f"fresh {label} smoke regressed acceptance flag {name}: "
              f"committed={committed}, fresh={fresh}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repo root holding the BENCH_*.json files")
    parser.add_argument("--fresh-drift", metavar="FILE", default=None,
                        help="freshly generated drift smoke report to "
                             "compare against the committed trajectory")
    parser.add_argument("--fresh-chaos", metavar="FILE", default=None,
                        help="freshly generated chaos smoke report to "
                             "compare against the committed trajectory")
    parser.add_argument("--fresh-fleet", metavar="FILE", default=None,
                        help="freshly generated fleet smoke report to "
                             "compare against the committed trajectory")
    args = parser.parse_args(argv)

    def path(name: str) -> str:
        return os.path.join(args.root, name)

    committed_drift_flags = {}
    try:
        check_pgp(path("BENCH_pgp.json"))
        check_kernel(path("BENCH_kernel.json"))
        check_search(path("BENCH_search.json"))
        check_coldstart(path("BENCH_coldstart.json"))
        committed_drift_flags = check_drift(path("BENCH_drift.json"))
        if args.fresh_drift is not None:
            fresh_flags = check_drift(args.fresh_drift)
            check_fresh_against_committed(fresh_flags,
                                          committed_drift_flags)
        committed_chaos_flags = check_chaos(path("BENCH_chaos.json"))
        if args.fresh_chaos is not None:
            fresh_chaos = check_chaos(args.fresh_chaos)
            check_fresh_against_committed(fresh_chaos,
                                          committed_chaos_flags,
                                          label="chaos")
        committed_fleet_flags = check_fleet(path("BENCH_fleet.json"))
        if args.fresh_fleet is not None:
            fresh_fleet = check_fleet(args.fresh_fleet)
            check_fresh_against_committed(fresh_fleet,
                                          committed_fleet_flags,
                                          label="fleet")
    except (ReproError, KeyError) as exc:
        FAILURES.append(f"trajectory report unreadable: {exc}")

    if FAILURES:
        for failure in FAILURES:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("benchmark trajectory OK: plan quality, kernel identity, "
          "divergence attribution, closed-loop recovery, chaos HA "
          "quality and fleet placement quality all hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
