"""§6.3 benchmark: Chiron's own component overhead."""

from conftest import run_once


def test_overhead_components(benchmark, rows_by):
    result = run_once(benchmark, "overhead", quick=False)
    by = rows_by(result, "component")
    # every component stays tiny (paper: <40 MB, <0.1 core; PGP offline)
    for name, row in by.items():
        assert row["peak_mem_mb"] < 40.0, name
    # one predictor call stays in the low milliseconds even for FINRA-50
    # (paper: "sub-millisecond overhead even with hundreds of threads")
    assert by[("predictor(one call)",)]["wall_ms"] < 50.0
    # profiling and code generation are trivially cheap
    assert by[("profiler",)]["wall_ms"] < 1000.0
    assert by[("generator",)]["wall_ms"] < 1000.0
    print("\n" + result.to_table())
