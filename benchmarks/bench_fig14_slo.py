"""Figure 14 benchmark: SLO violation rates."""

import numpy as np

from conftest import run_once


def test_fig14_slo_violations(benchmark):
    result = run_once(benchmark, "fig14")
    faast = np.array(result.column("faastlane_pct"))
    chiron = np.array(result.column("chiron_pct"))
    # Chiron's conservative planning keeps violations near zero
    # (paper: 1.3% average)
    assert chiron.mean() <= 5.0
    # and always at or below Faastlane's
    assert np.all(chiron <= faast + 1e-9)
    print("\n" + result.to_table())
