"""Figure 7 benchmark: true-parallel latency vs CPU count."""

from conftest import run_once


def test_fig07_cpu_sharing_penalty(benchmark, rows_by):
    result = run_once(benchmark, "fig07")
    by = rows_by(result, "cpus")
    # dropping 4 -> 3 CPUs costs little (paper: ~11.7%)
    assert by[(3,)]["penalty_vs_4cpu_pct"] <= 15.0
    # but 1 CPU forces near-serial CPU work: a large penalty
    assert by[(1,)]["penalty_vs_4cpu_pct"] >= 40.0
    # monotone: fewer CPUs never helps
    lats = [by[(c,)]["python_pool_ms"] for c in (4, 3, 2, 1)]
    assert all(b >= a - 1e-6 for a, b in zip(lats, lats[1:]))
    # Java threads show the same fluid behaviour
    for c in (4, 3, 2, 1):
        assert abs(by[(c,)]["java_threads_ms"]
                   - by[(c,)]["python_pool_ms"]) < 10.0
    print("\n" + result.to_table())
