"""Figure 17 benchmark: allocated CPUs by platform."""

from conftest import run_once


def test_fig17_cpu_allocation(benchmark, rows_by):
    result = run_once(benchmark, "fig17")
    by = rows_by(result, "workload", "system")
    workloads = sorted({row["workload"] for row in result.rows})
    for name in workloads:
        openfaas = by[(name, "openfaas")]["cores"]
        faastlane = by[(name, "faastlane")]["cores"]
        chiron = by[(name, "chiron")]["cores"]
        chiron_m = by[(name, "chiron-m")]["cores"]
        # uniform allocations: one CPU per function / per parallel branch
        assert openfaas >= faastlane
        # Chiron explores the minimum satisfying the SLO
        # (paper: 20-94% CPU saved, -75% vs Faastlane native)
        assert chiron <= faastlane * 0.6
        # Chiron-M shares CPUs between processes (paper: -66% vs MPK)
        assert chiron_m <= faastlane * 0.75
    print("\n" + result.to_table())
