"""Figure 5 benchmark: process vs thread execution timelines on FINRA-5."""

from conftest import run_once

from repro.calibration import PROCESS_FORK_BLOCK_MS, PROCESS_STARTUP_MS


def test_fig05_timelines(benchmark, rows_by):
    result = run_once(benchmark, "fig05")
    by = rows_by(result, "mode", "function")
    # process mode: fork-block wait grows with the fork index (Obs. 2)
    waits = [by[("process", f"validate-{i}")]["block_wait_ms"]
             for i in range(5)]
    assert all(b > a - 1e-6 for a, b in zip(waits, waits[1:]))
    assert waits[-1] >= 4 * PROCESS_FORK_BLOCK_MS * 0.8
    # process mode pays an interpreter startup ~7.5 ms per function
    for i in range(5):
        assert (by[("process", f"validate-{i}")]["startup_ms"]
                >= PROCESS_STARTUP_MS * 0.8)
    # thread mode: startup two orders of magnitude cheaper
    for i in range(5):
        assert by[("thread", f"validate-{i}")]["startup_ms"] <= 1.0
    print("\n" + result.to_table())
