"""Benchmarks for the supplementary experiments (beyond the paper)."""

from conftest import run_once


def test_coldstart_cascade(benchmark, rows_by):
    result = run_once(benchmark, "coldstart-cascade", quick=False)
    by = rows_by(result, "workload", "system")
    # FINRA (2 stages): one-to-one pays 2 boot waves, shared sandboxes 1
    assert (by[("finra-5", "openfaas")]["penalty_ms"]
            > 1.8 * by[("finra-5", "faastlane")]["penalty_ms"])
    # Social Network (4 stages): the cascade deepens with workflow depth
    assert (by[("social-network", "openfaas")]["penalty_ms"]
            > by[("finra-5", "openfaas")]["penalty_ms"])
    print("\n" + result.to_table())


def test_runtime_comparison(benchmark, rows_by):
    result = run_once(benchmark, "runtimes")
    by = rows_by(result, "runtime", "system")
    # the §2.1 observation: thread fan-out helps CPython, hurts Node.js
    assert (by[("python", "faastlane-t")]["latency_ms"]
            < by[("python", "faastlane")]["latency_ms"])
    assert (by[("nodejs", "faastlane-t")]["latency_ms"]
            > by[("nodejs", "faastlane")]["latency_ms"])
    print("\n" + result.to_table())


def test_autoscale_burst_absorption(benchmark, rows_by):
    result = run_once(benchmark, "autoscale")
    by = rows_by(result, "system")
    # Chiron's denser replicas absorb the burst at least as well
    assert (by[("chiron",)]["p90_ms"]
            <= by[("faastlane",)]["p90_ms"] * 1.1)
    # and its headroom (max replicas per node) is far larger
    assert by[("chiron",)]["max_replicas"] > by[("faastlane",)]["max_replicas"]
    print("\n" + result.to_table())


def test_loadtest_validates_capacity_model(benchmark):
    result = run_once(benchmark, "loadtest", quick=False)
    # the measured saturation search lands within ~50% of Figure 16's
    # capacity model for every system (finite-horizon bias documented)
    for row in result.rows:
        assert 0.5 <= row["agreement"] <= 1.6, row
    print("\n" + result.to_table())
