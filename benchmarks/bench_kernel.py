"""Benchmark the simulation kernel: old heap vs calendar queue vs numpy.

Times a burst-heavy pure-kernel microbench on both schedulers and runs the
fleet-scale scenario (Poisson stream against parallel servers) three ways —
DES on the pre-change heap kernel, DES on the calendar queue, and the
vectorized numpy pipeline — asserting every quality field (completion
count, simulated duration, sojourn statistics) is bit-identical across all
three.  Wall-clock numbers are recorded for trend reading; the assertions
here gate on correctness and on the *recorded* report only, never on a CI
box's fresh timings.

Runnable both under pytest (``pytest benchmarks/bench_kernel.py``) and as a
script (``python benchmarks/bench_kernel.py``), which prints the table and
writes ``BENCH_kernel.json``.
"""

from repro.bench import write_report
from repro.kernelbench import (
    SPEEDUP_BAR,
    format_kernel_table,
    run_kernel_bench,
)


def test_kernel_bench_quick(benchmark):
    """CI smoke: quick sizes, identity verified, event counts pinned."""
    report = benchmark.pedantic(
        lambda: run_kernel_bench(quick=True, check=True),
        rounds=1, iterations=1)
    micro = report["microbench"]
    assert micro["heap"]["events"] == micro["calendar"]["events"] > 0
    fleet = report["fleet"]
    assert fleet["identical"] == {"des_calendar": True, "vectorized": True}
    rows = fleet["rows"]
    # both DES kernels dispatch the same event stream; numpy dispatches none
    assert (rows["des_heap"]["events_processed"]
            == rows["des_calendar"]["events_processed"] > 0)
    assert rows["vectorized"]["events_processed"] == 0
    assert rows["des_heap"]["completed"] == fleet["scenario"]["requests"]
    print("\n" + format_kernel_table(report))


def test_kernel_bench_quality_fields_bit_identical():
    """The three pipelines agree on every quality field, field by field."""
    report = run_kernel_bench(quick=True, check=True)
    rows = report["fleet"]["rows"]
    base = rows["des_heap"]
    for name in ("des_calendar", "vectorized"):
        for field, value in base.items():
            if field in ("wall_s", "requests_per_wall_s",
                         "events_processed"):
                continue
            assert rows[name][field] == value, (
                f"{name}.{field}: {rows[name][field]!r} != {value!r}")


if __name__ == "__main__":
    report = run_kernel_bench(check=True)
    print(format_kernel_table(report))
    speedup = report["fleet"]["speedup"]["vectorized_vs_heap"]
    assert report["fleet"]["meets_10x"], (
        f"vectorized speedup {speedup:.1f}x below the {SPEEDUP_BAR:.0f}x bar")
    write_report(report, "BENCH_kernel.json")
    print("report written to BENCH_kernel.json")
