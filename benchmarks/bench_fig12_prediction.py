"""Figure 12 benchmark: prediction error of Chiron vs learned models."""

import numpy as np

from conftest import run_once


def test_fig12_prediction_error(benchmark):
    result = run_once(benchmark, "fig12")
    chiron = np.array(result.column("chiron"))
    learned = np.concatenate([np.array(result.column(m))
                              for m in ("rfr", "lstm", "gnn")])
    # the white-box predictor stays in the single digits on average
    # (paper: 6.7% mean)
    assert chiron.mean() < 12.0
    # learned models are clearly worse on average with scarce training data
    assert learned.mean() > chiron.mean() * 1.2
    print("\n" + result.to_table())
