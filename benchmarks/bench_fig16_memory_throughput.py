"""Figure 16 benchmark: memory footprint and per-node max throughput."""

import numpy as np

from conftest import run_once


def test_fig16_memory_and_throughput(benchmark, rows_by):
    result = run_once(benchmark, "fig16")
    by = rows_by(result, "workload", "system")
    workloads = sorted({row["workload"] for row in result.rows})
    for name in workloads:
        # one-to-one memory redundancy (paper: up to 97% saved by Chiron)
        assert by[(name, "openfaas")]["memory_norm"] > 3.0
        # pool variants pay >3x memory for warm workers
        assert by[(name, "faastlane-p")]["memory_norm"] > 2.0
        # Chiron's throughput beats every Faastlane variant
        # (paper: 12.2x/6.5x/4.1x average)
        for rival in ("faastlane", "faastlane-m", "faastlane-p"):
            assert (by[(name, "chiron")]["rps"]
                    > by[(name, rival)]["rps"] * 1.2)
    gains = np.array([by[(n, "chiron")]["rps"] / by[(n, "faastlane")]["rps"]
                      for n in workloads])
    assert gains.max() > 3.0  # paper: up to 39.6x
    print("\n" + result.to_table())
