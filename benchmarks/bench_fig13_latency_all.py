"""Figure 13 benchmark: normalized latency across workloads and systems."""

import numpy as np

from conftest import run_once


def test_fig13_normalized_latency(benchmark, rows_by):
    result = run_once(benchmark, "fig13")
    by = rows_by(result, "workload", "system")
    workloads = sorted({row["workload"] for row in result.rows})
    for name in workloads:
        # ASF is worst by a wide margin everywhere (paper: -89.9% avg)
        assert by[(name, "asf")]["normalized"] > 3.0
        # Chiron meets its SLO-driven deployment at or below Faastlane on
        # average (paper: -25.1%)
    faast = np.array([by[(n, "faastlane")]["latency_ms"] for n in workloads])
    chiron = np.array([by[(n, "chiron")]["latency_ms"] for n in workloads])
    assert chiron.mean() < faast.mean()
    openfaas = np.array([by[(n, "openfaas")]["latency_ms"]
                         for n in workloads])
    assert chiron.mean() < openfaas.mean()
    print("\n" + result.to_table())
