"""Figure 4 benchmark: storage transfer latency vs payload size."""

from conftest import run_once


def test_fig04_transfer_latency(benchmark, rows_by):
    result = run_once(benchmark, "fig04")
    by = rows_by(result, "size")
    # the S3 floor: ~52 ms even for one byte
    assert 45.0 <= by[("1B",)]["asf_s3_ms"] <= 60.0
    # 1 GB lands in the tens of seconds (paper: ~25 s)
    assert 20_000 <= by[("1GB",)]["asf_s3_ms"] <= 30_000
    # MinIO local spans ~10 ms to ~10 s
    assert by[("1B",)]["openfaas_minio_ms"] <= 15.0
    assert 8_000 <= by[("1GB",)]["openfaas_minio_ms"] <= 12_000
    # local always beats the cloud store
    for size in ("1B", "1KB", "1MB", "1GB"):
        assert by[(size,)]["openfaas_minio_ms"] < by[(size,)]["asf_s3_ms"]
    print("\n" + result.to_table())
