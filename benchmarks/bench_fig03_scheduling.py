"""Figure 3 benchmark: one-to-one scheduling overhead on FINRA."""

from conftest import run_once


def test_fig03_scheduling_overhead(benchmark, rows_by):
    result = run_once(benchmark, "fig03")
    by = rows_by(result, "system", "parallelism")
    # ASF's overhead dwarfs OpenFaaS's at every width
    for n in (5, 25, 50):
        assert by[("asf", n)]["overhead_ms"] > by[("openfaas", n)]["overhead_ms"]
    # overhead grows with parallelism and dominates at 50 (paper: 95%/59%)
    assert by[("asf", 50)]["overhead_pct"] > 70.0
    assert by[("openfaas", 50)]["overhead_pct"] > 40.0
    assert by[("asf", 50)]["overhead_ms"] > by[("asf", 5)]["overhead_ms"] * 4
    print("\n" + result.to_table())
