"""Predictor-vs-runtime divergence reporting.

The white-box predictor (§3.3) and the simulated runtime model the same
mechanisms — thread spawning under the GIL, fork serialization, interpreter
startup, pipe IPC, gateway RPC — through independent code paths, so any
modelling drift between them shows up as a latency gap.  :func:`compare`
runs both over the same workflow/plan and aligns their timelines:

* **per function** — the predictor's replay emits each function's simulated
  completion time (``LatencyPredictor.predict_workflow(trace=...)``); the
  runtime stamps the real one in ``RequestResult.function_spans``.  A big
  delta on one function localizes the divergence to its process group.
* **per mechanism** — both traces tag spans with an ``op`` (``thread.spawn``,
  ``fork``, ``proc.startup``, ``ipc``, ``rpc``, ...); summing durations per
  op on each side shows *which* mechanism diverges.  Ops only the runtime
  emits (``gil.wait``, ``sandbox.boot``, gateway queueing) surface costs the
  predictor does not model at all.

This is the workflow that localized two seed-era bugs: a per-chunk GIL
handoff in the runtime (threads spawned one per switch interval instead of
a batch) and a missing IPC data-streaming term in the predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.calibration import RuntimeCalibration
from repro.core.predictor import LatencyPredictor
from repro.core.wrap import DeploymentPlan
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import Workflow


@dataclass(frozen=True)
class FunctionDelta:
    """One function's predicted vs measured completion time."""

    name: str
    predicted_end_ms: Optional[float]
    measured_end_ms: Optional[float]

    @property
    def delta_ms(self) -> Optional[float]:
        if self.predicted_end_ms is None or self.measured_end_ms is None:
            return None
        return self.measured_end_ms - self.predicted_end_ms

    @property
    def rel(self) -> Optional[float]:
        if self.delta_ms is None or not self.predicted_end_ms:
            return None
        return self.delta_ms / self.predicted_end_ms


@dataclass(frozen=True)
class MechanismDelta:
    """Summed span durations for one mechanism (``op`` tag) on both sides."""

    op: str
    predicted_ms: float
    measured_ms: float
    predicted_spans: int
    measured_spans: int

    @property
    def delta_ms(self) -> float:
        return self.measured_ms - self.predicted_ms


@dataclass
class DivergenceReport:
    """Side-by-side decomposition of one predictor/runtime pairing."""

    workflow: str
    predicted_total_ms: float
    measured_total_ms: float
    functions: list[FunctionDelta] = field(default_factory=list)
    mechanisms: list[MechanismDelta] = field(default_factory=list)
    conservatism: float = 1.0
    predicted_trace: Optional[TraceRecorder] = None
    runtime_trace: Optional[TraceRecorder] = None
    #: ``FaultInjector.summary()`` of the runtime side (None = fault-free run)
    fault_summary: Optional[dict] = None

    @property
    def total_delta_ms(self) -> float:
        return self.measured_total_ms - self.predicted_total_ms

    @property
    def fault_induced_ms(self) -> float:
        """Latency attributable to injected faults: wall time burned by
        failed attempts.  The predictor never models faults, so this slice
        of the delta is *expected* divergence, not model error."""
        if self.fault_summary is None:
            return 0.0
        return float(self.fault_summary.get("wasted_wall_ms", 0.0))

    @property
    def model_error_ms(self) -> float:
        """The latency gap left after discounting fault-induced time —
        the part that actually indicts the predictor."""
        return self.total_delta_ms - self.fault_induced_ms

    @property
    def rel(self) -> Optional[float]:
        """Total delta as a fraction of the prediction.

        ``None`` when the prediction is zero (an empty or all-zero-cost
        workflow) — the gap has no meaningful scale, and callers must not
        divide by it.
        """
        if not self.predicted_total_ms:
            return None
        return self.total_delta_ms / self.predicted_total_ms

    @property
    def model_error_rel(self) -> Optional[float]:
        """Residual model error as a fraction of the prediction (guarded
        like :attr:`rel`) — the drift-detector's input signal."""
        if not self.predicted_total_ms:
            return None
        return self.model_error_ms / self.predicted_total_ms

    @property
    def worst_function(self) -> Optional[FunctionDelta]:
        with_delta = [f for f in self.functions if f.delta_ms is not None]
        if not with_delta:
            return None
        return max(with_delta, key=lambda f: abs(f.delta_ms))

    @property
    def worst_mechanism(self) -> Optional[MechanismDelta]:
        if not self.mechanisms:
            return None
        return max(self.mechanisms, key=lambda m: abs(m.delta_ms))

    def mechanism(self, op: str) -> Optional[MechanismDelta]:
        for m in self.mechanisms:
            if m.op == op:
                return m
        return None

    def to_text(self) -> str:
        rel = (self.rel * 100.0 if self.rel is not None else float("nan"))
        lines = [
            f"divergence report: {self.workflow}",
            f"  predicted {self.predicted_total_ms:9.3f} ms"
            + (f"  (conservatism x{self.conservatism:g})"
               if self.conservatism != 1.0 else ""),
            f"  measured  {self.measured_total_ms:9.3f} ms"
            f"  (delta {self.total_delta_ms:+.3f} ms, {rel:+.1f}%)",
            "",
            "per-function completion (ms)",
            f"  {'function':<20s} {'predicted':>10s} {'measured':>10s} "
            f"{'delta':>9s} {'rel':>7s}",
        ]
        for f in self.functions:
            pred = ("-" if f.predicted_end_ms is None
                    else f"{f.predicted_end_ms:10.3f}")
            meas = ("-" if f.measured_end_ms is None
                    else f"{f.measured_end_ms:10.3f}")
            delta = "-" if f.delta_ms is None else f"{f.delta_ms:+9.3f}"
            relc = "-" if f.rel is None else f"{f.rel * 100:+6.1f}%"
            lines.append(f"  {f.name:<20s} {pred:>10s} {meas:>10s} "
                         f"{delta:>9s} {relc:>7s}")
        lines += [
            "",
            "per-mechanism totals (ms)",
            f"  {'mechanism':<20s} {'predicted':>10s} {'measured':>10s} "
            f"{'delta':>9s} {'spans p/m':>10s}",
        ]
        for m in self.mechanisms:
            lines.append(
                f"  {m.op:<20s} {m.predicted_ms:10.3f} {m.measured_ms:10.3f} "
                f"{m.delta_ms:+9.3f} {m.predicted_spans:>4d}/{m.measured_spans:<4d}")
        worst = self.worst_mechanism
        if worst is not None and abs(worst.delta_ms) > 1e-6:
            lines += ["",
                      f"largest mechanism gap: {worst.op} "
                      f"({worst.delta_ms:+.3f} ms)"]
        if self.fault_summary is not None:
            s = self.fault_summary
            injected = ", ".join(f"{k}x{v}"
                                 for k, v in s["injected"].items()) or "none"
            lines += [
                "",
                "fault attribution (injected faults, not model error)",
                f"  injected: {injected}",
                f"  retries {s['retries']}  exhausted {s['exhausted']}  "
                f"rerun work {s['rerun_work_ms']:.3f} ms",
                f"  fault-induced latency {self.fault_induced_ms:+.3f} ms, "
                f"residual model error {self.model_error_ms:+.3f} ms",
            ]
        return "\n".join(lines)


def _mechanism_totals(trace: TraceRecorder) -> dict[str, tuple[float, int]]:
    """Summed duration and span count per ``op`` tag (kind when untagged)."""
    out: dict[str, tuple[float, int]] = {}
    for span in trace:
        op = str(span.tags.get("op", span.kind))
        total, n = out.get(op, (0.0, 0))
        out[op] = (total + span.duration_ms, n + 1)
    return out


def _predicted_function_ends(trace: TraceRecorder,
                             names: list[str]) -> dict[str, float]:
    """Latest span end per function entity, stage-local names resolved.

    The predictor's replay names thread/task entities with the plain function
    name; runtime-only entities (fork children, ipc pipes) don't collide
    because function names never contain ``/``.
    """
    ends: dict[str, float] = {}
    for span in trace:
        if span.entity in names:
            prev = ends.get(span.entity)
            if prev is None or span.end_ms > prev:
                ends[span.entity] = span.end_ms
    return ends


def compare(workflow: Workflow, plan: DeploymentPlan, *,
            cal: Optional[RuntimeCalibration] = None,
            predictor: Optional[LatencyPredictor] = None,
            platform=None, cold: bool = False,
            tracer=None, faults=None, retry=None,
            fault_seed: int = 0,
            runtime_workflow: Optional[Workflow] = None) -> DivergenceReport:
    """Predict and execute ``plan``, then decompose the latency gap.

    ``predictor`` and ``platform`` default to a shared calibration; pass a
    deliberately different predictor (or ``platform``) to see how a single
    mis-calibrated constant surfaces in the mechanism table.  ``tracer``
    (a :class:`repro.obs.Tracer`) upgrades the runtime side to the detailed
    trace — GIL waits, gateway queueing — at some simulation overhead.

    ``faults``/``retry``/``fault_seed`` arm fault injection on the runtime
    side only; the report then attributes the injected slice of the latency
    gap separately (``fault_induced_ms`` vs ``model_error_ms``), so injected
    faults do not masquerade as predictor drift.

    ``runtime_workflow`` splits belief from reality: the predictor scores
    ``workflow`` (the behaviours the plan was built against) while the
    runtime executes ``runtime_workflow`` (the behaviours the system shows
    *now*).  Both must share the same function names/stage shape.  The
    resulting ``model_error_ms`` measures calibration drift — the signal
    the re-deployment control plane triggers on.
    """
    cal = cal or RuntimeCalibration.native()
    predictor = predictor or LatencyPredictor(cal)
    if platform is None:
        from repro.platforms.chiron import ChironPlatform
        platform = ChironPlatform(plan, cal)
    executed = runtime_workflow if runtime_workflow is not None else workflow
    if {f.name for f in executed.functions} != \
            {f.name for f in workflow.functions}:
        raise ValueError(
            "runtime_workflow must keep the predicted workflow's function "
            "names — only behaviours may drift")

    pred_trace = TraceRecorder()
    predicted = predictor.predict_workflow(workflow, plan, trace=pred_trace)
    result = platform.run(executed, cold=cold, tracer=tracer, faults=faults,
                          retry=retry, fault_seed=fault_seed)
    run_trace = result.trace

    names = [f.name for f in workflow.functions]
    pred_ends = _predicted_function_ends(pred_trace, names)
    functions = [FunctionDelta(
        name=n,
        predicted_end_ms=pred_ends.get(n),
        measured_end_ms=(result.function_spans[n][1]
                         if n in result.function_spans else None))
        for n in names]

    pred_ops = _mechanism_totals(pred_trace)
    run_ops = _mechanism_totals(run_trace)
    mechanisms = [
        MechanismDelta(
            op=op,
            predicted_ms=pred_ops.get(op, (0.0, 0))[0],
            measured_ms=run_ops.get(op, (0.0, 0))[0],
            predicted_spans=pred_ops.get(op, (0.0, 0))[1],
            measured_spans=run_ops.get(op, (0.0, 0))[1])
        for op in sorted(set(pred_ops) | set(run_ops))]
    mechanisms.sort(key=lambda m: abs(m.delta_ms), reverse=True)

    return DivergenceReport(
        workflow=workflow.name,
        predicted_total_ms=predicted,
        measured_total_ms=result.latency_ms,
        functions=functions,
        mechanisms=mechanisms,
        conservatism=predictor.conservatism,
        predicted_trace=pred_trace,
        runtime_trace=run_trace,
        fault_summary=result.faults)
