"""Counters and histograms for simulation/runtime observability.

A :class:`Registry` is a flat namespace of named instruments:

* :class:`Counter` — a monotonically increasing float (events dispatched,
  GIL handoffs, RPCs issued, bytes moved);
* :class:`Histogram` — streaming summary statistics plus fixed-boundary
  bucket counts (gateway queueing delay, GIL wait, span durations).

Everything is zero-dependency and allocation-light: instruments are created
lazily on first use and snapshots are plain dictionaries, so a registry can
be attached to a per-run :class:`repro.obs.Tracer` or kept process-global.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc {amount})")
        self.value += amount


#: default histogram bucket upper bounds, in the unit observed (we use ms).
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
                   250.0, 500.0, 1000.0)


class Histogram:
    """Streaming summary of observed values with fixed bucket boundaries."""

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total",
                 "min", "max", "_sumsq")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("bucket boundaries must be sorted and non-empty")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        #: counts per bucket; one extra slot for values above the last bound
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sumsq = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self._sumsq / self.count - self.mean ** 2
        return math.sqrt(max(var, 0.0))

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": dict(zip([*map(str, self.buckets), "+inf"],
                                self.bucket_counts)),
        }


class Registry:
    """A namespace of lazily created counters and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access --------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    # -- convenience write paths --------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- read side -----------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def snapshot(self) -> dict:
        """A JSON-friendly dump of every instrument's current state."""
        return {
            "counters": self.counters(),
            "histograms": {name: h.summary()
                           for name, h in sorted(self._histograms.items())},
        }

    def merge(self, other: "Registry") -> None:
        """Fold ``other``'s instruments into this registry (multi-run)."""
        for name, c in other._counters.items():
            self.counter(name).inc(c.value)
        for name, h in other._histograms.items():
            mine = self.histogram(name, h.buckets)
            mine.count += h.count
            mine.total += h.total
            mine._sumsq += h._sumsq
            mine.min = min(mine.min, h.min)
            mine.max = max(mine.max, h.max)
            for i, n in enumerate(h.bucket_counts):
                mine.bucket_counts[i] += n

    def to_text(self) -> str:
        """Human-readable one-line-per-instrument dump."""
        lines = []
        for name, value in self.counters().items():
            lines.append(f"{name:<40s} {value:12g}")
        for name, h in sorted(self._histograms.items()):
            lines.append(f"{name:<40s} n={h.count} mean={h.mean:.3f} "
                         f"min={0.0 if not h.count else h.min:.3f} "
                         f"max={0.0 if not h.count else h.max:.3f}")
        return "\n".join(lines) if lines else "(no metrics)"
