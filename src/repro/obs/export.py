"""Trace exporters: Chrome trace-event JSON and ASCII timelines.

Two consumers are served:

* **Perfetto / chrome://tracing** — :func:`chrome_trace` converts a recorded
  trace into the Trace Event Format (`"X"` complete spans, `"i"` instant
  events, `"M"` metadata naming each track), so a request's timeline can be
  inspected interactively.  Times are exported in microseconds as the format
  requires; the source trace is in milliseconds.
* **terminals** — :func:`render_timeline` draws the one-row-per-entity Gantt
  chart the Figure 5 experiment embeds in its notes, and :func:`render_cdf`
  draws the completion-time distribution used alongside Figure 15.

Both work on any :class:`~repro.simcore.monitor.TraceRecorder`; richer
detail (instant events, metrics) is included when the object is a
:class:`repro.obs.Tracer`.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional, Sequence, Union

#: glyphs for the ASCII timeline, by span kind
TIMELINE_GLYPHS = {
    "startup": "s", "exec": "#", "block": ".", "ipc": "i",
    "rpc": "r", "wait": "-", "fork": "f", "queue": "q", "phase": "=",
}


# ---------------------------------------------------------------------------
# ASCII rendering
# ---------------------------------------------------------------------------

def render_timeline(trace, width: int = 72,
                    glyphs: Optional[dict] = None) -> str:
    """One row per entity; each span paints its kind's glyph over its extent."""
    spans = list(trace)
    if not spans:
        return "(no spans)"
    glyph = glyphs or TIMELINE_GLYPHS
    t0 = min(s.start_ms for s in spans)
    t1 = max(s.end_ms for s in spans)
    span_total = max(t1 - t0, 1e-9)
    lines = []
    label_w = max(len(e) for e in trace.entities()) + 1
    for entity in trace.entities():
        row = [" "] * width
        for span in trace.spans(entity=entity):
            a = int((span.start_ms - t0) / span_total * (width - 1))
            b = int((span.end_ms - t0) / span_total * (width - 1))
            ch = glyph.get(span.kind, "#")
            for i in range(a, max(a, b) + 1):
                row[i] = ch
        lines.append(f"{entity:<{label_w}}|{''.join(row)}|")
    lines.append(f"{'':<{label_w}} {t0:.1f} ms {'-' * (width - 20)} {t1:.1f} ms")
    return "\n".join(lines)


def render_cdf(values: Sequence[float], width: int = 60, height: int = 12,
               label: str = "completion (ms)") -> str:
    """ASCII CDF of ``values`` — the Figure 15 companion chart."""
    pts = sorted(float(v) for v in values)
    if not pts:
        return "(no samples)"
    lo, hi = pts[0], pts[-1]
    spread = max(hi - lo, 1e-9)
    n = len(pts)
    rows = []
    for level in range(height, 0, -1):
        frac = level / height
        # smallest value whose CDF reaches `frac`
        idx = min(int(frac * n + 1e-9), n) - 1
        cut = pts[max(idx, 0)]
        col = int((cut - lo) / spread * (width - 1))
        row = ["·"] * (col + 1) + [" "] * (width - col - 1)
        row[col] = "#"
        rows.append(f"{frac:4.0%} |{''.join(row)}|")
    rows.append(f"     {lo:8.1f}{'':{max(width - 16, 1)}}{hi:8.1f}  {label}")
    return "\n".join(rows)


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

_MS_TO_US = 1000.0


def chrome_trace_events(trace, pid: int = 1) -> list[dict]:
    """Flatten a trace into Trace Event Format records (times in us)."""
    events: list[dict] = []
    tids = {entity: i + 1 for i, entity in enumerate(trace.entities())}
    events.append({"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                   "args": {"name": "repro-simulation"}})
    for entity, tid in tids.items():
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": entity}})
    for span in trace:
        args = {k: v for k, v in span.tags.items() if k != "op"}
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": tids[span.entity],
            "name": str(span.tags.get("op", span.kind)),
            "cat": span.kind,
            "ts": span.start_ms * _MS_TO_US,
            "dur": span.duration_ms * _MS_TO_US,
            "args": args,
        })
    for ev in getattr(trace, "events", ()):  # Tracer-only instants
        tid = tids.get(ev.entity)
        if tid is None:
            tid = tids[ev.entity] = len(tids) + 1
            events.append({"ph": "M", "pid": pid, "tid": tid,
                           "name": "thread_name", "args": {"name": ev.entity}})
        events.append({
            "ph": "i",
            "pid": pid,
            "tid": tid,
            "name": ev.name,
            "cat": "event",
            "ts": ev.ts_ms * _MS_TO_US,
            "s": "t",
            "args": dict(ev.tags),
        })
    return events


def chrome_trace(trace) -> dict:
    """The full JSON-object form Perfetto and chrome://tracing load."""
    doc = {
        "traceEvents": chrome_trace_events(trace),
        "displayTimeUnit": "ms",
    }
    snapshot = getattr(trace, "snapshot", None)
    if callable(snapshot):
        doc["otherData"] = snapshot()
    return doc


def write_chrome_trace(trace, out: Union[str, IO[str]]) -> None:
    """Serialize :func:`chrome_trace` to a path or open text file."""
    doc = chrome_trace(trace)
    if hasattr(out, "write"):
        json.dump(doc, out, indent=1)
    else:
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=1)
