"""``repro.obs`` — zero-dependency tracing, metrics, and divergence tooling.

Layers on top of the flat :class:`~repro.simcore.monitor.TraceRecorder` the
platforms already thread through the simulated runtime:

* :class:`Tracer` — nested spans, typed instant events, per-run metrics;
  pass one to ``Platform.run(tracer=...)`` to capture a request's detailed
  timeline (tracing is off by default and the hook points are gated on a
  single attribute load, so undecorated runs pay ~nothing);
* :mod:`repro.obs.metrics` — :class:`Registry` of counters and histograms;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable) and
  the ASCII timeline/CDF renderers the experiments embed;
* :mod:`repro.obs.divergence` — runs the white-box predictor's simulated
  timeline next to the runtime's trace and reports per-function and
  per-mechanism deltas.

See ``docs/observability.md`` for a walkthrough, or::

    python -m repro trace finra5 --out trace.json
"""

from repro.obs.divergence import (
    DivergenceReport,
    FunctionDelta,
    MechanismDelta,
    compare,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    render_cdf,
    render_timeline,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Histogram, Registry
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanHandle, TraceEvent, Tracer

__all__ = [
    "Counter",
    "DivergenceReport",
    "FunctionDelta",
    "Histogram",
    "MechanismDelta",
    "NULL_TRACER",
    "NullTracer",
    "Registry",
    "SpanHandle",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "compare",
    "render_cdf",
    "render_timeline",
    "write_chrome_trace",
]
