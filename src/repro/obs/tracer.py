"""The span/event tracer behind ``repro.obs``.

:class:`Tracer` extends the flat :class:`~repro.simcore.monitor.TraceRecorder`
(which every platform already threads through the simulated runtime) with

* **nested spans** — ``with tracer.span("manager.profile"):`` or explicit
  :meth:`begin`/:meth:`end`; open spans form a per-entity stack, so closed
  spans carry ``span_id``/``parent_id``/``depth`` tags and export cleanly to
  Chrome trace-event JSON;
* **typed instant events** — :meth:`event` records a named point in time
  (GIL handoffs, pool dispatches, kernel milestones);
* **metrics** — a :class:`~repro.obs.metrics.Registry` the hook points feed
  (counters for forks/RPCs/handoffs, histograms for queueing and wait times).

Tracing is *opt-in*: the default :class:`TraceRecorder` created by
``Platform.run`` has ``detail = False`` and every new hook point checks that
flag (one attribute load) before doing any work, so benchmark runs without a
tracer pay effectively nothing.  Pass ``tracer=Tracer()`` to
``Platform.run`` to capture the detailed timeline of one request.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.metrics import Registry
from repro.simcore.monitor import TraceRecorder


@dataclass(frozen=True)
class TraceEvent:
    """One instantaneous, named occurrence on an entity's timeline."""

    name: str          # e.g. "gil.handoff", "pool.dispatch"
    entity: str        # track the event belongs to
    ts_ms: float
    tags: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SpanHandle:
    """An open span returned by :meth:`Tracer.begin`; close with ``end``."""

    span_id: int
    name: str
    entity: str
    kind: str
    start_ms: float
    parent_id: Optional[int]
    depth: int
    tags: Dict[str, Any]
    closed: bool = False


def _wall_clock_ms(origin: float = time.perf_counter()) -> float:
    """Milliseconds since module import — the default (non-simulated) clock."""
    return (time.perf_counter() - origin) * 1000.0


class Tracer(TraceRecorder):
    """A detail-mode recorder: nested spans, typed events, metrics.

    ``clock`` supplies timestamps for :meth:`span`/:meth:`event` callers that
    do not pass explicit times (e.g. the manager's wall-clock phases).  When
    a platform runs a request with this tracer it rebinds the clock to the
    simulation's ``env.now`` via :meth:`bind_clock`, so all records share the
    simulated time base.
    """

    detail = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        super().__init__()
        self._clock: Callable[[], float] = clock or _wall_clock_ms
        self.metrics = Registry()
        self.events: List[TraceEvent] = []
        self._open: Dict[str, List[SpanHandle]] = {}
        self._next_id = 1

    # -- clock ----------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Switch the timestamp source (platforms bind ``lambda: env.now``)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # -- typed events ----------------------------------------------------------
    def event(self, name: str, entity: str = "trace",
              ts_ms: Optional[float] = None, **tags: Any) -> None:
        """Record an instantaneous event and bump its counter."""
        when = self._clock() if ts_ms is None else ts_ms
        self.events.append(TraceEvent(name, entity, when, dict(tags)))
        self.metrics.inc(f"event.{name}")

    # -- nested spans -----------------------------------------------------------
    def begin(self, name: str, entity: str = "trace", kind: str = "phase",
              **tags: Any) -> SpanHandle:
        stack = self._open.setdefault(entity, [])
        parent = stack[-1] if stack else None
        handle = SpanHandle(
            span_id=self._next_id, name=name, entity=entity, kind=kind,
            start_ms=self._clock(),
            parent_id=parent.span_id if parent else None,
            depth=len(stack), tags=dict(tags))
        self._next_id += 1
        stack.append(handle)
        return handle

    def end(self, handle: SpanHandle, **extra_tags: Any) -> None:
        if handle.closed:
            raise ValueError(f"span {handle.name!r} already closed")
        handle.closed = True
        stack = self._open.get(handle.entity, [])
        if handle in stack:            # tolerate out-of-order closes
            stack.remove(handle)
        end_ms = self._clock()
        tags = dict(handle.tags)
        tags.update(extra_tags)
        tags["op"] = tags.get("op", handle.name)
        tags["span_id"] = handle.span_id
        if handle.parent_id is not None:
            tags["parent_id"] = handle.parent_id
        tags["depth"] = handle.depth
        super().record(handle.entity, handle.kind, handle.start_ms, end_ms,
                       **tags)
        self.metrics.observe(f"span.{handle.name}.ms",
                             max(end_ms - handle.start_ms, 0.0))

    @contextmanager
    def span(self, name: str, entity: str = "trace", kind: str = "phase",
             **tags: Any) -> Iterator[SpanHandle]:
        handle = self.begin(name, entity, kind, **tags)
        try:
            yield handle
        finally:
            self.end(handle)

    # -- flat records (runtime hook points) -------------------------------------
    def record(self, entity: str, kind: str, start_ms: float, end_ms: float,
               **tags: Any) -> None:
        """Flat span from the runtime; inherits any open span as parent."""
        stack = self._open.get(entity)
        if stack:
            tags.setdefault("parent_id", stack[-1].span_id)
            tags.setdefault("depth", len(stack))
        op = tags.get("op")
        if op is not None:  # per-mechanism duration histograms for free
            self.metrics.observe(f"span.{op}.ms", max(end_ms - start_ms, 0.0))
        super().record(entity, kind, start_ms, end_ms, **tags)

    # -- snapshots --------------------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics snapshot plus span/event counts — one run's vitals."""
        snap = self.metrics.snapshot()
        snap["spans"] = len(self)
        snap["events"] = len(self.events)
        return snap


#: A tracer whose every operation is a no-op — the "tracing disabled" object
#: for call sites that want an unconditional tracer reference.
class NullTracer(Tracer):
    detail = False

    def __init__(self) -> None:  # noqa: D107 - trivial
        super().__init__(clock=lambda: 0.0)

    def event(self, name: str, entity: str = "trace",
              ts_ms: Optional[float] = None, **tags: Any) -> None:
        pass

    def begin(self, name: str, entity: str = "trace", kind: str = "phase",
              **tags: Any) -> SpanHandle:
        return SpanHandle(0, name, entity, kind, 0.0, None, 0, {})

    def end(self, handle: SpanHandle, **extra_tags: Any) -> None:
        pass

    def record(self, entity: str, kind: str, start_ms: float, end_ms: float,
               **tags: Any) -> None:
        pass


NULL_TRACER = NullTracer()
