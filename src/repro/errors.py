"""Exception hierarchy shared across the package.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch the whole family with one clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly or reached a bad state."""


class WorkflowError(ReproError):
    """A workflow definition is malformed (empty stages, bad dependencies...)."""


class DeploymentError(ReproError):
    """A deployment plan is inconsistent with the workflow it targets."""


class SchedulingError(ReproError):
    """PGP could not produce a valid partition (e.g. unsatisfiable SLO)."""


class ProfilingError(ReproError):
    """The profiler received malformed traces or produced invalid periods."""


class IsolationFault(ReproError):
    """A thread touched a memory arena protected by a different MPK key."""


class CapacityError(ReproError):
    """A machine or cluster ran out of CPU or memory for a placement."""


class FaultError(ReproError):
    """An *injected* transient fault (crash, drop, timeout) hit the runtime.

    ``mechanism`` names the fault source (``"sandbox.crash"``, ``"rpc.drop"``,
    ``"fork.fail"``, ``"storage.read"``...) so recovery drivers and failure
    summaries can distinguish injected faults from genuine bugs.
    """

    def __init__(self, message: str, mechanism: str = "fault") -> None:
        super().__init__(message)
        self.mechanism = mechanism


class RetryExhausted(FaultError):
    """A recovery driver gave up: every allowed attempt of a unit failed."""


class LifecycleError(ReproError):
    """A sandbox lifecycle state machine was driven through an invalid
    transition (e.g. reviving a reclaimed sandbox) or misconfigured."""


class OverloadError(ReproError):
    """The overload control plane refused, shed, or cancelled work."""


class DeadlineExceeded(OverloadError):
    """A request's deadline budget ran out mid-flight.

    Downstream stages/functions are cancelled rather than executed for an
    already-doomed request; ``wasted_ms`` is the wall time spent before the
    budget expired and ``completed_stages`` how far the request got.
    """

    def __init__(self, message: str, *, wasted_ms: float = 0.0,
                 completed_stages: int = 0) -> None:
        super().__init__(message)
        self.wasted_ms = wasted_ms
        self.completed_stages = completed_stages


class CircuitOpen(FaultError):
    """A circuit breaker fast-failed an operation without attempting it.

    Subclasses :class:`FaultError` (mechanism ``"breaker.open"``) because a
    trip is always downstream of injected faults/timeouts, the recovery
    driver should treat it as retryable (backoff covers the cooldown), and
    failure reports must not classify it as a bug.
    """

    def __init__(self, message: str, scope: str = "breaker") -> None:
        super().__init__(message, mechanism="breaker.open")
        self.scope = scope


class EmptySampleError(ReproError, ValueError):
    """A statistics helper received an empty latency sample.

    Doubles as :class:`ValueError` so callers that never imported the repro
    hierarchy (or sites where shedding drained a bucket) still get a clear,
    conventional exception instead of an obscure index/NaN path.
    """
