"""Exception hierarchy shared across the package.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch the whole family with one clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly or reached a bad state."""


class WorkflowError(ReproError):
    """A workflow definition is malformed (empty stages, bad dependencies...)."""


class DeploymentError(ReproError):
    """A deployment plan is inconsistent with the workflow it targets."""


class SchedulingError(ReproError):
    """PGP could not produce a valid partition (e.g. unsatisfiable SLO)."""


class ProfilingError(ReproError):
    """The profiler received malformed traces or produced invalid periods."""


class IsolationFault(ReproError):
    """A thread touched a memory arena protected by a different MPK key."""


class CapacityError(ReproError):
    """A machine or cluster ran out of CPU or memory for a placement."""


class FaultError(ReproError):
    """An *injected* transient fault (crash, drop, timeout) hit the runtime.

    ``mechanism`` names the fault source (``"sandbox.crash"``, ``"rpc.drop"``,
    ``"fork.fail"``, ``"storage.read"``...) so recovery drivers and failure
    summaries can distinguish injected faults from genuine bugs.
    """

    def __init__(self, message: str, mechanism: str = "fault") -> None:
        super().__init__(message)
        self.mechanism = mechanism


class RetryExhausted(FaultError):
    """A recovery driver gave up: every allowed attempt of a unit failed."""
