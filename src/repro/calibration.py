"""Calibrated timing, memory and pricing constants.

Every constant used by the simulated runtime, the predictor and the cost
model lives here, with the paper passage (or public source) it was calibrated
against.  All times are **milliseconds**, memory is **megabytes**, bandwidth
is **MB per millisecond** unless a suffix says otherwise.

The simulator reproduces the *shape* of the paper's results; these numbers
were tuned so that Chiron's absolute latencies land near the values printed
above the bars of Figure 13 (26 ms for Social Network ... 236 ms for
FINRA-200), but exact testbed milliseconds are out of scope (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace


# ---------------------------------------------------------------------------
# Process / thread / sandbox lifecycle (paper §2.2, Figure 5)
# ---------------------------------------------------------------------------

#: Average time from ``fork()`` returning in the child to the function body
#: starting ("the average startup time (i.e., 7.5 ms) can be 10x higher than
#: the execution time of sub-millisecond scale functions", §2.2 Obs. 2).
PROCESS_STARTUP_MS = 7.5

#: Time the *parent* is occupied per fork syscall.  Forks are serialized in
#: the parent, so process ``j`` waits ``(j-1) * PROCESS_FORK_BLOCK_MS`` before
#: its own fork starts ("when 50 parallel functions execute simultaneously,
#: the blocking time can reach up to 169 ms" -> 169/50 = 3.4 ms).
PROCESS_FORK_BLOCK_MS = 3.4

#: Thread creation cost ("thread reduces startup latency by 96% compared to
#: process": 7.5 ms * 0.04 = 0.3 ms).
THREAD_STARTUP_MS = 0.3

#: Cold start of a Python container sandbox ("starting a Hello-world Python
#: container takes 167 ms", §1).  Evaluation runs are warm (§6.2 "without
#: cold start") but the constant drives the cold-start code path and tests.
SANDBOX_COLD_START_MS = 167.0

#: Restoring a checkpointed sandbox image (CRIU / Firecracker-snapshot
#: style) costs this fraction of the full container cold start: the
#: interpreter and libraries are already materialized in the image, so only
#: page-in and reconnect work remains (REAP/Catalyzer report 10-20x faster
#: than cold boot; we sit mid-range at ~20 ms for the 167 ms Python boot).
SNAPSHOT_RESTORE_FRACTION = 0.12

#: One-time cost of *creating* the snapshot image after the first cold boot
#: of a (platform, workflow) deployment: checkpointing the warm interpreter
#: to disk.  Charged once per image, off the steady-state path.
SNAPSHOT_CREATE_MS = 55.0

#: CPython's default GIL switch interval (``sys.getswitchinterval`` = 5 ms).
GIL_SWITCH_INTERVAL_MS = 5.0

#: Warm-up cost for a worker in a process pool: the pool forks at sandbox
#: init, so per-request startup is just task dispatch (§4 "True Parallelism").
POOL_DISPATCH_MS = 0.5

#: Node.js worker_threads startup observed on AWS Lambda (§2.1: "worker
#: threads incur more than 50 ms of startup overhead for each function").
NODEJS_WORKER_THREAD_STARTUP_MS = 50.0


# ---------------------------------------------------------------------------
# Interaction overheads (Eq. 2-3, §3.3)
# ---------------------------------------------------------------------------

#: One cross-sandbox invocation through the local gateway (T_RPC in Eq. 2).
#: Includes HTTP round trip + payload (de)serialization.
T_RPC_MS = 12.0

#: Per-invocation client-side overhead when one wrap invokes several sibling
#: wraps in a stage (T_INV in Eq. 2): the (k-1) earlier async submissions.
T_INV_MS = 0.8

#: Pipe-based inter-process communication per process pair inside one sandbox
#: (T_IPC in Eq. 3).  FINRA-5 under Faastlane measured 4.3 ms total for 4
#: pairs (§2.2 Obs. 2) -> ~1.1 ms per pair.
T_IPC_MS = 1.1

#: Extra per-byte cost of pipe IPC (pipes stream at roughly 1.5 GB/s).
PIPE_BANDWIDTH_MB_PER_MS = 1.5


# ---------------------------------------------------------------------------
# Gateways and remote schedulers (Figure 3)
# ---------------------------------------------------------------------------

#: AWS Step Functions: latency to schedule/dispatch one state ("ASF uses
#: 150 ms for scheduling a function").
ASF_DISPATCH_LATENCY_MS = 150.0

#: ASF "only able to run up-to 10 functions concurrently" (§2.2 Obs. 1).
ASF_MAX_CONCURRENT_DISPATCH = 10

#: Serial issue gap between successive ASF dispatches once the concurrency
#: window is saturated.  Tuned so FINRA scheduling overhead lands near the
#: paper's 150/874/1628 ms for 5/25/50 parallel functions.
ASF_DISPATCH_ISSUE_GAP_MS = 31.0

#: OpenFaaS local gateway: invocations are proxied serially, each paying a
#: fixed service time plus a load-dependent term (connection/queue
#: contention), reproducing the superlinear 2/70/180 ms overhead of
#: Figure 3: sum_{i=1..n}(base + i * per_inflight) ~= 3 / 48 / 166 ms.
GATEWAY_SERVICE_BASE_MS = 0.25
GATEWAY_SERVICE_PER_INFLIGHT_MS = 0.12


# ---------------------------------------------------------------------------
# Remote storage (Figure 4)
# ---------------------------------------------------------------------------

#: Constants are per *operation* (one put or one get); a function-to-function
#: exchange is put + get.  S3 from Lambda: "even the smallest data transfer
#: can take up to 52 ms" (2 x 26 ms); 1 GB reaches ~25 s -> ~80 MB/s per op.
S3_BASE_LATENCY_MS = 26.0
S3_BANDWIDTH_MB_PER_MS = 0.08

#: MinIO on the local cluster: exchange floor ~9 ms, 1 GB exchange ~10 s.
MINIO_BASE_LATENCY_MS = 4.5
MINIO_BANDWIDTH_MB_PER_MS = 0.2


# ---------------------------------------------------------------------------
# Isolation mechanisms (Table 1, §4)
# ---------------------------------------------------------------------------

#: Software-fault isolation (WebAssembly/Faasm-style), Table 1 row "SFI".
SFI_STARTUP_MS = 18.0
SFI_INTERACTION_MS = 8.0
SFI_EXEC_OVERHEAD_CPU = 0.529   # +52.9 % on CPU-bound (Fibonacci)
SFI_EXEC_OVERHEAD_IO = 0.294    # +29.4 % on disk-IO-bound

#: Intel MPK, Table 1 row "Intel MPK".
MPK_STARTUP_MS = 0.2
MPK_INTERACTION_MS = 0.0
MPK_EXEC_OVERHEAD_CPU = 0.352   # +35.2 % on CPU-bound
MPK_EXEC_OVERHEAD_IO = 0.073    # +7.3 % on disk-IO-bound


# ---------------------------------------------------------------------------
# Memory model (Figure 16 discussion, §2.2 Obs. 4)
# ---------------------------------------------------------------------------

#: Resident memory of one warm Python runtime + common libraries.  Duplicated
#: per sandbox under one-to-one deployment ("severe memory redundancy between
#: sandboxes for language runtime and libraries, e.g., 77.2% in FINRA").
RUNTIME_BASE_MEMORY_MB = 24.0

#: Unique working-set per function (code + state), never shared.
FUNCTION_UNIQUE_MEMORY_MB = 0.55

#: Copy-on-write overhead per extra forked process inside a sandbox (partial
#: duplication of interpreter state).
PROCESS_COW_MEMORY_MB = 1.6

#: Per-thread stack + bookkeeping inside a process.
THREAD_MEMORY_MB = 0.11

#: Extra resident memory per long-lived process-pool worker ("the
#: long-running processes consume more than 5x memory", §6.3).
POOL_WORKER_MEMORY_MB = 22.0

#: Sandbox/container overhead beyond the runtime (watchdog, libc, cgroup).
SANDBOX_OVERHEAD_MEMORY_MB = 6.0


# ---------------------------------------------------------------------------
# Pricing (Figure 19, Google Cloud Functions prices quoted in §6.3)
# ---------------------------------------------------------------------------

PRICE_PER_GB_SECOND = 2.5e-6
PRICE_PER_GHZ_SECOND = 1.0e-5
CPU_CLOCK_GHZ = 2.1                      # Intel Xeon Gold 6230 (Table 2)
#: ASF additionally charges per state transition (§6.3 "The one-to-one model
#: has to additionally pay for every state transition between functions").
ASF_PRICE_PER_STATE_TRANSITION = 2.5e-5


# ---------------------------------------------------------------------------
# Testbed (Table 2)
# ---------------------------------------------------------------------------

NODE_CORES = 40
NODE_MEMORY_MB = 128 * 1024
CLUSTER_NODES = 8


@dataclass(frozen=True)
class RuntimeCalibration:
    """A bundle of the lifecycle/interaction constants the runtime consumes.

    Experiments that explore "what if" scenarios (ablations, the Java no-GIL
    runtime, MPK variants) build modified copies via :meth:`evolve` instead
    of mutating module globals.
    """

    process_startup_ms: float = PROCESS_STARTUP_MS
    fork_block_ms: float = PROCESS_FORK_BLOCK_MS
    thread_startup_ms: float = THREAD_STARTUP_MS
    sandbox_cold_start_ms: float = SANDBOX_COLD_START_MS
    snapshot_restore_fraction: float = SNAPSHOT_RESTORE_FRACTION
    snapshot_create_ms: float = SNAPSHOT_CREATE_MS
    gil_switch_interval_ms: float = GIL_SWITCH_INTERVAL_MS
    pool_dispatch_ms: float = POOL_DISPATCH_MS
    t_rpc_ms: float = T_RPC_MS
    t_inv_ms: float = T_INV_MS
    t_ipc_ms: float = T_IPC_MS
    pipe_bandwidth_mb_per_ms: float = PIPE_BANDWIDTH_MB_PER_MS
    gateway_service_base_ms: float = GATEWAY_SERVICE_BASE_MS
    gateway_service_per_inflight_ms: float = GATEWAY_SERVICE_PER_INFLIGHT_MS
    runtime_base_memory_mb: float = RUNTIME_BASE_MEMORY_MB
    function_unique_memory_mb: float = FUNCTION_UNIQUE_MEMORY_MB
    process_cow_memory_mb: float = PROCESS_COW_MEMORY_MB
    thread_memory_mb: float = THREAD_MEMORY_MB
    pool_worker_memory_mb: float = POOL_WORKER_MEMORY_MB
    sandbox_overhead_memory_mb: float = SANDBOX_OVERHEAD_MEMORY_MB
    #: Whether the language runtime serializes thread execution (CPython /
    #: Node.js -> True; Java / no-GIL CPython -> False).  Figure 18.
    has_gil: bool = True
    #: Multiplicative execution overhead applied to CPU segments / IO
    #: segments by the active isolation mechanism (0 for native threads).
    exec_overhead_cpu: float = 0.0
    exec_overhead_io: float = 0.0
    #: Extra per-function startup / per-interaction cost of the isolation
    #: mechanism (SFI / MPK, Table 1).
    isolation_startup_ms: float = 0.0
    isolation_interaction_ms: float = 0.0

    def evolve(self, **changes: object) -> "RuntimeCalibration":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def fingerprint(self) -> tuple:
        """Canonical hashable identity of this calibration.

        Field names are included so reordering or adding constants can never
        silently alias two different calibrations; equal calibrations always
        produce equal fingerprints.  Used as the calibration id of the
        prediction cache (:class:`repro.core.predictor.PredictionCache`).
        """
        return tuple((f.name, getattr(self, f.name)) for f in fields(self))

    @classmethod
    def native(cls) -> "RuntimeCalibration":
        """Native CPython threads (default configuration)."""
        return cls()

    @classmethod
    def mpk(cls) -> "RuntimeCalibration":
        """Intel MPK memory isolation between threads (Table 1)."""
        return cls(
            exec_overhead_cpu=MPK_EXEC_OVERHEAD_CPU,
            exec_overhead_io=MPK_EXEC_OVERHEAD_IO,
            isolation_startup_ms=MPK_STARTUP_MS,
            isolation_interaction_ms=MPK_INTERACTION_MS,
        )

    @classmethod
    def sfi(cls) -> "RuntimeCalibration":
        """WebAssembly-style software fault isolation (Table 1)."""
        return cls(
            exec_overhead_cpu=SFI_EXEC_OVERHEAD_CPU,
            exec_overhead_io=SFI_EXEC_OVERHEAD_IO,
            isolation_startup_ms=SFI_STARTUP_MS,
            isolation_interaction_ms=SFI_INTERACTION_MS,
        )

    @classmethod
    def no_gil(cls) -> "RuntimeCalibration":
        """A true-parallel runtime (Java threads, Figure 18)."""
        return cls(
            has_gil=False,
            # JVM thread start is cheap and fork-style process start is not
            # used; startup constants stay at the Python-calibrated defaults
            # for the process paths that baselines still exercise.
            thread_startup_ms=0.15,
        )

    @classmethod
    def nodejs(cls) -> "RuntimeCalibration":
        """Node.js with worker_threads (§2.1).

        The event loop serializes JavaScript execution like a GIL, and
        worker_threads pay ">50 ms of startup overhead for each function"
        (measured on AWS Lambda) — which is why thread fan-out doubles the
        latency of median 60 ms functions there.
        """
        return cls(
            has_gil=True,
            thread_startup_ms=NODEJS_WORKER_THREAD_STARTUP_MS,
            # V8 isolate spin-up is lighter than forking CPython
            process_startup_ms=5.0,
        )


DEFAULT_CALIBRATION = RuntimeCalibration.native()
