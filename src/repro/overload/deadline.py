"""Deadline propagation: an SLO-derived time budget carried by a request.

Every stage/function boundary of every platform calls
:func:`check_deadline`; when ``env.deadline`` is ``None`` (the default) the
hook costs one attribute load, keeping zero-deadline runs bit-identical to
pre-overload behavior.  With a budget installed, the check cancels all
downstream work for an already-doomed request by raising
:class:`~repro.errors.DeadlineExceeded` — a counted, attributed outcome
rather than a hang — and ledgers the wall time that was wasted getting
there (``overload.wasted_ms``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DeadlineExceeded, SimulationError
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder


class DeadlineBudget:
    """One request's remaining time-to-SLO, decremented by the clock.

    The budget is anchored at the simulated instant the request entered the
    platform (``start_ms``); ``remaining_ms`` is what is left of the
    ``deadline_ms`` allowance at any later instant.  ``cancelled`` counts
    how many stage/function checks fired after expiry (each one is
    downstream work that was *not* performed).
    """

    def __init__(self, deadline_ms: float, *, start_ms: float = 0.0,
                 trace: Optional[TraceRecorder] = None) -> None:
        if deadline_ms <= 0:
            raise SimulationError(
                f"deadline_ms must be > 0, got {deadline_ms}")
        self.deadline_ms = float(deadline_ms)
        self.start_ms = float(start_ms)
        self.trace = trace
        #: deadline checks that found the budget already spent
        self.cancelled = 0
        #: simulated instant the first cancellation fired (None = never)
        self.expired_at_ms: Optional[float] = None

    def remaining_ms(self, now_ms: float) -> float:
        return self.deadline_ms - (now_ms - self.start_ms)

    def expired(self, now_ms: float) -> bool:
        return self.remaining_ms(now_ms) <= 0.0

    def cancel(self, entity: str, now_ms: float,
               completed_stages: int = 0) -> DeadlineExceeded:
        """Record one post-expiry check and build the cancelling error."""
        self.cancelled += 1
        wasted = now_ms - self.start_ms
        if self.expired_at_ms is None:
            self.expired_at_ms = now_ms
        trace = self.trace
        if trace is not None and trace.detail:
            trace.event("deadline.expired", entity=entity,
                        over_ms=-self.remaining_ms(now_ms))
            trace.metrics.inc("overload.deadline.expired")
            trace.metrics.inc("overload.deadline.cancelled_stages")
            trace.metrics.inc("overload.wasted_ms", wasted)
        return DeadlineExceeded(
            f"{entity}: deadline of {self.deadline_ms:.1f} ms exceeded "
            f"({-self.remaining_ms(now_ms):.1f} ms over); downstream work "
            f"cancelled", wasted_ms=wasted, completed_stages=completed_stages)

    def summary(self) -> dict:
        return {"deadline_ms": self.deadline_ms,
                "cancelled_checks": self.cancelled,
                "expired_at_ms": self.expired_at_ms}


def check_deadline(env: Environment, *, entity: str,
                   completed_stages: int = 0) -> None:
    """Cancel the calling request if its deadline budget is spent.

    The single shared hook every platform places at stage/function
    boundaries.  No-op (one attribute load) without an installed budget.
    """
    budget = env.deadline
    if budget is None:
        return
    if budget.expired(env.now):
        raise budget.cancel(entity, env.now, completed_stages)
