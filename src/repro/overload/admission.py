"""Admission control: token-bucket rate limiting + bounded queues.

The pre-overload cluster layer queued every arrival without bound, so past
the saturation knee the backlog — and with it p99 sojourn — grew without
limit and *zero* requests met their SLO (the classic metastable pile-up).
An :class:`AdmissionController` sits in front of a replica set and turns
that silent unbounded wait into explicit, cheap outcomes:

* ``REJECTED`` — the token bucket is empty: offered load exceeds the
  provisioned rate, the excess is refused at the front door;
* ``SHED`` — the bounded per-replica queue is full: a burst outran the
  replicas, the request is dropped rather than parked forever;
* ``ADMITTED`` — the request proceeds to queue for a replica.

Rejecting/shedding costs no simulated work, so the replicas only ever serve
requests that still have a chance of meeting their deadline — which is what
keeps goodput at the knee value while offered load doubles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import CapacityError
from repro.simcore import Environment, Resource
from repro.simcore.monitor import TraceRecorder


class AdmissionOutcome(enum.Enum):
    """What the controller decided for one arriving request."""

    ADMITTED = "admitted"
    SHED = "shed"          # bounded queue full
    REJECTED = "rejected"  # token bucket empty (rate limit)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of one admission controller.

    ``rate_rps``/``burst`` shape the token bucket (``rate_rps=None``
    disables rate limiting); ``max_queue_per_replica`` bounds the number of
    *waiting* requests per replica (``None`` restores the unbounded queue).
    A policy with both knobs ``None`` admits everything — useful as an
    explicit "no policy" baseline.
    """

    rate_rps: Optional[float] = None
    burst: int = 16
    max_queue_per_replica: Optional[int] = 4

    def __post_init__(self) -> None:
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise CapacityError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.burst < 1:
            raise CapacityError(f"burst must be >= 1, got {self.burst}")
        if (self.max_queue_per_replica is not None
                and self.max_queue_per_replica < 0):
            raise CapacityError(
                f"max_queue_per_replica must be >= 0, "
                f"got {self.max_queue_per_replica}")

    @property
    def is_null(self) -> bool:
        return self.rate_rps is None and self.max_queue_per_replica is None


class TokenBucket:
    """A continuous-refill token bucket on the simulation clock.

    Starts full; refills at ``rate_rps`` tokens per second of simulated
    time, capped at ``burst``.  Purely arithmetic — no events, no RNG — so
    it adds nothing to the simulation schedule.
    """

    def __init__(self, rate_rps: float, burst: int, *,
                 now_ms: float = 0.0) -> None:
        if rate_rps <= 0 or burst < 1:
            raise CapacityError(
                f"token bucket needs rate > 0 and burst >= 1, "
                f"got rate={rate_rps}, burst={burst}")
        self.rate_rps = float(rate_rps)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_ms = float(now_ms)

    def _refill(self, now_ms: float) -> None:
        elapsed_ms = max(0.0, now_ms - self._last_ms)
        self.tokens = min(self.burst,
                          self.tokens + elapsed_ms * self.rate_rps / 1000.0)
        self._last_ms = now_ms

    def try_take(self, now_ms: float) -> bool:
        """Consume one token if available; False means rate-limited."""
        self._refill(now_ms)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Admission decisions for one replica set (a counted ``Resource``).

    The queue bound scales with the *current* replica capacity, so an
    autoscaler growing the replica set automatically widens the admissible
    backlog.  Counters are kept locally and mirrored into ``trace.metrics``
    (``overload.admitted``/``shed``/``rejected``) when detail tracing is on.
    """

    def __init__(self, env: Environment, policy: AdmissionPolicy,
                 servers: Resource, *,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.env = env
        self.policy = policy
        self.servers = servers
        self.trace = trace
        self.bucket = (TokenBucket(policy.rate_rps, policy.burst,
                                   now_ms=env.now)
                       if policy.rate_rps is not None else None)
        self.admitted = 0
        self.shed = 0
        self.rejected = 0

    def admit(self, entity: str = "request") -> AdmissionOutcome:
        """Decide one arrival.  Rate limit first, then the queue bound."""
        if self.bucket is not None and not self.bucket.try_take(self.env.now):
            self.rejected += 1
            self._note("admission.rejected", "overload.rejected", entity)
            return AdmissionOutcome.REJECTED
        bound = self.policy.max_queue_per_replica
        if (bound is not None
                and self.servers.queue_len >= bound * self.servers.capacity):
            self.shed += 1
            self._note("admission.shed", "overload.shed", entity)
            return AdmissionOutcome.SHED
        self.admitted += 1
        trace = self.trace
        if trace is not None and trace.detail:
            trace.metrics.inc("overload.admitted")
        return AdmissionOutcome.ADMITTED

    def _note(self, event: str, counter: str, entity: str) -> None:
        trace = self.trace
        if trace is not None and trace.detail:
            trace.event(event, entity=entity, queue_len=self.servers.queue_len)
            trace.metrics.inc(counter)

    def summary(self) -> dict:
        """JSON-friendly ledger for load-test results and reports."""
        return {"admitted": self.admitted, "shed": self.shed,
                "rejected": self.rejected}
