"""Circuit breaking around sandbox boot and RPC dispatch.

Under injected faults (:mod:`repro.faults`) a failing dependency makes
every attempt burn its full cost before erroring — a dropped RPC costs the
whole ``rpc_timeout_ms``, a crashing sandbox a cold boot per retry.  A
:class:`CircuitBreaker` watches consecutive failures per *scope* ("rpc",
"sandbox.boot"); once ``failure_threshold`` trips it OPEN, later attempts
fast-fail with :class:`~repro.errors.CircuitOpen` (no timeout burned, no
boot paid) until ``cooldown_ms`` passes, then a HALF_OPEN probe decides
whether to close again.

The per-request :class:`BreakerBoard` is installed as ``env.overload`` by
``Platform.run`` — same slot pattern as ``env.faults``, so runs without a
breaker policy pay one attribute load per hook and stay bit-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import CircuitOpen, SimulationError
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/recover knobs shared by every scope of one request."""

    #: consecutive failures that trip the breaker OPEN
    failure_threshold: int = 3
    #: time OPEN before a HALF_OPEN probe is allowed through
    cooldown_ms: float = 250.0
    #: probes admitted while HALF_OPEN before further calls fast-fail
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise SimulationError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold}")
        if self.cooldown_ms < 0:
            raise SimulationError(
                f"cooldown_ms must be >= 0, got {self.cooldown_ms}")
        if self.half_open_probes < 1:
            raise SimulationError(
                f"half_open_probes must be >= 1, "
                f"got {self.half_open_probes}")


class CircuitBreaker:
    """One scope's failure-driven state machine."""

    def __init__(self, scope: str, policy: BreakerPolicy, *,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.scope = scope
        self.policy = policy
        self.trace = trace
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms: Optional[float] = None
        self._probes_left = 0
        # -- ledger ----------------------------------------------------------
        self.trips = 0
        self.fastfails = 0
        self.probes = 0

    # -- guard ---------------------------------------------------------------
    def check(self, now_ms: float, entity: str) -> None:
        """Gate one operation; raises :class:`CircuitOpen` when tripped."""
        if self.state is BreakerState.OPEN:
            assert self.opened_at_ms is not None
            if now_ms - self.opened_at_ms >= self.policy.cooldown_ms:
                self._transition(BreakerState.HALF_OPEN, now_ms, entity)
                self._probes_left = self.policy.half_open_probes
            else:
                self._fastfail(now_ms, entity)
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_left <= 0:
                self._fastfail(now_ms, entity)
            self._probes_left -= 1
            self.probes += 1
            trace = self.trace
            if trace is not None and trace.detail:
                trace.metrics.inc("overload.breaker.probes")

    # -- outcome feedback ----------------------------------------------------
    def record_failure(self, now_ms: float, entity: str) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # the probe failed: straight back to OPEN for another cooldown
            self._trip(now_ms, entity)
            return
        self.consecutive_failures += 1
        if (self.state is BreakerState.CLOSED
                and self.consecutive_failures >= self.policy.failure_threshold):
            self._trip(now_ms, entity)

    def record_success(self, now_ms: float, entity: str) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now_ms, entity)

    # -- internals -----------------------------------------------------------
    def _trip(self, now_ms: float, entity: str) -> None:
        self.trips += 1
        self.opened_at_ms = now_ms
        self.consecutive_failures = 0
        self._transition(BreakerState.OPEN, now_ms, entity)
        trace = self.trace
        if trace is not None and trace.detail:
            trace.metrics.inc("overload.breaker.trips")

    def _fastfail(self, now_ms: float, entity: str) -> None:
        self.fastfails += 1
        trace = self.trace
        if trace is not None and trace.detail:
            trace.event("breaker.fastfail", entity=entity, scope=self.scope)
            trace.metrics.inc("overload.breaker.fastfail")
        raise CircuitOpen(
            f"{self.scope} breaker open for {entity} "
            f"(tripped {self.trips}x); failing fast", scope=self.scope)

    def _transition(self, state: BreakerState, now_ms: float,
                    entity: str) -> None:
        self.state = state
        trace = self.trace
        if trace is not None and trace.detail:
            trace.event(f"breaker.{state.value}", entity=entity,
                        scope=self.scope)

    def summary(self) -> dict:
        return {"state": self.state.value, "trips": self.trips,
                "fastfails": self.fastfails, "probes": self.probes}


#: the scopes runtime hooks guard (breaker instances are created lazily)
BREAKER_SCOPES = ("rpc", "sandbox.boot")


class BreakerBoard:
    """Per-request set of breakers, one per scope — the ``env.overload`` slot.

    Runtime hook points call :meth:`check` before a guarded operation and
    :meth:`record_failure`/:meth:`record_success` after, naming the scope:
    the gateway/ASF dispatcher use ``"rpc"``, the sandbox boot path (and the
    recovery driver, on a crash) use ``"sandbox.boot"``.
    """

    def __init__(self, env: Environment,
                 policy: Optional[BreakerPolicy] = None, *,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.env = env
        self.policy = policy or BreakerPolicy()
        self.trace = trace
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, scope: str) -> CircuitBreaker:
        b = self._breakers.get(scope)
        if b is None:
            b = self._breakers[scope] = CircuitBreaker(scope, self.policy,
                                                       trace=self.trace)
        return b

    def check(self, scope: str, entity: str) -> None:
        self.breaker(scope).check(self.env.now, entity)

    def record_failure(self, scope: str, entity: str) -> None:
        self.breaker(scope).record_failure(self.env.now, entity)

    def record_success(self, scope: str, entity: str) -> None:
        self.breaker(scope).record_success(self.env.now, entity)

    def summary(self) -> dict:
        return {scope: b.summary()
                for scope, b in sorted(self._breakers.items())}
