"""Brownout degradation: shed optional parallelism under sustained pressure.

When a replica set sits at its maximum size and the queue still grows, the
only remaining lever is to make each request *cheaper*.  A wrap's forked
process groups are optional parallelism — converting them to thread groups
of the orchestrator (:func:`degrade_plan`) trades per-request latency for
per-request core footprint, letting the same machines host more concurrent
requests.  The autoscaler's controller loop uses :class:`BrownoutConfig`
to decide when to step a deployment down a level and when to recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import CapacityError
from repro.core.wrap import (DeploymentPlan, ExecMode, ProcessAssignment,
                             StageAssignment, Wrap)


@dataclass(frozen=True)
class BrownoutConfig:
    """When to degrade, when to recover, and what a level buys.

    Pressure is measured as waiting requests per replica at each controller
    evaluation.  ``trigger_intervals`` consecutive over-threshold readings
    at max replicas enter brownout; ``recover_intervals`` consecutive calm
    readings leave it.  While degraded, each replica serves a cheaper
    request mix: service times stretch by ``service_factor`` but effective
    capacity grows by ``capacity_factor`` (the cores freed by un-forking).
    """

    queue_per_replica_threshold: float = 4.0
    trigger_intervals: int = 3
    recover_intervals: int = 3
    service_factor: float = 1.3
    capacity_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.queue_per_replica_threshold <= 0:
            raise CapacityError(
                f"queue_per_replica_threshold must be > 0, "
                f"got {self.queue_per_replica_threshold}")
        if self.trigger_intervals < 1 or self.recover_intervals < 1:
            raise CapacityError(
                f"trigger/recover intervals must be >= 1, got "
                f"{self.trigger_intervals}/{self.recover_intervals}")
        if self.service_factor < 1.0:
            raise CapacityError(
                f"service_factor must be >= 1, got {self.service_factor}")
        if self.capacity_factor < 1.0:
            raise CapacityError(
                f"capacity_factor must be >= 1, got {self.capacity_factor}")


def _degrade_stage(sa: StageAssignment, cap: int) -> StageAssignment:
    """Convert forked groups beyond the process cap to thread groups."""
    forked = sa.forked_processes
    uses_orchestrator = 1 if sa.thread_groups else 0
    if len(forked) + uses_orchestrator <= cap:
        return sa
    # after any conversion the orchestrator core is in use, so at most
    # cap - 1 groups may stay forked (cap=1 un-forks everything)
    budget = max(0, cap - 1)
    kept = 0
    processes: List[ProcessAssignment] = []
    for p in sa.processes:
        if p.mode is ExecMode.PROCESS:
            if kept < budget:
                kept += 1
                processes.append(p)
            else:
                processes.append(ProcessAssignment(p.functions,
                                                   mode=ExecMode.THREAD))
        else:
            processes.append(p)
    return StageAssignment(sa.stage_index, tuple(processes))


def degrade_plan(plan: DeploymentPlan, *,
                 max_processes_per_wrap: int) -> DeploymentPlan:
    """A brownout copy of ``plan`` using at most ``max_processes_per_wrap``
    concurrent processes per wrap.

    Forked groups beyond the cap become thread groups (stage order
    preserved), pool workers shrink to the cap, and each wrap's core grant
    shrinks to its new process peak.  The PGP latency prediction no longer
    holds for the degraded shape, so it is cleared; the SLO is kept for
    accounting.
    """
    if max_processes_per_wrap < 1:
        raise CapacityError(
            f"max_processes_per_wrap must be >= 1, "
            f"got {max_processes_per_wrap}")
    wraps = []
    cores: Dict[str, int] = {}
    for wrap in plan.wraps:
        degraded = Wrap(wrap.name, tuple(
            _degrade_stage(sa, max_processes_per_wrap)
            for sa in wrap.stages))
        wraps.append(degraded)
        cores[wrap.name] = min(plan.cores_for(wrap),
                               degraded.max_concurrent_processes)
    pool_workers = (min(plan.pool_workers, max_processes_per_wrap)
                    if plan.pool_workers else 0)
    return DeploymentPlan(
        workflow_name=plan.workflow_name, wraps=tuple(wraps), cores=cores,
        pool_workers=pool_workers, predicted_latency_ms=None,
        slo_ms=plan.slo_ms)
