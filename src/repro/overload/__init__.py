"""Overload control plane: keep goodput at the knee when load keeps rising.

Four cooperating mechanisms, each individually optional and each costing
exactly one attribute load when disabled (the ``env.faults`` contract):

* :mod:`~repro.overload.admission` — token-bucket rate limiting and bounded
  per-replica queues in front of a replica set; excess load becomes explicit
  ``SHED``/``REJECTED`` outcomes instead of an unbounded backlog.
* :mod:`~repro.overload.deadline` — an SLO-derived time budget carried by
  each request; stage/function boundaries cancel doomed requests instead of
  finishing work nobody will wait for.
* :mod:`~repro.overload.breaker` — circuit breakers around sandbox boot and
  RPC dispatch that fast-fail once a dependency keeps failing, so retries
  stop burning full timeouts.
* :mod:`~repro.overload.brownout` — degrade a deployment's optional
  parallelism (forked processes → threads) when the autoscaler is maxed out
  and pressure persists.
"""

from repro.overload.admission import (AdmissionController, AdmissionOutcome,
                                      AdmissionPolicy, TokenBucket)
from repro.overload.breaker import (BREAKER_SCOPES, BreakerBoard,
                                    BreakerPolicy, BreakerState,
                                    CircuitBreaker)
from repro.overload.brownout import BrownoutConfig, degrade_plan
from repro.overload.deadline import DeadlineBudget, check_deadline

#: every typed event the overload plane can emit (pinned by the golden-trace
#: schema, mirroring ``repro.faults.FAULT_EVENT_TYPES``)
OVERLOAD_EVENT_TYPES = (
    "admission.shed",
    "admission.rejected",
    "deadline.expired",
    "breaker.open",
    "breaker.half_open",
    "breaker.closed",
    "breaker.fastfail",
)

#: every counter the overload plane increments (also schema-pinned)
OVERLOAD_COUNTERS = (
    "overload.admitted",
    "overload.shed",
    "overload.rejected",
    "overload.deadline.expired",
    "overload.deadline.cancelled_stages",
    "overload.wasted_ms",
    "overload.breaker.trips",
    "overload.breaker.fastfail",
    "overload.breaker.probes",
)

__all__ = [
    "AdmissionController",
    "AdmissionOutcome",
    "AdmissionPolicy",
    "TokenBucket",
    "BreakerBoard",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "BREAKER_SCOPES",
    "BrownoutConfig",
    "degrade_plan",
    "DeadlineBudget",
    "check_deadline",
    "OVERLOAD_EVENT_TYPES",
    "OVERLOAD_COUNTERS",
]
