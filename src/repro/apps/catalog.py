"""Workload definitions and the named-workload registry."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import WorkflowError
from repro.workflow.behavior import FunctionBehavior
from repro.workflow.dsl import WorkflowBuilder
from repro.workflow.model import Workflow


def _b(*pairs: tuple[str, float], data_mb: float = 0.01) -> FunctionBehavior:
    return FunctionBehavior.of(*pairs, data_out_mb=data_mb)


# ---------------------------------------------------------------------------
# FINRA — trade validation against pre-determined rules [2, 30]
# ---------------------------------------------------------------------------

def finra(parallelism: int = 50) -> Workflow:
    """FINRA: fetch market/portfolio data, then validate trades in parallel.

    Stage 1 is a data-fetch dominated by network I/O; stage 2 runs
    ``parallelism`` near-identical rule checks of a few milliseconds each
    (the paper configures 5-200).
    """
    if parallelism < 1:
        raise WorkflowError(f"parallelism must be >= 1, got {parallelism}")
    fetch = _b(("cpu", 4.0), ("io", 55.0), ("cpu", 1.5), data_mb=2.0)
    # Rule checks are mildly heterogeneous: marshalling + rule evaluation
    # with a short audit write.  Sub-10 ms each (Figure 5's timeline).
    rules = []
    for i in range(parallelism):
        cpu = 5.5 + 1.0 * ((i * 7) % 3)      # 5.5 / 6.5 / 7.5 ms
        io = 1.0 + 0.5 * ((i * 5) % 2)       # 1.0 / 1.5 ms
        rules.append((f"validate-{i}", _b(("cpu", cpu), ("io", io))))
    return (WorkflowBuilder(f"finra-{parallelism}")
            .sequential("fetch", ("fetch-data", fetch))
            .parallel("validate", rules)
            .build())


# ---------------------------------------------------------------------------
# Social Network — DeathStarBench-style compose-post path [23]
# ---------------------------------------------------------------------------

def social_network() -> Workflow:
    """Social Network: 4 stages, 10 functions, max parallelism 5."""
    return (WorkflowBuilder("social-network")
            .sequential("compose", ("compose-post",
                                    _b(("cpu", 1.2), ("io", 2.0))))
            .parallel("enrich", [
                ("text-filter", _b(("cpu", 2.5), ("io", 1.0))),
                ("user-tag", _b(("cpu", 1.0), ("io", 3.5))),
                ("url-shorten", _b(("cpu", 0.8), ("io", 3.0))),
                ("media-check", _b(("cpu", 3.0), ("io", 2.0))),
                ("user-mention", _b(("cpu", 1.2), ("io", 3.0))),
            ])
            .parallel("persist", [
                ("store-post", _b(("cpu", 0.6), ("io", 5.0))),
                ("write-timeline", _b(("cpu", 0.8), ("io", 4.0))),
                ("notify-followers", _b(("cpu", 0.5), ("io", 4.5))),
            ])
            .sequential("respond", ("respond", _b(("cpu", 0.8),)))
            .build())


# ---------------------------------------------------------------------------
# Movie Reviewing [23]
# ---------------------------------------------------------------------------

def movie_review() -> Workflow:
    """Movie Reviewing: 4 stages, 9 functions, max parallelism 4."""
    return (WorkflowBuilder("movie-review")
            .sequential("upload", ("upload-review",
                                   _b(("cpu", 1.0), ("io", 1.5))))
            .parallel("analyze", [
                ("process-text", _b(("cpu", 2.2), ("io", 0.8))),
                ("rate-movie", _b(("cpu", 1.0), ("io", 2.0))),
                ("spam-check", _b(("cpu", 2.5), ("io", 0.5))),
                ("extract-entities", _b(("cpu", 2.0), ("io", 1.0))),
            ])
            .parallel("persist", [
                ("store-review", _b(("cpu", 0.5), ("io", 4.0))),
                ("update-movie-stats", _b(("cpu", 0.8), ("io", 3.0))),
                ("update-user-profile", _b(("cpu", 0.6), ("io", 3.2))),
            ])
            .sequential("respond", ("respond", _b(("cpu", 0.6),)))
            .build())


# ---------------------------------------------------------------------------
# SLApp and SLApp-V [33]
# ---------------------------------------------------------------------------

#: the four workload archetypes of §2.2 Observation 4 / Figure 7: similar
#: solo latency (~25 ms), very different CPU/IO mixes.
SLAPP_ARCHETYPES = {
    "factorial": _b(("cpu", 25.0)),
    "fibonacci": _b(("cpu", 24.0)),
    "disk-io": _b(("cpu", 2.5), ("io", 22.0)),
    "network-io": _b(("cpu", 1.5), ("io", 24.0)),
}


def slapp() -> Workflow:
    """SLApp: 2 all-parallel stages, 7 functions, max parallelism 4.

    "There is no sequential function in SLApp" — both stages fan out, with
    CPU-, disk-IO- and network-IO-intensive members of similar latency.
    """
    return (WorkflowBuilder("slapp")
            .parallel("stage-a", [
                ("factorial-a", SLAPP_ARCHETYPES["factorial"]),
                ("disk-io-a", SLAPP_ARCHETYPES["disk-io"]),
                ("network-io-a", SLAPP_ARCHETYPES["network-io"]),
            ])
            .parallel("stage-b", [
                ("fibonacci-b", SLAPP_ARCHETYPES["fibonacci"]),
                ("factorial-b", SLAPP_ARCHETYPES["factorial"]),
                ("disk-io-b", SLAPP_ARCHETYPES["disk-io"]),
                ("network-io-b", SLAPP_ARCHETYPES["network-io"]),
            ])
            .build())


def slapp_v() -> Workflow:
    """SLApp-V: the 5-stage, 10-function variant, max parallelism 5."""
    return (WorkflowBuilder("slapp-v")
            .sequential("ingest", ("ingest", _b(("cpu", 2.0), ("io", 6.0))))
            .parallel("burst", [
                ("factorial-1", SLAPP_ARCHETYPES["factorial"]),
                ("fibonacci-1", SLAPP_ARCHETYPES["fibonacci"]),
                ("disk-io-1", SLAPP_ARCHETYPES["disk-io"]),
                ("network-io-1", SLAPP_ARCHETYPES["network-io"]),
                ("factorial-2", SLAPP_ARCHETYPES["factorial"]),
            ])
            .sequential("reduce", ("reduce", _b(("cpu", 4.0), ("io", 2.0))))
            .parallel("post", [
                ("disk-io-2", SLAPP_ARCHETYPES["disk-io"]),
                ("network-io-2", SLAPP_ARCHETYPES["network-io"]),
            ])
            .sequential("respond", ("respond", _b(("cpu", 1.5),)))
            .build())


# ---------------------------------------------------------------------------
# Video-FFmpeg — the dynamic-DAG example of §7 (extension)
# ---------------------------------------------------------------------------

def video_ffmpeg(split_parallelism: int = 4):
    """Video processing with a data-dependent switch (§7 scenario 2).

    ``upload`` decides the chain: large videos go down the *split* path
    (split, parallel encodes, merge); small ones take *simple* (a single
    transcode).  Returns a :class:`~repro.workflow.dynamic.DynamicWorkflow`.
    """
    from repro.workflow.dynamic import Branch, DynamicWorkflow
    from repro.workflow.model import FunctionSpec, Stage

    if split_parallelism < 1:
        raise WorkflowError("split_parallelism must be >= 1")
    upload = Stage("upload", [FunctionSpec(
        "upload", _b(("cpu", 3.0), ("io", 30.0), data_mb=8.0))])
    store = Stage("store", [FunctionSpec(
        "store-result", _b(("cpu", 1.0), ("io", 12.0)))])
    split_branch = Branch("split", (
        Stage("split", [FunctionSpec(
            "split", _b(("cpu", 10.0), ("io", 6.0), data_mb=8.0))]),
        Stage("encode", [FunctionSpec(
            f"encode-{i}", _b(("cpu", 35.0), ("io", 4.0), data_mb=2.0))
            for i in range(split_parallelism)]),
        Stage("merge", [FunctionSpec(
            "merge", _b(("cpu", 8.0), ("io", 5.0), data_mb=8.0))]),
    ))
    simple_branch = Branch("simple", (
        Stage("simple", [FunctionSpec(
            "simple-process", _b(("cpu", 18.0), ("io", 6.0), data_mb=4.0))]),
    ))
    return DynamicWorkflow("video-ffmpeg", prefix=(upload,),
                           branches=(split_branch, simple_branch),
                           suffix=(store,))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ALL_WORKLOADS: Dict[str, Callable[[], Workflow]] = {
    "social-network": social_network,
    "movie-review": movie_review,
    "slapp": slapp,
    "slapp-v": slapp_v,
    "finra-5": lambda: finra(5),
    "finra-50": lambda: finra(50),
    "finra-100": lambda: finra(100),
    "finra-200": lambda: finra(200),
}


def workload(name: str) -> Workflow:
    """Build a named workload (the eight x-axis entries of Figure 13)."""
    try:
        return ALL_WORKLOADS[name]()
    except KeyError:
        raise WorkflowError(
            f"unknown workload {name!r}; known: {sorted(ALL_WORKLOADS)}"
        ) from None
