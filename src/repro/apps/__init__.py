"""The paper's benchmark applications (§6 "Testbed and Benchmarks").

Five workloads drive every figure:

* :func:`finra` — Financial Industry Regulatory Authority trade validation
  (2 stages; 5/25/50/100/200 parallel rule checks);
* :func:`social_network` — DeathStarBench-style Social Network (4 stages,
  10 functions, max parallelism 5);
* :func:`movie_review` — Movie Reviewing (4 stages, 9 functions, max
  parallelism 4);
* :func:`slapp` — SLApp from Lin & Khazaei (2 all-parallel stages, 7
  functions mixing CPU-, disk-IO- and network-IO-intensive types);
* :func:`slapp_v` — the 5-stage, 10-function SLApp variant.

Per-function CPU/block behaviours are calibrated so the simulated Chiron
latencies land near the absolute values Figure 13 prints above its bars
(26 ms SN ... 236 ms FINRA-200); see EXPERIMENTS.md for paper-vs-measured.
"""

from repro.apps.catalog import (
    ALL_WORKLOADS,
    finra,
    movie_review,
    slapp,
    slapp_v,
    social_network,
    video_ffmpeg,
    workload,
)

__all__ = [
    "ALL_WORKLOADS",
    "finra",
    "movie_review",
    "slapp",
    "slapp_v",
    "social_network",
    "video_ffmpeg",
    "workload",
]
