"""repro — a reproduction of Chiron (SC '23).

"Rethinking Deployment for Serverless Functions: A Performance-first
Perspective", Li, Zhao, Yang and Qu, SC '23 (DOI 10.1145/3581784.3613211).

The package implements the paper's contribution — the *wrap* abstraction for
"m-to-n" serverless deployment, the white-box GIL-aware latency predictor
(Algorithm 1 + Eq. 1-4), and the PGP partitioning scheduler (Algorithm 2) —
together with every substrate the evaluation depends on: a deterministic
discrete-event runtime (sandboxes, processes, fork-block serialization, a
CPython-style GIL arbiter, gateways, storage services), the baseline
platforms (AWS Step Functions, OpenFaaS, SAND, Faastlane and its variants),
the benchmark applications, from-scratch ML comparison predictors, and the
cost/resource/throughput metrics used by the paper's figures.

Quickstart::

    from repro import apps, core, platforms
    wf = apps.finra(parallelism=50)
    manager = core.ChironManager()
    plan = manager.plan(wf, slo_ms=150.0)
    result = platforms.ChironPlatform(plan=plan).run(wf)
    print(result.latency_ms)
"""

from repro._version import __version__

#: Public names re-exported lazily (PEP 562) so that importing one subsystem
#: does not pull in the whole package.
_LAZY_EXPORTS = {
    "Workflow": "repro.workflow",
    "Stage": "repro.workflow",
    "FunctionSpec": "repro.workflow",
    "FunctionBehavior": "repro.workflow",
    "ChironManager": "repro.core",
    "DeploymentPlan": "repro.core",
    "ExecMode": "repro.core",
    "LatencyPredictor": "repro.core",
    "PGPScheduler": "repro.core",
    "Profiler": "repro.core",
    "Wrap": "repro.core",
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
