"""Kernel benchmark: raw event throughput + fleet-scale request throughput.

Two sections, both written to ``BENCH_kernel.json``:

* **microbench** — a pure-kernel workload (hundreds of processes sleeping
  on colliding timeout ladders, heavy same-timestamp bursts) timed on the
  legacy binary-heap scheduler and the calendar queue.  Headline:
  events/second.
* **fleet** — the :mod:`repro.cluster.fleetsim` scenario (Poisson stream
  against parallel servers) computed three ways: DES on the heap scheduler
  (the pre-change kernel), DES on the calendar queue, and the vectorized
  numpy pipeline.  Headline: simulated requests per wall-second, plus the
  bit-identity of every quality field across all three.

CI gates on *correctness only* (the ``check`` flag re-verifies quality-field
bit-identity); wall-clock numbers are recorded for trend reading but a
fresh run's timings are never asserted against — machine noise is not a
regression.  The committed report's *recorded* speedup is separately gated
by ``benchmarks/check_trajectory.py``.
"""

from __future__ import annotations

import time
from typing import Generator, Optional

from repro.cluster.fleetsim import (
    FleetResult,
    FleetScenario,
    default_scenario,
    simulate_des,
    simulate_vectorized,
    verify_identity,
)
from repro.simcore import Environment

#: fleet scenario sizes (requests) for the full and --quick runs
DEFAULT_REQUESTS = 20_000
QUICK_REQUESTS = 4_000

#: microbench shape: processes x timeout rounds.  Delays are drawn from a
#: small set of classes so many processes collide on shared timestamps —
#: the burst-heavy profile platform stage barriers produce.
MICRO_PROCESSES = 300
MICRO_ROUNDS = 60
QUICK_MICRO_PROCESSES = 100
QUICK_MICRO_ROUNDS = 30

#: the acceptance bar for the committed report: vectorized fleet throughput
#: must be >= this multiple of the pre-change (heap DES) kernel's
SPEEDUP_BAR = 10.0


def _micro_worker(env: Environment, k: int, rounds: int
                  ) -> Generator[object, None, None]:
    delay = 0.5 + (k % 7) * 0.25
    for _ in range(rounds):
        yield env.timeout(delay)


def _run_micro(queue: str, *, processes: int, rounds: int) -> dict:
    env = Environment(queue=queue)
    for k in range(processes):
        env.process(_micro_worker(env, k, rounds))
    t0 = time.perf_counter()
    env.run()
    wall_s = time.perf_counter() - t0
    return {
        "events": env.events_processed,
        "wall_s": wall_s,
        "events_per_sec": env.events_processed / wall_s,
    }


def _fleet_row(result: FleetResult, wall_s: float) -> dict:
    row = {
        "wall_s": wall_s,
        "requests_per_wall_s": result.completed / wall_s,
        "events_processed": result.events_processed,
    }
    row.update(result.quality_fields())
    return row


def run_kernel_bench(*, requests: Optional[int] = None, quick: bool = False,
                     check: bool = False, seed: int = 0) -> dict:
    """Run both sections; returns the JSON-ready report.

    ``check`` re-raises on any quality-field divergence between the three
    fleet implementations (they are verified and recorded regardless).
    """
    if requests is None:
        requests = QUICK_REQUESTS if quick else DEFAULT_REQUESTS
    processes = QUICK_MICRO_PROCESSES if quick else MICRO_PROCESSES
    rounds = QUICK_MICRO_ROUNDS if quick else MICRO_ROUNDS

    micro = {
        "heap": _run_micro("heap", processes=processes, rounds=rounds),
        "calendar": _run_micro("calendar", processes=processes,
                               rounds=rounds),
    }
    if micro["heap"]["events"] != micro["calendar"]["events"]:
        raise AssertionError(
            f"microbench event counts diverged: "
            f"{micro['heap']['events']} != {micro['calendar']['events']}")
    micro["calendar_speedup"] = (micro["calendar"]["events_per_sec"]
                                 / micro["heap"]["events_per_sec"])

    scenario = default_scenario(requests=requests, seed=seed)
    t0 = time.perf_counter()
    heap = simulate_des(scenario, queue="heap")
    t1 = time.perf_counter()
    calendar = simulate_des(scenario, queue="calendar")
    t2 = time.perf_counter()
    vectorized = simulate_vectorized(scenario)
    t3 = time.perf_counter()

    identical = {}
    for name, result in (("des_calendar", calendar),
                         ("vectorized", vectorized)):
        try:
            verify_identity(heap, result, what=f"des_heap vs {name}")
            identical[name] = True
        except Exception:
            identical[name] = False
            if check:
                raise
    rows = {
        "des_heap": _fleet_row(heap, t1 - t0),
        "des_calendar": _fleet_row(calendar, t2 - t1),
        "vectorized": _fleet_row(vectorized, t3 - t2),
    }
    base = rows["des_heap"]["requests_per_wall_s"]
    speedup = {
        "des_calendar_vs_heap": rows["des_calendar"]["requests_per_wall_s"]
        / base,
        "vectorized_vs_heap": rows["vectorized"]["requests_per_wall_s"]
        / base,
    }
    return {
        "bench": "kernel",
        "microbench": micro,
        "fleet": {
            "scenario": {
                "servers": scenario.servers,
                "rps": scenario.rps,
                "requests": scenario.requests,
                "seed": scenario.seed,
            },
            "rows": rows,
            "identical": identical,
            "speedup": speedup,
            "meets_10x": speedup["vectorized_vs_heap"] >= SPEEDUP_BAR,
        },
    }


def format_kernel_table(report: dict) -> str:
    micro = report["microbench"]
    fleet = report["fleet"]
    lines = [
        "kernel microbench (same-timestamp burst ladder)",
        f"  {'scheduler':<10} {'events':>9} {'wall s':>8} {'events/s':>12}",
    ]
    for name in ("heap", "calendar"):
        row = micro[name]
        lines.append(f"  {name:<10} {row['events']:>9} "
                     f"{row['wall_s']:>8.3f} {row['events_per_sec']:>12.0f}")
    lines.append(f"  calendar speedup: {micro['calendar_speedup']:.2f}x")
    sc = fleet["scenario"]
    lines.append("")
    lines.append(f"fleet scenario: {sc['requests']} requests @ "
                 f"{sc['rps']} rps on {sc['servers']} servers "
                 f"(seed {sc['seed']})")
    lines.append(f"  {'pipeline':<14} {'wall s':>8} {'req/wall-s':>12} "
                 f"{'events':>9} {'identical':>9}")
    for name in ("des_heap", "des_calendar", "vectorized"):
        row = fleet["rows"][name]
        ident = ("baseline" if name == "des_heap"
                 else "yes" if fleet["identical"][name] else "NO")
        lines.append(f"  {name:<14} {row['wall_s']:>8.3f} "
                     f"{row['requests_per_wall_s']:>12.0f} "
                     f"{row['events_processed']:>9} {ident:>9}")
    lines.append(f"  speedup vs pre-change kernel: "
                 f"calendar {fleet['speedup']['des_calendar_vs_heap']:.2f}x, "
                 f"vectorized {fleet['speedup']['vectorized_vs_heap']:.1f}x "
                 f"(bar {SPEEDUP_BAR:.0f}x: "
                 f"{'met' if fleet['meets_10x'] else 'NOT met'})")
    return "\n".join(lines)
