"""Table 1: SFI (WebAssembly) vs Intel MPK isolation overheads.

Startup and interaction are constants; execution overhead is measured by
running a CPU-bound Fibonacci and a disk-IO function on the simulated
runtime under each calibration and comparing with native execution.
"""

from __future__ import annotations

from repro.calibration import RuntimeCalibration
from repro.experiments.common import ExperimentResult, register
from repro.runtime.cpusched import FluidCPU
from repro.runtime.thread import SimThread
from repro.simcore import Environment
from repro.workflow.behavior import FunctionBehavior

FIBONACCI = FunctionBehavior.cpu(20.0)
DISK_IO = FunctionBehavior.of(("cpu", 1.0), ("io", 19.0))


def _measure(cal: RuntimeCalibration, behavior: FunctionBehavior) -> float:
    env = Environment()
    thread = SimThread(env, name="t", cpu=FluidCPU(env, 1), gil=None, cal=cal)
    proc = env.process(thread.run_behavior(behavior))
    env.run()
    return proc.value - cal.isolation_startup_ms  # execution time only


@register("tab01")
def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="tab01",
        title="Table 1: SFI vs Intel MPK overheads",
        columns=["mechanism", "startup_ms", "interaction_ms",
                 "fibonacci_overhead_pct", "diskio_overhead_pct"],
        notes="paper: SFI 18 ms / 8 ms / 52.9% / 29.4%; "
              "MPK 0.2 ms / 0 / 35.2% / 7.3%",
    )
    native_fib = _measure(RuntimeCalibration.native(), FIBONACCI)
    native_io = _measure(RuntimeCalibration.native(), DISK_IO)
    for label, cal in (("sfi", RuntimeCalibration.sfi()),
                       ("mpk", RuntimeCalibration.mpk())):
        fib = _measure(cal, FIBONACCI)
        dio = _measure(cal, DISK_IO)
        result.add(mechanism=label,
                   startup_ms=cal.isolation_startup_ms,
                   interaction_ms=cal.isolation_interaction_ms,
                   fibonacci_overhead_pct=100 * (fib - native_fib) / native_fib,
                   diskio_overhead_pct=100 * (dio - native_io) / native_io)
    return result
