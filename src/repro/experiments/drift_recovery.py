"""Self-healing under calibration drift: closed loop vs. open loop.

Three adversarial scenarios drive the re-deployment control plane
(:mod:`repro.core.controlplane`) through its whole state machine:

* ``drift-recovery`` — mid-run the workload's functions get 4x heavier
  (calibration drift: the deployed plan was built for the light
  behaviours).  The **closed loop** detects the divergence, recalibrates,
  canaries a new plan and promotes it — windowed p99 returns under the
  SLO.  The **open-loop** baseline keeps the stale plan and stays in
  violation for the rest of the run.
* ``bad-replan`` — same drift, but the first recalibration is fed a
  *stale* behaviour snapshot (understated ~2.5x).  The canary — which can
  only judge against the behaviours it was given — promotes an
  under-provisioned plan; post-promotion verification counts SLO/divergence
  strikes and rolls back to the last-known-good deployment within the
  probation budget.  The next (honest) recalibration then recovers.
* ``fault-storm`` — no drift at all, but injected sandbox crashes inflate
  tail latency.  The divergence split (``fault_induced_ms`` vs
  ``model_error_ms``) classifies the window as a fault storm and the plane
  *defers*: zero replans, because retries — not wrap repartitioning — own
  transient faults.

Everything is seeded: arrival jitter, fault injection and canary replays
all derive from the scenario seed, so two runs produce bit-identical
latency series (asserted in the report's ``deterministic`` flag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.controlplane import (ControlPlaneConfig,
                                     RedeploymentControlPlane)
from repro.core.manager import ChironManager
from repro.errors import ReproError
from repro.experiments.common import ExperimentResult, register
from repro.metrics.stats import percentile
from repro.obs import compare
from repro.workflow import FunctionBehavior, WorkflowBuilder

SCENARIOS = ("drift-recovery", "bad-replan", "fault-storm")
ARMS = ("open-loop", "closed-loop")

#: the SLO every scenario serves against (ms) — generous for the light
#: behaviours, feasible (with enough cores) for the heavy ones
SLO_MS = 80.0
#: behaviour scale factors: reality before/after drift, and the stale
#: snapshot the bad-replan adversary feeds the first recalibration
LIGHT_SCALE, HEAVY_SCALE, STALE_SCALE = 1.0, 4.0, 1.6


def drift_workflow(scale: float, *, n: int = 10):
    """Prep stage + n-wide CPU fan-out; ``scale`` multiplies the fan-out."""
    return (WorkflowBuilder("drift-wf")
            .sequential("prep", ("prep", FunctionBehavior.of(
                ("cpu", 2.0), ("io", 3.0))))
            .parallel("fan", [(f"f-{i}", FunctionBehavior.cpu(5.0 * scale))
                              for i in range(n)])
            .build())


@dataclass(frozen=True)
class Scenario:
    """One adversarial serving run."""

    name: str
    requests: int
    #: request index where reality switches light -> heavy (None = never)
    drift_at: Optional[int]
    #: feed the recalibration a stale (understated) snapshot until the
    #: first rollback has happened
    stale_snapshot: bool = False
    #: per-function sandbox crash rate from ``drift_at`` on (fault storm)
    fault_rate: float = 0.0


def make_scenario(name: str, *, quick: bool = False) -> Scenario:
    scale = 0.5 if quick else 1.0
    if name == "drift-recovery":
        return Scenario(name, requests=int(220 * scale) + 80, drift_at=60)
    if name == "bad-replan":
        return Scenario(name, requests=int(240 * scale) + 100, drift_at=60,
                        stale_snapshot=True)
    if name == "fault-storm":
        return Scenario(name, requests=int(160 * scale) + 60, drift_at=50,
                        fault_rate=0.08)
    raise ReproError(f"unknown scenario {name!r}; "
                     f"expected one of {SCENARIOS}")


def control_config() -> ControlPlaneConfig:
    """The loop's knobs, sized to the scenarios' request budgets."""
    return ControlPlaneConfig(
        window=16, hysteresis=2, cooldown=10,
        error_fraction=0.35, guard_margin=0.05,
        canary_replays=6, probation=16, rollback_budget=5,
        flap_limit=3, flap_window=400, freeze_for=60)


def _serve(scenario: Scenario, *, seed: int, closed: bool,
           report_every: int = 4) -> dict:
    """One arm of one scenario: the serving loop, instrumented.

    The loop owns execution (one simulated request per index, seeded
    jitter); the control plane owns the deployment.  The open-loop arm
    simply never calls the plane — the initial plan serves forever.
    """
    from repro.faults import FaultPlan, RetryExhausted, preset
    from repro.platforms.chiron import ChironPlatform

    # a request whose retries exhaust is answered by the gateway timeout —
    # a deterministic worst-case latency, and of course an SLO violation
    timeout_ms = 3.0 * SLO_MS

    light = drift_workflow(LIGHT_SCALE)
    heavy = drift_workflow(HEAVY_SCALE)
    stale = drift_workflow(STALE_SCALE)
    manager = ChironManager()
    plane = RedeploymentControlPlane(manager, config=control_config())
    plane.deploy(light, SLO_MS)

    fault_plan = (FaultPlan(seed=seed, sandbox_crash_rate=scenario.fault_rate)
                  if scenario.fault_rate > 0 else None)
    retry = preset("eager") if fault_plan is not None else None

    latencies: list[float] = []
    report = None
    rolled_back = False
    for r in range(scenario.requests):
        drifted = scenario.drift_at is not None and r >= scenario.drift_at
        reality = heavy if (drifted and scenario.fault_rate == 0) else light
        faults = fault_plan if drifted else None
        plan = plane.deployment.plan
        platform = ChironPlatform(plan, manager.cal)
        try:
            latency = platform.run(reality, seed=seed * 100_000 + r,
                                   faults=faults, retry=retry,
                                   fault_seed=r).latency_ms
        except RetryExhausted:
            latency = timeout_ms
        latencies.append(latency)
        if not closed:
            continue
        if r % report_every == 0:
            try:
                report = compare(plane.deployment.profiled_workflow, plan,
                                 cal=manager.cal,
                                 predictor=manager.predictor,
                                 runtime_workflow=reality, faults=faults,
                                 retry=retry, fault_seed=r)
            except RetryExhausted:
                pass    # keep the previous report; the storm rages on
        rolled_back = rolled_back or any(a.kind == "rolled-back"
                                         for a in plane.actions)
        snapshot = (stale if (scenario.stale_snapshot and not rolled_back)
                    else reality)
        plane.observe(latency, report=report, current_workflow=snapshot)

    return _summarize(scenario, plane, latencies, closed=closed)


def _windowed_p99(latencies: list[float], window: int = 16) -> list[float]:
    return [percentile(latencies[i - window:i], 99)
            for i in range(window, len(latencies) + 1)]


def _summarize(scenario: Scenario, plane: RedeploymentControlPlane,
               latencies: list[float], *, closed: bool) -> dict:
    window = plane.config.window
    timeline = _windowed_p99(latencies, window)
    violations = sum(1 for l in latencies if l > SLO_MS)
    # recovery = the first request index after the drift from which the
    # windowed p99 stays under the SLO for the rest of the run
    recovered_at: Optional[int] = None
    if scenario.drift_at is not None and timeline:
        start = max(scenario.drift_at, 0)
        for i in range(len(timeline) - 1, -1, -1):
            if timeline[i] > SLO_MS:
                break
            recovered_at = i + window
        if recovered_at is not None and recovered_at < start:
            recovered_at = start
        if recovered_at is not None and timeline[-1] > SLO_MS:
            recovered_at = None
    counters = plane.metrics.counters()
    kinds = [a.kind for a in plane.actions]
    rollback_elapsed = next(
        (a.detail.get("probation_elapsed") for a in plane.actions
         if a.kind == "rolled-back"), None)
    return {
        "scenario": scenario.name,
        "arm": "closed-loop" if closed else "open-loop",
        "requests": len(latencies),
        "latencies": [round(l, 4) for l in latencies],
        "p99_initial_ms": round(timeline[0], 2) if timeline else None,
        "p99_peak_ms": round(max(timeline), 2) if timeline else None,
        "p99_final_ms": round(timeline[-1], 2) if timeline else None,
        "violations": violations,
        "recovered_at": recovered_at,
        "promotions": int(counters.get("controlplane.promotions", 0)),
        "rejections": int(counters.get("controlplane.rejections", 0)),
        "rollbacks": int(counters.get("controlplane.rollbacks", 0)),
        "deferred": int(counters.get("controlplane.deferred", 0)),
        "recalibrations": int(counters.get("controlplane.recalibrations",
                                           0)),
        "rollback_elapsed": rollback_elapsed,
        "final_cores": plane.deployment.plan.total_cores,
        "actions": kinds,
    }


def run_scenario(name: str, *, seed: int = 7,
                 quick: bool = False) -> dict:
    """Both arms of one scenario plus its acceptance flags."""
    scenario = make_scenario(name, quick=quick)
    arms = {"open-loop": _serve(scenario, seed=seed, closed=False),
            "closed-loop": _serve(scenario, seed=seed, closed=True)}
    return {"name": name, "drift_at": scenario.drift_at,
            "arms": arms, "flags": scenario_flags(name, arms)}


def scenario_flags(name: str, arms: dict) -> dict:
    closed, opened = arms["closed-loop"], arms["open-loop"]
    flags: dict = {}
    if name == "drift-recovery":
        flags["closed_loop_recovers"] = (
            closed["recovered_at"] is not None
            and closed["p99_final_ms"] is not None
            and closed["p99_final_ms"] <= SLO_MS)
        flags["open_loop_stays_violating"] = (
            opened["p99_final_ms"] is not None
            and opened["p99_final_ms"] > SLO_MS)
        flags["fewer_violations_closed"] = (
            closed["violations"] < opened["violations"])
    elif name == "bad-replan":
        flags["rollback_happened"] = closed["rollbacks"] >= 1
        flags["rollback_within_budget"] = (
            closed["rollback_elapsed"] is not None
            and closed["rollback_elapsed"]
            <= control_config().probation)
        flags["recovers_after_rollback"] = (
            closed["recovered_at"] is not None
            and closed["p99_final_ms"] is not None
            and closed["p99_final_ms"] <= SLO_MS)
    elif name == "fault-storm":
        flags["fault_storm_defers"] = closed["deferred"] >= 1
        flags["no_replan_on_faults"] = closed["promotions"] == 0
    return flags


def sweep(*, seed: int = 7, quick: bool = False,
          scenarios=SCENARIOS) -> dict:
    """The full report (the BENCH_drift.json payload)."""
    results = [run_scenario(name, seed=seed, quick=quick)
               for name in scenarios]
    summary: dict = {}
    for res in results:
        summary.update(res["flags"])
    if "drift-recovery" in scenarios:
        rerun = _serve(make_scenario("drift-recovery", quick=quick),
                       seed=seed, closed=True)
        first = next(r for r in results
                     if r["name"] == "drift-recovery")
        summary["deterministic"] = (
            rerun["latencies"]
            == first["arms"]["closed-loop"]["latencies"])
    cfg = control_config()
    return {"experiment": "drift-recovery", "seed": seed,
            "slo_ms": SLO_MS, "quick": quick,
            "config": {"window": cfg.window, "hysteresis": cfg.hysteresis,
                       "cooldown": cfg.cooldown,
                       "guard_margin": cfg.guard_margin,
                       "probation": cfg.probation,
                       "rollback_budget": cfg.rollback_budget,
                       "canary_replays": cfg.canary_replays},
            "scenarios": results, "summary": summary}


def format_drift_table(report: dict) -> str:
    """Human-readable summary of a :func:`sweep` report (the CLI output)."""
    rows = [f"{'scenario':<16} {'arm':<12} {'p99 peak':>9} {'p99 final':>10} "
            f"{'viol':>5} {'promo':>5} {'rollb':>5} {'defer':>5} "
            f"{'recovered@':>10}"]
    for res in report["scenarios"]:
        for arm in ARMS:
            row = res["arms"][arm]
            rec = row["recovered_at"]
            rows.append(
                f"{res['name']:<16} {arm:<12} "
                f"{row['p99_peak_ms']:>9.1f} {row['p99_final_ms']:>10.1f} "
                f"{row['violations']:>5d} {row['promotions']:>5d} "
                f"{row['rollbacks']:>5d} {row['deferred']:>5d} "
                f"{('-' if rec is None else str(rec)):>10}")
    flags = report["summary"]
    rows.append("flags: " + ", ".join(f"{k}={v}"
                                      for k, v in sorted(flags.items())))
    return "\n".join(rows)


@register("drift-recovery")
def run(quick: bool = False) -> ExperimentResult:
    """Closed-loop re-deployment vs. open loop under calibration drift."""
    report = sweep(quick=quick)
    flags = report["summary"]
    result = ExperimentResult(
        experiment="drift-recovery",
        title="Self-healing re-deployment: drift detection, canary "
              "promotion, rollback (SLO 80 ms)",
        columns=("scenario", "arm", "p99_peak_ms", "p99_final_ms",
                 "violations", "promotions", "rollbacks", "deferred",
                 "recovered_at", "final_cores"),
        notes=", ".join(f"{k}={v}" for k, v in sorted(flags.items())),
    )
    for res in report["scenarios"]:
        for arm in ARMS:
            row = res["arms"][arm]
            result.add(scenario=res["name"], arm=arm,
                       p99_peak_ms=row["p99_peak_ms"],
                       p99_final_ms=row["p99_final_ms"],
                       violations=row["violations"],
                       promotions=row["promotions"],
                       rollbacks=row["rollbacks"],
                       deferred=row["deferred"],
                       recovered_at=row["recovered_at"],
                       final_cores=row["final_cores"])
    return result
