"""Chaos experiment: machine-scale failure domains vs. workflow HA modes.

A small fleet (2 zones x 2 racks x 1 machine, every machine serving warm
replicas of one Chiron deployment) is driven through three seeded fault
schedules from :mod:`repro.faults.domains`:

* ``machine-kill`` — one replica machine dies for the fault window, then
  crash-loops once more shortly after recovering (which trips the control
  plane's quarantine: two crashes inside the health window);
* ``zone-outage`` — ``domain.outage`` takes every machine of zone ``z0``,
  halving fleet capacity for the window;
* ``partition`` — ``net.partition`` isolates zone ``z0``: its machines stay
  warm but are unreachable until the heal.

Against each schedule, four HA arms serve the same deterministic arrival
stream (request *i* replays stage-end profile ``i % K`` pre-sampled from
real :class:`~repro.platforms.chiron.ChironPlatform` runs — with the
:class:`~repro.core.ha.HAPolicy` installed for the checkpointed arms, so
their profiles honestly include per-stage checkpoint cost):

* ``none`` — static routing, no recovery: requests on a dead/unreachable
  machine are lost;
* ``retry`` — naive whole-workflow retry: displaced requests restart from
  stage 0, and a client re-offers the full workflow once on deadline
  timeout (fire-and-forget — the classic load-amplification footgun);
* ``checkpoint`` — displaced requests resume from the last durably
  committed stage (manifest read + cold re-boot on the new machine);
* ``standby`` — checkpoints plus a hot standby on the opposite zone's
  same-rack machine: failover skips the cold boot entirely, priced as
  doubled resident memory.

The headline result (gated by ``benchmarks/check_trajectory.py``):
checkpointed replay restores >= 80% of pre-fault goodput within the stated
recovery window on machine-kill *and* zone-outage, the no-recovery baseline
does not, and naive retry's timeout duplicates congestively collapse the
surviving half-fleet under zone outage.  Everything — arrivals, profiles,
chaos schedules, placement — is seeded and tie-broken deterministically,
so a fixed seed yields a bit-identical ``BENCH_chaos.json``.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.controlplane import MachineHealthMonitor
from repro.core.ha import HAPolicy, ha_adjusted_p99_ms
from repro.core.manager import ChironManager
from repro.errors import ReproError
from repro.experiments.common import ExperimentResult, register
from repro.faults.domains import ChaosPlan, ChaosSchedule, Topology
from repro.lifecycle.policy import BootTier, boot_cost_ms
from repro.metrics.stats import percentile
from repro.platforms.chiron import ChironPlatform
from repro.workflow import FunctionBehavior, WorkflowBuilder

SCHEDULES = ("machine-kill", "zone-outage", "partition")
ARMS = ("none", "retry", "checkpoint", "standby")

#: goodput fraction the recovery bar demands (acceptance criterion)
RECOVERY_FRACTION = 0.8


@dataclass(frozen=True)
class ChaosParams:
    """Knobs of the serving simulation (all times in ms)."""

    horizon_ms: float = 120_000.0
    fault_at_ms: float = 40_000.0
    fault_ms: float = 30_000.0
    slots_per_machine: int = 4
    deadline_ms: float = 3_000.0
    #: the *stated* bounded recovery window the flags are judged against
    recovery_window_ms: float = 10_000.0
    baseline_from_ms: float = 10_000.0
    profile_samples: int = 5
    slo_ms: float = 2_500.0
    #: sized so the surviving half-fleet runs hot (~95%) during a zone
    #: outage while the healthy fleet stays comfortable (~48%)
    target_outage_inflight: float = 7.6


def make_params(*, quick: bool = False) -> ChaosParams:
    if quick:
        # the retry arm's congestive collapse needs a fault window long
        # enough for its timeout-duplicate waves to compound, so quick mode
        # trims the horizon and profile depth but not the outage itself
        return ChaosParams(horizon_ms=90_000.0, fault_at_ms=25_000.0,
                           fault_ms=25_000.0, profile_samples=3)
    return ChaosParams()


def chaos_workflow():
    """Four ~0.5 s stages: long enough that per-stage checkpoints beat
    whole-workflow replay, short enough to serve hundreds of requests."""
    return (WorkflowBuilder("chaos-wf")
            .sequential("ingest", ("ingest", FunctionBehavior.of(
                ("cpu", 120.0), ("io", 380.0))))
            .parallel("fan", [(f"fan-{i}", FunctionBehavior.cpu(420.0))
                              for i in range(4)])
            .sequential("fuse", ("fuse", FunctionBehavior.of(
                ("cpu", 300.0), ("io", 160.0))))
            .sequential("publish", ("publish", FunctionBehavior.of(
                ("cpu", 90.0), ("io", 330.0))))
            .build())


def make_topology(params: ChaosParams) -> Topology:
    """Fresh per serving run: chaos mutates the Machine objects."""
    return Topology.grid(zones=2, racks_per_zone=2, machines_per_rack=1)


def make_plan(schedule_name: str, params: ChaosParams,
              seed: int) -> ChaosPlan:
    f, d = params.fault_at_ms, params.fault_ms
    plan = ChaosPlan(seed=seed, duration_ms=params.horizon_ms)
    if schedule_name == "machine-kill":
        # the second, short kill makes the machine a crash-looper: two
        # crashes inside the health window => quarantine
        return (plan.kill("z0/r0/m0", f, d)
                    .kill("z0/r0/m0", f + d + 3_000.0, 5_000.0))
    if schedule_name == "zone-outage":
        return plan.outage("zone:z0", f, d)
    if schedule_name == "partition":
        return plan.partition("zone:z0", f, d)
    raise ReproError(f"unknown chaos schedule {schedule_name!r}; "
                     f"expected one of {SCHEDULES}")


def arm_policy(arm: str) -> HAPolicy:
    return HAPolicy(mode=arm)


# ---------------------------------------------------------------------------
# the fleet serving simulation
# ---------------------------------------------------------------------------

class _Request:
    __slots__ = ("rid", "arrival_ms", "profile_idx", "completed_ms",
                 "failed", "retried")

    def __init__(self, rid: int, arrival_ms: float, profile_idx: int) -> None:
        self.rid = rid
        self.arrival_ms = arrival_ms
        self.profile_idx = profile_idx
        self.completed_ms: Optional[float] = None
        self.failed = False
        self.retried = False


class _Attempt:
    __slots__ = ("req", "node", "rel_ends", "base", "start_ms", "live")

    def __init__(self, req: _Request, node: "_Node",
                 rel_ends: List[float], base: int) -> None:
        self.req = req
        self.node = node
        self.rel_ends = rel_ends
        #: stages already durably completed before this attempt
        self.base = base
        self.start_ms: Optional[float] = None
        self.live = True


class _Node:
    __slots__ = ("name", "slots", "free", "queue", "running", "warm",
                 "reachable")

    def __init__(self, name: str, slots: int) -> None:
        self.name = name
        self.slots = slots
        self.free = slots
        self.queue: deque = deque()
        # insertion-ordered (a set would displace victims in id() order —
        # memory-address dependent, i.e. not reproducible across processes)
        self.running: Dict = {}
        self.warm = True          # replicas start warm (steady state)
        self.reachable = True


class _FleetServe:
    """One (schedule, arm) cell: deterministic discrete-event serving.

    Requests arrive on a fixed period; each holds one slot on one machine
    for its profiled duration.  Chaos events displace running and queued
    work; what happens next is the arm's HA mode.  All tie-breaks are by
    (time, insertion order) so a fixed input is bit-reproducible.
    """

    def __init__(self, arm: str, topology: Topology,
                 schedule: ChaosSchedule, profiles: List[Tuple[float, ...]],
                 params: ChaosParams, *, service_ms: float,
                 period_ms: float, boot_ms: float, manifest_ms: float,
                 health: Optional[MachineHealthMonitor] = None) -> None:
        from repro.faults.domains import FleetState

        self.arm = arm
        self.topology = topology
        self.params = params
        self.profiles = profiles
        self.n_stages = len(profiles[0])
        self.service_ms = service_ms
        self.period_ms = period_ms
        #: goodput bins hold exactly 4 arrivals each (one per machine under
        #: static routing), so a dead machine is a clean 25% goodput loss
        #: per bin — no beat-frequency noise against the recovery bar
        self.bin_ms = 4.0 * period_ms
        self.boot_ms = boot_ms
        self.manifest_ms = manifest_ms
        self.health = health
        self.checkpointed = arm in ("checkpoint", "standby")
        self.fleet = FleetState(schedule, on_event=self._on_chaos)
        names = list(topology.machine_names)
        self.node_order = names
        self.nodes = {n: _Node(n, params.slots_per_machine) for n in names}
        #: standby arm: hot standby on the opposite zone's same-rack twin
        self.standby_of: Dict[str, str] = {}
        if arm == "standby":
            for name in names:
                zone, rest = name.split("/", 1)
                twin = f"z{1 - int(zone[1:])}/{rest}"
                if twin in self.nodes:
                    self.standby_of[name] = twin
        self.requests: List[_Request] = []
        self.displaced = 0
        self.reboots = 0
        self.failovers = 0
        self.resumes = 0
        self.client_retries = 0
        self.failed = 0
        self._heap: List[tuple] = []
        self._seq = 0

    # -- event plumbing --------------------------------------------------------
    def _push(self, t: float, kind: str, payload=None) -> None:
        heapq.heappush(self._heap, (t, self._seq, kind, payload))
        self._seq += 1

    def run(self) -> dict:
        p = self.params
        # chaos markers first: at equal timestamps faults apply before
        # arrivals/finishes (conservative and deterministic)
        for ev in self.fleet.schedule.events:
            self._push(ev.at_ms, "chaos")
            if ev.duration_ms > 0 and ev.mechanism in ("machine.crash",
                                                       "domain.outage"):
                self._push(ev.at_ms + ev.duration_ms, "chaos")
            if ev.mechanism == "net.partition":
                self._push(ev.at_ms + ev.duration_ms, "heal", ev.target)
        t, rid = 0.0, 0
        while t + p.deadline_ms <= p.horizon_ms:
            self._push(t, "arrive", rid)
            rid += 1
            t += self.period_ms
        while self._heap:
            t, _seq, kind, payload = heapq.heappop(self._heap)
            if t > p.horizon_ms:
                break
            if kind == "chaos":
                self.fleet.advance(t)
            elif kind == "heal":
                for name in self.topology.members(payload):
                    self.nodes[name].reachable = True
            elif kind == "arrive":
                self._arrive(payload, t)
            elif kind == "finish":
                self._finish(payload, t)
            elif kind == "deadline":
                self._deadline(payload, t)
        return self._metrics()

    # -- chaos -----------------------------------------------------------------
    def _on_chaos(self, ev) -> None:
        if ev.mechanism in ("machine.crash", "domain.outage"):
            if self.health is not None:
                self.health.observe(ev)
            victims: List[_Attempt] = []
            for name in self.topology.members(ev.target):
                victims.extend(self._clear_node(self.nodes[name], hard=True))
            self._displace(victims, ev.at_ms)
        elif ev.mechanism == "net.partition":
            victims = []
            for name in self.topology.members(ev.target):
                node = self.nodes[name]
                node.reachable = False
                # soft displacement: the sandbox stays warm, but the client
                # cannot reach it until the heal
                victims.extend(self._clear_node(node, hard=False))
            self._displace(victims, ev.at_ms)
        # machine.recover needs no action here: FleetState flipped the
        # Machine back alive; the node re-enters placement cold

    def _clear_node(self, node: _Node, *, hard: bool) -> List[_Attempt]:
        victims = list(node.running) + list(node.queue)
        node.running.clear()
        node.queue.clear()
        node.free = node.slots
        if hard:
            node.warm = False
        return victims

    def _displace(self, victims: List[_Attempt], t: float) -> None:
        for att in victims:
            att.live = False
            self.displaced += 1
            req = att.req
            if req.completed_ms is not None or req.failed:
                continue
            if self.arm == "none":
                req.failed = True
                self.failed += 1
                continue
            done = 0
            if self.checkpointed:
                done = att.base
                if att.start_ms is not None:
                    done += sum(1 for e in att.rel_ends
                                if att.start_ms + e <= t)
            preferred = self.standby_of.get(att.node.name)
            self._reoffer(req, t, done, replay=True, preferred=preferred)

    # -- request lifecycle -----------------------------------------------------
    def _arrive(self, rid: int, t: float) -> None:
        req = _Request(rid, t, rid % len(self.profiles))
        self.requests.append(req)
        self._push(t + self.params.deadline_ms, "deadline", req)
        if self.arm == "none":
            node = self.nodes[self.node_order[rid % len(self.node_order)]]
            if not node.reachable or not self.topology.machine(node.name).alive:
                req.failed = True
                self.failed += 1
                return
            self._assign(node, _Attempt(req, node,
                                        list(self.profiles[req.profile_idx]),
                                        0), t)
            return
        self._reoffer(req, t, 0, replay=False)

    def _ok(self, node: _Node) -> bool:
        if not node.reachable or not self.topology.machine(node.name).alive:
            return False
        return self.health is None or self.health.schedulable(node.name)

    def _place(self) -> Optional[_Node]:
        best: Optional[_Node] = None
        best_key: tuple = (math.inf,)
        for idx, name in enumerate(self.node_order):
            node = self.nodes[name]
            if not self._ok(node):
                continue
            if node.free > 0:
                wait = 0.0
            else:
                wait = (len(node.queue) + 1) / node.slots * self.service_ms
            cost = wait + (0.0 if node.warm else self.boot_ms)
            # tie-break on current load, then name order: free machines
            # round-robin instead of piling onto the first one
            key = (cost, len(node.running) + len(node.queue), idx)
            if key < best_key:
                best, best_key = node, key
        return best

    def _reoffer(self, req: _Request, t: float, done: int, *,
                 replay: bool, preferred: Optional[str] = None) -> None:
        if req.completed_ms is not None or req.failed:
            return
        done = min(done, self.n_stages - 1)
        node = None
        if preferred is not None and self._ok(self.nodes[preferred]):
            node = self.nodes[preferred]
            self.failovers += 1
        if node is None:
            node = self._place()
        if node is None:
            req.failed = True
            self.failed += 1
            return
        ends = self.profiles[req.profile_idx]
        overhead = self.manifest_ms if (replay and self.checkpointed) else 0.0
        base_off = ends[done - 1] if done > 0 else 0.0
        rel = [ends[j] - base_off + overhead
               for j in range(done, self.n_stages)]
        if replay and done > 0:
            self.resumes += 1
        self._assign(node, _Attempt(req, node, rel, done), t)

    def _assign(self, node: _Node, att: _Attempt, t: float) -> None:
        if node.free > 0:
            node.free -= 1
            self._start(node, att, t)
        else:
            node.queue.append(att)

    def _start(self, node: _Node, att: _Attempt, t: float) -> None:
        att.start_ms = t
        if not node.warm:
            # first placement on a cold machine pays the boot wave
            node.warm = True
            self.reboots += 1
            att.rel_ends = [e + self.boot_ms for e in att.rel_ends]
        node.running[att] = None
        self._push(t + att.rel_ends[-1], "finish", att)

    def _finish(self, att: _Attempt, t: float) -> None:
        if not att.live:
            return          # stale event: the attempt was displaced
        att.live = False
        node = att.node
        node.running.pop(att, None)
        node.free += 1
        while node.queue and node.free > 0:
            node.free -= 1
            self._start(node, node.queue.popleft(), t)
        req = att.req
        if req.completed_ms is not None or req.failed:
            return          # a duplicate already answered (retry arm)
        if self.arm == "none" and not node.reachable:
            req.failed = True       # response lost behind the partition
            self.failed += 1
            return
        req.completed_ms = t

    def _deadline(self, req: _Request, t: float) -> None:
        if req.completed_ms is not None or req.failed:
            return
        if self.arm == "retry" and not req.retried:
            # naive client: fire-and-forget whole-workflow duplicate
            req.retried = True
            self.client_retries += 1
            self._reoffer(req, t, 0, replay=False)

    # -- metrics ---------------------------------------------------------------
    def _metrics(self) -> dict:
        p = self.params
        n_bins = int(p.horizon_ms // self.bin_ms)
        bins = [0] * n_bins
        good = 0
        fault_end = p.fault_at_ms + p.fault_ms
        in_window = [r for r in self.requests
                     if p.fault_at_ms <= r.arrival_ms < fault_end]
        good_window = 0
        latencies = []
        for r in self.requests:
            if r.completed_ms is None:
                continue
            lat = r.completed_ms - r.arrival_ms
            latencies.append(lat)
            if lat <= p.deadline_ms:
                good += 1
                if p.fault_at_ms <= r.arrival_ms < fault_end:
                    good_window += 1
                b = int(r.completed_ms // self.bin_ms)
                if b < n_bins:
                    bins[b] += 1
        pre, recovery_ms, recovered = self._recovery(bins)
        row = {
            "requests": len(self.requests),
            "availability": round(good / len(self.requests), 4),
            "fault_availability": round(good_window / len(in_window), 4)
                                  if in_window else None,
            "p99_ms": round(percentile(latencies, 99), 2)
                      if latencies else None,
            "pre_fault_goodput_per_s": round(pre, 3),
            "recovery_ms": recovery_ms,
            "recovered_within_window": recovered,
            "displaced": self.displaced,
            "reboots": self.reboots,
            "failovers": self.failovers,
            "resumes": self.resumes,
            "client_retries": self.client_retries,
            "failed": self.failed,
            "chaos": {"crashes": self.fleet.crashes,
                      "recoveries": self.fleet.recoveries,
                      "outages": self.fleet.outages,
                      "partitions": self.fleet.partitions},
            "quarantined": (sorted(self.health.quarantined)
                            if self.health is not None else []),
            "goodput_bins": bins,
        }
        return row

    def _recovery(self, bins: List[int]) -> tuple:
        """(pre-fault goodput, ms to re-reach 80% of it, within window?).

        Recovery = the first trailing-3-bin moving average at or above
        ``RECOVERY_FRACTION`` of the pre-fault baseline *after* the first
        post-fault dip below it; no dip at all means recovery 0 (the arm
        never visibly degraded, e.g. hot standby on a single kill).
        """
        p = self.params
        b0 = int(p.baseline_from_ms // self.bin_ms)
        b1 = int(p.fault_at_ms // self.bin_ms)
        # stop scanning before arrivals dry up near the horizon, where
        # goodput falls off for the boring reason that offers stopped
        b_end = min(len(bins),
                    int((p.horizon_ms - p.deadline_ms - self.service_ms)
                        // self.bin_ms))
        base = bins[b0:b1]
        pre = sum(base) / len(base) if base else 0.0
        thr = RECOVERY_FRACTION * pre

        def trailing(i: int) -> float:
            lo = max(0, i - 2)
            return sum(bins[lo:i + 1]) / (i + 1 - lo)

        dip = next((i for i in range(b1, b_end) if trailing(i) < thr), None)
        if dip is None:
            return pre, 0.0, True

        def sustained(i: int) -> bool:
            # a real recovery holds the bar for ~8 s of bins — a collapsing
            # arm oscillates across it in deadline-period waves while its
            # queues build, and a crash-looping machine's brief up-window
            # is not a recovery either
            return all(trailing(j) >= thr
                       for j in range(i, min(i + 8, b_end)))

        rec = next((i for i in range(dip, b_end) if sustained(i)), None)
        if rec is None:
            return pre, None, False
        recovery_ms = (rec + 1) * self.bin_ms - p.fault_at_ms
        return pre, recovery_ms, recovery_ms <= p.recovery_window_ms


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------

def _stage_profiles(plan, cal, workflow, policy: Optional[HAPolicy],
                    seed: int, params: ChaosParams) -> List[Tuple[float, ...]]:
    """K seeded ChironPlatform runs -> relative stage-end profiles."""
    platform = ChironPlatform(plan, cal)
    profiles = []
    for i in range(params.profile_samples):
        res = platform.run(workflow, seed=seed * 9973 + i, ha=policy)
        profiles.append(tuple(round(float(e), 6)
                              for e in res.stage_ends_ms))
    return profiles


def _run_cell(schedule_name: str, arm: str, params: ChaosParams, seed: int,
              profiles: List[Tuple[float, ...]], *, service_ms: float,
              period_ms: float, boot_ms: float, manifest_ms: float) -> dict:
    topology = make_topology(params)
    schedule = make_plan(schedule_name, params, seed).compile(topology)
    health = (MachineHealthMonitor(topology) if arm != "none" else None)
    sim = _FleetServe(arm, topology, schedule, profiles, params,
                      service_ms=service_ms, period_ms=period_ms,
                      boot_ms=boot_ms, manifest_ms=manifest_ms,
                      health=health)
    return sim.run()


def sweep(*, seed: int = 7, quick: bool = False,
          schedules=SCHEDULES) -> dict:
    """The full report (the BENCH_chaos.json payload)."""
    for name in schedules:
        if name not in SCHEDULES:
            raise ReproError(f"unknown chaos schedule {name!r}; "
                             f"expected one of {SCHEDULES}")
    params = make_params(quick=quick)
    wf = chaos_workflow()
    manager = ChironManager()
    deployment = manager.deploy(wf, params.slo_ms)
    plan, cal = deployment.plan, manager.cal
    plain = _stage_profiles(plan, cal, wf, None, seed, params)
    ckpt = _stage_profiles(plan, cal, wf, HAPolicy(mode="checkpoint"),
                           seed, params)
    profiles = {"none": plain, "retry": plain,
                "checkpoint": ckpt, "standby": ckpt}
    service = {a: sum(p[-1] for p in profs) / len(profs)
               for a, profs in profiles.items()}
    # one shared arrival period: the comparison is apples-to-apples load
    period_ms = max(50.0, round(service["none"]
                                / params.target_outage_inflight))
    boot_ms = boot_cost_ms(BootTier.COLD, cal)
    manifest_ms = HAPolicy(mode="checkpoint").checkpoint_op_ms()
    deployed_mb = ChironPlatform(plan, cal).memory_mb(wf)

    arms_meta = {}
    for arm in ARMS:
        policy = arm_policy(arm)
        predicted = ha_adjusted_p99_ms(manager.predictor, wf, plan, policy,
                                       kill_rate_per_min=1.0)
        arms_meta[arm] = {
            "service_ms": round(service[arm], 3),
            "extra_memory_mb": round(policy.standby_memory_mb(deployed_mb), 1),
            "predicted_fault_p99_ms": (round(predicted, 2)
                                       if math.isfinite(predicted) else None),
        }

    results = []
    rows: Dict[tuple, dict] = {}
    for name in schedules:
        sched_rows = {}
        for arm in ARMS:
            row = _run_cell(name, arm, params, seed, profiles[arm],
                            service_ms=service[arm], period_ms=period_ms,
                            boot_ms=boot_ms, manifest_ms=manifest_ms)
            sched_rows[arm] = row
            rows[(name, arm)] = row
        results.append({"name": name, "fault_at_ms": params.fault_at_ms,
                        "fault_ms": params.fault_ms, "rows": sched_rows})

    summary: dict = {}
    if "machine-kill" in schedules:
        mk = {a: rows[("machine-kill", a)] for a in ARMS}
        summary["checkpoint_recovers_machine_kill"] = (
            mk["checkpoint"]["recovered_within_window"])
        summary["no_recovery_fails_machine_kill"] = (
            not mk["none"]["recovered_within_window"])
        summary["standby_failover_no_reboot"] = (
            mk["standby"]["failovers"] >= 1
            and (mk["standby"]["recovery_ms"] or 0.0)
            <= (mk["checkpoint"]["recovery_ms"] or 0.0))
        summary["crash_loop_quarantined"] = (
            "z0/r0/m0" in mk["checkpoint"]["quarantined"])
    if "zone-outage" in schedules:
        zo = {a: rows[("zone-outage", a)] for a in ARMS}
        summary["checkpoint_recovers_zone_outage"] = (
            zo["checkpoint"]["recovered_within_window"])
        summary["no_recovery_fails_zone_outage"] = (
            not zo["none"]["recovered_within_window"])
        summary["retry_collapses_zone_outage"] = (
            not zo["retry"]["recovered_within_window"]
            and zo["retry"]["fault_availability"] is not None
            and zo["checkpoint"]["fault_availability"] is not None
            and zo["retry"]["fault_availability"]
            <= zo["checkpoint"]["fault_availability"] - 0.2)
    if "partition" in schedules:
        summary["checkpoint_recovers_partition"] = (
            rows[("partition", "checkpoint")]["recovered_within_window"])
    summary["checkpoint_overhead_priced"] = (
        service["checkpoint"] > service["none"])
    if "machine-kill" in schedules:
        rerun = _run_cell("machine-kill", "checkpoint", params, seed,
                          profiles["checkpoint"],
                          service_ms=service["checkpoint"],
                          period_ms=period_ms, boot_ms=boot_ms,
                          manifest_ms=manifest_ms)
        summary["deterministic"] = rerun == rows[("machine-kill",
                                                  "checkpoint")]

    return {"experiment": "chaos", "seed": seed, "quick": quick,
            "params": {"horizon_ms": params.horizon_ms,
                       "fault_at_ms": params.fault_at_ms,
                       "fault_ms": params.fault_ms,
                       "slots_per_machine": params.slots_per_machine,
                       "deadline_ms": params.deadline_ms,
                       "recovery_window_ms": params.recovery_window_ms,
                       "recovery_fraction": RECOVERY_FRACTION,
                       "period_ms": period_ms,
                       "bin_ms": 4.0 * period_ms,
                       "boot_ms": round(boot_ms, 3),
                       "manifest_ms": round(manifest_ms, 3),
                       "machines": 4},
            "arms": arms_meta, "schedules": results, "summary": summary}


def format_chaos_table(report: dict) -> str:
    """Human-readable summary of a :func:`sweep` report (the CLI output)."""
    rows = [f"{'schedule':<14} {'arm':<11} {'avail':>6} {'f-avail':>7} "
            f"{'p99 ms':>8} {'recovery':>9} {'ok':>3} {'displ':>5} "
            f"{'boots':>5} {'fails':>5}"]
    for sched in report["schedules"]:
        for arm in ARMS:
            if arm not in sched["rows"]:
                continue
            row = sched["rows"][arm]
            rec = row["recovery_ms"]
            rows.append(
                f"{sched['name']:<14} {arm:<11} "
                f"{row['availability']:>6.3f} "
                f"{(row['fault_availability'] or 0.0):>7.3f} "
                f"{(row['p99_ms'] or 0.0):>8.1f} "
                f"{('never' if rec is None else f'{rec / 1000:.1f}s'):>9} "
                f"{('y' if row['recovered_within_window'] else 'n'):>3} "
                f"{row['displaced']:>5d} {row['reboots']:>5d} "
                f"{row['failed']:>5d}")
    flags = report["summary"]
    rows.append("flags: " + ", ".join(f"{k}={v}"
                                      for k, v in sorted(flags.items())))
    return "\n".join(rows)


@register("chaos")
def run(quick: bool = False) -> ExperimentResult:
    """Machine-scale chaos schedules vs. the four workflow HA modes."""
    report = sweep(quick=quick)
    flags = report["summary"]
    result = ExperimentResult(
        experiment="chaos",
        title="Machine-scale chaos: availability and goodput recovery "
              "under kill / outage / partition, by HA mode",
        columns=("schedule", "arm", "availability", "fault_availability",
                 "p99_ms", "recovery_ms", "recovered", "displaced",
                 "reboots", "failovers", "failed"),
        notes=", ".join(f"{k}={v}" for k, v in sorted(flags.items())),
    )
    for sched in report["schedules"]:
        for arm in ARMS:
            row = sched["rows"].get(arm)
            if row is None:
                continue
            result.add(schedule=sched["name"], arm=arm,
                       availability=row["availability"],
                       fault_availability=row["fault_availability"],
                       p99_ms=row["p99_ms"],
                       recovery_ms=row["recovery_ms"],
                       recovered=row["recovered_within_window"],
                       displaced=row["displaced"],
                       reboots=row["reboots"],
                       failovers=row["failovers"],
                       failed=row["failed"])
    return result
