"""Figure 5: execution timelines of process vs thread mode, FINRA-5.

The process mode shows serialized fork "block" time plus ~7.5 ms startups
dwarfing sub-10 ms function bodies; thread mode shows negligible startup but
GIL-serialized execution.  We run Faastlane (processes) and Faastlane-T
(threads) on FINRA-5 and report the per-function startup/exec/block
decomposition plus ASCII Gantt charts in the notes.
"""

from __future__ import annotations

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.experiments.common import ExperimentResult, register
from repro.platforms import FaastlanePlatform


@register("fig05")
def run(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.native()
    wf = finra(5)
    result = ExperimentResult(
        experiment="fig05",
        title="Figure 5: process vs thread execution timeline (FINRA-5)",
        columns=["mode", "function", "start_ms", "end_ms", "startup_ms",
                 "exec_ms", "block_wait_ms"],
        notes="paper: process startup ~7.5 ms each, serialized forks; "
              "thread startup ~0.3 ms; IPC 4.3 ms total",
    )
    charts = []
    for mode, platform in (("process", FaastlanePlatform(cal)),
                           ("thread", FaastlanePlatform(cal, variant="T"))):
        res = platform.run(wf)
        stage_start = res.stage_ends_ms[0]
        for i in range(5):
            name = f"validate-{i}"
            start, end = res.function_spans[name]
            # per-entity spans: the spawned thread carries the function name;
            # in process mode the fork child ("...-s1-<i>") carries the
            # interpreter-startup span.
            entities = [e for e in res.trace.entities()
                        if name in e or e.endswith(f"-s1-{i}")]
            startup = sum(res.trace.total("startup", e) for e in entities)
            execu = sum(res.trace.total("exec", e) for e in entities)
            # block wait: time between stage start and this function's own
            # activity beginning (the fork-serialization wait of Obs. 2)
            first_activity = min(
                (s.start_ms for e in entities for s in res.trace.spans(e)),
                default=start)
            result.add(mode=mode, function=name, start_ms=start - stage_start,
                       end_ms=end - stage_start, startup_ms=startup,
                       exec_ms=execu,
                       block_wait_ms=max(0.0, first_activity - stage_start))
        charts.append(f"--- {mode} mode ---\n" + res.trace.gantt(width=68))
    result.notes += "\n" + "\n".join(charts)
    return result
