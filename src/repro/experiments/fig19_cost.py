"""Figure 19: dollar cost per million requests, normalized by Chiron.

The pricing model of :mod:`repro.metrics.cost`: GB-second memory +
GHz-second CPU + ASF's per-state-transition fee.  Paper headline: the
one-to-one model costs up to 272x Chiron; Chiron saves 44.4-95.3 % vs
Faastlane.
"""

from __future__ import annotations

from repro.apps import ALL_WORKLOADS
from repro.experiments.common import ExperimentResult, register
from repro.experiments.systems import figure13_systems
from repro.metrics import CostModel

SYSTEMS = ("asf", "openfaas", "sand", "faastlane", "chiron", "faastlane-m",
           "chiron-m", "faastlane-p", "chiron-p")


@register("fig19")
def run(quick: bool = False) -> ExperimentResult:
    workloads = (("social-network", "finra-5") if quick
                 else tuple(ALL_WORKLOADS))
    model = CostModel()
    result = ExperimentResult(
        experiment="fig19",
        title="Figure 19: cost (USD per 1M requests), normalized by Chiron",
        columns=["workload", "system", "usd_per_million", "normalized"],
        notes="paper: ASF up to 272x Chiron; Chiron saves 44.4-95.3% vs "
              "Faastlane",
    )
    for name in workloads:
        wf = ALL_WORKLOADS[name]()
        systems = figure13_systems(wf)
        costs = {}
        for label in SYSTEMS:
            platform = systems[label]
            latency = platform.average_latency_ms(wf, repeats=3)
            costs[label] = model.request_cost(
                platform, wf, latency_ms=latency).per_million()
        base = costs["chiron"]
        for label in SYSTEMS:
            result.add(workload=name, system=label,
                       usd_per_million=costs[label],
                       normalized=costs[label] / base)
    return result
