"""Figure 18: the no-GIL (Java) comparison on SLApp and FINRA-5.

With true-parallel threads the GIL trade-off disappears, so Chiron reduces
to thread-only execution — yet still wins on throughput (paper: up to 4.9x)
purely through resource efficiency.  We rebuild the three deployment models
with a ``has_gil=False`` calibration.
"""

from __future__ import annotations

from repro.apps import finra, slapp
from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.experiments.common import ExperimentResult, register
from repro.metrics import throughput_report
from repro.platforms import ChironPlatform, OpenFaaSPlatform, SANDPlatform


@register("fig18")
def run(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.no_gil()
    result = ExperimentResult(
        experiment="fig18",
        title="Figure 18: Java (no GIL) latency and throughput",
        columns=["workload", "system", "latency_ms", "rps"],
        notes="paper: Chiron still gains up to 4.9x throughput without the "
              "GIL via resource efficiency",
    )
    for wf in (slapp(), finra(5)):
        # one-to-one / many-to-one / Chiron, all on the no-GIL runtime
        one_to_one = OpenFaaSPlatform(cal)
        many_to_one = SANDPlatform(cal)
        slo = many_to_one.average_latency_ms(wf, repeats=5) + 10.0
        plan = PGPScheduler(LatencyPredictor(cal, conservatism=1.08)
                            ).schedule(wf, slo)
        chiron = ChironPlatform(plan, cal)
        for label, platform in (("one-to-one", one_to_one),
                                ("many-to-one", many_to_one),
                                ("chiron", chiron)):
            rep = throughput_report(platform, wf)
            result.add(workload=wf.name, system=label,
                       latency_ms=rep.latency_ms, rps=rep.rps)
    return result
