"""Figure 6: end-to-end latency of deployment models on FINRA 5/25/50.

The motivation comparison: OpenFaaS (one-to-one), Faastlane (processes),
Faastlane-T (threads), Faastlane+ (fixed 5-process m-to-n) and a
performance-first Chiron.  Expected shape (§2.2 Observation 3): Faastlane-T
wins at parallelism 5 but degrades sharply by 50; Chiron is best everywhere
(paper: 15.9 %-74.1 % latency reduction).
"""

from __future__ import annotations

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.experiments.common import ExperimentResult, register
from repro.experiments.systems import chiron_performance
from repro.platforms import FaastlanePlatform, OpenFaaSPlatform


@register("fig06")
def run(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.native()
    repeats = 3 if quick else 10
    result = ExperimentResult(
        experiment="fig06",
        title="Figure 6: end-to-end latency by deployment model (FINRA)",
        columns=["parallelism", "openfaas_ms", "faastlane_ms",
                 "faastlane_t_ms", "faastlane_plus_ms", "chiron_ms"],
        notes="expect: faastlane-t best among baselines at 5, worst at 50; "
              "chiron lowest everywhere",
    )
    sizes = (5, 25) if quick else (5, 25, 50)
    for parallelism in sizes:
        wf = finra(parallelism)
        row = {"parallelism": parallelism}
        systems = {
            "openfaas_ms": OpenFaaSPlatform(cal),
            "faastlane_ms": FaastlanePlatform(cal),
            "faastlane_t_ms": FaastlanePlatform(cal, variant="T"),
            "faastlane_plus_ms": FaastlanePlatform(cal, variant="plus"),
            "chiron_ms": chiron_performance(wf, cal),
        }
        for key, platform in systems.items():
            row[key] = platform.average_latency_ms(wf, repeats=repeats)
        result.add(**row)
    return result
