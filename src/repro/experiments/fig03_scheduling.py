"""Figure 3: scheduling overhead of one-to-one platforms on FINRA.

The paper reports the time spent *scheduling* a FINRA parallel stage (ASF:
150/874/1628 ms for 5/25/50 branches; OpenFaaS: 2/70/180 ms) and its share
of end-to-end latency (up to 95 % for ASF, 59 % for OpenFaaS at 50).

Scheduling overhead here = (measured parallel-stage span) minus (the span
the stage would take with free dispatch, i.e. the slowest branch body).
"""

from __future__ import annotations

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.experiments.common import ExperimentResult, register
from repro.platforms import ASFPlatform, OpenFaaSPlatform

PAPER_MS = {("asf", 5): 150.0, ("asf", 25): 874.0, ("asf", 50): 1628.0,
            ("openfaas", 5): 2.0, ("openfaas", 25): 70.0,
            ("openfaas", 50): 180.0}


def _stage_overhead(platform, workflow) -> tuple[float, float, float]:
    """(scheduling overhead ms, e2e ms, overhead % of e2e)."""
    result = platform.run(workflow)
    stage = workflow.stages[1]
    stage_start = result.stage_ends_ms[0]
    # storage exchange between the stages is interaction, not scheduling
    storage = result.trace.total("rpc", entity="stage-0")
    stage_span = result.stage_ends_ms[1] - stage_start - storage
    ideal = max(fn.behavior.solo_ms for fn in stage)
    overhead = max(0.0, stage_span - ideal)
    return overhead, result.latency_ms, 100.0 * overhead / result.latency_ms


@register("fig03")
def run(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.native()
    result = ExperimentResult(
        experiment="fig03",
        title="Figure 3: scheduling overhead in FINRA (parallel stage)",
        columns=["system", "parallelism", "overhead_ms", "overhead_pct",
                 "paper_ms"],
        notes="paper_ms from Figure 3's bar labels",
    )
    for parallelism in (5, 25, 50):
        wf = finra(parallelism)
        for label, platform in (("asf", ASFPlatform(cal)),
                                ("openfaas", OpenFaaSPlatform(cal))):
            overhead, _e2e, pct = _stage_overhead(platform, wf)
            result.add(system=label, parallelism=parallelism,
                       overhead_ms=overhead, overhead_pct=pct,
                       paper_ms=PAPER_MS[(label, parallelism)])
    return result
