"""Experiment harness: one module per table/figure of the paper.

Every experiment is a function ``run(quick: bool = False) ->
ExperimentResult`` registered under its paper identifier.  ``quick`` trades
statistical depth (repeats, training epochs, sweep sizes) for runtime and is
what the pytest-benchmark wrappers use; the full mode is what
``python -m repro run <id>`` executes.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
paper-vs-measured outcomes.
"""

from repro.experiments.common import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_experiment,
)

# importing the modules registers their experiments
from repro.experiments import (  # noqa: F401  (registration side effects)
    ablations,
    chaos,
    coldstart,
    drift_recovery,
    fault_blast_radius,
    fig03_scheduling,
    fig04_transfer,
    fig05_timeline,
    fig06_latency,
    fig07_nogil_cpus,
    fig08_resources,
    fig12_prediction,
    fig13_latency_all,
    fig14_slo,
    fig15_cdf,
    fig16_memory_throughput,
    fig17_cpu,
    fig18_java,
    fig19_cost,
    fleet_placement,
    overhead_components,
    overload_goodput,
    search_budget,
    supplementary,
    tab01_isolation,
)

__all__ = ["EXPERIMENTS", "ExperimentResult", "get_experiment",
           "run_experiment"]
