"""Shared experiment infrastructure: results, registry, formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

from repro.errors import ReproError


@dataclass
class ExperimentResult:
    """A table of results for one figure/table reproduction."""

    experiment: str             # e.g. "fig13"
    title: str
    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, **values: Any) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ReproError(f"{self.experiment}: row missing {missing}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise ReproError(f"{self.experiment}: no column {name!r}")
        return [row[name] for row in self.rows]

    def to_table(self) -> str:
        """Render the rows as an aligned text table."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        header = list(self.columns)
        body = [[fmt(row[c]) for c in header] for row in self.rows]
        widths = [max(len(h), *(len(r[i]) for r in body)) if body else len(h)
                  for i, h in enumerate(header)]
        lines = [self.title,
                 "  ".join(h.ljust(w) for h, w in zip(header, widths)),
                 "  ".join("-" * w for w in widths)]
        for row in body:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


#: experiment id -> (title, runner)
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering ``run(quick=False)`` under an id."""

    def wrap(fn: Callable[..., ExperimentResult]):
        if experiment_id in EXPERIMENTS:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = fn
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}") from None


def run_experiment(experiment_id: str, *, quick: bool = False
                   ) -> ExperimentResult:
    return get_experiment(experiment_id)(quick=quick)
