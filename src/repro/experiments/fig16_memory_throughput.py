"""Figure 16: normalized memory and max throughput per worker node.

Memory is the static deployment footprint normalized by Chiron's;
throughput is the node capacity model of
:mod:`repro.metrics.throughput` (instances that fit x requests each
sustains).  Paper headline: Chiron improves throughput 1.3x-39.6x.
"""

from __future__ import annotations

from repro.apps import ALL_WORKLOADS
from repro.experiments.common import ExperimentResult, register
from repro.experiments.systems import figure13_systems
from repro.metrics import throughput_report

SYSTEMS = ("openfaas", "sand", "faastlane", "chiron", "faastlane-m",
           "chiron-m", "faastlane-p", "chiron-p")

#: Chiron's absolute throughput printed in Figure 16 (req/s per node)
PAPER_CHIRON_RPS = {"social-network": 3320, "movie-review": 3584,
                    "slapp": 520, "slapp-v": 210, "finra-5": 1360,
                    "finra-50": 102, "finra-100": 50, "finra-200": 18}


@register("fig16")
def run(quick: bool = False) -> ExperimentResult:
    workloads = (("social-network", "finra-5") if quick
                 else tuple(ALL_WORKLOADS))
    result = ExperimentResult(
        experiment="fig16",
        title="Figure 16: normalized memory and max throughput per node",
        columns=["workload", "system", "memory_mb", "memory_norm",
                 "rps", "rps_norm", "paper_chiron_rps"],
        notes="norms relative to Chiron; paper: 1.3x-39.6x throughput gain",
    )
    for name in workloads:
        wf = ALL_WORKLOADS[name]()
        systems = figure13_systems(wf)
        reports = {label: throughput_report(systems[label], wf)
                   for label in SYSTEMS}
        memory = {label: systems[label].memory_mb(wf) for label in SYSTEMS}
        base_mem = memory["chiron"]
        base_rps = reports["chiron"].rps
        for label in SYSTEMS:
            result.add(workload=name, system=label,
                       memory_mb=memory[label],
                       memory_norm=memory[label] / base_mem,
                       rps=reports[label].rps,
                       rps_norm=reports[label].rps / base_rps,
                       paper_chiron_rps=PAPER_CHIRON_RPS[name])
    return result
