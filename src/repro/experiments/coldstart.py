"""Cold starts under keep-alive policy x traffic burstiness.

The paper's request-level comparisons assume warm sandboxes; this
experiment asks what the *first* moments cost and how lifecycle policy
changes them.  Three arrival traces of increasing burstiness (steady
Poisson, bursty diurnal, on/off bursts) are replayed per platform through
the :mod:`repro.lifecycle` manager under four policy arms:

* ``ttl0`` — always-cold strawman: zero keep-alive, no snapshots; every
  request pays the full container start;
* ``ttl0-snap`` — zero keep-alive but snapshot restore: the first cold
  boot pays the one-time image-creation charge, every later boot restores
  at a calibrated fraction of the cold cost;
* ``ttl60`` — the industry-default fixed 60 s keep-alive window;
* ``hybrid`` — the usage-histogram policy (keep-alive from a high
  percentile of observed inter-arrival gaps) with snapshots and a
  one-sandbox prewarm pool.

Every arm runs under the SAME idle-memory budget, sized from the smallest
per-instance footprint among the compared platforms — which is the
deployment-model story again: Chiron's m-to-n instances are smaller than
SAND/Faastlane monoliths, so the same cluster memory keeps more of them
warm and the warm-hit rate is higher at equal cost.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.apps.catalog import workload
from repro.cluster.traces import (burst_arrivals, constant_arrivals,
                                  diurnal_arrivals)
from repro.errors import ReproError
from repro.experiments.common import ExperimentResult, register
from repro.lifecycle import (FixedTTLPolicy, HistogramPolicy,
                             KeepAlivePolicy, replay_keepalive,
                             sample_service_latencies)
from repro.platforms.registry import build_platform

PLATFORMS = ("chiron", "sand", "faastlane")
TRACES = ("steady", "diurnal", "bursty")
POLICY_ARMS = ("ttl0", "ttl0-snap", "ttl60", "hybrid")

#: idle-memory budget as a multiple of the smallest per-instance footprint:
#: 3.2x keeps three Chiron instances revivable but only two of the larger
#: monoliths — the equal-cluster-memory comparison point
BUDGET_FACTOR = 3.2


def make_trace(name: str, *, seed: int = 11,
               duration_ms: float = 600_000.0) -> list[float]:
    """One arrival trace per burstiness level (sorted, ms).

    Peak rates are sized so peak *concurrency* (rate x ~100 ms service
    time) reaches ~3 in-flight sandboxes: enough that the idle-memory
    budget binds — the platform keeping three instances warm behaves
    differently from the one that can only afford two.
    """
    if name == "steady":
        return constant_arrivals(2.0, duration_ms, seed=seed)
    if name == "diurnal":
        return diurnal_arrivals(2.0, 30.0, period_ms=150_000.0,
                                duration_ms=duration_ms, seed=seed)
    if name == "bursty":
        return burst_arrivals(0.5, 35.0, burst_every_ms=60_000.0,
                              burst_len_ms=5_000.0,
                              duration_ms=duration_ms, seed=seed)
    raise ReproError(f"unknown trace {name!r}; expected one of {TRACES}")


def make_policy(arm: str) -> tuple[KeepAlivePolicy, bool, int]:
    """(keep-alive policy, snapshots enabled, prewarm target) per arm.

    Fresh per cell — histogram policies learn from the arrivals they see.
    """
    if arm == "ttl0":
        return FixedTTLPolicy(0.0), False, 0
    if arm == "ttl0-snap":
        return FixedTTLPolicy(0.0), True, 0
    if arm == "ttl60":
        return FixedTTLPolicy(60_000.0), True, 0
    if arm == "hybrid":
        return HistogramPolicy(), True, 1
    raise ReproError(f"unknown policy arm {arm!r}; "
                     f"expected one of {POLICY_ARMS}")


def sweep(app: str = "finra-5", *,
          platforms: Sequence[str] = PLATFORMS,
          traces: Sequence[str] = TRACES,
          arms: Sequence[str] = POLICY_ARMS,
          seed: int = 11, duration_ms: float = 600_000.0,
          service_samples: int = 12,
          budget_factor: float = BUDGET_FACTOR) -> list[dict]:
    """Burstiness x platform x policy grid; the CLI and experiment share it.

    One row per cell: latency percentiles, boots by tier, warm-hit rate,
    evictions and the time-averaged keep-warm footprint.
    """
    wf = workload(app)
    plats = {name: build_platform(name, wf) for name in platforms}
    budget_mb = budget_factor * min(p.memory_mb(wf) for p in plats.values())
    # one warm-latency pool per platform, shared by every (trace, arm) cell:
    # the only variables inside a platform are the trace and the policy
    pools: Dict[str, list[float]] = {
        name: sample_service_latencies(p, wf, samples=service_samples,
                                       base_seed=seed * 100)
        for name, p in plats.items()}
    rows = []
    for trace_name in traces:
        arrivals = make_trace(trace_name, seed=seed,
                              duration_ms=duration_ms)
        for plat_name in platforms:
            for arm in arms:
                policy, snapshots, prewarm = make_policy(arm)
                r = replay_keepalive(
                    plats[plat_name], wf, arrivals_ms=arrivals,
                    policy=policy, snapshots=snapshots,
                    memory_budget_mb=budget_mb, prewarm_target=prewarm,
                    service_pool=pools[plat_name])
                row = r.row()
                row.update(app=app, trace=trace_name, arm=arm,
                           budget_mb=round(budget_mb, 1),
                           per_instance_mb=round(r.per_instance_mb, 1))
                rows.append(row)
    return rows


def _cell(rows: Sequence[dict], trace: str, platform: str,
          arm: str) -> Optional[dict]:
    for row in rows:
        if (row["trace"] == trace and row["platform"] == platform
                and row["arm"] == arm):
            return row
    return None


def summary_flags(rows: Sequence[dict], *,
                  trace: str = "diurnal") -> dict:
    """The two acceptance checks, computed from a sweep's rows.

    * ``hybrid_beats_ttl0_p99`` — on the bursty diurnal trace the hybrid
      histogram policy strictly beats always-cold p99 (Chiron);
    * ``chiron_tops_warm_hit`` — at equal idle-memory budget Chiron's
      warm-hit rate exceeds every compared monolith's (hybrid arm).
    """
    hybrid = _cell(rows, trace, "chiron", "hybrid")
    ttl0 = _cell(rows, trace, "chiron", "ttl0")
    flags: dict = {"trace": trace}
    if hybrid is not None and ttl0 is not None:
        flags["hybrid_p99_ms"] = hybrid["p99_ms"]
        flags["ttl0_p99_ms"] = ttl0["p99_ms"]
        flags["hybrid_beats_ttl0_p99"] = hybrid["p99_ms"] < ttl0["p99_ms"]
    rivals = [row for row in rows
              if row["trace"] == trace and row["arm"] == "hybrid"
              and row["platform"] != "chiron"]
    if hybrid is not None and rivals:
        flags["warm_hit_rate"] = {
            row["platform"]: row["warm_hit_rate"]
            for row in [hybrid] + rivals}
        flags["chiron_tops_warm_hit"] = all(
            hybrid["warm_hit_rate"] > row["warm_hit_rate"]
            for row in rivals)
    return flags


@register("coldstart")
def run(quick: bool = False) -> ExperimentResult:
    """Sweep burstiness x keep-alive policy x platform on FINRA-5."""
    duration = 150_000.0 if quick else 600_000.0
    samples = 6 if quick else 12
    rows = sweep("finra-5", duration_ms=duration, service_samples=samples)
    flags = summary_flags(rows)
    notes = (
        f"idle-memory budget {rows[0]['budget_mb']} MB for every arm; "
        f"diurnal-trace p99: hybrid {flags.get('hybrid_p99_ms', 0):.0f} ms "
        f"vs always-cold {flags.get('ttl0_p99_ms', 0):.0f} ms; "
        f"warm-hit at equal memory: "
        + ", ".join(f"{k} {v:.0%}" for k, v in
                    flags.get("warm_hit_rate", {}).items()))
    result = ExperimentResult(
        experiment="coldstart",
        title="Cold starts: keep-alive policy x burstiness at equal "
              "cluster memory (FINRA-5)",
        columns=("trace", "platform", "arm", "p50_ms", "p99_ms",
                 "warm_hit_rate", "cold", "snapshot", "pool", "warm",
                 "evictions", "mean_idle_mb"),
        notes=notes,
    )
    for row in rows:
        result.add(trace=row["trace"], platform=row["platform"],
                   arm=row["arm"], p50_ms=round(row["p50_ms"], 1),
                   p99_ms=round(row["p99_ms"], 1),
                   warm_hit_rate=round(row["warm_hit_rate"], 3),
                   cold=row["cold"], snapshot=row["snapshot"],
                   pool=row["pool"], warm=row["warm"],
                   evictions=row["evictions"],
                   mean_idle_mb=round(row["mean_idle_mb"], 1))
    return result
