"""Fleet placement experiment: global+annealed vs local baselines.

A compact version of the fleet bench (see :mod:`repro.fleet.bench`) in
the experiment-table format: one multi-tenant fleet from the app catalog,
placed four ways (random, plain first-fit, greedy FFD with home zones,
greedy + annealing) and executed deterministically with
:func:`repro.fleet.runner.run_fleet`.  The table reads like the paper's
performance-first argument scaled from one deployment to a fleet: local
order-driven placement (what per-request autoscalers do) either sprawls
or overloads; the global phase packs, and the detailed annealing phase
fixes load balance and co-location at the same time.

``chiron-repro run fleet-placement`` prints the table;
``chiron-repro bench --fleet`` runs the bigger gated variant.
"""

from __future__ import annotations

from repro.core.search import SearchOptions
from repro.experiments.common import ExperimentResult, register
from repro.fleet.bench import BENCH_ANNEAL_BUDGET, BENCH_RPS
from repro.fleet.placement import PLACEMENT_METHODS, FleetPlacer
from repro.fleet.runner import run_fleet
from repro.fleet.spec import compile_fleet, synth_fleet

COLUMNS = ("method", "cost", "machines", "packing_fraction",
           "p99_ms", "goodput_fraction", "fairness_jain",
           "cross_zone_traffic", "spread_violations")


@register("fleet-placement")
def run(quick: bool = False) -> ExperimentResult:
    requests = 500 if quick else 5_000
    spec = synth_fleet(tenants=6, workloads_per_tenant=3,
                       requests_per_stream=requests,
                       rps=BENCH_RPS, seed=0)
    fleet = compile_fleet(spec)
    placer = FleetPlacer(fleet)
    budget = 2_000 if quick else BENCH_ANNEAL_BUDGET
    result = ExperimentResult(
        experiment="fleet-placement",
        title="Multi-tenant fleet: wrap-to-machine placement quality",
        columns=COLUMNS,
        notes=f"{len(spec.streams)} streams / {spec.total_requests:,} "
              f"requests, {len(fleet.units)} wrap units / "
              f"{fleet.demand_cores():.0f} cores on "
              f"{len(fleet.machines)} machines; anneal budget {budget}; "
              "deterministic for the fixed seed")
    for method in PLACEMENT_METHODS:
        plan = placer.place(method, seed=1,
                            options=SearchOptions(budget=budget, seed=0))
        plan.validate(fleet)
        report = run_fleet(fleet, plan)
        result.add(method=method,
                   cost=round(plan.cost, 1),
                   machines=plan.machines_used(fleet),
                   packing_fraction=round(plan.packing_fraction(fleet), 3),
                   p99_ms=round(report.sojourn.p99_ms, 2),
                   goodput_fraction=round(report.goodput_fraction, 3),
                   fairness_jain=round(report.fairness_jain, 3),
                   cross_zone_traffic=report.cross_zone_traffic,
                   spread_violations=plan.spread_violations(fleet))
    return result
