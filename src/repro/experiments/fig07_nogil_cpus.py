"""Figure 7: latency under true parallelism with fewer CPUs than tasks.

Four SLApp archetype functions (factorial, fibonacci, disk-io, network-io —
similar latency, different CPU/IO mixes) run truly parallel (Python
ProcessPoolExecutor and Java threads) on 1-4 CPUs.  The paper's point:
dropping from 4 CPUs to 3 costs only ~11.7 % latency (the IO-heavy tasks
donate their idle CPU time), which motivates non-uniform allocation.
"""

from __future__ import annotations

from repro.apps.catalog import SLAPP_ARCHETYPES
from repro.calibration import RuntimeCalibration
from repro.experiments.common import ExperimentResult, register
from repro.runtime.cpusched import FluidCPU
from repro.runtime.pool import ProcessPool
from repro.runtime.thread import SimThread
from repro.simcore import Environment
from repro.workflow.model import FunctionSpec


def _pool_latency(cores: int, cal: RuntimeCalibration) -> float:
    """Mean task latency of the 4 archetypes on a ``cores``-wide pool."""
    env = Environment()
    cpu = FluidCPU(env, cores)
    pool = ProcessPool(env, workers=4, cpu=cpu, cal=cal)
    dispatcher = SimThread(env, name="d", cpu=cpu, gil=None, cal=cal)
    fns = [FunctionSpec(name, behavior)
           for name, behavior in SLAPP_ARCHETYPES.items()]
    ends: dict[str, float] = {}

    def drive(env):
        events = yield from pool.map(dispatcher, fns)
        for fn, ev in zip(fns, events):
            if ev.callbacks is None:
                ends[fn.name] = env.now
            else:
                ev.callbacks.append(
                    lambda _e, n=fn.name: ends.__setitem__(n, env.now))
        yield env.all_of(events)

    env.process(drive(env))
    env.run()
    return sum(ends.values()) / len(ends)


def _java_thread_latency(cores: int) -> float:
    """Same tasks as no-GIL threads sharing a cpuset."""
    cal = RuntimeCalibration.no_gil()
    env = Environment()
    cpu = FluidCPU(env, cores)
    threads = [SimThread(env, name=name, cpu=cpu, gil=None, cal=cal)
               for name in SLAPP_ARCHETYPES]
    procs = [env.process(t.run_behavior(b))
             for t, b in zip(threads, SLAPP_ARCHETYPES.values())]
    env.run()
    return sum(t.finished_at for t in threads) / len(threads)


@register("fig07")
def run(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.native()
    result = ExperimentResult(
        experiment="fig07",
        title="Figure 7: mean latency of 4 true-parallel tasks vs CPUs",
        columns=["cpus", "python_pool_ms", "java_threads_ms",
                 "penalty_vs_4cpu_pct"],
        notes="paper: 3 CPUs cost only ~11.7% (+4.2 ms) over 4 CPUs",
    )
    base = _pool_latency(4, cal)
    for cores in (4, 3, 2, 1):
        pool_ms = _pool_latency(cores, cal)
        java_ms = _java_thread_latency(cores)
        result.add(cpus=cores, python_pool_ms=pool_ms,
                   java_threads_ms=java_ms,
                   penalty_vs_4cpu_pct=100.0 * (pool_ms - base) / base)
    return result
