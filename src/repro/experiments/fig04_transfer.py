"""Figure 4: intermediate-data transmission overhead vs payload size.

ASF functions exchange state through S3, the local cluster through MinIO.
The paper shows ~52 ms even for 1-byte exchanges on S3 and ~25 s at 1 GB;
the local path spans ~10 ms to ~10 s.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, register
from repro.runtime.storage import StorageService
from repro.simcore import Environment

#: Figure 4's x-axis
SIZES_MB = {"1B": 1.0 / (1024 * 1024), "1KB": 1.0 / 1024, "1MB": 1.0,
            "1GB": 1024.0}


@register("fig04")
def run(quick: bool = False) -> ExperimentResult:
    env = Environment()
    s3 = StorageService.s3(env)
    minio = StorageService.minio(env)
    result = ExperimentResult(
        experiment="fig04",
        title="Figure 4: data-exchange latency (put+get) by size",
        columns=["size", "asf_s3_ms", "openfaas_minio_ms"],
        notes="paper: S3 floor ~52 ms, 1 GB ~25 s; MinIO ~10 ms to ~10 s",
    )
    for label, mb in SIZES_MB.items():
        result.add(size=label,
                   asf_s3_ms=s3.exchange_latency_ms(mb),
                   openfaas_minio_ms=minio.exchange_latency_ms(mb))
    return result
