"""§6.3 "Resource overhead": cost of running Chiron's own components.

The paper reports each component under 40 MB and <0.1 core (1 core for
PGP).  Here we time the actual Profiler / Predictor / PGP / Generator code
on FINRA-50 and report wall-clock per invocation — the quantities a
deployment operator budgets for.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.core.generator import OrchestratorGenerator
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.profiler import Profiler
from repro.experiments.common import ExperimentResult, register


@register("overhead")
def run(quick: bool = False) -> ExperimentResult:
    wf = finra(10 if quick else 50)
    cal = RuntimeCalibration.native()
    result = ExperimentResult(
        experiment="overhead",
        title="§6.3: Chiron component overhead (FINRA-50)",
        columns=["component", "wall_ms", "peak_mem_mb"],
        notes="paper: each component <40 MB, <0.1 core (PGP gets 1 core); "
              "scheduling is offline so wall time never blocks requests",
    )

    def timed(fn):
        tracemalloc.start()
        t0 = time.perf_counter()
        out = fn()
        wall = (time.perf_counter() - t0) * 1e3
        _cur, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return out, wall, peak / (1024 * 1024)

    profiler = Profiler()
    profiles, wall, mem = timed(lambda: profiler.profile_workflow(wf))
    result.add(component="profiler", wall_ms=wall, peak_mem_mb=mem)

    profiled = Profiler.profiled_workflow(wf, profiles)
    predictor = LatencyPredictor(cal, conservatism=1.08)
    scheduler = PGPScheduler(predictor)
    slo = wf.critical_path_ms * 3
    plan, wall, mem = timed(lambda: scheduler.schedule(profiled, slo))
    result.add(component="pgp-scheduler", wall_ms=wall, peak_mem_mb=mem)

    _, wall, mem = timed(
        lambda: predictor.predict_workflow(profiled, plan))
    result.add(component="predictor(one call)", wall_ms=wall, peak_mem_mb=mem)

    _, wall, mem = timed(
        lambda: OrchestratorGenerator().generate(profiled, plan))
    result.add(component="generator", wall_ms=wall, peak_mem_mb=mem)
    return result
