"""Goodput under overload: offered load x overload policy.

The paper's throughput story (Figure 16) stops at the saturation knee; this
experiment asks what happens *past* it.  Offered Poisson load is swept as a
multiple of the replica set's nominal capacity and replayed twice per
point:

* ``none`` — the pre-overload platform: every arrival queues without bound.
  Past the knee the backlog grows for the whole test, p99 sojourn explodes,
  and goodput (completions within the deadline) collapses toward zero —
  the classic metastable failure.
* ``admit`` — the :mod:`repro.overload` admission controller in front of
  the same replicas: a token bucket sized just under capacity plus a
  bounded per-replica queue, with head-of-queue deadline cancellation.
  Excess load becomes cheap explicit sheds, so the requests that *are*
  served still meet their deadline and goodput holds at the knee value
  while offered load doubles.

Service times come from the request-level simulator (optionally under an
injected fault plan, which fattens the tail the load test replays), so the
collapse and its rescue are properties of the measured platform, not of an
assumed M/M/c model.  Everything is deterministic under ``seed``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.apps.catalog import workload
from repro.cluster.loadgen import _ServiceSampler, run_open_loop
from repro.experiments.common import ExperimentResult, register
from repro.faults import FaultPlan, RetryPolicy
from repro.overload import AdmissionPolicy
from repro.platforms.registry import build_platform

DEFAULT_FACTORS = (0.5, 0.8, 1.0, 1.5, 2.0)
POLICIES = ("none", "admit")

#: the admission rate limit as a fraction of nominal capacity: slightly
#: under 1.0 so stochastic service-time spikes don't re-grow the backlog
ADMIT_RATE_HEADROOM = 0.95
ADMIT_BURST = 8
ADMIT_QUEUE_PER_REPLICA = 2


def admission_for(capacity_rps: float) -> AdmissionPolicy:
    """The standard policy the ``admit`` arm runs with."""
    return AdmissionPolicy(rate_rps=capacity_rps * ADMIT_RATE_HEADROOM,
                           burst=ADMIT_BURST,
                           max_queue_per_replica=ADMIT_QUEUE_PER_REPLICA)


def sweep(app: str = "finra-5", platform_name: str = "faastlane", *,
          instances: int = 2, requests: int = 300, seed: int = 7,
          deadline_factor: float = 3.0, service_pool: int = 10,
          factors: Sequence[float] = DEFAULT_FACTORS,
          policies: Sequence[str] = POLICIES,
          fault_rate: float = 0.0,
          retry: Optional[RetryPolicy] = None) -> list[dict]:
    """Offered-load-factor x policy grid; the CLI and experiment share it.

    Returns one row per cell with goodput (deadline-meeting completions per
    second), p99 sojourn, and the shed/rejected/expired ledger.
    """
    wf = workload(app)
    platform = build_platform(platform_name, wf)
    faults = (FaultPlan(seed=seed, sandbox_crash_rate=fault_rate)
              if fault_rate > 0 else None)
    # one service pool for every cell: all arms replay the same measured
    # latency distribution, so the only variable is the overload policy
    sampler = _ServiceSampler(platform, wf, pool_size=service_pool,
                              seed=seed, jitter_sigma=0.08,
                              faults=faults, retry=retry)
    samples = sampler.samples
    service_ms = float(np.mean(samples))
    capacity_rps = instances * 1000.0 / service_ms
    deadline_ms = deadline_factor * service_ms
    admit = admission_for(capacity_rps)
    rows = []
    for factor in factors:
        rps = capacity_rps * factor
        for policy in policies:
            if policy not in POLICIES:
                raise ValueError(
                    f"unknown overload policy {policy!r}; "
                    f"expected one of {POLICIES}")
            armed = policy == "admit"
            r = run_open_loop(
                platform, wf, instances=instances, rps=rps,
                requests=requests, seed=seed, service_samples=samples,
                deadline_ms=deadline_ms,
                admission=admit if armed else None,
                # the baseline still *accounts* deadline misses but never
                # cancels: that is exactly the pre-overload behavior
                cancel_expired=armed)
            rows.append({
                "app": app, "platform": platform_name,
                "factor": factor, "offered_rps": rps, "policy": policy,
                "capacity_rps": capacity_rps, "deadline_ms": deadline_ms,
                "goodput_rps": r.goodput_rps,
                "achieved_rps": r.achieved_rps,
                "p99_ms": r.sojourn.p99_ms,
                "shed": r.shed, "rejected": r.rejected,
                "expired": r.expired, "completed": r.completed,
                "requests": requests,
            })
    return rows


def knee_goodput(rows: Sequence[dict]) -> float:
    """The baseline's best goodput across the sweep — the knee value."""
    return max((r["goodput_rps"] for r in rows if r["policy"] == "none"),
               default=float("nan"))


@register("overload-goodput")
def run(quick: bool = False) -> ExperimentResult:
    """Sweep offered load x overload policy on FINRA-5."""
    requests = 120 if quick else 300
    factors = (0.5, 1.0, 2.0) if quick else DEFAULT_FACTORS
    rows = sweep("finra-5", requests=requests, factors=factors)
    knee = knee_goodput(rows)
    admit_2x = next((r["goodput_rps"] for r in reversed(rows)
                     if r["policy"] == "admit" and r["factor"] == 2.0),
                    float("nan"))
    result = ExperimentResult(
        experiment="overload-goodput",
        title="Goodput past the saturation knee: admission control vs "
              "unbounded queueing (FINRA-5)",
        columns=("factor", "policy", "offered_rps", "goodput_rps", "p99_ms",
                 "shed", "rejected", "expired", "completed"),
        notes=f"goodput = deadline-meeting completions/s; knee (best "
              f"baseline goodput) = {knee:.2f} rps, admit arm at 2x load = "
              f"{admit_2x:.2f} rps ({admit_2x / knee:.0%} of knee)"
              if knee == knee and admit_2x == admit_2x else
              "goodput = deadline-meeting completions/s",
    )
    for row in rows:
        result.add(factor=row["factor"], policy=row["policy"],
                   offered_rps=round(row["offered_rps"], 2),
                   goodput_rps=round(row["goodput_rps"], 2),
                   p99_ms=round(row["p99_ms"], 1),
                   shed=row["shed"], rejected=row["rejected"],
                   expired=row["expired"], completed=row["completed"])
    return result
