"""Figure 14: SLO violation rate, Faastlane vs Chiron.

SLO = Faastlane average latency + 10 ms (§6.2).  Requests carry seeded
run-to-run jitter; Faastlane's mean sits 10 ms under the SLO so its noise
violates often, while Chiron plans with conservatively inflated predictions
(its accepted plan leaves a margin) — the paper reports 1.3 % average
violations vs Faastlane's double digits.
"""

from __future__ import annotations

from repro.apps import ALL_WORKLOADS
from repro.calibration import RuntimeCalibration
from repro.core.slo import SloPolicy
from repro.experiments.common import ExperimentResult, register
from repro.platforms import FaastlanePlatform, build_platform


@register("fig14")
def run(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.native()
    requests = 20 if quick else 100
    workloads = (("social-network", "finra-5") if quick
                 else tuple(ALL_WORKLOADS))
    result = ExperimentResult(
        experiment="fig14",
        title="Figure 14: SLO violation rate (%)",
        columns=["workload", "slo_ms", "faastlane_pct", "chiron_pct"],
        notes="paper: Chiron averages 1.3%, far below Faastlane",
    )
    #: run-to-run variance of the testbed stand-in; heavier than the default
    #: median-latency jitter so the violation tail is visible (the paper's
    #: cluster shows double-digit Faastlane violation rates)
    sigma = 0.13
    for name in workloads:
        wf = ALL_WORKLOADS[name]()
        faastlane = FaastlanePlatform(cal)
        baseline = faastlane.average_latency_ms(wf, repeats=10,
                                                jitter_sigma=sigma)
        policy = SloPolicy.from_baseline(baseline)
        chiron = build_platform("chiron", wf, slo_ms=policy.slo_ms, cal=cal)
        f_lat = [faastlane.run(wf, seed=9000 + r,
                               jitter_sigma=sigma).latency_ms
                 for r in range(requests)]
        c_lat = [chiron.run(wf, seed=9000 + r,
                            jitter_sigma=sigma).latency_ms
                 for r in range(requests)]
        result.add(workload=name, slo_ms=policy.slo_ms,
                   faastlane_pct=100 * policy.violation_rate(f_lat),
                   chiron_pct=100 * policy.violation_rate(c_lat))
    return result
