"""Figure 15: per-function completion-time CDF, FINRA-50.

For each system we record when every parallel function of FINRA-50 finishes
(relative to the request start) and summarize the distribution.  Expected
shape: pool variants start functions earliest (no fork cost) but show a
long tail under worker contention; Chiron variants start fast *and* finish
fast (paper: up to 32.5 % faster than Faastlane-M/-P).
"""

from __future__ import annotations

from repro.apps import finra
from repro.experiments.common import ExperimentResult, register
from repro.experiments.systems import figure13_systems
from repro.metrics import percentile
from repro.obs.export import render_cdf

SYSTEMS = ("openfaas", "faastlane", "chiron", "faastlane-m", "chiron-m",
           "faastlane-p", "chiron-p")


@register("fig15")
def run(quick: bool = False) -> ExperimentResult:
    wf = finra(10 if quick else 50)
    systems = figure13_systems(wf)
    result = ExperimentResult(
        experiment="fig15",
        title="Figure 15: function completion-time CDF, FINRA-50 (ms)",
        columns=["system", "p10", "p50", "p90", "p100"],
        notes="completion time of each parallel function since request "
              "start; pool = early start, possible long tail",
    )
    charts = []
    for label in SYSTEMS:
        res = systems[label].run(wf)
        finish = [end for name, (_s, end) in res.function_spans.items()
                  if name.startswith("validate-")]
        result.add(system=label,
                   p10=percentile(finish, 10),
                   p50=percentile(finish, 50),
                   p90=percentile(finish, 90),
                   p100=percentile(finish, 100))
        if label in ("faastlane-p", "chiron"):  # the tail-shape contrast
            charts.append(f"--- {label} ---\n"
                          + render_cdf(finish, label="completion (ms)"))
    result.notes += "\n" + "\n".join(charts)
    return result
