"""Search-budget experiment: anytime plan quality vs. move-eval budget.

Not a paper figure — this quantifies ROADMAP item 2: with the prediction
cache making stage evaluations cheap, how much plan quality does each unit
of search budget buy on top of the paper's greedy KL scheduler, and when
does the parallel portfolio (KL + SA + random restarts) pay for itself?

One row per (workload, SLO factor, budget): the greedy KL plan cost, SA's
best-so-far cost after that budget (read off a single max-budget run's
timeline — the anytime guarantee makes the prefix exact), and the portfolio
winner's cost at the same per-arm budget.  Costs come from
:func:`repro.core.search.plan_cost` — total cores, sub-core latency
tie-break, heavy SLO-miss penalty — so "lower" means "fewer CPUs, then
faster", and a drop below the penalty band means the search repaired an
SLO violation greedy KL could not.
"""

from __future__ import annotations

from repro.bench import (
    DEFAULT_SEARCH_BUDGETS,
    QUICK_SEARCH_BUDGETS,
    QUICK_WORKLOADS,
    run_search_bench,
)
from repro.experiments.common import ExperimentResult, register

#: factors spanning infeasible-for-greedy (1.2) to comfortably packed (3.0)
SLO_FACTORS = (1.2, 2.0, 3.0)


@register("search_budget")
def run(quick: bool = False) -> ExperimentResult:
    budgets = QUICK_SEARCH_BUDGETS if quick else DEFAULT_SEARCH_BUDGETS
    workloads = (("social-network", "finra-5") if quick
                 else list(QUICK_WORKLOADS) + ["finra-50"])
    report = run_search_bench(workloads, slo_factors=SLO_FACTORS,
                              budgets=budgets)

    result = ExperimentResult(
        experiment="search_budget",
        title="Anytime plan search: cost vs. budget (KL / SA / portfolio)",
        columns=["workload", "slo_factor", "budget", "kl_cost", "sa_cost",
                 "portfolio_cost", "winner", "sa_gain_pct"],
        notes="cost = cores + latency tie-break (+1000x SLO-miss penalty); "
              "sa_gain_pct vs. greedy KL at the same SLO; portfolio cost "
              "reported at its per-arm budget (the largest) for every row",
    )
    for wl in report["workloads"]:
        for row in wl["slos"]:
            kl = row["kl"]["cost"]
            for budget in budgets:
                sa = row["sa"]["cost_by_budget"][str(budget)]
                result.add(
                    workload=wl["workload"],
                    slo_factor=row["slo_factor"],
                    budget=budget,
                    kl_cost=kl,
                    sa_cost=sa,
                    portfolio_cost=row["portfolio"]["cost"],
                    winner=row["portfolio"]["winner"],
                    sa_gain_pct=100.0 * (kl - sa) / kl if kl else 0.0,
                )
    return result
