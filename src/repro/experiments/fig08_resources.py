"""Figure 8: memory and normalized CPU cost of FINRA deployments.

OpenFaaS duplicates a runtime per function (worst memory, uniform CPU);
Faastlane shares one sandbox (big memory saving) but still allocates one
CPU per parallel function; Chiron (SLO-driven) trims both (paper: -82.7 %
CPU and -8.3 % memory vs Faastlane).
"""

from __future__ import annotations

from repro.apps import finra
from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.experiments.common import ExperimentResult, register
from repro.experiments.systems import paper_slo_ms
from repro.platforms import ChironPlatform, FaastlanePlatform, OpenFaaSPlatform


@register("fig08")
def run(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.native()
    result = ExperimentResult(
        experiment="fig08",
        title="Figure 8: memory (MB) and normalized CPU cost, FINRA",
        columns=["parallelism", "system", "memory_mb", "cpu_cores",
                 "cpu_norm"],
        notes="cpu_norm is relative to Chiron (Figure 8b normalizes too)",
    )
    sizes = (5, 25) if quick else (5, 25, 50)
    for parallelism in sizes:
        wf = finra(parallelism)
        slo = paper_slo_ms(wf, cal)
        plan = PGPScheduler(LatencyPredictor(cal, conservatism=1.08)
                            ).schedule(wf, slo)
        systems = {
            "openfaas": OpenFaaSPlatform(cal),
            "faastlane": FaastlanePlatform(cal),
            "chiron": ChironPlatform(plan, cal),
        }
        chiron_cores = systems["chiron"].allocated_cores(wf)
        for label, platform in systems.items():
            result.add(parallelism=parallelism, system=label,
                       memory_mb=platform.memory_mb(wf),
                       cpu_cores=platform.allocated_cores(wf),
                       cpu_norm=platform.allocated_cores(wf)
                       / max(chiron_cores, 1))
    return result
