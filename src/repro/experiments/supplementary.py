"""Supplementary experiments beyond the paper's figures.

* ``coldstart-cascade`` — cold vs warm first-request latency per model:
  the one-to-one model pays one container boot per function sandbox, while
  many-to-one and m-to-n amortize boots over wraps (§1's motivation; the
  paper evaluates warm-only, this quantifies what pre-warming hides);
* ``runtimes`` — the same workload on CPython, Node.js (50 ms
  worker_threads spawn, §2.1) and Java (no GIL): why the paper's trade-off
  is runtime-specific;
* ``loadtest`` — *measured* saturation throughput from the open-loop load
  generator vs Figure 16's capacity model.
"""

from __future__ import annotations

from repro.apps import finra, social_network
from repro.calibration import RuntimeCalibration
from repro.cluster import find_saturation_rps
from repro.experiments.common import ExperimentResult, register
from repro.experiments.systems import paper_slo_ms
from repro.metrics import throughput_report
from repro.platforms import (
    FaastlanePlatform,
    OpenFaaSPlatform,
    SANDPlatform,
    build_platform,
)


@register("coldstart-cascade")
def run_coldstart(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.native()
    result = ExperimentResult(
        experiment="coldstart-cascade",
        title="Supplementary: cold vs warm first-request latency",
        columns=["workload", "system", "warm_ms", "cold_ms", "penalty_ms",
                 "sandboxes"],
        notes="one-to-one re-boots every function's container (167 ms "
              "each, booted in parallel here); wraps amortize boots",
    )
    workloads = [finra(5)] if quick else [finra(5), social_network()]
    for wf in workloads:
        slo = paper_slo_ms(wf, cal)
        systems = {
            "openfaas": OpenFaaSPlatform(cal),
            "sand": SANDPlatform(cal),
            "faastlane": FaastlanePlatform(cal),
            "chiron": build_platform("chiron", wf, slo_ms=slo, cal=cal),
        }
        for label, platform in systems.items():
            warm = platform.run(wf).latency_ms
            cold = platform.run(wf, cold=True).latency_ms
            result.add(workload=wf.name, system=label, warm_ms=warm,
                       cold_ms=cold, penalty_ms=cold - warm,
                       sandboxes=len(platform.footprints(wf)))
    return result


@register("runtimes")
def run_runtimes(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="runtimes",
        title="Supplementary: language runtimes under thread fan-out (§2.1)",
        columns=["runtime", "system", "latency_ms"],
        notes="Node.js worker_threads pay >50 ms spawn each; Java threads "
              "run truly parallel; CPython sits between",
    )
    wf = finra(5)
    for runtime, cal in (("python", RuntimeCalibration.native()),
                         ("nodejs", RuntimeCalibration.nodejs()),
                         ("java", RuntimeCalibration.no_gil())):
        for label, platform in (
                ("faastlane-t", FaastlanePlatform(cal, variant="T")),
                ("faastlane", FaastlanePlatform(cal))):
            result.add(runtime=runtime, system=label,
                       latency_ms=platform.run(wf).latency_ms)
    return result


@register("autoscale")
def run_autoscale(quick: bool = False) -> ExperimentResult:
    """Elastic scaling under bursty traffic: small-footprint deployments
    absorb bursts with more replicas per node (extension of Figure 16)."""
    from repro.cluster import AutoscalerConfig, burst_arrivals, run_autoscaled

    cal = RuntimeCalibration.native()
    wf = finra(5)
    duration = 4_000.0 if quick else 10_000.0
    arrivals = burst_arrivals(2.0, 50.0, burst_every_ms=2_500.0,
                              burst_len_ms=500.0, duration_ms=duration,
                              seed=3)
    result = ExperimentResult(
        experiment="autoscale",
        title="Supplementary: burst traffic under replica autoscaling",
        columns=["system", "max_replicas", "p50_ms", "p90_ms",
                 "mean_replicas", "replica_seconds"],
        notes="reactive scaling pays one cold start before new capacity "
              "lands; Chiron's 2-core replicas scale 25x denser than "
              "Faastlane's 5-core ones on a 40-core node",
    )
    systems = {
        "faastlane": (FaastlanePlatform(cal), 40 // 5),
        "chiron": (build_platform("chiron", wf,
                                  slo_ms=paper_slo_ms(wf, cal), cal=cal),
                   None),
    }
    for label, (platform, cap) in systems.items():
        max_replicas = cap or max(1, 40 // max(
            platform.allocated_cores(wf), 1))
        out = run_autoscaled(platform, wf, arrivals=arrivals,
                             config=AutoscalerConfig(
                                 min_replicas=1, max_replicas=max_replicas,
                                 evaluation_interval_ms=250.0),
                             service_pool=10 if quick else 20)
        result.add(system=label, max_replicas=max_replicas,
                   p50_ms=out.sojourn.p50_ms, p90_ms=out.sojourn.p90_ms,
                   mean_replicas=out.mean_replicas,
                   replica_seconds=out.replica_seconds)
    return result


@register("loadtest")
def run_loadtest(quick: bool = False) -> ExperimentResult:
    cal = RuntimeCalibration.native()
    result = ExperimentResult(
        experiment="loadtest",
        title="Supplementary: measured saturation vs capacity model (1 node)",
        columns=["workload", "system", "capacity_rps", "measured_rps",
                 "agreement"],
        notes="measured = open-loop Poisson search with bounded queueing; "
              "finite-horizon tests overshoot steady state by O(10%)",
    )
    wf = finra(5)
    requests = 80 if quick else 200
    systems = {
        "faastlane": FaastlanePlatform(cal),
        "openfaas": OpenFaaSPlatform(cal),
        "chiron": build_platform("chiron", wf,
                                 slo_ms=paper_slo_ms(wf, cal), cal=cal),
    }
    for label, platform in systems.items():
        model = throughput_report(platform, wf)
        measured = find_saturation_rps(platform, wf, requests=requests,
                                       seed=5, tolerance=0.1)
        result.add(workload=wf.name, system=label,
                   capacity_rps=model.rps, measured_rps=measured,
                   agreement=measured / model.rps)
    return result
