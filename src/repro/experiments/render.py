"""ASCII bar charts for experiment results (terminal "figures")."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult


def bar_chart(result: ExperimentResult, *, label_cols: Sequence[str],
              value_col: str, width: int = 50,
              log: bool = False) -> str:
    """Render one value column as horizontal bars.

    ``label_cols`` name the columns concatenated into each bar's label;
    ``log`` switches to a logarithmic bar length (for ASF-scale outliers).
    """
    import math

    for col in (*label_cols, value_col):
        if col not in result.columns:
            raise ReproError(f"{result.experiment}: no column {col!r}")
    values = [float(row[value_col]) for row in result.rows]
    if not values:
        raise ReproError(f"{result.experiment}: no rows to chart")
    if any(v < 0 for v in values):
        raise ReproError("bar_chart needs non-negative values")

    def scale(v: float) -> float:
        if not log:
            return v
        return math.log10(1.0 + v)

    peak = max(scale(v) for v in values) or 1.0
    labels = [" ".join(str(row[c]) for c in label_cols)
              for row in result.rows]
    label_w = max(len(l) for l in labels)
    lines = [f"{result.title} — {value_col}"
             + (" (log scale)" if log else "")]
    for label, value in zip(labels, values):
        n = int(round(scale(value) / peak * width))
        lines.append(f"{label:<{label_w}} |{'#' * n:<{width}}| "
                     f"{value:,.2f}")
    return "\n".join(lines)
