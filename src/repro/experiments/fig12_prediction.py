"""Figure 12: prediction error of Chiron's Predictor vs RFR / LSTM / GNN.

Protocol (mirroring §6.1): for each of five applications and three
execution implementations (native threads, Intel MPK, process pool) we
enumerate candidate wrap deployments, *measure* each one's latency on the
simulated runtime (with run-to-run jitter), and compare four predictors:

* **chiron** — the white-box Predictor fed profiled behaviours (no training);
* **rfr / lstm / gnn** — the from-scratch learned models of
  :mod:`repro.mlkit`, trained on half of the measured deployments and
  evaluated on the other half (the paper's point: with the small sample
  counts realistic for profiling, learned models underfit badly).

Error metric: mean |predicted - measured| / measured, in percent.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.apps import finra, movie_review, slapp, slapp_v, social_network
from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.profiler import Profiler
from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.experiments.common import ExperimentResult, register
from repro.mlkit import (
    GCNRegressor,
    LSTMRegressor,
    RandomForestRegressor,
    graph_features,
    mean_absolute_percentage_error,
)
from repro.mlkit.features import sequence_features, vector_features
from repro.platforms import ChironPlatform
from repro.workflow.model import Workflow

APPS = {
    "sn": social_network,
    "mr": movie_review,
    "finra-5": lambda: finra(5),
    "slapp": slapp,
    "slapp-v": slapp_v,
}

IMPLEMENTATIONS = ("native", "mpk", "pool")


def _cal_for(impl: str) -> RuntimeCalibration:
    if impl == "mpk":
        return RuntimeCalibration.mpk()
    return RuntimeCalibration.native()


def candidate_plans(workflow: Workflow, impl: str,
                    cal: RuntimeCalibration) -> list[DeploymentPlan]:
    """Enumerate deployment candidates (the 'all possible wraps' sweep)."""
    plans: list[DeploymentPlan] = []
    m = workflow.max_parallelism
    if impl == "pool":
        wrap = Wrap(name="wrap-pool", stages=tuple(
            StageAssignment(i, (ProcessAssignment(
                tuple(f.name for f in stage), ExecMode.POOL),))
            for i, stage in enumerate(workflow.stages)))
        for cores in range(1, m + 1):
            plans.append(DeploymentPlan(
                workflow_name=workflow.name, wraps=(wrap,),
                cores={wrap.name: cores}, pool_workers=m))
        return plans
    scheduler = PGPScheduler(LatencyPredictor(cal))
    for n in range(1, m + 1):
        partitions = scheduler._partition_all_stages(workflow, n, set())
        for wraps_cfg in (None, {i: len(p) for i, p in partitions.items()}):
            plan = scheduler._build_plan(workflow, partitions, set(),
                                         wraps_per_stage=wraps_cfg,
                                         slo_ms=None)
            plans.append(plan)
    # deduplicate identical wrap structures
    unique, seen = [], set()
    for plan in plans:
        key = tuple((w.name, tuple((sa.stage_index,
                                    tuple((p.functions, p.mode.value)
                                          for p in sa.processes))
                                   for sa in w.stages)) for w in plan.wraps)
        if key not in seen:
            seen.add(key)
            unique.append(plan)
    return unique


def _measure(plan: DeploymentPlan, workflow: Workflow,
             cal: RuntimeCalibration, repeats: int, base_seed: int) -> float:
    platform = ChironPlatform(plan, cal)
    return platform.average_latency_ms(workflow, repeats=repeats,
                                       base_seed=base_seed)


def _evaluate_app(workflow: Workflow, impl: str, *, repeats: int,
                  epochs: int, seed: int) -> dict[str, float]:
    cal = _cal_for(impl)
    profiler = Profiler(seed=seed)
    profiled = Profiler.profiled_workflow(
        workflow, profiler.profile_workflow(workflow))
    plans = candidate_plans(profiled, impl, cal)
    measured = np.array([_measure(p, workflow, cal, repeats, 500 + 31 * i)
                         for i, p in enumerate(plans)])

    predictor = LatencyPredictor(cal, conservatism=1.0)
    chiron_pred = np.array([predictor.predict_workflow(profiled, p)
                            for p in plans])

    errors = {"chiron": mean_absolute_percentage_error(measured, chiron_pred)}

    # Train/test split for the learned models.  Profiling a production
    # system only yields measurements of the deployments actually tried, so
    # the realistic regime is *extrapolation*: train on the small-process-
    # count half of the sweep, evaluate on the rest ("their lack of
    # diversity in training data ... can limit their applicability", §6.1).
    sizes = np.array([sum(len(sa.processes) for w in p.wraps
                          for sa in w.stages) for p in plans])
    order = np.argsort(sizes, kind="stable")
    cut = max(1, len(plans) // 2)
    train, test = order[:cut], order[cut:]
    if len(test) == 0:
        train, test = order, order
    max_fns = workflow.num_functions

    X_vec = np.stack([vector_features(profiled, p, max_fns) for p in plans])
    rfr = RandomForestRegressor(n_estimators=30, seed=seed)
    rfr.fit(X_vec[train], measured[train])
    errors["rfr"] = mean_absolute_percentage_error(
        measured[test], rfr.predict(X_vec[test]))

    X_seq = np.stack([sequence_features(profiled, p, max_fns) for p in plans])
    lstm = LSTMRegressor(input_dim=X_seq.shape[2], hidden_dim=12,
                         epochs=epochs, seed=seed)
    lstm.fit(X_seq[train], measured[train])
    errors["lstm"] = mean_absolute_percentage_error(
        measured[test], lstm.predict(X_seq[test]))

    graphs = [graph_features(profiled, p) for p in plans]
    gnn = GCNRegressor(input_dim=graphs[0][1].shape[1], hidden_dim=12,
                       epochs=epochs, seed=seed)
    gnn.fit([graphs[i] for i in train], measured[train])
    errors["gnn"] = mean_absolute_percentage_error(
        measured[test], gnn.predict([graphs[i] for i in test]))
    return errors


@register("fig12")
def run(quick: bool = False) -> ExperimentResult:
    repeats = 2 if quick else 5
    epochs = 30 if quick else 150
    apps: Iterable[str] = (("sn", "finra-5") if quick else tuple(APPS))
    impls = (("native",) if quick else IMPLEMENTATIONS)
    result = ExperimentResult(
        experiment="fig12",
        title="Figure 12: latency prediction error (%) by model",
        columns=["app", "impl", "chiron", "rfr", "lstm", "gnn"],
        notes="paper: Chiron averages 6.7% error; learned models are 70-87% "
              "worse on average given scarce training data",
    )
    for app_name in apps:
        wf = APPS[app_name]()
        for impl in impls:
            errors = _evaluate_app(wf, impl, repeats=repeats, epochs=epochs,
                                   seed=42)
            result.add(app=app_name, impl=impl, **errors)
    return result
