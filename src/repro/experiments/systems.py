"""Shared platform builders for the experiment modules."""

from __future__ import annotations

from typing import Optional

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.profiler import Profiler
from repro.platforms import ChironPlatform, FaastlanePlatform, build_platform
from repro.platforms.registry import default_slo_ms
from repro.workflow.model import Workflow

#: a practically-unsatisfiable SLO: PGP then returns its best-latency plan,
#: the "performance-first" configuration used by the motivation experiments
PERFORMANCE_SLO_MS = 1.0


def chiron_performance(workflow: Workflow,
                       cal: Optional[RuntimeCalibration] = None,
                       ) -> ChironPlatform:
    """Latency-optimal Chiron (Figure 6's configuration)."""
    cal = cal or RuntimeCalibration.native()
    profiler = Profiler()
    profiled = Profiler.profiled_workflow(
        workflow, profiler.profile_workflow(workflow))
    plan = PGPScheduler(LatencyPredictor(cal)).schedule(
        profiled, PERFORMANCE_SLO_MS)
    return ChironPlatform(plan, cal)


def paper_slo_ms(workflow: Workflow,
                 cal: Optional[RuntimeCalibration] = None) -> float:
    """The §6.2 convention: Faastlane average + 10 ms."""
    return default_slo_ms(workflow, cal)


def figure13_systems(workflow: Workflow, *,
                     slo_ms: Optional[float] = None) -> dict[str, object]:
    """The nine systems on Figure 13's x-axis, keyed by label."""
    slo = slo_ms if slo_ms is not None else paper_slo_ms(workflow)
    names = ("asf", "openfaas", "sand", "faastlane", "chiron",
             "faastlane-m", "chiron-m", "faastlane-p", "chiron-p")
    return {name: build_platform(name, workflow, slo_ms=slo)
            for name in names}
