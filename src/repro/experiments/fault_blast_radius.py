"""Blast radius under faults: fault rate x deployment model.

The paper's m-to-n axis trades sandbox count against co-location, but never
asks what a wrap costs when something *fails*.  This experiment injects
sandbox crashes (plus the uniform error mechanisms, optionally) at a sweep
of rates and measures, per deployment model:

* reliability-adjusted latency (p50/p99 over seeded requests),
* the wasted-work ratio — function work re-executed by retries divided by
  the workflow's useful work — which exposes retry granularity directly:
  1-to-1 re-runs one function, Chiron one wrap, many-to-1 everything,
* the fraction of requests that exhausted their retry budget.

Everything is deterministic under a fixed fault seed, so rows reproduce
bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.apps.catalog import workload
from repro.errors import RetryExhausted
from repro.experiments.common import ExperimentResult, register
from repro.faults import FaultPlan, RetryPolicy
from repro.platforms.registry import build_platform

#: the deployment-model spectrum: 1-to-1, m-to-n, many-to-1
DEFAULT_PLATFORMS = ("openfaas", "chiron", "faastlane")
DEFAULT_RATES = (0.0, 0.02, 0.05, 0.1)


def measure(app: str, platform_name: str, fault_plan: FaultPlan, *,
            policy: Optional[RetryPolicy] = None, requests: int = 40,
            crash_only: bool = False) -> dict:
    """Run ``requests`` seeded faulted requests of ``app`` on one platform.

    Returns one result row (p50/p99 latency, fault/retry counts, wasted-work
    ratio, failure fraction).  ``crash_only`` strips the plan down to
    sandbox crashes, isolating co-location blast radius from the
    per-mechanism noise of RPC/storage faults.
    """
    wf = workload(app)
    if crash_only:
        fault_plan = FaultPlan(seed=fault_plan.seed,
                               sandbox_crash_rate=fault_plan.sandbox_crash_rate)
    platform = build_platform(platform_name, wf)
    policy = policy or RetryPolicy()
    useful_ms = wf.total_work_ms
    latencies: list[float] = []
    injected = retries = failed = 0
    rerun_ms = wasted_wall_ms = 0.0
    for fault_seed in range(requests):
        try:
            r = platform.run(wf, faults=fault_plan, retry=policy,
                             fault_seed=fault_seed)
        except RetryExhausted:
            failed += 1
            continue
        latencies.append(r.latency_ms)
        if r.faults is not None:
            injected += r.faults["injected_total"]
            retries += r.faults["retries"]
            rerun_ms += r.faults["rerun_work_ms"]
            wasted_wall_ms += r.faults["wasted_wall_ms"]
    lat = np.array(latencies) if latencies else np.array([float("nan")])
    completed = max(len(latencies), 1)
    return {
        "app": app,
        "platform": platform_name,
        "rate": (fault_plan.sandbox_crash_rate if crash_only
                 else fault_plan.rpc_drop_rate),
        "p50_ms": float(np.percentile(lat, 50)),
        "p99_ms": float(np.percentile(lat, 99)),
        "faults": injected,
        "retries": retries,
        "wasted_ratio": rerun_ms / (completed * useful_ms),
        "wasted_wall_ms": wasted_wall_ms,
        "failed": failed,
        "requests": requests,
    }


def sweep(app: str = "finra-5", *,
          rates: Sequence[float] = DEFAULT_RATES,
          platforms: Sequence[str] = DEFAULT_PLATFORMS,
          policy: Optional[RetryPolicy] = None, seed: int = 1,
          requests: int = 40, crash_only: bool = True) -> list[dict]:
    """Fault rate x deployment model grid; the CLI and experiment share it."""
    rows = []
    for rate in rates:
        plan = (FaultPlan(seed=seed, sandbox_crash_rate=rate) if crash_only
                else FaultPlan.uniform(rate, seed=seed))
        for name in platforms:
            rows.append(measure(app, name, plan, policy=policy,
                                requests=requests, crash_only=crash_only))
    return rows


@register("fault-blast")
def run(quick: bool = False) -> ExperimentResult:
    """Sweep fault rate x deployment model on FINRA-5."""
    requests = 12 if quick else 40
    rates = (0.0, 0.05) if quick else DEFAULT_RATES
    result = ExperimentResult(
        experiment="fault-blast",
        title="Blast radius under sandbox crashes: wasted work & tail "
              "latency by deployment model (FINRA-5)",
        columns=("rate", "platform", "p50_ms", "p99_ms", "faults",
                 "retries", "wasted_ratio", "failed"),
        notes="wasted_ratio = re-executed function work / useful work per "
              "completed request; 1-to-1 retries a function, Chiron a wrap, "
              "many-to-1 the whole workflow",
    )
    for row in sweep("finra-5", rates=rates, requests=requests):
        result.add(rate=row["rate"], platform=row["platform"],
                   p50_ms=row["p50_ms"], p99_ms=row["p99_ms"],
                   faults=row["faults"], retries=row["retries"],
                   wasted_ratio=row["wasted_ratio"], failed=row["failed"])
    return result
