"""Figure 13: normalized end-to-end latency, 8 workloads x 9 systems.

Protocol (§6.2): each workflow runs warm at least 10 times; Chiron plans
against SLO = Faastlane average + 10 ms.  Reported: mean latency normalized
by Chiron's (the paper prints Chiron's absolute ms above its bars).
"""

from __future__ import annotations

from repro.apps import ALL_WORKLOADS
from repro.experiments.common import ExperimentResult, register
from repro.experiments.systems import figure13_systems

#: Chiron's absolute latencies printed above Figure 13's bars (ms)
PAPER_CHIRON_MS = {"social-network": 26, "movie-review": 22, "slapp": 56,
                   "slapp-v": 93, "finra-5": 85, "finra-50": 103,
                   "finra-100": 142, "finra-200": 236}

SYSTEMS = ("asf", "openfaas", "sand", "faastlane", "chiron", "faastlane-m",
           "chiron-m", "faastlane-p", "chiron-p")


@register("fig13")
def run(quick: bool = False) -> ExperimentResult:
    repeats = 3 if quick else 10
    workloads = (("social-network", "movie-review", "finra-5") if quick
                 else tuple(ALL_WORKLOADS))
    result = ExperimentResult(
        experiment="fig13",
        title="Figure 13: normalized end-to-end latency (x Chiron's)",
        columns=["workload", "system", "latency_ms", "normalized",
                 "paper_chiron_ms"],
        notes="paper averages: Chiron cuts latency 89.9%/37.5%/32.1%/25.1% "
              "vs ASF/OpenFaaS/SAND/Faastlane",
    )
    for name in workloads:
        wf = ALL_WORKLOADS[name]()
        systems = figure13_systems(wf)
        latencies = {label: platform.average_latency_ms(wf, repeats=repeats)
                     for label, platform in systems.items()}
        chiron_ms = latencies["chiron"]
        for label in SYSTEMS:
            result.add(workload=name, system=label,
                       latency_ms=latencies[label],
                       normalized=latencies[label] / chiron_ms,
                       paper_chiron_ms=PAPER_CHIRON_MS[name])
    return result
