"""Figure 17: normalized allocated CPUs per deployment.

OpenFaaS allocates one CPU per function; Faastlane one per unit of max
parallelism; Chiron the minimum meeting the SLO (paper: 20-94 % CPU saved,
normalized peaks of 16.8-18.3x for OpenFaaS on FINRA-100/200).
"""

from __future__ import annotations

from repro.apps import ALL_WORKLOADS
from repro.experiments.common import ExperimentResult, register
from repro.experiments.systems import figure13_systems

SYSTEMS = ("openfaas", "faastlane", "chiron", "chiron-m", "chiron-p")


@register("fig17")
def run(quick: bool = False) -> ExperimentResult:
    workloads = (("social-network", "finra-50") if quick
                 else tuple(ALL_WORKLOADS))
    result = ExperimentResult(
        experiment="fig17",
        title="Figure 17: normalized CPU allocation",
        columns=["workload", "system", "cores", "normalized"],
        notes="normalized by Chiron; paper: Chiron saves 75%/66%/63% CPU vs "
              "Faastlane native/MPK/pool",
    )
    for name in workloads:
        wf = ALL_WORKLOADS[name]()
        systems = figure13_systems(wf)
        base = max(systems["chiron"].allocated_cores(wf), 1)
        for label in SYSTEMS:
            cores = systems[label].allocated_cores(wf)
            result.add(workload=name, system=label, cores=cores,
                       normalized=cores / base)
    return result
