"""Ablations of the design choices DESIGN.md §5 calls out.

Each ablation disables one PGP/Predictor mechanism and reports the impact:

* ``ablation-kl`` — Kernighan-Lin swaps vs. raw round-robin partitions on
  a heterogeneous fan-out;
* ``ablation-search`` — incremental vs exponential n-search (same plans,
  different scheduling cost);
* ``ablation-packing`` — line-7 head-grouping vs one-process-per-wrap
  initial shapes;
* ``ablation-handoff`` — CFS (min-CPU-time) vs FIFO GIL handoff in the
  predictor, scored against the simulated runtime;
* ``ablation-longest-first`` — Chiron-P's long-function-first dispatch
  (Figure 15's skew mitigation) vs submission order.
"""

from __future__ import annotations

import time

from repro.apps import finra, slapp_v
from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.experiments.common import ExperimentResult, register
from repro.platforms import ChironPlatform
from repro.workflow import FunctionBehavior, WorkflowBuilder

CAL = RuntimeCalibration.native()


def _hetero_workflow(width: int = 12):
    durations = [20.0, 1.0, 16.0, 2.0, 12.0, 1.5, 18.0, 2.5, 8.0, 1.0,
                 14.0, 3.0][:width]
    return (WorkflowBuilder("hetero")
            .parallel("mix", [(f"f-{i}", FunctionBehavior.cpu(d))
                              for i, d in enumerate(durations)])
            .build())


@register("ablation-kl")
def run_kl(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-kl",
        title="Ablation: Kernighan-Lin refinement vs round-robin",
        columns=["slo_ms", "kl_latency_ms", "rr_latency_ms",
                 "kl_cores", "rr_cores"],
        notes="KL should meet tight SLOs with fewer or equal resources",
    )
    wf = _hetero_workflow()
    for slo in (30.0, 40.0, 60.0):
        with_kl = PGPScheduler(LatencyPredictor(CAL)).schedule(wf, slo)
        without = PGPScheduler(
            LatencyPredictor(CAL),
            options=PGPOptions(kernighan_lin=False)).schedule(wf, slo)
        result.add(slo_ms=slo,
                   kl_latency_ms=ChironPlatform(with_kl, CAL).run(wf).latency_ms,
                   rr_latency_ms=ChironPlatform(without, CAL).run(wf).latency_ms,
                   kl_cores=with_kl.total_cores,
                   rr_cores=without.total_cores)
    return result


@register("ablation-search")
def run_search(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-search",
        title="Ablation: incremental vs exponential n-search",
        columns=["workload", "slo_ms", "inc_ms", "exp_ms", "same_cores"],
        notes="exponential probing is the §7 scalability lever; plans "
              "should be equivalent in allocated cores",
    )
    wf = finra(10 if quick else 50)
    for slo_scale in (2.0, 4.0):
        slo = wf.critical_path_ms * slo_scale
        t0 = time.perf_counter()
        inc = PGPScheduler(LatencyPredictor(CAL), options=PGPOptions(
            search="incremental")).schedule(wf, slo)
        inc_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        exp = PGPScheduler(LatencyPredictor(CAL), options=PGPOptions(
            search="exponential")).schedule(wf, slo)
        exp_ms = (time.perf_counter() - t0) * 1e3
        result.add(workload=wf.name, slo_ms=slo, inc_ms=inc_ms,
                   exp_ms=exp_ms,
                   same_cores=inc.total_cores == exp.total_cores)
    return result


@register("ablation-packing")
def run_packing(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-packing",
        title="Ablation: wrap packing (line 7/16) vs one process per wrap",
        columns=["slo_ms", "packed_wraps", "packed_latency_ms",
                 "sparse_wraps", "sparse_latency_ms"],
        notes="packing amortizes RPC; one-per-wrap pays (k-1)*T_INV + RPC",
    )
    wf = finra(12)
    for slo in (150.0, 250.0):
        sched = PGPScheduler(LatencyPredictor(CAL, conservatism=1.08))
        packed = sched.schedule(wf, slo)
        partitions = sched._partition_all_stages(wf, packed.processes_in_stage(1),
                                                 set())
        sparse = sched._build_plan(
            wf, partitions, set(),
            wraps_per_stage={i: len(p) for i, p in partitions.items()},
            slo_ms=slo)
        result.add(slo_ms=slo,
                   packed_wraps=packed.n_wraps,
                   packed_latency_ms=ChironPlatform(packed, CAL).run(wf).latency_ms,
                   sparse_wraps=sparse.n_wraps,
                   sparse_latency_ms=ChironPlatform(sparse, CAL).run(wf).latency_ms)
    return result


@register("ablation-handoff")
def run_handoff(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-handoff",
        title="Ablation: predictor GIL handoff policy (CFS vs FIFO)",
        columns=["workload", "measured_ms", "cfs_pred_ms", "fifo_pred_ms",
                 "cfs_err_pct", "fifo_err_pct"],
        notes="the runtime hands the GIL to the min-CPU-time waiter, so the "
              "CFS predictor should track it at least as well",
    )
    for wf in (_hetero_workflow(8), slapp_v()):
        sched = PGPScheduler(LatencyPredictor(CAL))
        plan = sched.schedule(wf, wf.total_work_ms * 2)
        measured = ChironPlatform(plan, CAL).average_latency_ms(
            wf, repeats=3 if quick else 8)
        cfs = LatencyPredictor(CAL, gil_handoff="cfs").predict_workflow(wf, plan)
        fifo = LatencyPredictor(CAL, gil_handoff="fifo").predict_workflow(wf, plan)
        result.add(workload=wf.name, measured_ms=measured,
                   cfs_pred_ms=cfs, fifo_pred_ms=fifo,
                   cfs_err_pct=100 * abs(cfs - measured) / measured,
                   fifo_err_pct=100 * abs(fifo - measured) / measured)
    return result


@register("ablation-longest-first")
def run_longest_first(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-longest-first",
        title="Ablation: Chiron-P longest-first pool dispatch",
        columns=["workload", "longest_first_ms", "fifo_ms"],
        notes="starting long-running functions first mitigates skew "
              "(Figure 15 discussion)",
    )
    for wf in (_hetero_workflow(12), slapp_v()):
        sched = PGPScheduler(LatencyPredictor(CAL))
        plan = sched.schedule_pool(wf, wf.total_work_ms)
        lf = ChironPlatform(plan, CAL, longest_first=True).run(wf).latency_ms
        ff = ChironPlatform(plan, CAL, longest_first=False).run(wf).latency_ms
        result.add(workload=wf.name, longest_first_ms=lf, fifo_ms=ff)
    return result
