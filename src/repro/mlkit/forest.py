"""Bagged random forests over the CART trees."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ReproError
from repro.mlkit.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees with feature subsampling.

    Mirrors scikit-learn's defaults in spirit: ``n_estimators`` trees, each
    trained on a bootstrap resample with ``sqrt(d)``-ish feature windows,
    predictions averaged.
    """

    def __init__(self, *, n_estimators: int = 50, max_depth: int = 8,
                 min_samples_split: int = 2, seed: int = 0) -> None:
        if n_estimators < 1:
            raise ReproError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.seed = seed
        self._trees: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) == 0:
            raise ReproError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        max_features = max(1, int(np.ceil(np.sqrt(d))))
        self._trees = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)  # bootstrap resample
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(0, 2 ** 31)))
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise ReproError("predict() before fit()")
        return np.mean([t.predict(X) for t in self._trees], axis=0)
