"""Feature extraction for the learned baselines (Figure 12).

The paper feeds the models each function's solo-run latency plus a battery
of system counters (cache MPKIs, IPC, utilizations...) recommended by
Gsight.  On the simulated substrate the observable per-function quantities
are the behavioural ones; we expose them per deployed process/function and
synthesize counter-like correlates (CPU fraction, segment counts) so the
models see a comparable feature width.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.wrap import DeploymentPlan, ExecMode
from repro.workflow.model import Workflow

#: per-function feature vector width (see _function_features)
FUNCTION_FEATURE_DIM = 8


def _function_features(workflow: Workflow, name: str,
                       mode_code: float) -> np.ndarray:
    b = workflow.function(name).behavior
    solo = b.solo_ms
    return np.array([
        solo,
        b.cpu_ms,
        b.io_ms,
        b.cpu_ms / max(solo, 1e-9),      # CPU fraction (a utilization proxy)
        float(len(b)),                   # segment count (syscall activity)
        b.data_out_mb,
        b.memory_mb,
        mode_code,                       # 0 thread / 1 process / 2 pool
    ])


_MODE_CODE = {ExecMode.THREAD: 0.0, ExecMode.PROCESS: 1.0, ExecMode.POOL: 2.0}


def vector_features(workflow: Workflow, plan: DeploymentPlan,
                    max_functions: int) -> np.ndarray:
    """A fixed-width flat vector: per-function features (padded) plus
    deployment summary — the RFR/LSTM input."""
    rows = []
    for wrap in plan.wraps:
        for sa in wrap.stages:
            for proc in sa.processes:
                for fname in proc.functions:
                    rows.append(_function_features(
                        workflow, fname, _MODE_CODE[proc.mode]))
    rows.sort(key=lambda r: -r[0])  # deterministic ordering by solo latency
    while len(rows) < max_functions:
        rows.append(np.zeros(FUNCTION_FEATURE_DIM))
    mat = np.stack(rows[:max_functions])
    summary = np.array([
        plan.n_wraps,
        plan.total_cores,
        sum(len(sa.processes) for w in plan.wraps for sa in w.stages),
        float(plan.pool_workers),
        len(workflow.stages),
        workflow.max_parallelism,
    ])
    return np.concatenate([mat.ravel(), summary])


def sequence_features(workflow: Workflow, plan: DeploymentPlan,
                      max_functions: int) -> np.ndarray:
    """(T, D) per-function sequence for the LSTM (same rows as above)."""
    flat = vector_features(workflow, plan, max_functions)
    per_fn = flat[:max_functions * FUNCTION_FEATURE_DIM].reshape(
        max_functions, FUNCTION_FEATURE_DIM)
    return per_fn


def graph_features(workflow: Workflow, plan: DeploymentPlan
                   ) -> tuple[np.ndarray, np.ndarray]:
    """(adjacency, node features) for the GCN.

    Node hierarchy mirrors the paper: one workflow node, one node per
    stage, per process group, and per function; edges follow containment
    (workflow-stage, stage-process, process-function).
    """
    nodes: list[np.ndarray] = []
    edges: list[tuple[int, int]] = []

    def add(vec: np.ndarray) -> int:
        nodes.append(vec)
        return len(nodes) - 1

    wf_node = add(np.array([0.0] * FUNCTION_FEATURE_DIM))
    stage_nodes: Dict[int, int] = {}
    for i, _stage in enumerate(workflow.stages):
        stage_nodes[i] = add(np.array(
            [0.0, 0.0, 0.0, 0.0, float(i), 0.0, 0.0, 3.0]))
        edges.append((wf_node, stage_nodes[i]))
    for wrap in plan.wraps:
        for sa in wrap.stages:
            for proc in sa.processes:
                p_node = add(np.array(
                    [0.0, 0.0, 0.0, 0.0, float(len(proc.functions)),
                     0.0, 0.0, 4.0 + _MODE_CODE[proc.mode]]))
                edges.append((stage_nodes[sa.stage_index], p_node))
                for fname in proc.functions:
                    f_node = add(_function_features(
                        workflow, fname, _MODE_CODE[proc.mode]))
                    edges.append((p_node, f_node))
    n = len(nodes)
    adj = np.zeros((n, n))
    for a, b in edges:
        adj[a, b] = adj[b, a] = 1.0
    return adj, np.stack(nodes)
