"""CART regression trees (variance-reduction splitting)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ReproError


@dataclass
class _Node:
    # leaf
    value: float = 0.0
    # split
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """A CART regressor: greedy best-split on squared-error reduction."""

    def __init__(self, *, max_depth: int = 8, min_samples_split: int = 2,
                 max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if max_depth < 1 or min_samples_split < 2:
            raise ReproError("invalid tree hyper-parameters")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._root: Optional[_Node] = None

    # -- training ----------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y):
            raise ReproError(f"bad training shapes {X.shape} / {y.shape}")
        if len(X) == 0:
            raise ReproError("cannot fit on an empty dataset")
        self._root = self._build(X, y, depth=0)
        return self

    def _best_split(self, X: np.ndarray, y: np.ndarray
                    ) -> Optional[tuple[int, float, float]]:
        n, d = X.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features,
                                        replace=False)
        base = y.var() * n
        best: Optional[tuple[int, float, float]] = None  # (gain, feat, thr)
        for feat in features:
            order = np.argsort(X[:, feat], kind="stable")
            xs, ys = X[order, feat], y[order]
            # prefix sums for O(n) split evaluation
            csum = np.cumsum(ys)
            csq = np.cumsum(ys ** 2)
            total, total_sq = csum[-1], csq[-1]
            for i in range(1, n):
                if xs[i] == xs[i - 1]:
                    continue
                nl, nr = i, n - i
                sl, sr = csum[i - 1], total - csum[i - 1]
                ql, qr = csq[i - 1], total_sq - csq[i - 1]
                sse = (ql - sl ** 2 / nl) + (qr - sr ** 2 / nr)
                gain = base - sse
                if best is None or gain > best[0]:
                    best = (gain, feat, (xs[i] + xs[i - 1]) / 2.0)
        if best is None or best[0] <= 1e-12:
            return None
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or np.allclose(y, y[0])):
            return _Node(value=float(y.mean()))
        split = self._best_split(X, y)
        if split is None:
            return _Node(value=float(y.mean()))
        _, feat, thr = split
        mask = X[:, feat] <= thr
        return _Node(feature=int(feat), threshold=float(thr),
                     left=self._build(X[mask], y[mask], depth + 1),
                     right=self._build(X[~mask], y[~mask], depth + 1))

    # -- inference ------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise ReproError("predict() before fit()")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold \
                    else node.right
            out[i] = node.value
        return out
