"""A two-layer graph convolution network regressor (NumPy, exact grads).

Mirrors the paper's GNN baseline: node features (functions, processes,
stages, workflow — see :func:`repro.mlkit.features.graph_features`), a
normalized adjacency, two GCN layers with ReLU, mean pooling, and a linear
head predicting end-to-end latency.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError
from repro.mlkit.optim import Adam


def normalize_adjacency(adj: np.ndarray) -> np.ndarray:
    """Symmetric GCN normalization:  D^-1/2 (A + I) D^-1/2."""
    adj = np.asarray(adj, dtype=float)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ReproError(f"adjacency must be square, got {adj.shape}")
    a_hat = adj + np.eye(len(adj))
    deg = a_hat.sum(axis=1)
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    return a_hat * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


class GCNRegressor:
    """GCN(2 layers) -> mean pool -> linear, trained with Adam on MSE."""

    def __init__(self, *, input_dim: int, hidden_dim: int = 16,
                 lr: float = 0.01, epochs: int = 200, seed: int = 0) -> None:
        if input_dim < 1 or hidden_dim < 1 or epochs < 1:
            raise ReproError("invalid GCN hyper-parameters")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.lr = lr
        self.epochs = epochs
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / input_dim)
        scale2 = np.sqrt(2.0 / hidden_dim)
        self.params: Dict[str, np.ndarray] = {
            "W1": rng.normal(0, scale1, size=(input_dim, hidden_dim)),
            "W2": rng.normal(0, scale2, size=(hidden_dim, hidden_dim)),
            "w_out": rng.normal(0, scale2, size=hidden_dim),
            "b_out": np.zeros(1),
        }
        self._x_mu: Optional[np.ndarray] = None
        self._x_sd: Optional[np.ndarray] = None
        self._y_mu = 0.0
        self._y_sd = 1.0

    # -- forward/backward -------------------------------------------------
    def _forward(self, a_hat: np.ndarray, x: np.ndarray):
        z1 = a_hat @ x @ self.params["W1"]
        h1 = np.maximum(z1, 0.0)
        h2 = a_hat @ h1 @ self.params["W2"]
        pooled = h2.mean(axis=0)
        y = float(pooled @ self.params["w_out"] + self.params["b_out"][0])
        return y, (a_hat, x, z1, h1, h2, pooled)

    def _backward(self, dy: float, cache) -> Dict[str, np.ndarray]:
        a_hat, x, z1, h1, h2, pooled = cache
        n = len(x)
        grads: Dict[str, np.ndarray] = {}
        grads["w_out"] = dy * pooled
        grads["b_out"] = np.array([dy])
        dpooled = dy * self.params["w_out"]
        dh2 = np.tile(dpooled / n, (n, 1))
        # h2 = a_hat @ h1 @ W2
        ah1 = a_hat @ h1
        grads["W2"] = ah1.T @ dh2
        dah1 = dh2 @ self.params["W2"].T
        dh1 = a_hat.T @ dah1
        dz1 = dh1 * (z1 > 0)
        ax = a_hat @ x
        grads["W1"] = ax.T @ dz1
        return grads

    # -- public API ------------------------------------------------------------
    def fit(self, graphs: list[tuple[np.ndarray, np.ndarray]],
            y: np.ndarray) -> "GCNRegressor":
        """``graphs`` is a list of (adjacency, node-feature-matrix)."""
        if not graphs or len(graphs) != len(y):
            raise ReproError("bad training data")
        y = np.asarray(y, dtype=float)
        feats = np.concatenate([x for _a, x in graphs], axis=0)
        if feats.shape[1] != self.input_dim:
            raise ReproError(f"input_dim mismatch: {feats.shape[1]} != "
                             f"{self.input_dim}")
        self._x_mu = feats.mean(axis=0)
        self._x_sd = feats.std(axis=0) + 1e-9
        self._y_mu = float(y.mean())
        self._y_sd = float(y.std()) + 1e-9
        prepared = [(normalize_adjacency(a), (x - self._x_mu) / self._x_sd)
                    for a, x in graphs]
        yn = (y - self._y_mu) / self._y_sd
        opt = Adam(self.params, lr=self.lr)
        for _epoch in range(self.epochs):
            for (a_hat, xn), yi in zip(prepared, yn):
                pred, cache = self._forward(a_hat, xn)
                grads = self._backward(2.0 * (pred - yi), cache)
                opt.step(grads)
        return self

    def predict(self, graphs: list[tuple[np.ndarray, np.ndarray]]
                ) -> np.ndarray:
        if self._x_mu is None:
            raise ReproError("predict() before fit()")
        out = []
        for a, x in graphs:
            a_hat = normalize_adjacency(a)
            xn = (np.asarray(x, dtype=float) - self._x_mu) / self._x_sd
            out.append(self._forward(a_hat, xn)[0])
        return np.asarray(out) * self._y_sd + self._y_mu

    # exposed for gradient-check tests
    def loss_and_grads(self, adj: np.ndarray, x: np.ndarray, target: float):
        a_hat = normalize_adjacency(adj)
        pred, cache = self._forward(a_hat, np.asarray(x, dtype=float))
        loss = (pred - target) ** 2
        grads = self._backward(2.0 * (pred - target), cache)
        return loss, grads
