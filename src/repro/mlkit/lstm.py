"""A single-layer LSTM regressor with exact BPTT gradients (NumPy).

Mirrors the paper's PyTorch LSTM baseline: the per-function feature list is
fed as a sequence; the final hidden state is projected to one latency value;
training minimizes MSE with Adam (the paper tuned lr = 0.01, batch 1).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError
from repro.mlkit.optim import Adam


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


class LSTMRegressor:
    """Sequence-in, scalar-out LSTM trained by full BPTT."""

    def __init__(self, *, input_dim: int, hidden_dim: int = 16,
                 lr: float = 0.01, epochs: int = 200, seed: int = 0) -> None:
        if input_dim < 1 or hidden_dim < 1 or epochs < 1:
            raise ReproError("invalid LSTM hyper-parameters")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.lr = lr
        self.epochs = epochs
        rng = np.random.default_rng(seed)
        d, h = input_dim, hidden_dim
        scale = 1.0 / np.sqrt(h)
        # gates stacked [i, f, g, o] along the second axis (4h columns)
        self.params: Dict[str, np.ndarray] = {
            "Wx": rng.normal(0, scale, size=(d, 4 * h)),
            "Wh": rng.normal(0, scale, size=(h, 4 * h)),
            "b": np.zeros(4 * h),
            "w_out": rng.normal(0, scale, size=h),
            "b_out": np.zeros(1),
        }
        #: normalization constants fitted on the training targets/features
        self._x_mu: Optional[np.ndarray] = None
        self._x_sd: Optional[np.ndarray] = None
        self._y_mu = 0.0
        self._y_sd = 1.0

    # -- forward -----------------------------------------------------------
    def _forward(self, x: np.ndarray):
        """x: (T, d) -> prediction + cached intermediates for backprop."""
        T, d = x.shape
        h_dim = self.hidden_dim
        Wx, Wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]
        hs = np.zeros((T + 1, h_dim))
        cs = np.zeros((T + 1, h_dim))
        gates = np.zeros((T, 4 * h_dim))
        for t in range(T):
            z = x[t] @ Wx + hs[t] @ Wh + b
            i = _sigmoid(z[:h_dim])
            f = _sigmoid(z[h_dim:2 * h_dim])
            g = np.tanh(z[2 * h_dim:3 * h_dim])
            o = _sigmoid(z[3 * h_dim:])
            cs[t + 1] = f * cs[t] + i * g
            hs[t + 1] = o * np.tanh(cs[t + 1])
            gates[t] = np.concatenate([i, f, g, o])
        y = float(hs[T] @ self.params["w_out"] + self.params["b_out"][0])
        return y, (x, hs, cs, gates)

    # -- backward -----------------------------------------------------------
    def _backward(self, dy: float, cache) -> Dict[str, np.ndarray]:
        x, hs, cs, gates = cache
        T = len(x)
        h_dim = self.hidden_dim
        Wx, Wh = self.params["Wx"], self.params["Wh"]
        grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        grads["w_out"] = dy * hs[T]
        grads["b_out"] = np.array([dy])
        dh = dy * self.params["w_out"]
        dc = np.zeros(h_dim)
        for t in reversed(range(T)):
            i = gates[t, :h_dim]
            f = gates[t, h_dim:2 * h_dim]
            g = gates[t, 2 * h_dim:3 * h_dim]
            o = gates[t, 3 * h_dim:]
            tanh_c = np.tanh(cs[t + 1])
            do = dh * tanh_c
            dc = dc + dh * o * (1 - tanh_c ** 2)
            di = dc * g
            df = dc * cs[t]
            dg = dc * i
            dz = np.concatenate([
                di * i * (1 - i),
                df * f * (1 - f),
                dg * (1 - g ** 2),
                do * o * (1 - o),
            ])
            grads["Wx"] += np.outer(x[t], dz)
            grads["Wh"] += np.outer(hs[t], dz)
            grads["b"] += dz
            dh = dz @ Wh.T
            dc = dc * f
        return grads

    # -- public API ------------------------------------------------------------
    @staticmethod
    def _as_sequences(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 2:
            # (N, T) scalars per step -> (N, T, 1)
            X = X[:, :, None]
        if X.ndim != 3:
            raise ReproError(f"expected (N,T) or (N,T,D) input, got {X.shape}")
        return X

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LSTMRegressor":
        X = self._as_sequences(X)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y) or len(X) == 0:
            raise ReproError("bad training shapes")
        if X.shape[2] != self.input_dim:
            raise ReproError(f"input_dim mismatch: {X.shape[2]} != "
                             f"{self.input_dim}")
        self._x_mu = X.mean(axis=(0, 1))
        self._x_sd = X.std(axis=(0, 1)) + 1e-9
        self._y_mu = float(y.mean())
        self._y_sd = float(y.std()) + 1e-9
        Xn = (X - self._x_mu) / self._x_sd
        yn = (y - self._y_mu) / self._y_sd
        opt = Adam(self.params, lr=self.lr)
        for _epoch in range(self.epochs):
            for xi, yi in zip(Xn, yn):           # batch size 1, as tuned
                pred, cache = self._forward(xi)
                grads = self._backward(2.0 * (pred - yi), cache)
                opt.step(grads)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._x_mu is None:
            raise ReproError("predict() before fit()")
        X = self._as_sequences(X)
        Xn = (X - self._x_mu) / self._x_sd
        out = np.array([self._forward(xi)[0] for xi in Xn])
        return out * self._y_sd + self._y_mu

    # exposed for gradient-check tests
    def loss_and_grads(self, x: np.ndarray, target: float):
        pred, cache = self._forward(np.asarray(x, dtype=float))
        loss = (pred - target) ** 2
        grads = self._backward(2.0 * (pred - target), cache)
        return loss, grads
