"""From-scratch ML predictors for the Figure 12 comparison.

The paper compares its white-box Predictor with Random Forest Regression
(scikit-learn), an LSTM and a GNN (PyTorch).  None of those libraries is
available offline, so this package implements small, faithful NumPy versions:

* :class:`DecisionTreeRegressor` / :class:`RandomForestRegressor` — CART
  with variance-reduction splits, bagged with feature subsampling;
* :class:`LSTMRegressor` — a single-layer LSTM with full BPTT training;
* :class:`GCNRegressor` — a two-layer graph convolution network with mean
  pooling, hand-derived gradients;
* :mod:`~repro.mlkit.features` — turns (workflow, plan, measurement) tuples
  into the feature vectors / graphs the models consume.

All models are exact-gradient (verified by numerical grad-checks in the
test suite) and deterministic given a seed.
"""

from repro.mlkit.features import graph_features, vector_features
from repro.mlkit.forest import RandomForestRegressor
from repro.mlkit.gnn import GCNRegressor
from repro.mlkit.lstm import LSTMRegressor
from repro.mlkit.metrics import mean_absolute_percentage_error
from repro.mlkit.tree import DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "GCNRegressor",
    "LSTMRegressor",
    "RandomForestRegressor",
    "graph_features",
    "mean_absolute_percentage_error",
    "vector_features",
]
