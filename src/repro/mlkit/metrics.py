"""Error metrics for the prediction comparison (Figure 12)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError


def mean_absolute_percentage_error(y_true: Sequence[float],
                                   y_pred: Sequence[float]) -> float:
    """The paper's prediction error: mean |(P̂ - P) / P| in percent."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.shape != yp.shape or yt.size == 0:
        raise ReproError("bad inputs to MAPE")
    if np.any(yt <= 0):
        raise ReproError("true latencies must be positive")
    return float(np.mean(np.abs((yp - yt) / yt)) * 100.0)


def absolute_percentage_errors(y_true: Sequence[float],
                               y_pred: Sequence[float]) -> np.ndarray:
    """Per-sample |(P̂ - P) / P| in percent (Figure 12's distributions)."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.shape != yp.shape or yt.size == 0:
        raise ReproError("bad inputs")
    if np.any(yt <= 0):
        raise ReproError("true latencies must be positive")
    return np.abs((yp - yt) / yt) * 100.0
