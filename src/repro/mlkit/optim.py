"""A minimal Adam optimizer for the NumPy neural models."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ReproError


class Adam:
    """Adam over a dict of named parameter arrays (updated in place)."""

    def __init__(self, params: Dict[str, np.ndarray], *, lr: float = 0.01,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ReproError(f"learning rate must be > 0, got {lr}")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = {k: np.zeros_like(v) for k, v in params.items()}
        self._v = {k: np.zeros_like(v) for k, v in params.items()}
        self._t = 0

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        self._t += 1
        for key, grad in grads.items():
            if key not in self.params:
                raise ReproError(f"gradient for unknown parameter {key!r}")
            m = self._m[key] = self.beta1 * self._m[key] + (1 - self.beta1) * grad
            v = self._v[key] = (self.beta2 * self._v[key]
                                + (1 - self.beta2) * grad ** 2)
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            self.params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
