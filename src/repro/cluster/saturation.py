"""Measured saturation throughput of one node (Figure 16, cross-checked).

Binary-search the offered Poisson rate for the largest one where queueing
stays bounded (sojourn within ``max_queueing_ratio`` of pure service time).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.deployment import place_on_node
from repro.cluster.loadgen import run_open_loop
from repro.errors import CapacityError
from repro.overload.admission import AdmissionPolicy
from repro.platforms.base import Platform
from repro.workflow.model import Workflow


def find_saturation_rps(platform: Platform, workflow: Workflow, *,
                        max_queueing_ratio: float = 2.0,
                        requests: int = 150, seed: int = 0,
                        tolerance: float = 0.05,
                        admission: Optional[AdmissionPolicy] = None,
                        deadline_ms: Optional[float] = None) -> float:
    """Largest sustainable Poisson rate on one max-packed node.

    ``admission``/``deadline_ms`` are forwarded to the underlying open-loop
    tests, so the knee can be measured with the overload plane armed (shed
    requests never queue, which keeps the queueing ratio honest).
    """
    if max_queueing_ratio <= 1.0:
        raise CapacityError("max_queueing_ratio must exceed 1")
    deployment = place_on_node(platform, workflow)
    instances = max(deployment.count, 1)
    service_ms = platform.run(workflow).latency_ms
    # theoretical ceiling: all instances busy back to back
    hi = instances * 1000.0 / service_ms * 1.5
    lo = hi / 64.0

    def stable(rps: float) -> bool:
        result = run_open_loop(platform, workflow, instances=instances,
                               rps=rps, requests=requests, seed=seed,
                               admission=admission, deadline_ms=deadline_ms)
        return result.queueing_ratio <= max_queueing_ratio

    try:
        if not stable(lo):
            return lo
        while hi - lo > tolerance * hi:
            mid = (lo + hi) / 2.0
            if stable(mid):
                lo = mid
            else:
                hi = mid
        # Finite-horizon caveat: with a few hundred requests the queue of a
        # slightly-overloaded system may not blow up within the test, so the
        # returned rate can exceed the steady-state capacity by O(10%).
        return lo
    finally:
        deployment.teardown()
