"""Placing deployment instances onto cluster nodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CapacityError
from repro.platforms.base import Platform
from repro.runtime.machine import Allocation, Cluster, Machine
from repro.runtime.memory import sandbox_memory_mb
from repro.workflow.model import Workflow


@dataclass
class DeploymentInstance:
    """One complete copy of a workflow deployment (all its sandboxes)."""

    index: int
    allocations: list[Allocation] = field(default_factory=list)

    def release(self) -> None:
        for allocation in self.allocations:
            allocation.release()


@dataclass
class ClusterDeployment:
    """All instances of one platform's deployment placed on a cluster."""

    platform: Platform
    workflow: Workflow
    cluster: Cluster
    instances: list[DeploymentInstance] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.instances)

    def scale_to(self, replicas: int) -> "ClusterDeployment":
        """Add instances until ``replicas`` exist (raises when full)."""
        while self.count < replicas:
            self.instances.append(self._place_one(self.count))
        while self.count > replicas:
            self.instances.pop().release()
        return self

    def scale_max(self) -> "ClusterDeployment":
        """Place instances until the cluster refuses another one."""
        footprints = self.platform.footprints(self.workflow)
        cores = self.platform.per_sandbox_cores(self.workflow)
        if not footprints or (sum(cores) <= 0 and all(
                sandbox_memory_mb(fp, self.platform.cal) <= 0
                for fp in footprints)):
            # a zero-footprint instance would place forever: the cluster
            # never refuses something that costs nothing
            raise CapacityError(
                f"{self.platform.name}/{self.workflow.name}: cannot "
                f"scale_max a deployment with no CPU or memory footprint")
        while True:
            try:
                self.instances.append(self._place_one(self.count))
            except CapacityError:
                return self

    def _place_one(self, index: int) -> DeploymentInstance:
        """Place every sandbox of one instance (all-or-nothing)."""
        cal = self.platform.cal
        footprints = self.platform.footprints(self.workflow)
        cores = self.platform.per_sandbox_cores(self.workflow)
        if len(cores) != len(footprints):
            raise CapacityError(
                f"{self.platform.name}: {len(cores)} cpusets for "
                f"{len(footprints)} sandboxes")
        instance = DeploymentInstance(index=index)
        try:
            owner = f"{self.platform.name}/{self.workflow.name}"
            for fp, core in zip(footprints, cores):
                memory = sandbox_memory_mb(fp, cal)
                instance.allocations.append(
                    self.cluster.place(core, memory, owner=owner))
        except CapacityError:
            instance.release()
            raise
        return instance

    def teardown(self) -> None:
        self.scale_to(0)


def place_on_node(platform: Platform, workflow: Workflow,
                  node: Optional[Machine] = None) -> ClusterDeployment:
    """Max-pack one node with instances of a deployment (Figure 16 setup)."""
    cluster = Cluster(nodes=1) if node is None else _single(node)
    return ClusterDeployment(platform, workflow, cluster).scale_max()


def _single(node: Machine) -> Cluster:
    return Cluster.of([node])
