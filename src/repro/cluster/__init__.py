"""Cluster-level deployment and load testing.

The paper's Figure 16 derives maximum throughput from a capacity argument
(instances that fit a node × per-instance service rate).  This package
*measures* it instead:

* :mod:`~repro.cluster.deployment` places a platform's sandbox footprints
  onto :class:`~repro.runtime.machine.Machine`/:class:`Cluster` nodes
  (first-fit, whole-CPU allocations, Table 2 node shapes);
* :mod:`~repro.cluster.loadgen` replays open-loop (Poisson) or closed-loop
  request streams against the placed instances — per-request service times
  are drawn from the request-level simulator, so queueing delay and
  saturation emerge rather than being assumed;
* :mod:`~repro.cluster.saturation` searches for the maximum arrival rate a
  node sustains with bounded queueing — the measured counterpart of
  :func:`repro.metrics.throughput.max_throughput_rps`.
"""

from repro.cluster.autoscale import (
    AutoscaleResult,
    AutoscalerConfig,
    LifecycleConfig,
    run_autoscaled,
)
from repro.cluster.deployment import ClusterDeployment, place_on_node
from repro.cluster.fleetsim import (
    FleetResult,
    FleetScenario,
    default_scenario,
    fifo_completion_times,
    simulate_des,
    simulate_vectorized,
    verify_identity,
)
from repro.cluster.loadgen import LoadResult, run_closed_loop, run_open_loop
from repro.cluster.saturation import find_saturation_rps
from repro.cluster.traces import (
    burst_arrivals,
    constant_arrivals,
    diurnal_arrivals,
    interarrival_stats,
    nonhomogeneous_poisson,
)

__all__ = [
    "AutoscaleResult",
    "AutoscalerConfig",
    "ClusterDeployment",
    "FleetResult",
    "FleetScenario",
    "LifecycleConfig",
    "LoadResult",
    "burst_arrivals",
    "default_scenario",
    "fifo_completion_times",
    "simulate_des",
    "simulate_vectorized",
    "verify_identity",
    "constant_arrivals",
    "diurnal_arrivals",
    "find_saturation_rps",
    "interarrival_stats",
    "nonhomogeneous_poisson",
    "place_on_node",
    "run_autoscaled",
    "run_closed_loop",
    "run_open_loop",
]
