"""Fleet-scale FIFO queueing simulation: DES driver + vectorized twin.

The kernel benchmark's workload: a Poisson request stream against ``c``
parallel servers with service times drawn from a calibrated pool.  Two
independent implementations compute it:

* :func:`simulate_des` drives the discrete-event kernel — one process per
  request, a FIFO :class:`~repro.simcore.Resource`, real timeout events.
  Runs on either scheduler (``queue="heap"`` / ``queue="calendar"``), so it
  is the old-vs-new kernel comparison vehicle.
* :func:`simulate_vectorized` replays the same system as three numpy
  passes — cumulative-sum arrivals, a c-server heap recursion for start
  times, and vectorized sojourn reductions.

Both consume the *same* RNG draws (:func:`scenario_draws`) and perform the
same float operations in the same order, so their results are bit-identical
— not approximately equal — for every scenario (``verify_identity`` checks,
and tests pin it).  The float-op argument:

* arrival times: the DES accumulates ``env.now + gap`` sequentially;
  ``np.cumsum`` performs the identical running sum.
* start times: a FIFO grant happens either at arrival (server free) or at
  the earliest completion among busy servers — exactly
  ``max(arrival, heappop(free))`` with the same operand bits.
* completions: the DES schedules ``grant + service`` through one timeout;
  the recursion computes the same sum.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.errors import CapacityError, ReproError
from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.simcore import Environment, Resource

#: default service-time pool (ms): FINRA-like request latencies spanning a
#: short-cache hit to a heavy fan-out request (values are representative,
#: the benchmark only needs a fixed non-degenerate distribution)
DEFAULT_SERVICE_POOL_MS = (42.0, 55.0, 61.5, 78.25, 90.0, 104.5,
                           131.0, 156.5, 188.25, 240.0)


@dataclass(frozen=True)
class FleetScenario:
    """One fleet-scale load-test configuration."""

    servers: int
    rps: float
    requests: int
    seed: int = 0
    service_pool_ms: tuple[float, ...] = DEFAULT_SERVICE_POOL_MS

    def __post_init__(self) -> None:
        if self.servers < 1 or self.rps <= 0 or self.requests < 1:
            raise CapacityError(
                "servers, rps and requests must be positive")
        if not self.service_pool_ms:
            raise CapacityError("service pool must be non-empty")


def default_scenario(*, requests: int = 20_000, servers: int = 12,
                     rps: float = 95.0, seed: int = 0) -> FleetScenario:
    """The benchmark's fleet-scale scenario: ~80% utilized, deep bursts."""
    return FleetScenario(servers=servers, rps=rps, requests=requests,
                         seed=seed)


def scenario_draws(scenario: FleetScenario
                   ) -> tuple[np.ndarray, np.ndarray]:
    """The scenario's (interarrival gaps, service times), both in ms.

    One batched draw per stream; batched ``Generator`` draws consume the
    bit-stream exactly like scalar draws, so the DES and the vectorized
    simulator can share these arrays without changing either's results.
    """
    gaps = np.random.default_rng(scenario.seed + 1).exponential(
        1000.0 / scenario.rps, size=scenario.requests)
    services = np.random.default_rng(scenario.seed).choice(
        np.asarray(scenario.service_pool_ms, dtype=float),
        size=scenario.requests)
    return gaps, services


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet simulation (both implementations emit this)."""

    completed: int
    duration_ms: float
    sojourn: LatencySummary
    service: LatencySummary
    #: events the kernel dispatched; 0 for the vectorized simulator, which
    #: has no events at all
    events_processed: int = 0

    def quality_fields(self) -> dict:
        """The comparison surface: everything except event accounting."""
        return {
            "completed": self.completed,
            "duration_ms": self.duration_ms,
            "sojourn_mean_ms": self.sojourn.mean_ms,
            "sojourn_p50_ms": self.sojourn.p50_ms,
            "sojourn_p90_ms": self.sojourn.p90_ms,
            "sojourn_p99_ms": self.sojourn.p99_ms,
            "sojourn_max_ms": self.sojourn.max_ms,
            "service_mean_ms": self.service.mean_ms,
        }


def verify_identity(a: FleetResult, b: FleetResult, *,
                    what: str = "fleet results") -> None:
    """Raise :class:`ReproError` unless quality fields are bit-identical."""
    fa, fb = a.quality_fields(), b.quality_fields()
    diffs = [f"{k}: {fa[k]!r} != {fb[k]!r}"
             for k in fa if fa[k] != fb[k]]
    if diffs:
        raise ReproError(
            f"{what} diverged on {len(diffs)} field(s): " + "; ".join(diffs))


def simulate_des(scenario: FleetScenario, *,
                 queue: Optional[str] = None) -> FleetResult:
    """Drive the scenario through the discrete-event kernel.

    ``queue`` selects the scheduler ("calendar" default, "heap" legacy) —
    the benchmark's old-vs-new axis.
    """
    gaps, services = scenario_draws(scenario)
    env = Environment(queue=queue)
    servers = Resource(env, capacity=scenario.servers)
    # indexed by request, not appended in completion order: reductions like
    # np.mean are evaluation-order sensitive in the last bit, so both
    # simulators must reduce the same permutation
    sojourns = np.empty(scenario.requests, dtype=float)
    done = 0

    def request(env: Environment, index: int
                ) -> Generator[object, None, None]:
        nonlocal done
        arrived = env.now
        with servers.request() as slot:
            yield slot
            yield env.timeout(float(services[index]))
        sojourns[index] = env.now - arrived
        done += 1

    def arrivals(env: Environment) -> Generator[object, None, None]:
        process = env.process
        timeout = env.timeout
        for i in range(scenario.requests):
            yield timeout(float(gaps[i]))
            process(request(env, i))

    env.process(arrivals(env))
    env.run()
    if done != scenario.requests:
        raise ReproError(f"DES completed {done}/{scenario.requests} requests")
    return FleetResult(
        completed=done,
        duration_ms=env.now,
        sojourn=summarize_latencies(sojourns),
        service=summarize_latencies(services),
        events_processed=env.events_processed)


def fifo_completion_times(arrivals: np.ndarray, services: np.ndarray,
                          servers: int,
                          out: Optional[np.ndarray] = None) -> np.ndarray:
    """Completion times of a ``servers``-wide FIFO queue, bit-exact vs DES.

    The c-server recursion both :func:`simulate_vectorized` and the fleet
    runner's per-machine fast path share: request ``i`` starts at
    ``max(arrival[i], earliest free server)`` and completes ``service[i]``
    later, with the identical float operations the event kernel performs.
    ``arrivals`` must be non-decreasing (FIFO admission order).
    """
    if servers < 1:
        raise CapacityError("FIFO recursion needs at least one server")
    n = len(arrivals)
    completions = np.empty(n, dtype=float) if out is None else out
    # Busy-server completion heap.  Seeding with -inf (idle forever-free
    # servers) keeps the recursion branch-free: max(arrival, -inf) ==
    # arrival bit-exactly.
    free = [float("-inf")] * servers
    heappush, heappop = heapq.heappush, heapq.heappop
    for i in range(n):
        earliest = heappop(free)
        arrival = arrivals[i]
        start = arrival if arrival >= earliest else earliest
        done = start + services[i]
        completions[i] = done
        heappush(free, done)
    return completions


def simulate_vectorized(scenario: FleetScenario) -> FleetResult:
    """Replay the scenario as numpy passes — no events, same answer.

    FIFO + work-conserving servers admit a direct recursion: request ``i``
    starts at ``max(arrival[i], earliest free server)``.  Arrival and
    completion arithmetic reuses the exact float operations of the DES (see
    module doc), making the output bit-identical, which
    :func:`verify_identity` (and the test suite) asserts.
    """
    gaps, services = scenario_draws(scenario)
    arrivals = np.cumsum(gaps)
    n = scenario.requests
    completions = fifo_completion_times(arrivals, services, scenario.servers)
    sojourns = completions - arrivals
    return FleetResult(
        completed=n,
        # the DES clock ends at the last dispatched event's timestamp
        duration_ms=float(completions.max()),
        sojourn=summarize_latencies(sojourns),
        service=summarize_latencies(services),
        events_processed=0)
