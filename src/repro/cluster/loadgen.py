"""Open- and closed-loop load generation against placed instances.

Requests queue for a free deployment instance (FIFO); each request's
service time is sampled by actually running the request-level simulator
with seeded jitter.  The load test itself is a second discrete-event
simulation on the same kernel, so queueing delay, utilization and drop-off
at saturation all emerge.

An optional :class:`~repro.overload.AdmissionPolicy` puts an admission
controller in front of the replica set (token-bucket rate limit + bounded
per-replica queue), and ``deadline_ms`` arms per-request deadlines: a
request whose wait already exceeds its budget is cancelled at the head of
the queue instead of burning a server on a response nobody will take.
Leaving both off keeps the load test bit-identical to the pre-overload
generator — no extra RNG draws, no extra events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import CapacityError, FaultError
from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.overload.admission import (AdmissionController, AdmissionOutcome,
                                      AdmissionPolicy)
from repro.platforms.base import Platform
from repro.simcore import Environment, Resource
from repro.workflow.model import Workflow


@dataclass
class LoadResult:
    """Outcome of one load test."""

    offered_rps: float
    completed: int
    duration_ms: float
    #: end-to-end sojourn times (queueing + service)
    sojourn: LatencySummary
    #: pure service times (what an unloaded request costs)
    service: LatencySummary
    #: mean number of requests waiting when a request arrived
    mean_queue_len: float
    #: arrivals dropped by the bounded queue (admission control)
    shed: int = 0
    #: arrivals refused by the token-bucket rate limit
    rejected: int = 0
    #: admitted requests cancelled at the head of the queue (deadline spent
    #: before service started)
    expired: int = 0
    #: completed requests whose sojourn met the deadline (None = no deadline)
    met_deadline: Optional[int] = None
    #: the per-request deadline the test ran with (None = no deadline)
    deadline_ms: Optional[float] = None

    @property
    def achieved_rps(self) -> float:
        return self.completed * 1000.0 / self.duration_ms

    @property
    def goodput_rps(self) -> float:
        """Deadline-meeting completions per second (throughput without one).

        The overload experiments' y-axis: shed/rejected/expired/late
        requests all count for nothing.
        """
        if self.deadline_ms is None:
            return self.achieved_rps
        return (self.met_deadline or 0) * 1000.0 / self.duration_ms

    @property
    def queueing_ratio(self) -> float:
        """Sojourn/service mean ratio: ~1 when unloaded, blows up saturated."""
        return self.sojourn.mean_ms / max(self.service.mean_ms, 1e-9)


#: block size for vectorized service sampling: :meth:`_ServiceSampler.sample`
#: serves from a buffer refilled ``_SAMPLE_BLOCK`` draws at a time.  A batched
#: ``Generator.choice(pool, size=n)`` consumes the bit-stream exactly like
#: ``n`` scalar draws (pinned by tests), so buffering changes no result.
_SAMPLE_BLOCK = 256


class _ServiceSampler:
    """Pre-samples per-request service latencies from the request simulator."""

    def __init__(self, platform: Platform, workflow: Workflow, *,
                 pool_size: int, seed: int, jitter_sigma: float,
                 faults=None, retry=None, overload=None,
                 samples: Optional[Sequence[float]] = None) -> None:
        if samples is not None:
            self._samples = [float(s) for s in samples]
            if not self._samples:
                raise CapacityError("service_samples must be non-empty")
        else:
            kwargs = {}
            if faults is not None:
                kwargs.update(faults=faults, retry=retry)
            if overload is not None:
                kwargs["overload"] = overload
            self._samples = []
            draw = 0
            while len(self._samples) < pool_size:
                if draw >= 5 * pool_size:
                    raise CapacityError(
                        "service sampling failed: every request under the "
                        "fault plan exhausted its retries")
                if faults is not None:
                    kwargs["fault_seed"] = seed + draw
                try:
                    self._samples.append(
                        platform.run(workflow, seed=seed + draw,
                                     jitter_sigma=jitter_sigma,
                                     **kwargs).latency_ms)
                except FaultError:
                    # a sample whose retries were exhausted has no service
                    # time; draw another seed (deterministic sequence)
                    pass
                draw += 1
        self._rng = np.random.default_rng(seed)
        self._pool = np.asarray(self._samples, dtype=float)
        self._buf: Optional[np.ndarray] = None
        self._cursor = 0

    def sample(self) -> float:
        buf = self._buf
        if buf is None or self._cursor >= buf.shape[0]:
            buf = self._buf = self._rng.choice(self._pool, size=_SAMPLE_BLOCK)
            self._cursor = 0
        value = buf[self._cursor]
        self._cursor += 1
        return float(value)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)


class _Counters:
    """Mutable per-test tallies shared by the request bodies."""

    def __init__(self) -> None:
        self.expired = 0


def _drive(env: Environment, instances: Resource, service: _ServiceSampler,
           sojourns: list[float], services: list[float],
           queue_seen: list[int],
           controller: Optional[AdmissionController] = None,
           deadline_ms: Optional[float] = None,
           cancel_expired: bool = True,
           counters: Optional[_Counters] = None):
    def request(env):
        arrived = env.now
        if controller is not None:
            if controller.admit() is not AdmissionOutcome.ADMITTED:
                return  # shed/rejected at the front door: no queue, no server
        queue_seen.append(instances.queue_len)
        with instances.request() as slot:
            yield slot
            if (deadline_ms is not None and cancel_expired
                    and env.now - arrived >= deadline_ms):
                # the wait alone spent the budget: release the server
                # immediately instead of serving a doomed request
                counters.expired += 1
                return
            s = service.sample()
            services.append(s)
            yield env.timeout(s)
        sojourns.append(env.now - arrived)

    return request


def _summarize(offered_rps: float, env: Environment, sojourns: list[float],
               services: list[float], queue_seen: list[int],
               controller: Optional[AdmissionController],
               counters: _Counters,
               deadline_ms: Optional[float]) -> LoadResult:
    met = (int(np.count_nonzero(np.asarray(sojourns) <= deadline_ms))
           if deadline_ms is not None else None)
    return LoadResult(
        offered_rps=offered_rps, completed=len(sojourns),
        duration_ms=env.now,
        sojourn=summarize_latencies(sojourns, allow_empty=True),
        service=summarize_latencies(services, allow_empty=True),
        mean_queue_len=(float(np.mean(queue_seen)) if queue_seen
                        else float("nan")),
        shed=controller.shed if controller is not None else 0,
        rejected=controller.rejected if controller is not None else 0,
        expired=counters.expired,
        met_deadline=met, deadline_ms=deadline_ms)


def run_open_loop(platform: Platform, workflow: Workflow, *,
                  instances: int, rps: float, requests: int = 200,
                  seed: int = 0, jitter_sigma: float = 0.08,
                  service_pool: int = 25,
                  admission: Optional[AdmissionPolicy] = None,
                  deadline_ms: Optional[float] = None,
                  cancel_expired: bool = True,
                  faults=None, retry=None, overload=None,
                  service_samples: Optional[Sequence[float]] = None
                  ) -> LoadResult:
    """Poisson arrivals at ``rps`` against ``instances`` parallel servers.

    ``admission``/``deadline_ms`` arm the overload plane (see module doc);
    ``faults``/``retry``/``overload`` are forwarded to the request-level
    simulator when sampling service times, so injected faults fatten the
    service distribution the load test replays.  ``service_samples``
    short-circuits sampling with a pre-computed latency pool (sweep reuse).
    """
    if instances < 1 or rps <= 0 or requests < 1:
        raise CapacityError("instances, rps and requests must be positive")
    sampler = _ServiceSampler(platform, workflow, pool_size=service_pool,
                              seed=seed, jitter_sigma=jitter_sigma,
                              faults=faults, retry=retry, overload=overload,
                              samples=service_samples)
    env = Environment()
    servers = Resource(env, capacity=instances)
    controller = (AdmissionController(env, admission, servers)
                  if admission is not None and not admission.is_null else None)
    counters = _Counters()
    sojourns: list[float] = []
    services: list[float] = []
    queue_seen: list[int] = []
    body = _drive(env, servers, sampler, sojourns, services, queue_seen,
                  controller=controller, deadline_ms=deadline_ms,
                  cancel_expired=cancel_expired, counters=counters)

    def arrivals(env):
        rng = np.random.default_rng(seed + 1)
        # one vectorized draw for the whole test; ``exponential(scale,
        # size=n)`` consumes the bit-stream exactly like n scalar draws,
        # so arrival times are unchanged from the per-request version
        gaps = rng.exponential(1000.0 / rps, size=requests)
        timeout = env.timeout
        process = env.process
        for gap in gaps:
            yield timeout(float(gap))
            process(body(env))

    env.process(arrivals(env))
    env.run()
    return _summarize(rps, env, sojourns, services, queue_seen, controller,
                      counters, deadline_ms)


def run_closed_loop(platform: Platform, workflow: Workflow, *,
                    instances: int, clients: int, requests: int = 200,
                    seed: int = 0, jitter_sigma: float = 0.08,
                    service_pool: int = 25,
                    admission: Optional[AdmissionPolicy] = None,
                    deadline_ms: Optional[float] = None,
                    cancel_expired: bool = True,
                    faults=None, retry=None, overload=None,
                    service_samples: Optional[Sequence[float]] = None
                    ) -> LoadResult:
    """``clients`` concurrent users issuing back-to-back requests."""
    if instances < 1 or clients < 1 or requests < 1:
        raise CapacityError("instances, clients and requests must be positive")
    sampler = _ServiceSampler(platform, workflow, pool_size=service_pool,
                              seed=seed, jitter_sigma=jitter_sigma,
                              faults=faults, retry=retry, overload=overload,
                              samples=service_samples)
    env = Environment()
    servers = Resource(env, capacity=instances)
    controller = (AdmissionController(env, admission, servers)
                  if admission is not None and not admission.is_null else None)
    counters = _Counters()
    sojourns: list[float] = []
    services: list[float] = []
    queue_seen: list[int] = []
    body = _drive(env, servers, sampler, sojourns, services, queue_seen,
                  controller=controller, deadline_ms=deadline_ms,
                  cancel_expired=cancel_expired, counters=counters)
    per_client, remainder = divmod(requests, clients)

    def client(env, count):
        for _ in range(count):
            yield env.process(body(env))

    for c in range(clients):
        env.process(client(env, per_client + (1 if c < remainder else 0)))
    env.run()
    return _summarize(float("nan"), env, sojourns, services, queue_seen,
                      controller, counters, deadline_ms)
