"""Open- and closed-loop load generation against placed instances.

Requests queue for a free deployment instance (FIFO); each request's
service time is sampled by actually running the request-level simulator
with seeded jitter.  The load test itself is a second discrete-event
simulation on the same kernel, so queueing delay, utilization and drop-off
at saturation all emerge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import CapacityError
from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.platforms.base import Platform
from repro.simcore import Environment, Resource
from repro.workflow.model import Workflow


@dataclass
class LoadResult:
    """Outcome of one load test."""

    offered_rps: float
    completed: int
    duration_ms: float
    #: end-to-end sojourn times (queueing + service)
    sojourn: LatencySummary
    #: pure service times (what an unloaded request costs)
    service: LatencySummary
    #: mean number of requests waiting when a request arrived
    mean_queue_len: float

    @property
    def achieved_rps(self) -> float:
        return self.completed * 1000.0 / self.duration_ms

    @property
    def queueing_ratio(self) -> float:
        """Sojourn/service mean ratio: ~1 when unloaded, blows up saturated."""
        return self.sojourn.mean_ms / max(self.service.mean_ms, 1e-9)


class _ServiceSampler:
    """Pre-samples per-request service latencies from the request simulator."""

    def __init__(self, platform: Platform, workflow: Workflow, *,
                 pool_size: int, seed: int, jitter_sigma: float) -> None:
        self._samples = [
            platform.run(workflow, seed=seed + i,
                         jitter_sigma=jitter_sigma).latency_ms
            for i in range(pool_size)]
        self._rng = np.random.default_rng(seed)

    def sample(self) -> float:
        return float(self._rng.choice(self._samples))

    @property
    def samples(self) -> list[float]:
        return list(self._samples)


def _drive(env: Environment, instances: Resource, service: _ServiceSampler,
           sojourns: list[float], services: list[float],
           queue_seen: list[int]):
    def request(env):
        arrived = env.now
        queue_seen.append(instances.queue_len)
        with instances.request() as slot:
            yield slot
            s = service.sample()
            services.append(s)
            yield env.timeout(s)
        sojourns.append(env.now - arrived)

    return request


def run_open_loop(platform: Platform, workflow: Workflow, *,
                  instances: int, rps: float, requests: int = 200,
                  seed: int = 0, jitter_sigma: float = 0.08,
                  service_pool: int = 25) -> LoadResult:
    """Poisson arrivals at ``rps`` against ``instances`` parallel servers."""
    if instances < 1 or rps <= 0 or requests < 1:
        raise CapacityError("instances, rps and requests must be positive")
    sampler = _ServiceSampler(platform, workflow, pool_size=service_pool,
                              seed=seed, jitter_sigma=jitter_sigma)
    env = Environment()
    servers = Resource(env, capacity=instances)
    sojourns: list[float] = []
    services: list[float] = []
    queue_seen: list[int] = []
    body = _drive(env, servers, sampler, sojourns, services, queue_seen)

    def arrivals(env):
        rng = np.random.default_rng(seed + 1)
        for _ in range(requests):
            yield env.timeout(float(rng.exponential(1000.0 / rps)))
            env.process(body(env))

    env.process(arrivals(env))
    env.run()
    return LoadResult(offered_rps=rps, completed=len(sojourns),
                      duration_ms=env.now,
                      sojourn=summarize_latencies(sojourns),
                      service=summarize_latencies(services),
                      mean_queue_len=float(np.mean(queue_seen)))


def run_closed_loop(platform: Platform, workflow: Workflow, *,
                    instances: int, clients: int, requests: int = 200,
                    seed: int = 0, jitter_sigma: float = 0.08,
                    service_pool: int = 25) -> LoadResult:
    """``clients`` concurrent users issuing back-to-back requests."""
    if instances < 1 or clients < 1 or requests < 1:
        raise CapacityError("instances, clients and requests must be positive")
    sampler = _ServiceSampler(platform, workflow, pool_size=service_pool,
                              seed=seed, jitter_sigma=jitter_sigma)
    env = Environment()
    servers = Resource(env, capacity=instances)
    sojourns: list[float] = []
    services: list[float] = []
    queue_seen: list[int] = []
    body = _drive(env, servers, sampler, sojourns, services, queue_seen)
    per_client, remainder = divmod(requests, clients)

    def client(env, count):
        for _ in range(count):
            yield env.process(body(env))

    for c in range(clients):
        env.process(client(env, per_client + (1 if c < remainder else 0)))
    env.run()
    return LoadResult(offered_rps=float("nan"), completed=len(sojourns),
                      duration_ms=env.now,
                      sojourn=summarize_latencies(sojourns),
                      service=summarize_latencies(services),
                      mean_queue_len=float(np.mean(queue_seen)))
