"""An elastic control plane: replica autoscaling under live traffic.

OpenFaaS-style load-based scaling: every evaluation interval the controller
compares in-flight demand against a per-replica concurrency target and
resizes the replica set (bounded by the node), paying a sandbox cold start
before new capacity comes online — which is why reactive scaling lags
bursts, and why Chiron's small per-replica footprint (more replicas per
node) absorbs them better.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.calibration import RuntimeCalibration
from repro.errors import CapacityError
from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.platforms.base import Platform
from repro.simcore import Environment, Resource
from repro.workflow.model import Workflow


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling policy knobs."""

    target_inflight_per_replica: float = 1.0
    min_replicas: int = 1
    max_replicas: int = 8
    evaluation_interval_ms: float = 1000.0
    #: delay before a scaled-up replica serves (container cold start)
    provision_delay_ms: float = RuntimeCalibration().sandbox_cold_start_ms

    def __post_init__(self) -> None:
        if (self.target_inflight_per_replica <= 0
                or self.min_replicas < 1
                or self.max_replicas < self.min_replicas
                or self.evaluation_interval_ms <= 0
                or self.provision_delay_ms < 0):
            raise CapacityError(f"invalid autoscaler config {self}")


@dataclass
class AutoscaleResult:
    """Outcome of one autoscaled load replay."""

    completed: int
    duration_ms: float
    sojourn: LatencySummary
    #: (time_ms, replica_count) on every scaling decision
    replica_timeline: list[tuple[float, int]] = field(default_factory=list)
    #: integral of replicas over time / duration (billing proxy)
    mean_replicas: float = 0.0

    @property
    def replica_seconds(self) -> float:
        return self.mean_replicas * self.duration_ms / 1e3


def run_autoscaled(platform: Platform, workflow: Workflow, *,
                   arrivals: Sequence[float],
                   config: Optional[AutoscalerConfig] = None,
                   seed: int = 0, jitter_sigma: float = 0.08,
                   service_pool: int = 20) -> AutoscaleResult:
    """Replay an arrival trace against an autoscaled replica set."""
    config = config or AutoscalerConfig()
    if not arrivals:
        raise CapacityError("empty arrival trace")
    # per-request service times from the request-level simulator
    samples = [platform.run(workflow, seed=seed + i,
                            jitter_sigma=jitter_sigma).latency_ms
               for i in range(service_pool)]
    rng = np.random.default_rng(seed)

    env = Environment()
    servers = Resource(env, capacity=config.min_replicas)
    #: replicas the controller *wants*; capacity follows after provisioning
    timeline: list[tuple[float, int]] = [(0.0, config.min_replicas)]
    sojourns: list[float] = []
    inflight = [0]
    done = env.event()
    remaining = [len(arrivals)]

    def request(env):
        arrived = env.now
        inflight[0] += 1
        try:
            with servers.request() as slot:
                yield slot
                yield env.timeout(float(rng.choice(samples)))
        finally:
            inflight[0] -= 1
        sojourns.append(env.now - arrived)
        remaining[0] -= 1
        if remaining[0] == 0:
            done.succeed()

    def arrivals_proc(env):
        last = 0.0
        for t in arrivals:
            yield env.timeout(t - last)
            last = t
            env.process(request(env))

    def provision(env, new_capacity):
        yield env.timeout(config.provision_delay_ms)
        # only grow if nobody decided a smaller size meanwhile
        if new_capacity > servers.capacity:
            servers.set_capacity(new_capacity)

    def controller(env):
        while not done.triggered:
            yield env.timeout(config.evaluation_interval_ms)
            desired = int(np.ceil(inflight[0]
                                  / config.target_inflight_per_replica))
            desired = max(config.min_replicas,
                          min(config.max_replicas, desired))
            if desired > servers.capacity:
                env.process(provision(env, desired))
                timeline.append((env.now, desired))
            elif desired < servers.capacity:
                servers.set_capacity(desired)
                timeline.append((env.now, desired))

    env.process(arrivals_proc(env))
    env.process(controller(env))
    env.run(until=done)
    duration = env.now
    # integrate the replica timeline for the billing proxy
    points = timeline + [(duration, timeline[-1][1])]
    area = sum((t1 - t0) * r for (t0, r), (t1, _r) in zip(points, points[1:]))
    return AutoscaleResult(completed=len(sojourns), duration_ms=duration,
                           sojourn=summarize_latencies(sojourns),
                           replica_timeline=timeline,
                           mean_replicas=area / max(duration, 1e-9))
