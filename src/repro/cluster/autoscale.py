"""An elastic control plane: replica autoscaling under live traffic.

OpenFaaS-style load-based scaling: every evaluation interval the controller
compares in-flight demand against a per-replica concurrency target and
resizes the replica set (bounded by the node), paying a sandbox cold start
before new capacity comes online — which is why reactive scaling lags
bursts, and why Chiron's small per-replica footprint (more replicas per
node) absorbs them better.

The overload plane hooks in at two points.  An optional
:class:`~repro.overload.AdmissionPolicy` bounds the backlog while the
autoscaler catches up with a burst (the queue bound scales with the live
replica count).  An optional :class:`~repro.overload.BrownoutConfig` adds a
last-resort lever: when the replica set is already at ``max_replicas`` and
queue pressure persists, the controller *degrades* the deployment — each
request gets slower by ``service_factor`` but effective capacity grows by
``capacity_factor`` (the optional parallelism shed by
:func:`repro.overload.degrade_plan`) — and recovers once pressure clears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import CapacityError
from repro.lifecycle.policy import KeepAlivePolicy
from repro.lifecycle.pool import PrewarmPool
from repro.lifecycle.state import SandboxRecord, SandboxState
from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.overload.admission import (AdmissionController, AdmissionOutcome,
                                      AdmissionPolicy)
from repro.overload.brownout import BrownoutConfig
from repro.platforms.base import Platform
from repro.simcore import Environment, Resource
from repro.workflow.model import Workflow


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling policy knobs."""

    target_inflight_per_replica: float = 1.0
    min_replicas: int = 1
    max_replicas: int = 8
    evaluation_interval_ms: float = 1000.0
    #: delay before a scaled-up replica serves.  ``None`` (the default)
    #: resolves to the *platform's* calibrated cold start at simulation
    #: time — a field default would freeze one calibration's value at
    #: import and silently ignore per-platform calibrations.  Set a float
    #: to override explicitly.
    provision_delay_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.target_inflight_per_replica <= 0
                or self.min_replicas < 1
                or self.max_replicas < self.min_replicas
                or self.evaluation_interval_ms <= 0
                or (self.provision_delay_ms is not None
                    and self.provision_delay_ms < 0)):
            raise CapacityError(f"invalid autoscaler config {self}")


@dataclass(frozen=True)
class LifecycleConfig:
    """Lifecycle knobs for an autoscaled replay.

    ``policy`` decides how long a scaled-down replica stays idle-but-warm
    (revivable for free) instead of being torn down on the spot;
    ``prewarm_target`` sizes a pool the autoscaler drains before paying any
    boot; ``snapshots`` prices later boots as snapshot restores once the
    first cold boot has paid the one-time image-creation charge;
    ``pool_brownout_factor`` is how hard brownout entry shrinks the pool
    (restored on recovery).
    """

    policy: KeepAlivePolicy
    prewarm_target: int = 0
    snapshots: bool = True
    pool_brownout_factor: float = 0.5

    def __post_init__(self) -> None:
        if (self.prewarm_target < 0
                or not 0.0 <= self.pool_brownout_factor <= 1.0):
            raise CapacityError(f"invalid lifecycle config {self}")


@dataclass
class AutoscaleResult:
    """Outcome of one autoscaled load replay."""

    completed: int
    duration_ms: float
    sojourn: LatencySummary
    #: (time_ms, replica_count) on every scaling decision
    replica_timeline: list[tuple[float, int]] = field(default_factory=list)
    #: integral of replicas over time / duration (billing proxy)
    mean_replicas: float = 0.0
    #: (time_ms, waiting_requests) at every controller evaluation
    queue_timeline: list[tuple[float, int]] = field(default_factory=list)
    #: (time_ms, brownout_level) on every brownout transition (empty when
    #: brownout is off or never triggered)
    brownout_timeline: list[tuple[float, int]] = field(default_factory=list)
    #: arrivals dropped by the bounded queue (admission control)
    shed: int = 0
    #: arrivals refused by the token-bucket rate limit
    rejected: int = 0
    #: admitted requests cancelled at the head of the queue (deadline spent)
    expired: int = 0
    #: completed requests whose sojourn met the deadline (None = no deadline)
    met_deadline: Optional[int] = None
    deadline_ms: Optional[float] = None
    #: (time_ms, tier) for every provision boot ("warm"/"pool"/"snapshot"/
    #: "cold"); empty when lifecycle is off
    boot_timeline: list[tuple[float, str]] = field(default_factory=list)
    #: provision boots by tier; empty when lifecycle is off
    boots: dict = field(default_factory=dict)
    #: idle replicas torn down (keep-alive expiry or zero-TTL policy)
    reclaimed: int = 0
    #: fraction of provision boots served warm (idle revive or pool draw);
    #: ``None`` when lifecycle is off
    warm_hit_rate: Optional[float] = None

    @property
    def replica_seconds(self) -> float:
        return self.mean_replicas * self.duration_ms / 1e3

    @property
    def peak_queue_len(self) -> int:
        """Deepest backlog any controller evaluation observed."""
        return max((q for _t, q in self.queue_timeline), default=0)

    def queue_recovery_ms(self, threshold: int = 0) -> Optional[float]:
        """Time from the first over-``threshold`` backlog reading until the
        backlog first returns to ``threshold`` or below (None = never
        exceeded; duration if it never recovered)."""
        over_at: Optional[float] = None
        for t, q in self.queue_timeline:
            if over_at is None:
                if q > threshold:
                    over_at = t
            elif q <= threshold:
                return t - over_at
        if over_at is None:
            return None
        return self.duration_ms - over_at


def run_autoscaled(platform: Platform, workflow: Workflow, *,
                   arrivals: Sequence[float],
                   config: Optional[AutoscalerConfig] = None,
                   seed: int = 0, jitter_sigma: float = 0.08,
                   service_pool: int = 20,
                   admission: Optional[AdmissionPolicy] = None,
                   deadline_ms: Optional[float] = None,
                   brownout: Optional[BrownoutConfig] = None,
                   lifecycle: Optional[LifecycleConfig] = None
                   ) -> AutoscaleResult:
    """Replay an arrival trace against an autoscaled replica set.

    With every overload knob left at ``None`` the replay is bit-identical
    to the pre-overload control plane (no extra RNG draws or events).

    ``lifecycle`` replaces instant scale-down teardown with idle decay
    (scaled-down replicas stay revivable for the keep-alive policy's
    window), lets provisioning draw from a prewarm pool or restore from a
    snapshot before paying a cold boot, and records every provision boot's
    tier in ``AutoscaleResult.boot_timeline``.  ``None`` keeps the legacy
    provision path untouched.
    """
    config = config or AutoscalerConfig()
    if not arrivals:
        raise CapacityError("empty arrival trace")
    # satellite of the lifecycle work: the provision delay resolves from the
    # *platform's* calibration unless explicitly overridden
    provision_delay = (config.provision_delay_ms
                       if config.provision_delay_ms is not None
                       else platform.cal.sandbox_cold_start_ms)
    # per-request service times from the request-level simulator
    samples = [platform.run(workflow, seed=seed + i,
                            jitter_sigma=jitter_sigma).latency_ms
               for i in range(service_pool)]
    rng = np.random.default_rng(seed)

    env = Environment()
    servers = Resource(env, capacity=config.min_replicas)
    controller_adm = (AdmissionController(env, admission, servers)
                      if admission is not None and not admission.is_null
                      else None)
    #: replicas the controller *wants*; capacity follows after provisioning
    timeline: list[tuple[float, int]] = [(0.0, config.min_replicas)]
    queue_timeline: list[tuple[float, int]] = []
    brownout_timeline: list[tuple[float, int]] = []
    sojourns: list[float] = []
    inflight = [0]
    done = env.event()
    remaining = [len(arrivals)]
    expired = [0]
    #: brownout level (0 = nominal); service draws stretch while degraded
    level = [0]

    # -- lifecycle state (all dormant when ``lifecycle`` is None) -------------
    lc_key = (platform.name, workflow.name)
    lc_pool: Optional[PrewarmPool] = None
    if lifecycle is not None and lifecycle.prewarm_target > 0:
        lc_pool = PrewarmPool()
        lc_pool.configure(lc_key, target=lifecycle.prewarm_target,
                          respawn_ms=provision_delay,
                          memory_mb=platform.memory_mb(workflow))
    lc_idle: list[SandboxRecord] = []     # scaled-down replicas kept warm
    lc_has_snapshot = [False]
    lc_boots: dict[str, int] = {}
    boot_timeline: list[tuple[float, str]] = []
    lc_reclaimed = [0]
    lc_last_arrival: list[Optional[float]] = [None]
    wanted = [config.min_replicas]        # replicas the controller wants
    provisioning = [0]                    # replica boots in flight

    def lc_sweep(now: float) -> None:
        """Tear down idle replicas whose keep-alive window closed."""
        for rec in lc_idle:
            if rec.expired_at(now):
                rec.to_reclaimed(rec.idle_expires_ms)
                lc_reclaimed[0] += 1
        lc_idle[:] = [r for r in lc_idle
                      if r.state is not SandboxState.RECLAIMED]

    def lc_acquire(now: float) -> tuple[str, float]:
        """Cheapest boot tier for one new replica and its delay."""
        lc_sweep(now)
        for rec in lc_idle:
            if rec.idle_at(now):
                lc_idle.remove(rec)
                return "warm", 0.0
        if lc_pool is not None and lc_pool.draw(lc_key, now):
            return "pool", 0.0
        if lifecycle.snapshots and lc_has_snapshot[0]:
            return ("snapshot",
                    provision_delay * platform.cal.snapshot_restore_fraction)
        if lifecycle.snapshots:
            lc_has_snapshot[0] = True
            return "cold", provision_delay + platform.cal.snapshot_create_ms
        return "cold", provision_delay

    def lc_park(now: float, count: int) -> None:
        """Scale-down epilogue: keep ``count`` replicas revivable (or tear
        them down on the spot when the keep-alive window is zero)."""
        keepalive = lifecycle.policy.keepalive_ms(lc_key)
        for _ in range(count):
            if keepalive > 0:
                rec = SandboxRecord(key=lc_key, name="replica",
                                    memory_mb=platform.memory_mb(workflow),
                                    state=SandboxState.WARM, since_ms=now)
                rec.to_idle(now, now + keepalive)
                lc_idle.append(rec)
            else:
                lc_reclaimed[0] += 1

    def finish_one():
        remaining[0] -= 1
        if remaining[0] == 0:
            done.succeed()

    def request(env):
        arrived = env.now
        if lifecycle is not None:
            # arrivals feed the keep-alive policy's inter-arrival histogram
            if lc_last_arrival[0] is not None:
                lifecycle.policy.observe(lc_key,
                                         arrived - lc_last_arrival[0])
            lc_last_arrival[0] = arrived
        if controller_adm is not None:
            if controller_adm.admit() is not AdmissionOutcome.ADMITTED:
                finish_one()  # shed/rejected arrivals still count down
                return
        inflight[0] += 1
        try:
            with servers.request() as slot:
                yield slot
                if (deadline_ms is not None
                        and env.now - arrived >= deadline_ms):
                    expired[0] += 1
                    return  # head-of-queue cancellation: free the replica
                s = float(rng.choice(samples))
                if level[0] > 0:
                    # degraded deployment: un-forked parallelism runs as
                    # threads, stretching each request
                    s *= brownout.service_factor
                yield env.timeout(s)
        finally:
            inflight[0] -= 1
            finish_one()
        sojourns.append(env.now - arrived)

    def arrivals_proc(env):
        last = 0.0
        for t in arrivals:
            yield env.timeout(t - last)
            last = t
            env.process(request(env))

    def provision(env, new_capacity):
        yield env.timeout(provision_delay)
        # only grow if nobody decided a smaller size meanwhile
        if new_capacity > servers.capacity:
            servers.set_capacity(new_capacity)

    def provision_replica(env):
        """Boot ONE replica through the lifecycle tiers (lifecycle mode)."""
        tier, delay = lc_acquire(env.now)
        lc_boots[tier] = lc_boots.get(tier, 0) + 1
        boot_timeline.append((env.now, tier))
        try:
            if delay > 0:
                yield env.timeout(delay)
            else:
                yield env.timeout(0.0)
            if servers.capacity < wanted[0]:
                servers.set_capacity(servers.capacity + 1)
            else:
                # the controller shrank its mind mid-boot: the replica is
                # up but unneeded, so it parks idle like a scale-down
                lc_park(env.now, 1)
        finally:
            provisioning[0] -= 1

    def effective_max() -> int:
        if level[0] > 0:
            return max(config.max_replicas, int(round(
                config.max_replicas * brownout.capacity_factor)))
        return config.max_replicas

    def controller(env):
        hot = 0
        calm = 0
        while not done.triggered:
            yield env.timeout(config.evaluation_interval_ms)
            queue_timeline.append((env.now, servers.queue_len))
            if brownout is not None:
                pressure = servers.queue_len / servers.capacity
                if level[0] == 0:
                    at_max = servers.capacity >= config.max_replicas
                    if (at_max and pressure
                            > brownout.queue_per_replica_threshold):
                        hot += 1
                        if hot >= brownout.trigger_intervals:
                            level[0] = 1
                            hot = 0
                            # degrading is a config push, not a boot: the
                            # freed cores serve immediately
                            servers.set_capacity(effective_max())
                            timeline.append((env.now, servers.capacity))
                            brownout_timeline.append((env.now, 1))
                            if lifecycle is not None and lc_pool is not None:
                                # warm slots are the most discretionary
                                # memory on the node: shrink the pool
                                lc_pool.shrink(
                                    lifecycle.pool_brownout_factor)
                    else:
                        hot = 0
                else:
                    if pressure <= brownout.queue_per_replica_threshold:
                        calm += 1
                        if calm >= brownout.recover_intervals:
                            level[0] = 0
                            calm = 0
                            servers.set_capacity(config.max_replicas)
                            timeline.append((env.now, servers.capacity))
                            brownout_timeline.append((env.now, 0))
                            if lifecycle is not None and lc_pool is not None:
                                lc_pool.restore()
                    else:
                        calm = 0
                if level[0] > 0:
                    continue  # degraded: pin capacity, skip normal resizing
            desired = int(np.ceil(inflight[0]
                                  / config.target_inflight_per_replica))
            desired = max(config.min_replicas,
                          min(config.max_replicas, desired))
            if lifecycle is not None:
                wanted[0] = desired
                deficit = desired - servers.capacity - provisioning[0]
                if deficit > 0:
                    for _ in range(deficit):
                        provisioning[0] += 1
                        env.process(provision_replica(env))
                    timeline.append((env.now, desired))
                elif desired < servers.capacity:
                    lc_park(env.now, servers.capacity - desired)
                    servers.set_capacity(desired)
                    timeline.append((env.now, desired))
            elif desired > servers.capacity:
                env.process(provision(env, desired))
                timeline.append((env.now, desired))
            elif desired < servers.capacity:
                servers.set_capacity(desired)
                timeline.append((env.now, desired))

    env.process(arrivals_proc(env))
    env.process(controller(env))
    env.run(until=done)
    duration = env.now
    # integrate the replica timeline for the billing proxy
    points = timeline + [(duration, timeline[-1][1])]
    area = sum((t1 - t0) * r for (t0, r), (t1, _r) in zip(points, points[1:]))
    met = (sum(1 for s in sojourns if s <= deadline_ms)
           if deadline_ms is not None else None)
    warm_hit: Optional[float] = None
    if lifecycle is not None:
        total_boots = sum(lc_boots.values())
        hits = lc_boots.get("warm", 0) + lc_boots.get("pool", 0)
        warm_hit = hits / total_boots if total_boots else 0.0
    return AutoscaleResult(
        completed=len(sojourns), duration_ms=duration,
        sojourn=summarize_latencies(sojourns, allow_empty=True),
        replica_timeline=timeline,
        mean_replicas=area / max(duration, 1e-9),
        queue_timeline=queue_timeline,
        brownout_timeline=brownout_timeline,
        shed=controller_adm.shed if controller_adm is not None else 0,
        rejected=controller_adm.rejected if controller_adm is not None else 0,
        expired=expired[0], met_deadline=met, deadline_ms=deadline_ms,
        boot_timeline=boot_timeline, boots=dict(sorted(lc_boots.items())),
        reclaimed=lc_reclaimed[0], warm_hit_rate=warm_hit)
