"""Invocation-trace generation: arrival-time patterns for load tests.

Serverless production traffic is bursty and diurnal (the Azure Functions
trace analyses behind the paper's cold-start citations), so load tests need
more than constant-rate Poisson.  All generators return sorted arrival
timestamps in milliseconds, produced by thinning a homogeneous Poisson
process against a time-varying rate — exact for any bounded rate function.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import ReproError

RateFunction = Callable[[float], float]  # time (ms) -> requests per second


def nonhomogeneous_poisson(rate_fn: RateFunction, *, peak_rps: float,
                           duration_ms: float, seed: int = 0
                           ) -> list[float]:
    """Thinning (Lewis-Shedler): arrivals for any rate <= ``peak_rps``."""
    if peak_rps <= 0 or duration_ms <= 0:
        raise ReproError("peak_rps and duration_ms must be positive")
    rng = np.random.default_rng(seed)
    out: list[float] = []
    t = 0.0
    mean_gap_ms = 1000.0 / peak_rps
    while True:
        t += float(rng.exponential(mean_gap_ms))
        if t >= duration_ms:
            return out
        rate = rate_fn(t)
        if rate < 0 or rate > peak_rps * (1 + 1e-9):
            raise ReproError(f"rate {rate} outside [0, {peak_rps}] at t={t}")
        if rng.uniform() < rate / peak_rps:
            out.append(t)


def constant_arrivals(rps: float, duration_ms: float, *,
                      seed: int = 0) -> list[float]:
    """Homogeneous Poisson arrivals at ``rps``."""
    return nonhomogeneous_poisson(lambda _t: rps, peak_rps=rps,
                                  duration_ms=duration_ms, seed=seed)


def diurnal_arrivals(base_rps: float, peak_rps: float, *,
                     period_ms: float, duration_ms: float,
                     seed: int = 0) -> list[float]:
    """Sinusoidal day/night traffic between ``base_rps`` and ``peak_rps``."""
    if not 0 <= base_rps <= peak_rps:
        raise ReproError("need 0 <= base_rps <= peak_rps")
    if period_ms <= 0:
        raise ReproError("period_ms must be positive")
    mid = (base_rps + peak_rps) / 2.0
    amp = (peak_rps - base_rps) / 2.0

    def rate(t: float) -> float:
        return mid + amp * math.sin(2 * math.pi * t / period_ms)

    return nonhomogeneous_poisson(rate, peak_rps=peak_rps,
                                  duration_ms=duration_ms, seed=seed)


def burst_arrivals(base_rps: float, burst_rps: float, *,
                   burst_every_ms: float, burst_len_ms: float,
                   duration_ms: float, seed: int = 0) -> list[float]:
    """On/off bursts: ``burst_rps`` for ``burst_len_ms`` out of every
    ``burst_every_ms``, ``base_rps`` otherwise."""
    if burst_rps < base_rps:
        raise ReproError("burst_rps must be >= base_rps")
    if not 0 < burst_len_ms <= burst_every_ms:
        raise ReproError("need 0 < burst_len_ms <= burst_every_ms")

    def rate(t: float) -> float:
        return burst_rps if (t % burst_every_ms) < burst_len_ms else base_rps

    return nonhomogeneous_poisson(rate, peak_rps=burst_rps,
                                  duration_ms=duration_ms, seed=seed)


def interarrival_stats(arrivals: Sequence[float]) -> tuple[float, float]:
    """(mean gap ms, coefficient of variation) — burstiness fingerprint."""
    if len(arrivals) < 2:
        raise ReproError("need >= 2 arrivals")
    gaps = np.diff(np.asarray(arrivals, dtype=float))
    mean = float(gaps.mean())
    return mean, float(gaps.std() / mean) if mean > 0 else 0.0
