"""Scheduler benchmark harness for the incremental prediction engine.

Times :meth:`repro.core.pgp.PGPScheduler.schedule` across the app catalog at
several SLO tightnesses, twice per workload:

* **baseline** — a :class:`repro.core.predictor.PredictionCache` with
  ``enabled=False``: every stage / thread-group prediction runs a full
  Algorithm-1 replay, and the counters still tick, giving the exact
  full-evaluation count the paper's Algorithm 2 would pay;
* **cached** — the same scheduler with the cache on (and optionally in
  ``verify`` mode), warm across the workload's whole SLO sweep.

Besides wall time the report records the ``pgp.*`` counters and — the part
CI gates on — *correctness*: for every SLO the cached plan must equal the
baseline plan (same deployment fingerprint) and ``predicted_latency_ms``
must be bit-identical (``==`` on floats, no tolerance).  The headline
metric is ``full_eval_ratio`` = baseline full evaluations / cached full
evaluations; the acceptance bar is >= 3x on KL-enabled multi-stage
workloads.

Results are written as machine-readable JSON (``BENCH_pgp.json``) so runs
can be diffed across commits.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from repro.apps.catalog import ALL_WORKLOADS, workload
from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import LatencyPredictor, PredictionCache
from repro.errors import DeploymentError

#: SLO tightness as multiples of the workflow's critical path (1.0 would be
#: unreachable; 1.2 forces wide plans, 3.0 packs into few wraps).
DEFAULT_SLO_FACTORS = (1.2, 1.5, 2.0, 3.0)

#: full matrix: every catalog workload, largest last (it dominates runtime)
DEFAULT_WORKLOADS = ("social-network", "movie-review", "slapp", "slapp-v",
                     "finra-5", "finra-50", "finra-100")

#: the CI smoke matrix — small enough for seconds, still multi-stage + KL
QUICK_WORKLOADS = ("social-network", "movie-review", "slapp", "finra-5")

_CONSERVATISM = 1.05


def _scheduler(cal: RuntimeCalibration, cache: PredictionCache,
               options: Optional[PGPOptions]) -> PGPScheduler:
    predictor = LatencyPredictor(cal, conservatism=_CONSERVATISM,
                                 cache=cache)
    return PGPScheduler(predictor, options=options)


def _run_side(scheduler: PGPScheduler, wf, slos: Sequence[float]) -> dict:
    """One side of the comparison: sweep the SLOs, return plans + counters."""
    t0 = time.perf_counter()
    plans = [scheduler.schedule(wf, slo) for slo in slos]
    wall_ms = (time.perf_counter() - t0) * 1000.0
    cache = scheduler.predictor.cache
    return {
        "wall_ms": wall_ms,
        "counters": cache.metrics.counters(),
        "plans": plans,
    }


def bench_workload(name: str, *, slo_factors: Sequence[float],
                   check: bool = False,
                   options: Optional[PGPOptions] = None) -> dict:
    """Benchmark one workload; raises ``DeploymentError`` on divergence."""
    wf = workload(name)
    cal = RuntimeCalibration.native()
    slos = [round(f * wf.critical_path_ms, 6) for f in slo_factors]

    baseline = _run_side(
        _scheduler(cal, PredictionCache(enabled=False), options), wf, slos)
    cached = _run_side(
        _scheduler(cal, PredictionCache(verify=check), options), wf, slos)

    mismatches = []
    for slo, pb, pc in zip(slos, baseline["plans"], cached["plans"]):
        if (pb.fingerprint(wf) != pc.fingerprint(wf)
                or pb.predicted_latency_ms != pc.predicted_latency_ms):
            mismatches.append({
                "slo_ms": slo,
                "baseline_predicted_ms": pb.predicted_latency_ms,
                "cached_predicted_ms": pc.predicted_latency_ms,
                "plans_equal": pb.fingerprint(wf) == pc.fingerprint(wf),
            })
    if mismatches:
        raise DeploymentError(
            f"cached scheduling diverged from full evaluation on "
            f"{name!r}: {mismatches}")

    full_b = baseline["counters"].get("pgp.evals.full", 0)
    full_c = cached["counters"].get("pgp.evals.full", 0)
    return {
        "workload": name,
        "stages": len(wf.stages),
        "functions": wf.num_functions,
        "critical_path_ms": wf.critical_path_ms,
        "slo_factors": list(slo_factors),
        "slo_ms": slos,
        "kernighan_lin": (options or PGPOptions()).kernighan_lin,
        "checked": bool(check),
        "identical": True,
        "plans": [{"slo_ms": slo,
                   "predicted_latency_ms": p.predicted_latency_ms,
                   "wraps": p.n_wraps, "cores": p.total_cores}
                  for slo, p in zip(slos, cached["plans"])],
        "baseline": {"wall_ms": baseline["wall_ms"],
                     "counters": baseline["counters"]},
        "cached": {"wall_ms": cached["wall_ms"],
                   "counters": cached["counters"]},
        "full_eval_ratio": full_b / full_c if full_c else float(full_b),
    }


def run_bench(workloads: Optional[Sequence[str]] = None, *,
              slo_factors: Sequence[float] = DEFAULT_SLO_FACTORS,
              check: bool = False,
              options: Optional[PGPOptions] = None) -> dict:
    """Benchmark several workloads and aggregate a summary."""
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    unknown = [n for n in names if n not in ALL_WORKLOADS]
    if unknown:
        raise DeploymentError(
            f"unknown workloads {unknown}; known: {sorted(ALL_WORKLOADS)}")
    results = [bench_workload(n, slo_factors=slo_factors, check=check,
                              options=options)
               for n in names]
    ratios = [r["full_eval_ratio"] for r in results]
    return {
        "benchmark": "pgp-scheduler",
        "slo_factors": list(slo_factors),
        "checked": bool(check),
        "workloads": results,
        "summary": {
            "min_full_eval_ratio": min(ratios),
            "max_full_eval_ratio": max(ratios),
            "identical": all(r["identical"] for r in results),
        },
    }


def format_table(report: dict) -> str:
    """Human-readable summary of a :func:`run_bench` report."""
    rows = [f"{'workload':<16} {'full(base)':>10} {'full(cached)':>12} "
            f"{'ratio':>7} {'delta':>6} {'base ms':>8} {'cached ms':>9}"]
    for r in report["workloads"]:
        cb, cc = r["baseline"]["counters"], r["cached"]["counters"]
        rows.append(
            f"{r['workload']:<16} {int(cb.get('pgp.evals.full', 0)):>10} "
            f"{int(cc.get('pgp.evals.full', 0)):>12} "
            f"{r['full_eval_ratio']:>6.1f}x "
            f"{int(cc.get('pgp.evals.delta', 0)):>6} "
            f"{r['baseline']['wall_ms']:>8.1f} "
            f"{r['cached']['wall_ms']:>9.1f}")
    s = report["summary"]
    rows.append(f"min ratio {s['min_full_eval_ratio']:.1f}x, "
                f"plans bit-identical: {s['identical']}")
    return "\n".join(rows)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
