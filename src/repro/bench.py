"""Scheduler benchmark harness for the incremental prediction engine.

Times :meth:`repro.core.pgp.PGPScheduler.schedule` across the app catalog at
several SLO tightnesses, twice per workload:

* **baseline** — a :class:`repro.core.predictor.PredictionCache` with
  ``enabled=False``: every stage / thread-group prediction runs a full
  Algorithm-1 replay, and the counters still tick, giving the exact
  full-evaluation count the paper's Algorithm 2 would pay;
* **cached** — the same scheduler with the cache on (and optionally in
  ``verify`` mode), warm across the workload's whole SLO sweep.

Besides wall time the report records the ``pgp.*`` counters and — the part
CI gates on — *correctness*: for every SLO the cached plan must equal the
baseline plan (same deployment fingerprint) and ``predicted_latency_ms``
must be bit-identical (``==`` on floats, no tolerance).  The headline
metric is ``full_eval_ratio`` = baseline full evaluations / cached full
evaluations; the acceptance bar is >= 3x on KL-enabled multi-stage
workloads.

Results are written as machine-readable JSON (``BENCH_pgp.json``) so runs
can be diffed across commits.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from repro.apps.catalog import ALL_WORKLOADS, workload
from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import LatencyPredictor, PredictionCache
from repro.core.search import (
    MOVE_KINDS,
    SearchOptions,
    cost_at_budget,
    plan_cost,
    refine_plan,
)
from repro.errors import DeploymentError

#: SLO tightness as multiples of the workflow's critical path (1.0 would be
#: unreachable; 1.2 forces wide plans, 3.0 packs into few wraps).
DEFAULT_SLO_FACTORS = (1.2, 1.5, 2.0, 3.0)

#: full matrix: every catalog workload, largest last (it dominates runtime)
DEFAULT_WORKLOADS = ("social-network", "movie-review", "slapp", "slapp-v",
                     "finra-5", "finra-50", "finra-100")

#: the CI smoke matrix — small enough for seconds, still multi-stage + KL
QUICK_WORKLOADS = ("social-network", "movie-review", "slapp", "finra-5")

_CONSERVATISM = 1.05


def _scheduler(cal: RuntimeCalibration, cache: PredictionCache,
               options: Optional[PGPOptions]) -> PGPScheduler:
    predictor = LatencyPredictor(cal, conservatism=_CONSERVATISM,
                                 cache=cache)
    return PGPScheduler(predictor, options=options)


def _run_side(scheduler: PGPScheduler, wf, slos: Sequence[float]) -> dict:
    """One side of the comparison: sweep the SLOs, return plans + counters."""
    t0 = time.perf_counter()
    plans = [scheduler.schedule(wf, slo) for slo in slos]
    wall_ms = (time.perf_counter() - t0) * 1000.0
    cache = scheduler.predictor.cache
    return {
        "wall_ms": wall_ms,
        "counters": cache.metrics.counters(),
        "plans": plans,
    }


def bench_workload(name: str, *, slo_factors: Sequence[float],
                   check: bool = False,
                   options: Optional[PGPOptions] = None) -> dict:
    """Benchmark one workload; raises ``DeploymentError`` on divergence."""
    wf = workload(name)
    cal = RuntimeCalibration.native()
    slos = [round(f * wf.critical_path_ms, 6) for f in slo_factors]

    baseline = _run_side(
        _scheduler(cal, PredictionCache(enabled=False), options), wf, slos)
    cached = _run_side(
        _scheduler(cal, PredictionCache(verify=check), options), wf, slos)

    mismatches = []
    for slo, pb, pc in zip(slos, baseline["plans"], cached["plans"]):
        if (pb.fingerprint(wf) != pc.fingerprint(wf)
                or pb.predicted_latency_ms != pc.predicted_latency_ms):
            mismatches.append({
                "slo_ms": slo,
                "baseline_predicted_ms": pb.predicted_latency_ms,
                "cached_predicted_ms": pc.predicted_latency_ms,
                "plans_equal": pb.fingerprint(wf) == pc.fingerprint(wf),
            })
    if mismatches:
        raise DeploymentError(
            f"cached scheduling diverged from full evaluation on "
            f"{name!r}: {mismatches}")

    full_b = baseline["counters"].get("pgp.evals.full", 0)
    full_c = cached["counters"].get("pgp.evals.full", 0)
    return {
        "workload": name,
        "stages": len(wf.stages),
        "functions": wf.num_functions,
        "critical_path_ms": wf.critical_path_ms,
        "slo_factors": list(slo_factors),
        "slo_ms": slos,
        "kernighan_lin": (options or PGPOptions()).kernighan_lin,
        "checked": bool(check),
        "identical": True,
        "plans": [{"slo_ms": slo,
                   "predicted_latency_ms": p.predicted_latency_ms,
                   "wraps": p.n_wraps, "cores": p.total_cores}
                  for slo, p in zip(slos, cached["plans"])],
        "baseline": {"wall_ms": baseline["wall_ms"],
                     "counters": baseline["counters"]},
        "cached": {"wall_ms": cached["wall_ms"],
                   "counters": cached["counters"]},
        "full_eval_ratio": full_b / full_c if full_c else float(full_b),
    }


def run_bench(workloads: Optional[Sequence[str]] = None, *,
              slo_factors: Sequence[float] = DEFAULT_SLO_FACTORS,
              check: bool = False,
              options: Optional[PGPOptions] = None) -> dict:
    """Benchmark several workloads and aggregate a summary."""
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    unknown = [n for n in names if n not in ALL_WORKLOADS]
    if unknown:
        raise DeploymentError(
            f"unknown workloads {unknown}; known: {sorted(ALL_WORKLOADS)}")
    results = [bench_workload(n, slo_factors=slo_factors, check=check,
                              options=options)
               for n in names]
    ratios = [r["full_eval_ratio"] for r in results]
    return {
        "benchmark": "pgp-scheduler",
        "slo_factors": list(slo_factors),
        "checked": bool(check),
        "workloads": results,
        "summary": {
            "min_full_eval_ratio": min(ratios),
            "max_full_eval_ratio": max(ratios),
            "identical": all(r["identical"] for r in results),
        },
    }


def format_table(report: dict) -> str:
    """Human-readable summary of a :func:`run_bench` report."""
    rows = [f"{'workload':<16} {'full(base)':>10} {'full(cached)':>12} "
            f"{'ratio':>7} {'delta':>6} {'base ms':>8} {'cached ms':>9}"]
    for r in report["workloads"]:
        cb, cc = r["baseline"]["counters"], r["cached"]["counters"]
        rows.append(
            f"{r['workload']:<16} {int(cb.get('pgp.evals.full', 0)):>10} "
            f"{int(cc.get('pgp.evals.full', 0)):>12} "
            f"{r['full_eval_ratio']:>6.1f}x "
            f"{int(cc.get('pgp.evals.delta', 0)):>6} "
            f"{r['baseline']['wall_ms']:>8.1f} "
            f"{r['cached']['wall_ms']:>9.1f}")
    s = report["summary"]
    rows.append(f"min ratio {s['min_full_eval_ratio']:.1f}x, "
                f"plans bit-identical: {s['identical']}")
    return "\n".join(rows)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    """Read back a committed ``BENCH_*.json`` (the CI trajectory gate's
    input); raises :class:`~repro.errors.ReproError` on a missing or
    malformed file so callers get the CLI's one-liner, not a traceback."""
    from repro.errors import ReproError
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except FileNotFoundError:
        raise ReproError(f"no benchmark report at {path!r}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed benchmark report {path!r}: "
                         f"{exc}") from None
    if not isinstance(report, dict):
        raise ReproError(f"benchmark report {path!r} is not a JSON object")
    return report


# ---------------------------------------------------------------------------
# anytime plan search: quality vs. budget, KL vs. SA vs. portfolio
# ---------------------------------------------------------------------------

#: move-evaluation budgets the anytime curve is read at (largest = the SA
#: run; smaller points are read off the same run's best-cost timeline)
DEFAULT_SEARCH_BUDGETS = (50, 200, 800)
QUICK_SEARCH_BUDGETS = (25, 100)


def search_bench_workload(name: str, *,
                          slo_factors: Sequence[float] = DEFAULT_SLO_FACTORS,
                          budgets: Sequence[int] = DEFAULT_SEARCH_BUDGETS,
                          seed: int = 0, restarts: int = 2,
                          verify_budget: int = 120) -> dict:
    """Search-quality benchmark for one workload.

    One predictor (one shared :class:`PredictionCache`) serves KL, SA and
    the portfolio across the whole SLO sweep — the very setting the search
    was built for.  Per SLO factor the report records the greedy KL plan
    cost, SA's anytime best-cost at each budget (read off one max-budget
    run's timeline), and the portfolio winner; per workload it adds a
    delta-cost bit-identity pass (``verify_deltas=True``) and a determinism
    probe (same seed + budget twice, plans and move traces must match).
    """
    budgets = sorted(budgets)
    wf = workload(name)
    cal = RuntimeCalibration.native()
    predictor = LatencyPredictor(cal, conservatism=_CONSERVATISM)
    scheduler = PGPScheduler(predictor)
    slos = [round(f * wf.critical_path_ms, 6) for f in slo_factors]

    rows = []
    t0 = time.perf_counter()
    for factor, slo in zip(slo_factors, slos):
        kl_plan = scheduler.schedule(wf, slo)
        kl_cost = plan_cost(kl_plan.predicted_latency_ms,
                            kl_plan.total_cores, slo)
        sa = refine_plan(wf, kl_plan, slo, predictor,
                         SearchOptions(budget=budgets[-1], seed=seed,
                                       restarts=restarts))
        pf = refine_plan(wf, kl_plan, slo, predictor,
                         SearchOptions(method="portfolio",
                                       budget=budgets[-1],
                                       seed=seed, restarts=restarts))
        rows.append({
            "slo_factor": factor,
            "slo_ms": slo,
            "kl": {"cost": kl_cost, "cores": kl_plan.total_cores,
                   "predicted_ms": kl_plan.predicted_latency_ms,
                   "feasible": kl_plan.predicted_latency_ms <= slo},
            "sa": {"cost": sa.cost, "cores": sa.plan.total_cores,
                   "predicted_ms": sa.plan.predicted_latency_ms,
                   "feasible": sa.feasible,
                   "evaluations": sa.evaluations,
                   "cost_by_budget": {str(b): cost_at_budget(sa.timeline, b)
                                      for b in budgets}},
            "portfolio": {"cost": pf.cost, "cores": pf.plan.total_cores,
                          "predicted_ms": pf.plan.predicted_latency_ms,
                          "feasible": pf.feasible, "winner": pf.winner,
                          "budget_per_arm": budgets[-1],
                          "arms": pf.arms},
        })
    wall_ms = (time.perf_counter() - t0) * 1000.0

    # delta-cost bit-identity: every evaluated move's delta-costed total
    # must equal a cache-disabled full re-evaluation (raises on divergence)
    tight_slo = slos[0]
    verify_seed_plan = scheduler.schedule(wf, tight_slo)
    verify = refine_plan(wf, verify_seed_plan, tight_slo, predictor,
                         SearchOptions(budget=verify_budget, seed=seed + 1,
                                       verify_deltas=True))

    # determinism: identical options twice => identical plan + move trace
    det_opts = SearchOptions(budget=min(60, budgets[-1]), seed=seed + 2)
    d1 = refine_plan(wf, verify_seed_plan, tight_slo, predictor, det_opts)
    d2 = refine_plan(wf, verify_seed_plan, tight_slo, predictor, det_opts)
    deterministic = (d1.plan.fingerprint(wf) == d2.plan.fingerprint(wf)
                     and d1.moves == d2.moves
                     and d1.timeline == d2.timeline)

    return {
        "workload": name,
        "stages": len(wf.stages),
        "functions": wf.num_functions,
        "critical_path_ms": wf.critical_path_ms,
        "seed": seed,
        "budgets": list(budgets),
        "wall_ms": wall_ms,
        "slos": rows,
        "delta_verified": verify.delta_verified,
        "deterministic": deterministic,
        "counters": {k: v
                     for k, v in predictor.cache.metrics.counters().items()
                     if k.startswith(("pgp.", "search."))},
    }


def run_search_bench(workloads: Optional[Sequence[str]] = None, *,
                     slo_factors: Sequence[float] = DEFAULT_SLO_FACTORS,
                     budgets: Sequence[int] = DEFAULT_SEARCH_BUDGETS,
                     seed: int = 0, restarts: int = 2) -> dict:
    """Search benchmark across workloads with the acceptance summary.

    The summary the CI smoke gates on: SA and the portfolio must never be
    worse than greedy KL (anytime best-so-far and the KL arm make both
    structural guarantees — this checks them end to end), the strict-win
    list at the tightest SLO factor, all-move-kind delta verification, and
    per-workload determinism.
    """
    budgets = tuple(budgets)
    if (not budgets or any(b < 1 for b in budgets)
            or list(budgets) != sorted(set(budgets))):
        raise DeploymentError(
            f"budgets must be strictly increasing positive move counts, "
            f"got {list(budgets)} (budget 0 is just the KL seed — the "
            f"strict-win and determinism gates would be vacuous)")
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    unknown = [n for n in names if n not in ALL_WORKLOADS]
    if unknown:
        raise DeploymentError(
            f"unknown workloads {unknown}; known: {sorted(ALL_WORKLOADS)}")
    results = [search_bench_workload(n, slo_factors=slo_factors,
                                     budgets=budgets, seed=seed,
                                     restarts=restarts)
               for n in names]

    eps = 1e-9
    sa_never_worse = all(r["slos"][i]["sa"]["cost"]
                         <= r["slos"][i]["kl"]["cost"] + eps
                         for r in results for i in range(len(r["slos"])))
    pf_never_worse = all(r["slos"][i]["portfolio"]["cost"]
                         <= r["slos"][i]["kl"]["cost"] + eps
                         for r in results for i in range(len(r["slos"])))
    strict_wins = sorted(
        r["workload"] for r in results
        if r["slos"][0]["kl"]["cost"]
        - min(r["slos"][0]["sa"]["cost"],
              r["slos"][0]["portfolio"]["cost"]) > eps)
    verified = {kind: sum(r["delta_verified"][kind] for r in results)
                for kind in MOVE_KINDS}
    return {
        "benchmark": "plan-search",
        "slo_factors": list(slo_factors),
        "budgets": sorted(budgets),
        "seed": seed,
        "restarts": restarts,
        "workloads": results,
        "summary": {
            "sa_never_worse_than_kl": sa_never_worse,
            "portfolio_never_worse_than_kl": pf_never_worse,
            "strict_wins_at_tightest_slo": strict_wins,
            "delta_verified_by_kind": verified,
            "delta_verify_all_kinds": all(v > 0 for v in verified.values()),
            "deterministic": all(r["deterministic"] for r in results),
        },
    }


def format_search_table(report: dict) -> str:
    """Human-readable summary of a :func:`run_search_bench` report."""
    rows = [f"{'workload':<16} {'slo':>5} {'kl cost':>10} {'sa cost':>10} "
            f"{'pf cost':>10} {'winner':>10} {'feas kl>sa':>10}"]
    for r in report["workloads"]:
        for row in r["slos"]:
            feas = (f"{'y' if row['kl']['feasible'] else 'n'}>"
                    f"{'y' if row['sa']['feasible'] else 'n'}")
            rows.append(
                f"{r['workload']:<16} {row['slo_factor']:>5.2f} "
                f"{row['kl']['cost']:>10.3f} {row['sa']['cost']:>10.3f} "
                f"{row['portfolio']['cost']:>10.3f} "
                f"{row['portfolio']['winner']:>10} {feas:>10}")
    s = report["summary"]
    rows.append(
        f"sa<=kl: {s['sa_never_worse_than_kl']}, "
        f"portfolio<=kl: {s['portfolio_never_worse_than_kl']}, "
        f"strict wins @tightest: {s['strict_wins_at_tightest_slo']}, "
        f"delta-verified all kinds: {s['delta_verify_all_kinds']}, "
        f"deterministic: {s['deterministic']}")
    return "\n".join(rows)
