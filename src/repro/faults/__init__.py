"""Deterministic fault injection + failure recovery for the simulator.

The subsystem has four pieces:

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`OneShotFault`,
  the declarative what/how-often/when of failure;
* :mod:`repro.faults.inject` — :class:`FaultInjector`, the per-request
  seeded RNG stream plus fault/retry ledger, installed as ``env.faults``
  by ``Platform.run`` and consulted by the runtime hook points;
* :mod:`repro.faults.retry` — :class:`RetryPolicy` and named presets;
* :mod:`repro.faults.recovery` — :func:`run_unit`, the shared retry
  driver platforms wrap around their chosen unit of re-execution
  (function, wrap, or whole workflow);
* :mod:`repro.faults.reliability` — the analytic tail model behind the
  manager's graceful degradation to smaller wraps;
* :mod:`repro.faults.registry` — the extensible mechanism registry
  (namespaced ``machine.*``/``net.*`` mechanisms register themselves);
* :mod:`repro.faults.domains` — machine-scale failure domains: topology,
  seeded :class:`ChaosPlan` schedules, and live :class:`FleetState`.
"""

from repro.errors import FaultError, RetryExhausted
from repro.faults.domains import (CHAOS_COUNTERS, CHAOS_EVENT_TYPES,
                                  ChaosEvent, ChaosPlan, ChaosSchedule,
                                  FleetState, Topology)
from repro.faults.inject import FaultInjector
from repro.faults.plan import MECHANISMS, FaultPlan, OneShotFault
from repro.faults.registry import (MechanismSpec, is_registered,
                                   mechanism_names, mechanism_spec,
                                   register_mechanism)
from repro.faults.recovery import run_unit
from repro.faults.reliability import (adjusted_p99_ms, degrade_until_slo,
                                      split_largest_wrap, unit_failure_prob)
from repro.faults.retry import PRESETS, RetryPolicy, preset

#: typed event names fault injection adds to traces (golden-trace schema)
FAULT_EVENT_TYPES = ("fault.injected", "retry.attempt", "retry.exhausted",
                     "sandbox.crash")

__all__ = [
    "CHAOS_COUNTERS",
    "CHAOS_EVENT_TYPES",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosSchedule",
    "FAULT_EVENT_TYPES",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FleetState",
    "MECHANISMS",
    "MechanismSpec",
    "OneShotFault",
    "PRESETS",
    "RetryExhausted",
    "RetryPolicy",
    "Topology",
    "is_registered",
    "mechanism_names",
    "mechanism_spec",
    "register_mechanism",
    "adjusted_p99_ms",
    "degrade_until_slo",
    "preset",
    "run_unit",
    "split_largest_wrap",
    "unit_failure_prob",
]
