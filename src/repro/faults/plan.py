"""Fault plans: what can fail, how often, and exactly when.

A :class:`FaultPlan` is pure configuration — per-mechanism rates, straggler
and timeout shapes, and optional :class:`OneShotFault` schedules ("fail the
2nd fork") — with no mutable state.  A per-request
:class:`~repro.faults.inject.FaultInjector` turns the plan plus a seed into
a deterministic fault schedule, so the same (plan, seed) pair always
produces the same crashes at the same simulated instants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import SimulationError
from repro.faults.registry import (mechanism_spec, rate_attrs,
                                   register_mechanism)

#: the builtin intra-sandbox mechanisms (kept as a tuple for callers that
#: enumerate the PR 2 vocabulary; the authoritative set is the registry —
#: ``machine.*``/``net.*`` mechanisms register themselves from
#: :mod:`repro.faults.domains`)
MECHANISMS = (
    "sandbox.crash",    # a function takes its whole sandbox down
    "sandbox.reclaim",  # the lifecycle reclaimer takes a serving sandbox
    "fork.fail",        # a fork syscall fails after paying its block time
    "rpc.drop",         # a gateway/dispatcher invocation never answers
    "storage.read",     # an object-store get errors after the base latency
    "storage.write",    # an object-store put errors after the base latency
    "pool.worker",      # a pre-forked pool worker dies and is respawned
    "straggler",        # a function runs ``straggler_factor`` times slower
)

register_mechanism("sandbox.crash", rate_attr="sandbox_crash_rate",
                   doc="a function takes its whole sandbox down")
register_mechanism("sandbox.reclaim", rate_attr="sandbox_reclaim_rate",
                   doc="the lifecycle reclaimer takes a serving sandbox",
                   recoverable=True)
register_mechanism("fork.fail", rate_attr="fork_failure_rate",
                   doc="a fork syscall fails after paying its block time")
register_mechanism("rpc.drop", rate_attr="rpc_drop_rate",
                   doc="a gateway/dispatcher invocation never answers")
register_mechanism("storage.read", rate_attr="storage_error_rate",
                   doc="an object-store get errors after the base latency")
register_mechanism("storage.write", rate_attr="storage_error_rate",
                   doc="an object-store put errors after the base latency")
register_mechanism("pool.worker", rate_attr="pool_worker_crash_rate",
                   doc="a pre-forked pool worker dies and is respawned")
register_mechanism("straggler", rate_attr="straggler_rate",
                   doc="a function runs straggler_factor times slower")


@dataclass(frozen=True)
class OneShotFault:
    """Fail the ``occurrence``-th firing of ``mechanism`` exactly once.

    ``entity`` (substring match against the operation's entity name)
    restricts the fault to one sandbox/function/store; ``None`` matches any.
    """

    mechanism: str
    occurrence: int = 1
    entity: Optional[str] = None

    def __post_init__(self) -> None:
        mechanism_spec(self.mechanism)  # raises listing valid names
        if self.occurrence < 1:
            raise SimulationError(
                f"one-shot occurrence must be >= 1, got {self.occurrence}")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative fault configuration for one simulated run.

    Rates are probabilities per *opportunity* of the mechanism:

    * ``sandbox_crash_rate`` — per function execution; a hit kills the whole
      sandbox, so the co-location degree of the deployment model (1-to-1,
      wraps, many-to-1) sets the blast radius;
    * ``sandbox_reclaim_rate`` — per unit attempt; the lifecycle
      memory-pressure reclaimer takes the serving sandbox mid-flight.  A
      recoverable condition, not a failing dependency: the replacement
      boots through the lifecycle tiers and the sandbox.boot breaker is
      never fed (excluded from :meth:`uniform` for the same reason);
    * ``fork_failure_rate`` — per fork syscall;
    * ``rpc_drop_rate`` — per gateway/ASF invocation (the caller burns
      ``rpc_timeout_ms`` waiting before giving up);
    * ``storage_error_rate`` — per object-store put or get;
    * ``pool_worker_crash_rate`` — per pool task (the pool self-heals by
      respawning the worker, costing one interpreter startup);
    * ``straggler_rate`` — per function execution (the function runs
      ``straggler_factor`` times slower; no error is raised);
    * ``net_partition_rate`` — per cross-sandbox RPC or storage operation;
      a hit means the network path is cut (the caller burns
      ``rpc_timeout_ms`` on RPC, the base latency on storage).  Windowed
      machine-scale partitions are driven by
      :class:`repro.faults.domains.ChaosPlan` instead; this per-opportunity
      rate models residual packet-level flakiness inside one request.
    """

    seed: int = 0
    sandbox_crash_rate: float = 0.0
    sandbox_reclaim_rate: float = 0.0
    fork_failure_rate: float = 0.0
    rpc_drop_rate: float = 0.0
    storage_error_rate: float = 0.0
    pool_worker_crash_rate: float = 0.0
    straggler_rate: float = 0.0
    net_partition_rate: float = 0.0
    #: execution-time multiplier a straggler suffers
    straggler_factor: float = 4.0
    #: time a caller waits on a dropped RPC before raising
    rpc_timeout_ms: float = 200.0
    #: deterministic one-shot faults, evaluated before the rates
    scheduled: tuple[OneShotFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise SimulationError(f"fault seed must be >= 0, got {self.seed}")
        for name in self._rate_fields():
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_factor < 1.0:
            raise SimulationError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}")
        if self.rpc_timeout_ms < 0:
            raise SimulationError(
                f"rpc_timeout_ms must be >= 0, got {self.rpc_timeout_ms}")
        object.__setattr__(self, "scheduled", tuple(self.scheduled))

    # -- derived views --------------------------------------------------------
    @classmethod
    def _rate_fields(cls) -> tuple[str, ...]:
        """Registered rate attributes this plan actually carries."""
        return tuple(a for a in rate_attrs() if hasattr(cls, a))

    def rate_for(self, mechanism: str) -> float:
        """The plan's probability for one opportunity of ``mechanism``.

        Schedule-only mechanisms (``machine.*`` chaos events and any other
        registration without a ``rate_attr``) are never rate-drawn inside a
        per-request injector and report 0.0; unknown names raise, listing
        every registered mechanism.
        """
        spec = mechanism_spec(mechanism)
        if spec.rate_attr is None:
            return 0.0
        return getattr(self, spec.rate_attr, 0.0)

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything (zero-fault runs
        skip the injector entirely, keeping them bit-identical to a run
        with no plan at all)."""
        return (not self.scheduled
                and all(getattr(self, attr) == 0.0
                        for attr in self._rate_fields()))

    # -- construction helpers -------------------------------------------------
    @classmethod
    def uniform(cls, rate: float, *, seed: int = 0, **overrides) -> "FaultPlan":
        """The same rate on every error mechanism (stragglers stay off
        unless overridden) — the blast-radius experiment's sweep axis."""
        base = dict(sandbox_crash_rate=rate, fork_failure_rate=rate,
                    rpc_drop_rate=rate, storage_error_rate=rate,
                    pool_worker_crash_rate=rate, seed=seed)
        base.update(overrides)
        return cls(**base)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)
