"""The per-request fault injector: a seeded plan turned into concrete faults.

One :class:`FaultInjector` lives for exactly one ``Platform.run`` call.  It
owns the *only* RNG stream involved in fault injection, seeded from
``(plan.seed, fault_seed)``, and every runtime hook consumes that stream in
deterministic simulated-event order — so the same (plan, seed, workload)
triple always crashes the same sandbox at the same instant.  It also keeps
the request's fault ledger (injection counts, retries, wasted work), mirrored
into the tracer as typed events and ``faults.*``/``retries.*``/``work.*``
counters whenever detail tracing is on.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.simcore.monitor import TraceRecorder


class FaultInjector:
    """Draws faults from a :class:`FaultPlan` and keeps the request ledger."""

    def __init__(self, plan: FaultPlan, policy: Optional[RetryPolicy] = None,
                 *, seed: int = 0,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.plan = plan
        self.policy = policy or RetryPolicy()
        self.trace = trace
        self.rng = np.random.default_rng((plan.seed, seed))
        #: per-mechanism count of opportunities seen (one-shot bookkeeping)
        self._opportunities: Dict[str, int] = {}
        self._fired_shots: set[int] = set()
        # -- the ledger -------------------------------------------------------
        self.injected: Dict[str, int] = {}
        self.retries = 0
        self.exhausted = 0
        self.wasted_wall_ms = 0.0     # wall time thrown away by failed attempts
        self.rerun_work_ms = 0.0      # function work re-executed by retries

    # -- draw paths (each consumes the stream deterministically) ---------------
    def _scheduled_hit(self, mechanism: str, entity: str) -> bool:
        count = self._opportunities.get(mechanism, 0) + 1
        self._opportunities[mechanism] = count
        for i, shot in enumerate(self.plan.scheduled):
            if i in self._fired_shots or shot.mechanism != mechanism:
                continue
            if shot.entity is not None and shot.entity not in entity:
                continue
            if count == shot.occurrence:
                self._fired_shots.add(i)
                return True
        return False

    def fires(self, mechanism: str, entity: str) -> bool:
        """One opportunity for ``mechanism`` on ``entity``: does it fault?

        Scheduled one-shots are checked first; otherwise the plan's rate is
        drawn.  A hit is recorded immediately — callers raise/act right after.
        """
        if self._scheduled_hit(mechanism, entity):
            self.record_injected(mechanism, entity)
            return True
        rate = self.plan.rate_for(mechanism)
        if rate > 0.0 and self.rng.random() < rate:
            self.record_injected(mechanism, entity)
            return True
        return False

    def draw_crash(self, entity: str, n_functions: int,
                   expected_ms: float) -> Optional[float]:
        """Crash offset for one attempt of a unit, or ``None``.

        The unit's sandbox crashes iff *any* of its ``n_functions`` executions
        crashes — probability ``1 - (1-rate)**n`` — which is what makes blast
        radius grow with co-location.  The offset is uniform over the unit's
        expected runtime (a lower bound on the attempt's wall time, so a drawn
        crash always lands inside the attempt).  Recording is deferred to
        :meth:`record_injected` when the crash timer actually wins the race.
        """
        if self._scheduled_hit("sandbox.crash", entity):
            return 0.5 * max(expected_ms, 0.0)
        rate = self.plan.sandbox_crash_rate
        if rate <= 0.0 or n_functions <= 0:
            return None
        p_unit = 1.0 - (1.0 - rate) ** n_functions
        if self.rng.random() >= p_unit:
            return None
        return float(self.rng.random()) * max(expected_ms, 0.0)

    def draw_reclaim(self, entity: str, n_functions: int,
                     expected_ms: float) -> Optional[float]:
        """Mid-flight reclaim offset for one attempt of a unit, or ``None``.

        The lifecycle memory-pressure reclaimer takes the serving sandbox at
        a policy-driven instant, uniform over the attempt's expected
        runtime.  Drawn per unit attempt (the sandbox exists once, however
        many functions it bundles); units without a sandbox
        (``n_functions == 0``) never draw.  Recording is deferred to when
        the reclaim timer actually wins the race.
        """
        if self._scheduled_hit("sandbox.reclaim", entity):
            return 0.5 * max(expected_ms, 0.0)
        rate = self.plan.sandbox_reclaim_rate
        if rate <= 0.0 or n_functions <= 0:
            return None
        if self.rng.random() >= rate:
            return None
        return float(self.rng.random()) * max(expected_ms, 0.0)

    def straggler_scale(self, entity: str) -> float:
        """Slowdown multiplier for one function execution (usually 1.0)."""
        if self._scheduled_hit("straggler", entity):
            self.record_injected("straggler", entity)
            return self.plan.straggler_factor
        rate = self.plan.straggler_rate
        if rate > 0.0 and self.rng.random() < rate:
            self.record_injected("straggler", entity)
            return self.plan.straggler_factor
        return 1.0

    # -- ledger ---------------------------------------------------------------
    def record_injected(self, mechanism: str, entity: str) -> None:
        self.injected[mechanism] = self.injected.get(mechanism, 0) + 1
        trace = self.trace
        if trace is not None and trace.detail:
            trace.event("fault.injected", entity=entity, mechanism=mechanism)
            trace.metrics.inc("faults.injected")
            trace.metrics.inc(f"faults.injected.{mechanism}")

    def record_retry(self, entity: str, attempt: int, mechanism: str,
                     wasted_wall_ms: float, rerun_work_ms: float) -> None:
        """One failed attempt is being retried (``attempt`` just failed)."""
        self.retries += 1
        self.wasted_wall_ms += wasted_wall_ms
        self.rerun_work_ms += rerun_work_ms
        trace = self.trace
        if trace is not None and trace.detail:
            trace.event("retry.attempt", entity=entity, attempt=attempt,
                        mechanism=mechanism, wasted_ms=wasted_wall_ms)
            trace.metrics.inc("retries.attempted")
            trace.metrics.inc("work.wasted_ms", wasted_wall_ms)

    def record_exhausted(self, entity: str, attempts: int,
                         mechanism: str) -> None:
        self.exhausted += 1
        trace = self.trace
        if trace is not None and trace.detail:
            trace.event("retry.exhausted", entity=entity, attempts=attempts,
                        mechanism=mechanism)
            trace.metrics.inc("retries.exhausted")

    def summary(self) -> dict:
        """JSON-friendly ledger for :class:`RequestResult` and reports."""
        return {
            "injected": dict(sorted(self.injected.items())),
            "injected_total": sum(self.injected.values()),
            "retries": self.retries,
            "exhausted": self.exhausted,
            "wasted_wall_ms": self.wasted_wall_ms,
            "rerun_work_ms": self.rerun_work_ms,
        }
