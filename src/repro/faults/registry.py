"""The fault-mechanism registry: what *can* be injected, extensibly.

PR 2 froze the injectable vocabulary into a module-level ``MECHANISMS``
tuple; every new failure mode (lifecycle reclaims, machine crashes, network
partitions) then meant editing :mod:`repro.faults.plan` itself.  This module
replaces that closed list with a registration API: a subsystem that
introduces a namespaced mechanism (``machine.*``, ``net.*``...) registers it
at import time, and plan validation, rate lookup and one-shot scheduling all
consult the registry.

A :class:`MechanismSpec` ties the mechanism name to the
:class:`~repro.faults.plan.FaultPlan` attribute carrying its per-opportunity
rate (``rate_attr``).  Mechanisms without a rate attribute — cluster-scale
events like ``machine.crash`` that are driven by a
:class:`~repro.faults.domains.ChaosPlan` schedule rather than per-request
draws — are still valid targets for :class:`~repro.faults.plan.OneShotFault`
and simply rate 0.0 inside a per-request injector.

Unknown mechanisms keep failing loudly, with the error message listing every
registered name, exactly as the frozen tuple did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class MechanismSpec:
    """One registered fault mechanism.

    ``rate_attr`` names the :class:`~repro.faults.plan.FaultPlan` field
    holding the mechanism's per-opportunity probability; ``None`` means the
    mechanism is schedule-only (one-shots / chaos schedules, never a rate
    draw).  ``recoverable`` marks mechanisms whose hit is policy-driven
    rather than a failing dependency (they must not feed circuit breakers).
    """

    name: str
    rate_attr: Optional[str] = None
    doc: str = ""
    recoverable: bool = False


_REGISTRY: Dict[str, MechanismSpec] = {}


def register_mechanism(name: str, *, rate_attr: Optional[str] = None,
                       doc: str = "", recoverable: bool = False
                       ) -> MechanismSpec:
    """Register ``name`` as an injectable mechanism; returns its spec.

    Registration is idempotent for an identical spec (modules may be
    re-imported); re-registering a name with a *different* spec is an error —
    two subsystems fighting over one mechanism name is always a bug.
    """
    if (not name or name != name.strip() or name.lower() != name
            or any(c.isspace() for c in name)):
        raise SimulationError(
            f"mechanism name must be a lowercase dotted identifier, "
            f"got {name!r}")
    spec = MechanismSpec(name=name, rate_attr=rate_attr, doc=doc,
                         recoverable=recoverable)
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing != spec:
            raise SimulationError(
                f"fault mechanism {name!r} already registered with a "
                f"different spec ({existing} vs {spec})")
        return existing
    _REGISTRY[name] = spec
    return spec


def mechanism_names() -> tuple[str, ...]:
    """Every registered mechanism name, sorted (the valid-names message)."""
    return tuple(sorted(_REGISTRY))


def mechanism_spec(name: str) -> MechanismSpec:
    """The spec for ``name``; raises listing valid names when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown fault mechanism {name!r}; "
            f"expected one of {mechanism_names()}") from None


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def rate_attrs() -> tuple[str, ...]:
    """Every distinct FaultPlan rate attribute, sorted (``is_null`` scan)."""
    return tuple(sorted({s.rate_attr for s in _REGISTRY.values()
                         if s.rate_attr is not None}))
