"""Retry policies: how a platform reacts when an injected fault kills a unit.

The *unit* a policy re-runs is the platform's choice (one function for
1-to-1, the whole workflow for many-to-1, one wrap for Chiron's m-to-n) —
the policy itself only decides how many attempts to spend, how long to wait
between them, and whether a crashed sandbox reboots cold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and optional jitter.

    ``backoff_ms(attempt)`` for attempt ``a`` (1-based; the backoff is paid
    *before* attempt ``a+1``) is ``backoff_base_ms * backoff_factor**(a-1)``,
    scaled by ``1 + backoff_jitter*(2u-1)`` when an RNG is supplied.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 5.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.2
    #: wall-clock budget per attempt; ``None`` disables the deadline
    attempt_timeout_ms: Optional[float] = None
    #: whether a replacement sandbox after a crash boots cold
    reboot_cold: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_ms < 0:
            raise SimulationError(
                f"backoff_base_ms must be >= 0, got {self.backoff_base_ms}")
        if self.backoff_factor < 1.0:
            raise SimulationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise SimulationError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}")
        if self.attempt_timeout_ms is not None and self.attempt_timeout_ms <= 0:
            raise SimulationError(
                f"attempt_timeout_ms must be > 0, got {self.attempt_timeout_ms}")

    def backoff_ms(self, attempt: int, rng=None) -> float:
        """Delay before the attempt after ``attempt`` (1-based) failed."""
        if attempt < 1:
            raise SimulationError(f"attempt must be >= 1, got {attempt}")
        delay = self.backoff_base_ms * self.backoff_factor ** (attempt - 1)
        if rng is not None and self.backoff_jitter > 0:
            delay *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return delay


#: named policies the CLI's ``--policy`` flag resolves
PRESETS = {
    # balanced default: three tries, warm-ish backoff, cold reboot on crash
    "default": RetryPolicy(),
    # retry fast and often; keep replacement sandboxes warm
    "eager": RetryPolicy(max_attempts=5, backoff_base_ms=1.0,
                         backoff_factor=1.5, reboot_cold=False),
    # few, widely spaced attempts with a per-attempt deadline
    "patient": RetryPolicy(max_attempts=2, backoff_base_ms=50.0,
                           backoff_factor=4.0, attempt_timeout_ms=60_000.0),
    # no recovery: the first fault fails the request
    "none": RetryPolicy(max_attempts=1),
}


def preset(name: str) -> RetryPolicy:
    """Resolve a named policy (``default``/``eager``/``patient``/``none``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise SimulationError(
            f"unknown retry policy {name!r}; "
            f"expected one of {sorted(PRESETS)}") from None
