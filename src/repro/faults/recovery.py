"""The recovery driver: run one retryable unit under the active injector.

:func:`run_unit` is the single retry loop every platform shares; what differs
per platform is only the *unit* handed to it — one function (1-to-1), one
wrap part (Chiron's m-to-n), or the whole workflow (many-to-1) — which is how
blast radius becomes an emergent property of the deployment plan rather than
something the fault subsystem hard-codes.

When ``env.faults`` is ``None`` the driver degrades to a bare
``yield from make_attempt()``: no extra process, no RNG draw, no event —
the zero-overhead guarantee that keeps fault-free runs bit-identical.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import FaultError, RetryExhausted
from repro.simcore import Environment, Event


def run_unit(env: Environment,
             make_attempt: Callable[[], Generator[Event, None, object]],
             *, entity: str, n_functions: int = 0, unit_work_ms: float = 0.0,
             expected_ms: float = 0.0,
             on_restart: Optional[Callable[[str],
                                           Generator[Event, None, None]]] = None
             ) -> Generator[Event, None, object]:
    """Run ``make_attempt`` until it succeeds or the policy gives up.

    ``make_attempt`` is a zero-argument callable returning a *fresh* attempt
    generator.  ``n_functions``/``unit_work_ms``/``expected_ms`` describe the
    unit for the crash model and the wasted-work ledger (a unit with
    ``n_functions == 0`` — e.g. a bare storage exchange — never draws a
    sandbox crash but still retries faults raised inside the attempt).
    ``on_restart(mechanism)`` runs between attempts so the platform can
    replace a crashed sandbox (cold or warm per the retry policy).
    """
    faults = env.faults
    if faults is None:
        return (yield from make_attempt())

    policy = faults.policy
    attempt = 0
    crashed_in_unit = False
    while True:
        attempt += 1
        start = env.now
        mechanism: Optional[str] = None
        crash_at = faults.draw_crash(entity, n_functions, expected_ms)
        reclaim_at = faults.draw_reclaim(entity, n_functions, expected_ms)
        if (crash_at is None and reclaim_at is None
                and policy.attempt_timeout_ms is None):
            # Nothing to race against: drive the attempt inline so its event
            # schedule is identical to an un-instrumented run.
            try:
                value = yield from make_attempt()
            except RetryExhausted:
                raise
            except FaultError as exc:
                mechanism = exc.mechanism
            else:
                if crashed_in_unit and env.overload is not None:
                    # the replacement sandbox served the unit: close the
                    # sandbox.boot breaker
                    env.overload.record_success("sandbox.boot", entity)
                return value
        else:
            body = env.process(make_attempt(),
                               name=f"{entity}#attempt{attempt}")
            racers: list[Event] = [body]
            crash_timer = env.timeout(crash_at) if crash_at is not None else None
            if crash_timer is not None:
                racers.append(crash_timer)
            reclaim_timer = (env.timeout(reclaim_at)
                             if reclaim_at is not None else None)
            if reclaim_timer is not None:
                racers.append(reclaim_timer)
            deadline = (env.timeout(policy.attempt_timeout_ms)
                        if policy.attempt_timeout_ms is not None else None)
            if deadline is not None:
                racers.append(deadline)
            try:
                yield env.any_of(racers)
            except RetryExhausted:
                raise
            except FaultError as exc:
                mechanism = exc.mechanism
            else:
                if body.triggered and body.ok:
                    if crashed_in_unit and env.overload is not None:
                        env.overload.record_success("sandbox.boot", entity)
                    return body.value
                if crash_timer is not None and crash_timer.processed:
                    # the crash timer won the race: the drawn crash is real
                    mechanism = "sandbox.crash"
                    faults.record_injected("sandbox.crash", entity)
                elif reclaim_timer is not None and reclaim_timer.processed:
                    # the reclaimer took the serving sandbox mid-flight; a
                    # recoverable condition, so the breaker is not fed below
                    mechanism = "sandbox.reclaim"
                    faults.record_injected("sandbox.reclaim", entity)
                else:
                    mechanism = "attempt.timeout"
                # the abandoned body keeps running on the dead sandbox; its
                # eventual failure is defused by the already-fired AnyOf.

        if mechanism in ("sandbox.crash", "attempt.timeout"):
            crashed_in_unit = True
            if env.overload is not None:
                # consecutive crashes/timeouts feed the sandbox.boot breaker;
                # once it trips, replacement boots fast-fail instead of
                # paying another cold start
                env.overload.record_failure("sandbox.boot", entity)
        wasted_wall = env.now - start
        if attempt >= policy.max_attempts:
            faults.record_exhausted(entity, attempt, mechanism)
            raise RetryExhausted(
                f"{entity}: all {attempt} attempt(s) failed "
                f"(last fault: {mechanism})", mechanism)
        faults.record_retry(entity, attempt, mechanism,
                            wasted_wall, unit_work_ms)
        if on_restart is not None:
            restart = on_restart(mechanism)
            if restart is not None:  # plain callables may return None
                try:
                    yield from restart
                except FaultError:
                    # the restart itself fast-failed (open sandbox.boot
                    # breaker): skip the replacement, back off, and let the
                    # next attempt re-try the boot after the cooldown
                    pass
        delay = faults.policy.backoff_ms(attempt, faults.rng)
        if delay > 0:
            yield env.timeout(delay)
