"""Machine-scale failure domains: topology, chaos plans, fleet liveness.

PR 2's fault layer only speaks *intra-sandbox* events (a crash takes one
sandbox, a drop loses one RPC).  Chiron's m-to-n wraps concentrate many
functions into few sandboxes on few machines, so the robustness question the
paper never asks is machine-scale: what happens when a whole node, rack or
zone goes dark, or the network tears along a domain boundary?  This module
supplies that failure model:

* :class:`Topology` — machines grouped into racks inside zones, built on
  :class:`repro.runtime.machine.Machine` (which carries the liveness and
  domain fields);
* four namespaced mechanisms — ``machine.crash``, ``machine.recover``,
  ``domain.outage`` (correlated: every machine of a rack/zone), and
  ``net.partition`` (cross-domain RPC/storage paths cut for a window) —
  registered through the :mod:`repro.faults.registry` API;
* :class:`ChaosPlan` — declarative what/when, either explicitly scheduled
  (:class:`ChaosEvent`) or drawn from seeded per-machine crash rates with
  the same (plan, seed) ⇒ bit-identical-schedule contract as
  :class:`~repro.faults.plan.FaultPlan`;
* :class:`ChaosSchedule` — the compiled, sorted event list with interval
  queries (``down_intervals``, ``cut_intervals``) the HA replay math needs;
* :class:`FleetState` — applies a schedule to live machines as simulated
  time advances, emitting ``chaos.*`` counters and typed trace events.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.calibration import NODE_CORES, NODE_MEMORY_MB
from repro.errors import SimulationError
from repro.faults.registry import register_mechanism
from repro.runtime.machine import Machine

#: the machine-scale mechanisms (schedule-driven; ``net.partition`` also has
#: a per-opportunity rate on FaultPlan for packet-level flakiness)
register_mechanism("machine.crash",
                   doc="a worker machine dies; everything on it is lost")
register_mechanism("machine.recover",
                   doc="a dead machine rejoins the fleet, empty")
register_mechanism("domain.outage",
                   doc="correlated failure of every machine in a rack/zone")
register_mechanism("net.partition", rate_attr="net_partition_rate",
                   doc="cross-machine RPC/storage paths cut for a window")

#: typed events the chaos layer adds to traces (golden-trace schema)
CHAOS_EVENT_TYPES = ("machine.crash", "machine.recover", "domain.outage",
                     "net.partition", "net.heal")

#: counters the chaos layer increments (also schema-pinned)
CHAOS_COUNTERS = ("chaos.machine.crashes", "chaos.machine.recoveries",
                  "chaos.domain.outages", "chaos.net.partitions",
                  "chaos.machines.down")

Interval = Tuple[float, float]


# ---------------------------------------------------------------------------
# topology
# ---------------------------------------------------------------------------

class Topology:
    """Machines grouped into racks inside zones.

    Domains are addressed as ``"zone:<name>"`` or ``"rack:<name>"``; a bare
    machine name addresses the single machine.  Zone names default to
    ``z0, z1, ...``, racks to ``z0/r0, ...`` and machines to ``z0/r0/m0``
    so every name is globally unique and self-describing.
    """

    def __init__(self, machines: Sequence[Machine]) -> None:
        if not machines:
            raise SimulationError("topology needs at least one machine")
        self._machines: Dict[str, Machine] = {}
        for m in machines:
            if m.name in self._machines:
                raise SimulationError(f"duplicate machine name {m.name!r}")
            self._machines[m.name] = m

    @classmethod
    def grid(cls, *, zones: int = 2, racks_per_zone: int = 2,
             machines_per_rack: int = 2, cores: float = NODE_CORES,
             memory_mb: float = NODE_MEMORY_MB) -> "Topology":
        """A regular zones × racks × machines grid."""
        if zones < 1 or racks_per_zone < 1 or machines_per_rack < 1:
            raise SimulationError("grid dimensions must be >= 1")
        machines = []
        for z in range(zones):
            zone = f"z{z}"
            for r in range(racks_per_zone):
                rack = f"{zone}/r{r}"
                for k in range(machines_per_rack):
                    machines.append(Machine(f"{rack}/m{k}", cores=cores,
                                            memory_mb=memory_mb,
                                            zone=zone, rack=rack))
        return cls(machines)

    @property
    def machines(self) -> list[Machine]:
        return list(self._machines.values())

    @property
    def machine_names(self) -> tuple[str, ...]:
        return tuple(self._machines)

    def machine(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError:
            raise SimulationError(
                f"unknown machine {name!r}; known: "
                f"{sorted(self._machines)}") from None

    @property
    def zones(self) -> tuple[str, ...]:
        return tuple(sorted({m.zone for m in self._machines.values()}))

    @property
    def racks(self) -> tuple[str, ...]:
        return tuple(sorted({m.rack for m in self._machines.values()}))

    def members(self, target: str) -> tuple[str, ...]:
        """Machine names addressed by ``target``.

        ``"zone:z0"`` / ``"rack:z0/r1"`` expand to domain membership; a bare
        machine name resolves to itself.  Unknown targets raise, listing
        what exists.
        """
        if target.startswith("zone:"):
            zone = target[len("zone:"):]
            names = tuple(n for n, m in self._machines.items()
                          if m.zone == zone)
            if not names:
                raise SimulationError(f"unknown zone {zone!r}; "
                                      f"known: {list(self.zones)}")
            return names
        if target.startswith("rack:"):
            rack = target[len("rack:"):]
            names = tuple(n for n, m in self._machines.items()
                          if m.rack == rack)
            if not names:
                raise SimulationError(f"unknown rack {rack!r}; "
                                      f"known: {list(self.racks)}")
            return names
        return (self.machine(target).name,)

    def alive(self, name: str) -> bool:
        return self.machine(name).alive


# ---------------------------------------------------------------------------
# chaos plans and compiled schedules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosEvent:
    """One machine-scale fault at an exact simulated instant.

    ``mechanism`` is one of the four registered machine-scale mechanisms.
    ``target`` is a machine name or ``zone:``/``rack:`` domain.
    ``duration_ms`` bounds the window for ``machine.crash``,
    ``domain.outage`` and ``net.partition`` (0 for ``machine.recover``,
    which is instantaneous; a crash with duration 0 never auto-recovers).
    """

    at_ms: float
    mechanism: str
    target: str
    duration_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.mechanism not in ("machine.crash", "machine.recover",
                                  "domain.outage", "net.partition"):
            raise SimulationError(
                f"chaos events only speak machine-scale mechanisms, "
                f"got {self.mechanism!r}")
        if self.at_ms < 0 or self.duration_ms < 0:
            raise SimulationError("chaos event times must be >= 0")


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded, declarative machine-scale fault configuration.

    ``scheduled`` events are taken verbatim; stochastic crashes are drawn
    per machine from ``machine_crash_rate_per_min`` (exponential
    inter-arrival, downtime ``machine_downtime_ms``) using an RNG stream
    seeded from ``(seed, machine index)`` — the same (plan, topology)
    always compiles to the same schedule, bit for bit.
    """

    seed: int = 0
    duration_ms: float = 60_000.0
    scheduled: tuple[ChaosEvent, ...] = field(default_factory=tuple)
    machine_crash_rate_per_min: float = 0.0
    machine_downtime_ms: float = 5_000.0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise SimulationError(f"chaos seed must be >= 0, got {self.seed}")
        if self.duration_ms <= 0:
            raise SimulationError("chaos duration must be > 0")
        if self.machine_crash_rate_per_min < 0:
            raise SimulationError("machine crash rate must be >= 0")
        if self.machine_downtime_ms <= 0:
            raise SimulationError("machine downtime must be > 0")
        object.__setattr__(self, "scheduled", tuple(self.scheduled))

    # -- construction helpers -------------------------------------------------
    def with_event(self, event: ChaosEvent) -> "ChaosPlan":
        return replace(self, scheduled=self.scheduled + (event,))

    def kill(self, machine: str, at_ms: float,
             down_ms: float) -> "ChaosPlan":
        return self.with_event(ChaosEvent(at_ms, "machine.crash", machine,
                                          down_ms))

    def outage(self, domain: str, at_ms: float,
               down_ms: float) -> "ChaosPlan":
        return self.with_event(ChaosEvent(at_ms, "domain.outage", domain,
                                          down_ms))

    def partition(self, domain: str, at_ms: float,
                  down_ms: float) -> "ChaosPlan":
        return self.with_event(ChaosEvent(at_ms, "net.partition", domain,
                                          down_ms))

    @property
    def is_null(self) -> bool:
        return not self.scheduled and self.machine_crash_rate_per_min == 0.0

    def compile(self, topology: Topology) -> "ChaosSchedule":
        """Expand the plan into a deterministic, sorted event schedule."""
        events: List[ChaosEvent] = list(self.scheduled)
        if self.machine_crash_rate_per_min > 0.0:
            mean_gap_ms = 60_000.0 / self.machine_crash_rate_per_min
            for idx, name in enumerate(topology.machine_names):
                rng = np.random.default_rng((self.seed, idx))
                t = float(rng.exponential(mean_gap_ms))
                while t < self.duration_ms:
                    events.append(ChaosEvent(round(t, 6), "machine.crash",
                                             name, self.machine_downtime_ms))
                    t += self.machine_downtime_ms
                    t += float(rng.exponential(mean_gap_ms))
        events.sort(key=lambda e: (e.at_ms, e.mechanism, e.target))
        return ChaosSchedule(self, topology, tuple(events))


def _merge(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort and coalesce overlapping windows."""
    merged: List[Interval] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


class ChaosSchedule:
    """A compiled chaos plan: sorted events plus interval queries.

    The interval views are what the HA replay math consumes: *when is this
    machine dark* and *when is the path between these two machines cut*.
    A crash with ``duration_ms == 0`` (no auto-recovery) is open-ended
    until a later explicit ``machine.recover`` or the schedule horizon.
    """

    def __init__(self, plan: ChaosPlan, topology: Topology,
                 events: tuple[ChaosEvent, ...]) -> None:
        self.plan = plan
        self.topology = topology
        self.events = events
        self._down: Dict[str, tuple[Interval, ...]] = {}
        self._partitions: List[Tuple[Interval, frozenset]] = []
        self._build()

    def _build(self) -> None:
        horizon = self.plan.duration_ms
        raw: Dict[str, List[Interval]] = {n: []
                                          for n in self.topology.machine_names}
        open_since: Dict[str, float] = {}
        for ev in self.events:
            if ev.mechanism in ("machine.crash", "domain.outage"):
                for name in self.topology.members(ev.target):
                    if ev.duration_ms > 0:
                        raw[name].append((ev.at_ms,
                                          ev.at_ms + ev.duration_ms))
                    else:
                        open_since.setdefault(name, ev.at_ms)
            elif ev.mechanism == "machine.recover":
                for name in self.topology.members(ev.target):
                    start = open_since.pop(name, None)
                    if start is not None:
                        raw[name].append((start, ev.at_ms))
            elif ev.mechanism == "net.partition":
                window = (ev.at_ms, ev.at_ms + (ev.duration_ms or horizon))
                side = frozenset(self.topology.members(ev.target))
                self._partitions.append((window, side))
        for name, start in open_since.items():
            raw[name].append((start, horizon))
        self._down = {name: _merge(iv) for name, iv in raw.items()}

    # -- machine liveness ------------------------------------------------------
    def down_intervals(self, machine: str) -> tuple[Interval, ...]:
        return self._down.get(machine, ())

    def is_down(self, machine: str, t_ms: float) -> bool:
        return any(s <= t_ms < e for s, e in self.down_intervals(machine))

    def down_during(self, machine: str, start_ms: float,
                    end_ms: float) -> Optional[Interval]:
        """The first outage window overlapping [start, end), or ``None``."""
        for s, e in self.down_intervals(machine):
            if s < end_ms and e > start_ms:
                return (s, e)
        return None

    def next_up(self, machine: str, t_ms: float) -> float:
        """Earliest instant >= t at which ``machine`` is alive."""
        t = t_ms
        for s, e in self.down_intervals(machine):
            if s <= t < e:
                t = e
        return t

    # -- network paths ---------------------------------------------------------
    def cut_intervals(self, a: str, b: str) -> tuple[Interval, ...]:
        """Windows during which the a<->b path is partitioned.

        A partition isolates a domain: the path is cut iff exactly one of
        the two machines is inside the partitioned side.  Same-machine
        paths are never cut.
        """
        if a == b:
            return ()
        cuts = [window for window, side in self._partitions
                if (a in side) != (b in side)]
        return _merge(cuts)

    def path_cut_during(self, a: str, b: str, start_ms: float,
                        end_ms: float) -> Optional[Interval]:
        for s, e in self.cut_intervals(a, b):
            if s < end_ms and e > start_ms:
                return (s, e)
        return None

    def path_restored_at(self, a: str, b: str, t_ms: float) -> float:
        t = t_ms
        for s, e in self.cut_intervals(a, b):
            if s <= t < e:
                t = e
        return t

    # -- whole-fleet views -----------------------------------------------------
    def interruptions(self, machines: Sequence[str], start_ms: float,
                      end_ms: float, *, origin: Optional[str] = None
                      ) -> Optional[tuple[float, str, str]]:
        """Earliest failure hitting any of ``machines`` in [start, end).

        Returns ``(at_ms, kind, machine)`` where kind is ``"down"`` (the
        machine is dark) or ``"cut"`` (the path from ``origin`` to the
        machine is partitioned), or ``None`` when the window is clean.
        A machine already dark / cut at ``start_ms`` interrupts at
        ``start_ms``.
        """
        best: Optional[tuple[float, str, str]] = None
        for name in machines:
            window = self.down_during(name, start_ms, end_ms)
            if window is not None:
                hit = (max(window[0], start_ms), "down", name)
                if best is None or hit < best:
                    best = hit
            if origin is not None and origin != name:
                cut = self.path_cut_during(origin, name, start_ms, end_ms)
                if cut is not None:
                    hit = (max(cut[0], start_ms), "cut", name)
                    if best is None or hit < best:
                        best = hit
        return best


# ---------------------------------------------------------------------------
# live fleet state
# ---------------------------------------------------------------------------

class FleetState:
    """Applies a compiled schedule to the topology's live machines.

    :meth:`advance` replays every event up to the given instant onto the
    :class:`~repro.runtime.machine.Machine` objects (``fail``/``recover``),
    keeps the set of active partitions, emits ``chaos.*`` counters and
    typed trace events, and invokes ``on_event`` callbacks — the hook the
    control plane's machine-health monitor subscribes to.
    """

    def __init__(self, schedule: ChaosSchedule, *, trace=None,
                 on_event: Optional[Callable[[ChaosEvent], None]] = None
                 ) -> None:
        from repro.obs.metrics import Registry

        self.schedule = schedule
        self.topology = schedule.topology
        self.trace = trace
        self.metrics = (trace.metrics if trace is not None
                        and hasattr(trace, "metrics") else Registry())
        self._callbacks: List[Callable[[ChaosEvent], None]] = []
        if on_event is not None:
            self._callbacks.append(on_event)
        self.now = 0.0
        self._cursor = 0
        # local copy: auto-recoveries are spliced in as crashes apply, and
        # one schedule may drive several independent fleet replays
        self._pending = list(schedule.events)
        self._times = [e.at_ms for e in self._pending]
        #: currently partitioned sides (window end, member set)
        self._active_partitions: List[Tuple[float, frozenset]] = []
        self.crashes = 0
        self.recoveries = 0
        self.outages = 0
        self.partitions = 0

    def subscribe(self, callback: Callable[[ChaosEvent], None]) -> None:
        self._callbacks.append(callback)

    def _emit(self, name: str, counter: str, **tags: object) -> None:
        self.metrics.inc(counter)
        if self.trace is not None:
            self.trace.event(name, entity="fleet", **tags)

    def advance(self, to_ms: float) -> list[ChaosEvent]:
        """Apply every event with ``at_ms <= to_ms``; returns those applied."""
        if to_ms < self.now:
            raise SimulationError(
                f"fleet time cannot run backwards ({to_ms} < {self.now})")
        self.now = to_ms
        applied: List[ChaosEvent] = []
        # one event at a time: applying a windowed crash splices its
        # recovery into the pending tail, which may itself fall <= to_ms
        while (self._cursor < len(self._times)
               and self._times[self._cursor] <= to_ms):
            ev = self._pending[self._cursor]
            self._cursor += 1
            self._apply(ev)
            applied.append(ev)
            for callback in self._callbacks:
                callback(ev)
        self._active_partitions = [(until, side) for until, side
                                   in self._active_partitions
                                   if until > to_ms]
        return applied

    def _apply(self, ev: ChaosEvent) -> None:
        members = self.topology.members(ev.target)
        if ev.mechanism == "machine.crash":
            for name in members:
                self.topology.machine(name).fail(ev.at_ms)
            self.crashes += 1
            self._emit("machine.crash", "chaos.machine.crashes",
                       target=ev.target, at_ms=ev.at_ms)
            if ev.duration_ms > 0:
                self._schedule_recovery(ev)
        elif ev.mechanism == "domain.outage":
            for name in members:
                self.topology.machine(name).fail(ev.at_ms)
            self.outages += 1
            self._emit("domain.outage", "chaos.domain.outages",
                       target=ev.target, at_ms=ev.at_ms,
                       machines=len(members))
            if ev.duration_ms > 0:
                self._schedule_recovery(ev)
        elif ev.mechanism == "machine.recover":
            for name in members:
                self.topology.machine(name).recover(ev.at_ms)
            self.recoveries += 1
            self._emit("machine.recover", "chaos.machine.recoveries",
                       target=ev.target, at_ms=ev.at_ms)
        elif ev.mechanism == "net.partition":
            until = ev.at_ms + (ev.duration_ms
                                or self.schedule.plan.duration_ms)
            self._active_partitions.append((until, frozenset(members)))
            self.partitions += 1
            self._emit("net.partition", "chaos.net.partitions",
                       target=ev.target, at_ms=ev.at_ms,
                       until_ms=until)

    def _schedule_recovery(self, ev: ChaosEvent) -> None:
        """Windowed crashes/outages recover when time passes their end."""
        recover = ChaosEvent(ev.at_ms + ev.duration_ms, "machine.recover",
                             ev.target)
        # splice into the pending tail, keeping times sorted
        at = max(bisect.bisect_right(self._times, recover.at_ms),
                 self._cursor)
        self._pending.insert(at, recover)
        self._times.insert(at, recover.at_ms)

    # -- queries ---------------------------------------------------------------
    def up(self, machine: str) -> bool:
        return self.topology.machine(machine).alive

    def reachable(self, a: str, b: str) -> bool:
        if a == b:
            return True
        for _until, side in self._active_partitions:
            if (a in side) != (b in side):
                return False
        return True

    @property
    def machines_down(self) -> int:
        return sum(1 for m in self.topology.machines if not m.alive)
