"""Analytic reliability model + the manager's graceful-degradation knob.

Retries stretch tail latency: a unit that fails with probability ``p`` needs
``a`` attempts before the failure probability drops below the percentile of
interest, and every extra attempt re-pays the unit's runtime plus backoff.
:func:`adjusted_p99_ms` turns a deployment plan + fault plan into that tail
estimate, and :func:`split_largest_wrap` / :func:`degrade_until_slo` give the
manager a reliability-aware PGP knob: when the fault-adjusted p99 blows the
SLO, shrink the biggest wrap (smaller blast radius, more sandboxes) until the
estimate fits or nothing is left to split.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Optional

from repro.core.wrap import (DeploymentPlan, ProcessAssignment,
                             StageAssignment, Wrap)
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.workflow.model import Workflow

#: tail percentile the adjustment targets (p99 -> 1% residual failure mass)
_TAIL_RESIDUAL = 0.01


#: sanity bound on the attempts estimate (p_fail near 1 would diverge)
_MAX_TAIL_ATTEMPTS = 12


def _attempts_for_tail(p_fail: float) -> int:
    """Attempts until the residual failure probability dips below 1%.

    Deliberately *not* capped by the retry policy's ``max_attempts``: if the
    policy gives up earlier, the residual mass is failed requests — an SLO
    breach either way — so the estimate must stay sensitive to unit width
    for the degrade loop to see that smaller wraps need fewer attempts.
    """
    if p_fail <= 0.0:
        return 1
    if p_fail >= 1.0:
        return _MAX_TAIL_ATTEMPTS
    needed = math.ceil(math.log(_TAIL_RESIDUAL) / math.log(p_fail))
    return max(1, min(int(needed), _MAX_TAIL_ATTEMPTS))


def unit_failure_prob(fault_plan: FaultPlan, n_functions: int) -> float:
    """Probability one attempt of an ``n_functions``-wide unit fails.

    Sandbox crashes and fork failures are the mechanisms that abort a unit
    outright (RPC drops and storage errors happen on exchange paths whose
    retries are narrow); each of the unit's functions is one opportunity.
    """
    p_ok_per_fn = ((1.0 - fault_plan.sandbox_crash_rate)
                   * (1.0 - fault_plan.fork_failure_rate))
    return 1.0 - p_ok_per_fn ** max(n_functions, 0)


def adjusted_p99_ms(workflow: Workflow, plan: DeploymentPlan,
                    fault_plan: FaultPlan, policy: RetryPolicy,
                    base_ms: float) -> float:
    """Fault-adjusted p99 estimate for ``plan``.

    Per stage, each wrap's part is one retry unit; the stage's tail cost is
    the worst part's ``(attempts-1)`` re-runs of its expected runtime plus
    the deterministic backoff schedule.  Stage costs add along the workflow.
    """
    if fault_plan.is_null:
        return base_ms
    extra = 0.0
    for stage_index in range(len(workflow.stages)):
        worst = 0.0
        for _, sa in plan.stage_wraps(stage_index):
            names = sa.function_names
            p_fail = unit_failure_prob(fault_plan, len(names))
            attempts = _attempts_for_tail(p_fail)
            if attempts <= 1:
                continue
            unit_ms = max(workflow.function(n).behavior.solo_ms
                          for n in names)
            cost = (attempts - 1) * unit_ms
            cost += sum(policy.backoff_ms(a) for a in range(1, attempts))
            worst = max(worst, cost)
        extra += worst
    return base_ms + extra


def _split_wrap(target: Wrap) -> Optional[tuple[Wrap, Wrap]]:
    """Halve one wrap's widest stages; ``None`` when no stage can split."""
    a_stages: list[StageAssignment] = []
    b_stages: list[StageAssignment] = []
    for sa in target.stages:
        procs = list(sa.processes)
        if len(procs) >= 2:
            mid = (len(procs) + 1) // 2
            a_procs, b_procs = procs[:mid], procs[mid:]
        elif len(procs[0].functions) >= 2:
            fns = procs[0].functions
            mid = (len(fns) + 1) // 2
            a_procs = [ProcessAssignment(fns[:mid], procs[0].mode)]
            b_procs = [ProcessAssignment(fns[mid:], procs[0].mode)]
        else:
            a_procs, b_procs = procs, []
        if a_procs:
            a_stages.append(StageAssignment(sa.stage_index, tuple(a_procs)))
        if b_procs:
            b_stages.append(StageAssignment(sa.stage_index, tuple(b_procs)))
    if not b_stages:
        return None
    return Wrap(target.name, tuple(a_stages)), Wrap(target.name,
                                                    tuple(b_stages))


def split_largest_wrap(plan: DeploymentPlan) -> Optional[DeploymentPlan]:
    """Split the plan's widest splittable wrap in two; ``None`` if none can.

    Candidates are tried widest-first — a wrap whose functions all sit in
    separate stages cannot shrink (each retry unit is one wrap-stage part,
    already one function wide), so the next-widest wrap gets its turn.
    Process groups are divided between the halves per stage; a stage held by
    a single multi-function group splits that group's threads instead.  The
    first half keeps the original wrap name, the second gets a fresh
    ``<name>.rN`` name; explicit core counts for the split wrap are dropped
    so both halves fall back to their process peaks.
    """
    candidates = sorted(plan.wraps, key=lambda w: len(w.function_names),
                        reverse=True)
    for target in candidates:
        if len(target.function_names) < 2:
            return None  # sorted: everything after is just as narrow
        halves = _split_wrap(target)
        if halves is None:
            continue
        existing = {w.name for w in plan.wraps}
        n = 1
        while f"{target.name}.r{n}" in existing:
            n += 1
        half_a = replace(halves[0], name=target.name)
        half_b = replace(halves[1], name=f"{target.name}.r{n}")
        wraps: list[Wrap] = []
        for wrap in plan.wraps:
            if wrap is target:
                wraps.extend((half_a, half_b))
            else:
                wraps.append(wrap)
        cores = {name: c for name, c in plan.cores.items()
                 if name != target.name}
        return DeploymentPlan(
            workflow_name=plan.workflow_name, wraps=tuple(wraps), cores=cores,
            pool_workers=plan.pool_workers,
            predicted_latency_ms=plan.predicted_latency_ms,
            slo_ms=plan.slo_ms)
    return None


def degrade_until_slo(workflow: Workflow, plan: DeploymentPlan,
                      fault_plan: FaultPlan, policy: RetryPolicy,
                      slo_ms: float,
                      predict: Callable[[DeploymentPlan], float],
                      ) -> tuple[DeploymentPlan, float, int]:
    """Shrink wraps until the fault-adjusted p99 fits the SLO.

    ``predict(plan)`` supplies the fault-free latency estimate for each
    candidate.  Returns ``(plan, adjusted_p99_ms, splits_performed)`` — the
    original plan untouched when it already fits (or faults are off).
    """
    adjusted = adjusted_p99_ms(workflow, plan, fault_plan, policy,
                               predict(plan))
    splits = 0
    while adjusted > slo_ms:
        candidate = split_largest_wrap(plan)
        if candidate is None:
            break
        base = predict(candidate)
        cand_adjusted = adjusted_p99_ms(workflow, candidate, fault_plan,
                                        policy, base)
        if cand_adjusted >= adjusted:
            break   # splitting stopped helping; keep the better plan
        candidate = replace(candidate, predicted_latency_ms=base)
        plan, adjusted = candidate, cand_adjusted
        splits += 1
    return plan, adjusted, splits
