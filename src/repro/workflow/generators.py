"""Seeded random workflow generation for property-based tests and sweeps."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workflow.behavior import FunctionBehavior, Segment, SegmentKind
from repro.workflow.model import FunctionSpec, Stage, Workflow


def random_behavior(rng: np.random.Generator, *,
                    max_segments: int = 6,
                    max_segment_ms: float = 20.0) -> FunctionBehavior:
    """A random alternating CPU/IO behaviour with at least one segment."""
    n = int(rng.integers(1, max_segments + 1))
    start_kind = SegmentKind.CPU if rng.random() < 0.5 else SegmentKind.IO
    kinds = [start_kind if i % 2 == 0 else
             (SegmentKind.IO if start_kind is SegmentKind.CPU else SegmentKind.CPU)
             for i in range(n)]
    durations = rng.uniform(0.05, max_segment_ms, size=n)
    return FunctionBehavior(
        [Segment(k, float(d)) for k, d in zip(kinds, durations)],
        data_out_mb=float(rng.uniform(0.001, 1.0)))


def random_workflow(seed: int = 0, *,
                    max_stages: int = 5,
                    max_parallelism: int = 8,
                    max_segment_ms: float = 20.0,
                    name: Optional[str] = None) -> Workflow:
    """A random staged workflow; identical seeds yield identical workflows."""
    rng = np.random.default_rng(seed)
    n_stages = int(rng.integers(1, max_stages + 1))
    stages = []
    for i in range(n_stages):
        width = int(rng.integers(1, max_parallelism + 1))
        fns = [FunctionSpec(name=f"s{i}-f{j}",
                            behavior=random_behavior(
                                rng, max_segment_ms=max_segment_ms))
               for j in range(width)]
        stages.append(Stage(f"stage-{i}", fns))
    return Workflow(name or f"random-{seed}", stages)
