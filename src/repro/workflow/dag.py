"""Arbitrary-edge DAGs and their reduction to staged workflows.

The paper treats workflows as stage sequences; real definitions (AWS Step
Functions, OpenWhisk compositions) are general DAGs.  :class:`Dag` validates
acyclicity and *levels* the graph — every node is placed in the stage equal
to its longest distance from a source — which preserves all dependencies
while exposing maximal per-stage parallelism.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import WorkflowError
from repro.workflow.model import FunctionSpec, Stage, Workflow


class Dag:
    """A directed acyclic graph of :class:`FunctionSpec` nodes."""

    def __init__(self) -> None:
        self._nodes: Dict[str, FunctionSpec] = {}
        self._succ: Dict[str, set[str]] = {}
        self._pred: Dict[str, set[str]] = {}

    # -- construction -----------------------------------------------------
    def add_function(self, spec: FunctionSpec) -> "Dag":
        if spec.name in self._nodes:
            raise WorkflowError(f"duplicate function {spec.name!r}")
        self._nodes[spec.name] = spec
        self._succ[spec.name] = set()
        self._pred[spec.name] = set()
        return self

    def add_edge(self, src: str, dst: str) -> "Dag":
        """Declare that ``dst`` consumes ``src``'s output."""
        for name in (src, dst):
            if name not in self._nodes:
                raise WorkflowError(f"unknown function {name!r}")
        if src == dst:
            raise WorkflowError(f"self-edge on {src!r}")
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        if self._has_cycle():
            self._succ[src].discard(dst)
            self._pred[dst].discard(src)
            raise WorkflowError(f"edge {src!r}->{dst!r} creates a cycle")
        return self

    # -- queries ------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def successors(self, name: str) -> frozenset[str]:
        return frozenset(self._succ[name])

    def predecessors(self, name: str) -> frozenset[str]:
        return frozenset(self._pred[name])

    def sources(self) -> list[str]:
        return [n for n, p in self._pred.items() if not p]

    def sinks(self) -> list[str]:
        return [n for n, s in self._succ.items() if not s]

    def _has_cycle(self) -> bool:
        # Kahn's algorithm: if we cannot consume every node, there is a cycle.
        indeg = {n: len(p) for n, p in self._pred.items()}
        frontier = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for nxt in self._succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    frontier.append(nxt)
        return seen != len(self._nodes)

    def topological_order(self) -> list[str]:
        """Deterministic topological order (insertion order breaks ties)."""
        indeg = {n: len(p) for n, p in self._pred.items()}
        order: list[str] = []
        frontier = [n for n in self._nodes if indeg[n] == 0]
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for nxt in self._nodes:          # deterministic iteration
                if nxt in self._succ[node]:
                    indeg[nxt] -= 1
                    if indeg[nxt] == 0:
                        frontier.append(nxt)
        if len(order) != len(self._nodes):
            raise WorkflowError("graph contains a cycle")
        return order

    def levels(self) -> Dict[str, int]:
        """Longest-path-from-source level of every node."""
        level: Dict[str, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        return level

    # -- conversion -----------------------------------------------------------
    def to_workflow(self, name: str) -> Workflow:
        """Level the DAG into a staged :class:`Workflow`."""
        if not self._nodes:
            raise WorkflowError("empty DAG")
        levels = self.levels()
        depth = max(levels.values()) + 1
        stages = []
        for i in range(depth):
            members = [self._nodes[n] for n in self._nodes if levels[n] == i]
            stages.append(Stage(f"stage-{i}", members))
        return Workflow(name, stages)

    @classmethod
    def from_workflow(cls, workflow: Workflow) -> "Dag":
        """Staged workflow -> DAG with full bipartite inter-stage edges."""
        dag = cls()
        for stage in workflow:
            for fn in stage:
                dag.add_function(fn)
        for prev, nxt in zip(workflow.stages, workflow.stages[1:]):
            for a in prev:
                for b in nxt:
                    dag.add_edge(a.name, b.name)
        return dag
