"""Function execution behaviour: alternating CPU and blocking-I/O segments.

This is the representation the paper's Profiler produces (§3.2, Figure 10):
strace yields the start timestamp and duration of every blocking syscall;
everything between block periods is CPU time.  The Predictor's Algorithm 1
replays these segments under simulated GIL switching, and the runtime
substrate executes them on simulated cores.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ProfilingError


class SegmentKind(enum.Enum):
    """What a segment occupies: a core (CPU) or nothing (blocking I/O)."""

    CPU = "cpu"
    IO = "io"


@dataclass(frozen=True)
class Segment:
    """One homogeneous period of function execution."""

    kind: SegmentKind
    duration_ms: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.duration_ms) or self.duration_ms < 0:
            raise ProfilingError(
                f"segment duration must be finite and >= 0, got {self.duration_ms}")


class FunctionBehavior:
    """An immutable sequence of :class:`Segment` describing a solo run.

    Convenience constructors::

        FunctionBehavior.cpu(2.0)                      # pure compute
        FunctionBehavior.io(15.0)                      # pure blocking I/O
        FunctionBehavior.of(("cpu", 1.0), ("io", 5.0)) # mixed

    ``data_out_mb`` is the size of the intermediate output the function hands
    to its successors (drives interaction-overhead modelling, Figure 4).
    """

    __slots__ = ("_segments", "data_out_mb", "memory_mb", "_fp")

    def __init__(self, segments: Iterable[Segment], *,
                 data_out_mb: float = 0.01, memory_mb: float = 0.0) -> None:
        segs = tuple(segments)
        if not segs:
            raise ProfilingError("a behaviour needs at least one segment")
        if data_out_mb < 0 or memory_mb < 0:
            raise ProfilingError("data_out_mb / memory_mb must be >= 0")
        self._segments = segs
        self.data_out_mb = float(data_out_mb)
        self.memory_mb = float(memory_mb)
        self._fp: Optional[tuple] = None

    # -- constructors -------------------------------------------------------
    @classmethod
    def cpu(cls, duration_ms: float, **kw: float) -> "FunctionBehavior":
        return cls([Segment(SegmentKind.CPU, duration_ms)], **kw)

    @classmethod
    def io(cls, duration_ms: float, **kw: float) -> "FunctionBehavior":
        return cls([Segment(SegmentKind.IO, duration_ms)], **kw)

    @classmethod
    def of(cls, *pairs: tuple[str, float], **kw: float) -> "FunctionBehavior":
        """Build from ``("cpu"|"io", duration_ms)`` pairs."""
        return cls([Segment(SegmentKind(kind), dur) for kind, dur in pairs], **kw)

    # -- inspection -----------------------------------------------------------
    @property
    def segments(self) -> tuple[Segment, ...]:
        return self._segments

    @property
    def cpu_ms(self) -> float:
        """Total CPU time of a solo run."""
        return sum(s.duration_ms for s in self._segments
                   if s.kind is SegmentKind.CPU)

    @property
    def io_ms(self) -> float:
        """Total blocking time of a solo run."""
        return sum(s.duration_ms for s in self._segments
                   if s.kind is SegmentKind.IO)

    @property
    def solo_ms(self) -> float:
        """Uncontended end-to-end latency (sum of all segments)."""
        return self.cpu_ms + self.io_ms

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionBehavior):
            return NotImplemented
        return (self._segments == other._segments
                and self.data_out_mb == other.data_out_mb
                and self.memory_mb == other.memory_mb)

    def __hash__(self) -> int:
        return hash((self._segments, self.data_out_mb, self.memory_mb))

    def __repr__(self) -> str:
        parts = ",".join(f"{s.kind.value}:{s.duration_ms:g}" for s in self._segments)
        return f"FunctionBehavior({parts})"

    def fingerprint(self) -> tuple:
        """Canonical hashable identity of this behaviour.

        A nested tuple of primitives (segment kinds/durations plus the data
        and memory footprints), so equal behaviours — however constructed —
        produce equal fingerprints.  Keys the stage-level prediction cache
        (see :class:`repro.core.predictor.PredictionCache`); computed once
        and memoized, since fingerprinting sits on PGP's hot path.
        """
        fp = self._fp
        if fp is None:
            fp = (tuple((s.kind.value, s.duration_ms)
                        for s in self._segments),
                  self.data_out_mb, self.memory_mb)
            self._fp = fp
        return fp

    # -- transforms -----------------------------------------------------------
    def scaled(self, cpu_factor: float = 1.0, io_factor: float = 1.0
               ) -> "FunctionBehavior":
        """A copy with CPU/IO segment durations multiplied by the factors.

        Used for isolation-mechanism execution overheads (Table 1): MPK adds
        +35.2 % CPU / +7.3 % IO, SFI +52.9 % / +29.4 %.
        """
        if cpu_factor < 0 or io_factor < 0:
            raise ProfilingError("scale factors must be >= 0")
        factor = {SegmentKind.CPU: cpu_factor, SegmentKind.IO: io_factor}
        return FunctionBehavior(
            (Segment(s.kind, s.duration_ms * factor[s.kind]) for s in self._segments),
            data_out_mb=self.data_out_mb, memory_mb=self.memory_mb)

    def perturbed(self, rng: np.random.Generator, sigma: float = 0.08
                  ) -> "FunctionBehavior":
        """A copy with lognormal multiplicative jitter on every segment.

        Stands in for run-to-run testbed variance when the experiments need
        latency *distributions* (Figures 14 and 15).  ``sigma`` is the shape
        parameter of the lognormal (median multiplier = 1).
        """
        if sigma < 0:
            raise ProfilingError("sigma must be >= 0")
        factors = rng.lognormal(mean=0.0, sigma=sigma, size=len(self._segments))
        return FunctionBehavior(
            (Segment(s.kind, s.duration_ms * f)
             for s, f in zip(self._segments, factors)),
            data_out_mb=self.data_out_mb, memory_mb=self.memory_mb)

    def merged(self) -> "FunctionBehavior":
        """A copy with adjacent same-kind segments coalesced."""
        out: list[Segment] = []
        for seg in self._segments:
            if out and out[-1].kind is seg.kind:
                out[-1] = Segment(seg.kind, out[-1].duration_ms + seg.duration_ms)
            else:
                out.append(seg)
        return FunctionBehavior(out, data_out_mb=self.data_out_mb,
                                memory_mb=self.memory_mb)

    def block_periods(self) -> list[tuple[float, float]]:
        """(start, end) of every blocking period relative to function start.

        This is exactly what the paper's Profiler derives from strace logs
        (Figure 10's "block period" comments).
        """
        out = []
        t = 0.0
        for seg in self._segments:
            if seg.kind is SegmentKind.IO:
                out.append((t, t + seg.duration_ms))
            t += seg.duration_ms
        return out

    @classmethod
    def from_block_periods(cls, total_ms: float,
                           periods: Sequence[tuple[float, float]],
                           **kw: float) -> "FunctionBehavior":
        """Inverse of :meth:`block_periods` — rebuild segments from a strace
        trace of (start, end) blocking periods and the total solo latency."""
        t = 0.0
        segs: list[Segment] = []
        #: microsecond-scale overlaps are measurement/float noise (strace's
        #: -ttt timestamps carry 1 us resolution, and epoch-scale doubles
        #: only ~0.1 us) — clamp them instead of rejecting the trace.
        clamp_eps = 5e-3
        for start, end in sorted(periods):
            if start < t - clamp_eps or end < start:
                raise ProfilingError(f"overlapping/negative block period "
                                     f"({start}, {end}) at t={t}")
            start = max(start, t)
            end = max(end, start)
            if start > t:
                segs.append(Segment(SegmentKind.CPU, start - t))
            segs.append(Segment(SegmentKind.IO, end - start))
            t = end
        if total_ms < t - 1e-9:
            raise ProfilingError(f"total {total_ms} shorter than block periods")
        if total_ms > t:
            segs.append(Segment(SegmentKind.CPU, total_ms - t))
        if not segs:
            segs.append(Segment(SegmentKind.CPU, 0.0))
        return cls(segs, **kw)
