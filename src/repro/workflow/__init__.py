"""Serverless workflow model.

The paper (§3.3) models a workflow as "a sequence of execution stages,
wherein each stage includes one or more parallel functions".  This package
provides:

* :class:`FunctionBehavior` — a function's solo-run execution profile as a
  sequence of CPU and blocking-I/O segments (what the Profiler extracts with
  strace, Figure 10);
* :class:`FunctionSpec` / :class:`Stage` / :class:`Workflow` — the staged DAG;
* :class:`Dag` — an arbitrary-edge DAG that can be *levelled* into stages;
* a fluent builder (:class:`WorkflowBuilder`), an Amazon-States-Language-like
  JSON codec, and a seeded random workflow generator for property tests.
"""

from repro.workflow.behavior import FunctionBehavior, Segment, SegmentKind
from repro.workflow.dag import Dag
from repro.workflow.dsl import WorkflowBuilder
from repro.workflow.generators import random_workflow
from repro.workflow.model import FunctionSpec, Stage, Workflow
from repro.workflow.statemachine import from_state_machine, to_state_machine

__all__ = [
    "Dag",
    "FunctionBehavior",
    "FunctionSpec",
    "Segment",
    "SegmentKind",
    "Stage",
    "Workflow",
    "WorkflowBuilder",
    "from_state_machine",
    "random_workflow",
    "to_state_machine",
]
