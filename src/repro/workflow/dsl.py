"""Fluent builder for staged workflows."""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.errors import WorkflowError
from repro.workflow.behavior import FunctionBehavior
from repro.workflow.model import FunctionSpec, Stage, Workflow

FunctionLike = Union[FunctionSpec, tuple[str, FunctionBehavior]]


class WorkflowBuilder:
    """Builds a :class:`Workflow` stage by stage::

        wf = (WorkflowBuilder("pipeline")
              .stage("ingest", ("fetch", FunctionBehavior.io(20.0)))
              .parallel("validate",
                        [("rule-%d" % i, FunctionBehavior.cpu(0.8))
                         for i in range(50)])
              .build())
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._stages: list[Stage] = []

    @staticmethod
    def _coerce(fn: FunctionLike) -> FunctionSpec:
        if isinstance(fn, FunctionSpec):
            return fn
        if (isinstance(fn, tuple) and len(fn) == 2
                and isinstance(fn[1], FunctionBehavior)):
            return FunctionSpec(name=fn[0], behavior=fn[1])
        raise WorkflowError(f"cannot interpret {fn!r} as a function")

    def stage(self, name: str, *functions: FunctionLike) -> "WorkflowBuilder":
        """Append a stage with the given functions (one or more)."""
        self._stages.append(Stage(name, [self._coerce(f) for f in functions]))
        return self

    def sequential(self, name: str, function: FunctionLike) -> "WorkflowBuilder":
        """Append a single-function stage (a sequential step)."""
        return self.stage(name, function)

    def parallel(self, name: str,
                 functions: Iterable[FunctionLike]) -> "WorkflowBuilder":
        """Append a stage from an iterable of functions."""
        return self.stage(name, *functions)

    def build(self) -> Workflow:
        return Workflow(self._name, self._stages)
