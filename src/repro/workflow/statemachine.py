"""Amazon-States-Language-like JSON codec for workflows.

Users of systems like AWS Step Functions submit workflow definitions as
state-machine JSON.  We support the subset the paper's applications need:
``Task`` states (one function), ``Parallel`` states (branches of tasks), and
``Next``/``End`` chaining.  Behaviours are embedded under a ``Behavior`` key
since our functions are specs rather than deployed Lambdas::

    {
      "StartAt": "Fetch",
      "States": {
        "Fetch":    {"Type": "Task", "Behavior": {"segments": [["io", 20.0]]},
                     "Next": "Validate"},
        "Validate": {"Type": "Parallel", "End": true,
                     "Branches": [
                        {"Name": "rule-0",
                         "Behavior": {"segments": [["cpu", 0.8]]}},
                        ...]}
      }
    }
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.errors import WorkflowError
from repro.workflow.behavior import FunctionBehavior, Segment, SegmentKind
from repro.workflow.model import FunctionSpec, Stage, Workflow


def _behavior_to_json(behavior: FunctionBehavior) -> dict[str, Any]:
    return {
        "segments": [[seg.kind.value, seg.duration_ms] for seg in behavior],
        "data_out_mb": behavior.data_out_mb,
        "memory_mb": behavior.memory_mb,
    }


def _behavior_from_json(data: dict[str, Any]) -> FunctionBehavior:
    try:
        segments = [Segment(SegmentKind(kind), float(dur))
                    for kind, dur in data["segments"]]
    except (KeyError, ValueError, TypeError) as exc:
        raise WorkflowError(f"bad Behavior payload: {data!r}") from exc
    return FunctionBehavior(segments,
                            data_out_mb=float(data.get("data_out_mb", 0.01)),
                            memory_mb=float(data.get("memory_mb", 0.0)))


def to_state_machine(workflow: Workflow) -> str:
    """Serialize a workflow to state-machine JSON (inverse of
    :func:`from_state_machine`)."""
    states: dict[str, Any] = {}
    stage_names = [stage.name for stage in workflow.stages]
    for i, stage in enumerate(workflow.stages):
        nxt: dict[str, Any]
        nxt = {"End": True} if i == len(stage_names) - 1 else {"Next": stage_names[i + 1]}
        if len(stage) == 1:
            fn = stage.functions[0]
            states[stage.name] = {
                "Type": "Task",
                "FunctionName": fn.name,
                "Runtime": fn.runtime,
                "Behavior": _behavior_to_json(fn.behavior),
                **nxt,
            }
        else:
            states[stage.name] = {
                "Type": "Parallel",
                "Branches": [
                    {"Name": fn.name, "Runtime": fn.runtime,
                     "Behavior": _behavior_to_json(fn.behavior)}
                    for fn in stage
                ],
                **nxt,
            }
    return json.dumps({"Comment": workflow.name,
                       "StartAt": stage_names[0],
                       "States": states}, indent=2)


def from_state_machine(text: Union[str, dict[str, Any]]) -> Workflow:
    """Parse state-machine JSON into a :class:`Workflow`."""
    doc = json.loads(text) if isinstance(text, str) else text
    try:
        start = doc["StartAt"]
        states = doc["States"]
    except (KeyError, TypeError) as exc:
        raise WorkflowError("state machine needs StartAt and States") from exc
    name = doc.get("Comment", "state-machine")

    stages: list[Stage] = []
    cursor: Union[str, None] = start
    visited: set[str] = set()
    while cursor is not None:
        if cursor in visited:
            raise WorkflowError(f"state chain loops at {cursor!r}")
        visited.add(cursor)
        try:
            state = states[cursor]
        except KeyError:
            raise WorkflowError(f"undefined state {cursor!r}") from None
        stype = state.get("Type")
        if stype == "Task":
            fn = FunctionSpec(name=state.get("FunctionName", cursor),
                              behavior=_behavior_from_json(state["Behavior"]),
                              runtime=state.get("Runtime", "python3"))
            stages.append(Stage(cursor, [fn]))
        elif stype == "Parallel":
            branches = state.get("Branches", [])
            if not branches:
                raise WorkflowError(f"Parallel state {cursor!r} has no branches")
            fns = [FunctionSpec(name=b["Name"],
                                behavior=_behavior_from_json(b["Behavior"]),
                                runtime=b.get("Runtime", "python3"))
                   for b in branches]
            stages.append(Stage(cursor, fns))
        else:
            raise WorkflowError(f"unsupported state type {stype!r} in {cursor!r}")
        if state.get("End"):
            cursor = None
        else:
            cursor = state.get("Next")
            if cursor is None:
                raise WorkflowError(f"state {cursor!r} has neither Next nor End")
    return Workflow(name, stages)
