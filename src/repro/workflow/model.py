"""Workflow / Stage / FunctionSpec — the staged-DAG model of the paper."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional

from repro.errors import WorkflowError
from repro.workflow.behavior import FunctionBehavior


@dataclass(frozen=True)
class FunctionSpec:
    """One serverless function.

    Attributes beyond the behaviour feed PGP's sandbox-compatibility rules
    (§3.4 end): functions whose ``runtime`` differs (e.g. ``python2`` vs
    ``python3``) or that write the same file cannot share a sandbox.
    """

    name: str
    behavior: FunctionBehavior
    #: language runtime tag; functions only share a sandbox if equal.
    runtime: str = "python3"
    #: files the function writes (strace-observed); writers of a common file
    #: must not share a sandbox.
    files_written: frozenset[str] = frozenset()
    #: files the function reads (kept for profiling completeness).
    files_read: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("function name must be non-empty")
        object.__setattr__(self, "files_written", frozenset(self.files_written))
        object.__setattr__(self, "files_read", frozenset(self.files_read))

    def with_behavior(self, behavior: FunctionBehavior) -> "FunctionSpec":
        return replace(self, behavior=behavior)

    def conflicts_with(self, other: "FunctionSpec") -> bool:
        """True if the two functions must live in different sandboxes."""
        if self.runtime != other.runtime:
            return True
        return bool(self.files_written & (other.files_written | other.files_read)
                    or other.files_written & self.files_read)


@dataclass(frozen=True)
class Stage:
    """One execution stage: functions that run in parallel."""

    name: str
    functions: tuple[FunctionSpec, ...]

    def __init__(self, name: str, functions: Iterable[FunctionSpec]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "functions", tuple(functions))
        if not self.name:
            raise WorkflowError("stage name must be non-empty")
        if not self.functions:
            raise WorkflowError(f"stage {name!r} has no functions")
        names = [f.name for f in self.functions]
        if len(set(names)) != len(names):
            raise WorkflowError(f"duplicate function names in stage {name!r}")

    @property
    def parallelism(self) -> int:
        return len(self.functions)

    def __iter__(self) -> Iterator[FunctionSpec]:
        return iter(self.functions)

    def __len__(self) -> int:
        return len(self.functions)


class Workflow:
    """A named sequence of stages (the paper's workflow model, §3.3)."""

    def __init__(self, name: str, stages: Iterable[Stage]) -> None:
        self.name = name
        self.stages = tuple(stages)
        if not self.name:
            raise WorkflowError("workflow name must be non-empty")
        if not self.stages:
            raise WorkflowError(f"workflow {name!r} has no stages")
        self._by_name: dict[str, FunctionSpec] = {}
        for stage in self.stages:
            for fn in stage:
                if fn.name in self._by_name:
                    raise WorkflowError(
                        f"function name {fn.name!r} appears in multiple stages")
                self._by_name[fn.name] = fn

    # -- inspection -----------------------------------------------------------
    @property
    def functions(self) -> list[FunctionSpec]:
        """All functions, stage order then intra-stage order."""
        return [fn for stage in self.stages for fn in stage]

    @property
    def num_functions(self) -> int:
        return sum(len(stage) for stage in self.stages)

    @property
    def max_parallelism(self) -> int:
        """The M of Algorithm 2 line 1."""
        return max(stage.parallelism for stage in self.stages)

    def function(self, name: str) -> FunctionSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise WorkflowError(
                f"no function named {name!r} in workflow {self.name!r}"
            ) from None

    def stage_of(self, function_name: str) -> Stage:
        for stage in self.stages:
            if any(fn.name == function_name for fn in stage):
                return stage
        raise WorkflowError(f"no function named {function_name!r}")

    @property
    def critical_path_ms(self) -> float:
        """Lower bound on e2e latency: sum over stages of slowest solo run."""
        return sum(max(fn.behavior.solo_ms for fn in stage)
                   for stage in self.stages)

    @property
    def total_work_ms(self) -> float:
        """Sum of all solo-run latencies (serial execution lower bound)."""
        return sum(fn.behavior.solo_ms for fn in self.functions)

    def map_behaviors(self, transform) -> "Workflow":
        """A copy with every function's behaviour passed through ``transform``.

        Used to apply isolation execution overheads or jitter uniformly.
        """
        return Workflow(self.name, (
            Stage(stage.name,
                  (fn.with_behavior(transform(fn.behavior)) for fn in stage))
            for stage in self.stages))

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        shape = "+".join(str(len(s)) for s in self.stages)
        return f"Workflow({self.name!r}, stages={shape})"
