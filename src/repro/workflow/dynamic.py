"""Dynamic DAGs: workflows whose chain is decided at request time.

§7 lists this as open ground: "the function chain of workflow is not known
a priori, such as [the] switch step in Video-FFmpeg [that] determines
whether to execute the split function or the simple_process function based
on the result of the upload function".

A :class:`DynamicWorkflow` is a static prefix, a **switch** with named
branches (each a list of stages), and a static suffix.  Planning flattens
it into one static variant per branch (:meth:`DynamicWorkflow.variants`),
so every existing tool — predictor, PGP, platforms — applies per variant;
:mod:`repro.core.dynamic` deploys all variants and routes each request by
its branch decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional

import numpy as np

from repro.errors import WorkflowError
from repro.workflow.model import Stage, Workflow


@dataclass(frozen=True)
class Branch:
    """One alternative chain of a switch."""

    name: str
    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("branch name must be non-empty")
        if not self.stages:
            raise WorkflowError(f"branch {self.name!r} has no stages")


class DynamicWorkflow:
    """prefix stages → switch(branches) → suffix stages."""

    def __init__(self, name: str, *, prefix: Iterable[Stage],
                 branches: Iterable[Branch],
                 suffix: Iterable[Stage] = ()) -> None:
        self.name = name
        self.prefix = tuple(prefix)
        self.branches = tuple(branches)
        self.suffix = tuple(suffix)
        if not self.name:
            raise WorkflowError("workflow name must be non-empty")
        if not self.branches:
            raise WorkflowError("a dynamic workflow needs >= 1 branch")
        names = [b.name for b in self.branches]
        if len(set(names)) != len(names):
            raise WorkflowError(f"duplicate branch names: {names}")
        # validate that every variant flattens to a legal workflow
        for branch in self.branches:
            self.variant(branch.name)

    @property
    def branch_names(self) -> list[str]:
        return [b.name for b in self.branches]

    def branch(self, name: str) -> Branch:
        for b in self.branches:
            if b.name == name:
                return b
        raise WorkflowError(f"unknown branch {name!r}")

    def variant(self, branch_name: str) -> Workflow:
        """The static workflow a request takes down one branch."""
        branch = self.branch(branch_name)
        return Workflow(f"{self.name}#{branch_name}",
                        self.prefix + branch.stages + self.suffix)

    def variants(self) -> Dict[str, Workflow]:
        return {b.name: self.variant(b.name) for b in self.branches}

    @property
    def max_parallelism(self) -> int:
        return max(v.max_parallelism for v in self.variants().values())

    def __repr__(self) -> str:
        return (f"DynamicWorkflow({self.name!r}, "
                f"branches={self.branch_names})")


#: decides a request's branch from its state (returns a branch name)
BranchSelector = Callable[[object], str]


def probabilistic_selector(weights: Mapping[str, float], *,
                           seed: int = 0) -> BranchSelector:
    """A seeded selector drawing branches with the given probabilities.

    Stands in for data-dependent switch outcomes (e.g. "large uploads go
    down the split path 30 % of the time").
    """
    names = list(weights)
    probs = np.array([weights[n] for n in names], dtype=float)
    if len(names) == 0 or np.any(probs < 0) or probs.sum() <= 0:
        raise WorkflowError(f"bad branch weights {dict(weights)!r}")
    probs = probs / probs.sum()
    rng = np.random.default_rng(seed)

    def select(_state: object) -> str:
        return str(rng.choice(names, p=probs))

    return select
