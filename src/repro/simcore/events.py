"""Event primitives for the simulation kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simcore.kernel import Environment

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


def _defuse_loser(event: "Event") -> None:
    """Callback left on a condition's losing events after it detaches.

    A fired :class:`Condition` no longer cares about its remaining
    constituents, but a loser that *fails* later must still be marked
    handled (the condition historically defused it) or the kernel would
    re-raise an error nobody is waiting on.  This module-level function
    carries no reference to the condition, so the condition — and
    everything it closes over — stays collectable.
    """
    if event._ok is False:
        event._defused = True


class Event:
    """A one-shot occurrence processes can wait on.

    Life cycle: *pending* -> *triggered* (``succeed``/``fail`` called, event
    queued) -> *processed* (callbacks ran).  Waiting on an already-processed
    event resumes the waiter immediately at the current simulation time.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: set True when a failure was handed to a waiter (or defused).
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._enqueue_triggered(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used as a chained callback)."""
        if event.ok:
            self.succeed(event.value)
        else:
            event.defuse()
            self.fail(event.value)

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel does not re-raise it."""
        self._defused = True

    # -- kernel hook --------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks.  Called exactly once by the kernel."""
        callbacks = self.callbacks
        self.callbacks = None
        if len(callbacks) == 1:  # dominant shape: exactly one waiter
            callbacks[0](self)
        else:
            for callback in callbacks:
                callback(self)
        if self._ok is False and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._schedule(self, delay)

    # Timeouts are triggered at construction; succeed/fail are invalid.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events cannot be re-triggered")

    def _process(self) -> None:
        """Timeout dispatch: always-ok, so no failure re-raise check; the
        single-waiter shape (one process sleeping on it) skips the
        callback-list loop entirely."""
        callbacks = self.callbacks
        self.callbacks = None
        if len(callbacks) == 1:
            callbacks[0](self)
        else:
            for callback in callbacks:
                callback(self)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries an arbitrary payload from the interrupter (e.g. a
    preemption notice from a resource).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events.

    Once the condition fires it *detaches* from every constituent that has
    not fired yet: the ``_check`` callback (whose closure keeps the whole
    condition alive) is removed from their callback lists and replaced
    with the module-level :func:`_defuse_loser`, so losing events in long
    fleet runs do not pin dead conditions — or the processes waiting on
    them — in memory until the loser finally fires.
    """

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[list[Event], int], bool]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        #: events whose callbacks have run, in completion order.  Timeouts
        #: carry a value from construction, so "triggered" alone cannot tell
        #: us whether an event has actually fired yet.
        self._fired: list[Event] = []
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if self.triggered:
                # decided while wiring: never subscribe late constituents,
                # but keep the historical defusing contract for losers
                if event.callbacks is not None:
                    event.callbacks.append(_defuse_loser)
                elif event.triggered and not event.ok:
                    event.defuse()
                continue
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            # late loser that was already queued for processing when the
            # condition fired (detach could not intercept it)
            if event.triggered and not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            self._detach()
            return
        self._fired.append(event)
        if self._evaluate(self._events, len(self._fired)):
            self.succeed({ev: ev.value for ev in self._fired})
            self._detach()

    def _detach(self) -> None:
        """Unsubscribe from events that have not fired; drop references."""
        check = self._check
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass  # already fired (or never subscribed)
                else:
                    callbacks.append(_defuse_loser)
        self._events = []
        self._fired = []


class AllOf(Condition):
    """Fires when *all* constituent events have fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda evs, n: n == len(evs))


class AnyOf(Condition):
    """Fires when *any* constituent event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda evs, n: n >= 1)
