"""Lightweight instrumentation for simulations.

A :class:`TraceRecorder` collects timestamped spans (name, start, end, tags)
during a run; experiments use it to build the Gantt timelines of Figure 5 and
the per-function latency CDFs of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class Span:
    """One closed interval of activity on some entity."""

    entity: str        # e.g. "finra/validate-3"
    kind: str          # e.g. "startup", "exec", "block", "ipc", "rpc"
    start_ms: float
    end_ms: float
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class TraceRecorder:
    """Accumulates :class:`Span` records during a simulation.

    The richer :class:`repro.obs.Tracer` subclass adds nested spans, typed
    events and metrics; runtime hook points test :attr:`detail` (a single
    attribute load) before emitting anything beyond the basic spans, so the
    default recorder keeps the hot path effectively free.
    """

    #: True only on detail-mode tracers (:class:`repro.obs.Tracer`).
    detail = False

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def event(self, name: str, entity: str = "trace",
              ts_ms: Optional[float] = None, **tags: Any) -> None:
        """Instant-event hook; a no-op on the base recorder."""

    def record(self, entity: str, kind: str, start_ms: float, end_ms: float,
               **tags: Any) -> None:
        """Append one span.  ``end_ms`` must not precede ``start_ms``."""
        if end_ms < start_ms - 1e-9:
            raise ValueError(f"span ends before it starts: {start_ms}..{end_ms}")
        self._spans.append(Span(entity, kind, start_ms, end_ms, dict(tags)))

    def spans(self, entity: Optional[str] = None,
              kind: Optional[str] = None) -> list[Span]:
        """Spans filtered by entity and/or kind, in recording order."""
        out = self._spans
        if entity is not None:
            out = [s for s in out if s.entity == entity]
        if kind is not None:
            out = [s for s in out if s.kind == kind]
        return list(out)

    def entities(self) -> list[str]:
        """Distinct entity names in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.entity, None)
        return list(seen)

    def total(self, kind: str, entity: Optional[str] = None) -> float:
        """Summed duration of all spans of ``kind`` (optionally per entity)."""
        return sum(s.duration_ms for s in self.spans(entity, kind))

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def gantt(self, width: int = 72) -> str:
        """Render an ASCII Gantt chart (one row per entity), for Figure 5."""
        from repro.obs.export import render_timeline

        return render_timeline(self, width=width)
