"""Lightweight instrumentation for simulations.

A :class:`TraceRecorder` collects timestamped spans (name, start, end, tags)
during a run; experiments use it to build the Gantt timelines of Figure 5 and
the per-function latency CDFs of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class Span:
    """One closed interval of activity on some entity."""

    entity: str        # e.g. "finra/validate-3"
    kind: str          # e.g. "startup", "exec", "block", "ipc", "rpc"
    start_ms: float
    end_ms: float
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class TraceRecorder:
    """Accumulates :class:`Span` records during a simulation."""

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def record(self, entity: str, kind: str, start_ms: float, end_ms: float,
               **tags: Any) -> None:
        """Append one span.  ``end_ms`` must not precede ``start_ms``."""
        if end_ms < start_ms - 1e-9:
            raise ValueError(f"span ends before it starts: {start_ms}..{end_ms}")
        self._spans.append(Span(entity, kind, start_ms, end_ms, dict(tags)))

    def spans(self, entity: Optional[str] = None,
              kind: Optional[str] = None) -> list[Span]:
        """Spans filtered by entity and/or kind, in recording order."""
        out = self._spans
        if entity is not None:
            out = [s for s in out if s.entity == entity]
        if kind is not None:
            out = [s for s in out if s.kind == kind]
        return list(out)

    def entities(self) -> list[str]:
        """Distinct entity names in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.entity, None)
        return list(seen)

    def total(self, kind: str, entity: Optional[str] = None) -> float:
        """Summed duration of all spans of ``kind`` (optionally per entity)."""
        return sum(s.duration_ms for s in self.spans(entity, kind))

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def gantt(self, width: int = 72) -> str:
        """Render an ASCII Gantt chart (one row per entity), for Figure 5."""
        if not self._spans:
            return "(no spans)"
        t0 = min(s.start_ms for s in self._spans)
        t1 = max(s.end_ms for s in self._spans)
        span_total = max(t1 - t0, 1e-9)
        glyph = {"startup": "s", "exec": "#", "block": ".", "ipc": "i",
                 "rpc": "r", "wait": "-"}
        lines = []
        label_w = max(len(e) for e in self.entities()) + 1
        for entity in self.entities():
            row = [" "] * width
            for span in self.spans(entity=entity):
                a = int((span.start_ms - t0) / span_total * (width - 1))
                b = int((span.end_ms - t0) / span_total * (width - 1))
                ch = glyph.get(span.kind, "#")
                for i in range(a, max(a, b) + 1):
                    row[i] = ch
            lines.append(f"{entity:<{label_w}}|{''.join(row)}|")
        lines.append(f"{'':<{label_w}} {t0:.1f} ms {'-' * (width - 20)} {t1:.1f} ms")
        return "\n".join(lines)
