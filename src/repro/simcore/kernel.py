"""The simulation environment: clock, event queue, run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.simcore.events import AllOf, AnyOf, Event, Timeout
from repro.simcore.process import Process


class Environment:
    """Owner of the simulation clock and the pending-event heap.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(3.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 3.0 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: heap of (time, sequence, event); sequence preserves FIFO order for
        #: simultaneous events, making runs fully deterministic.
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.active_process: Optional[Process] = None
        #: events dispatched by :meth:`step` — a run-size vital the tracer
        #: snapshots after each request.
        self.events_processed = 0
        #: the active :class:`repro.faults.FaultInjector`, installed by
        #: ``Platform.run`` for faulted requests; ``None`` keeps every
        #: runtime fault hook on its one-attribute-load fast path.
        self.faults = None
        #: the request's :class:`repro.overload.DeadlineBudget`, installed by
        #: ``Platform.run`` when the request carries an SLO-derived deadline;
        #: ``None`` keeps stage/function deadline checks on a single
        #: attribute load (same zero-overhead contract as ``faults``).
        self.deadline = None
        #: the request's :class:`repro.overload.BreakerBoard` (circuit
        #: breakers around sandbox boot and RPC dispatch); ``None`` disables
        #: every breaker hook with one attribute load.
        self.overload = None
        #: the request's :class:`repro.lifecycle.LifecycleSession`, installed
        #: by ``Platform.run`` when a lifecycle manager governs sandbox boot
        #: tiers (cold / snapshot-restore / warm); ``None`` keeps cold boots
        #: on the flat calibrated cost with a single attribute load.
        self.lifecycle = None
        #: the request's :class:`repro.core.ha.HASession` (per-stage
        #: completion checkpoints + replay-from-last-stage), installed by
        #: ``Platform.run`` when an HA policy governs the request; ``None``
        #: keeps stage boundaries checkpoint-free with one attribute load.
        self.ha = None

    @property
    def now(self) -> float:
        """Current simulation time (same unit as all delays; we use ms)."""
        return self._now

    # -- event construction helpers ---------------------------------------
    def event(self) -> Event:
        """A bare, manually-triggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Spawn a process driving ``generator``; returns the Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def _enqueue_triggered(self, event: Event) -> None:
        """Queue an event that was just succeeded/failed for processing."""
        self._schedule(event, 0.0)

    # -- run loop -----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - heap guarantees order
            raise SimulationError("event scheduled in the past")
        self._now = when
        self.events_processed += 1
        event._process()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a simulation time (run up to that instant) or an
        :class:`Event` (run until it is processed; its value is returned).
        """
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if self.peek() > deadline:
                self._now = deadline
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise SimulationError(
                "run(until=event): queue drained before the event fired")
        if deadline != float("inf"):
            self._now = deadline
        return None
