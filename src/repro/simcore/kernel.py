"""The simulation environment: clock, event queue, run loop."""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.simcore.calendar import CalendarQueue, HeapQueue
from repro.simcore.events import AllOf, AnyOf, Event, Timeout
from repro.simcore.process import Process

#: queue implementation used when ``Environment(queue=None)`` — flip to
#: ``"heap"`` to A/B the legacy binary-heap scheduler (the golden-trace
#: tests do exactly that to pin bit-identity across schedulers).
DEFAULT_QUEUE = "calendar"

_KEEP = object()


class Environment:
    """Owner of the simulation clock and the pending-event calendar.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(3.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 3.0 and proc.value == "done"

    Events scheduled for the same timestamp fire in FIFO order of
    scheduling (a monotonically increasing sequence number breaks ties),
    making runs fully deterministic regardless of the queue implementation
    (``queue="calendar"``, the default, or ``queue="heap"`` for the legacy
    binary heap — both dispatch byte-identical sequences).
    """

    def __init__(self, initial_time: float = 0.0, *,
                 queue: Optional[str] = None) -> None:
        self._now = float(initial_time)
        kind = queue if queue is not None else DEFAULT_QUEUE
        if kind == "calendar":
            self._q = CalendarQueue(self._now)
        elif kind == "heap":
            self._q = HeapQueue(self._now)
        else:
            raise SimulationError(
                f"unknown queue implementation {kind!r} "
                f"(expected 'calendar' or 'heap')")
        #: which scheduler this environment runs on ("calendar" | "heap")
        self.queue_kind = kind
        self._seq = 0
        self.active_process: Optional[Process] = None
        #: events dispatched by :meth:`step` — a run-size vital the tracer
        #: snapshots after each request.
        self.events_processed = 0
        #: the active :class:`repro.faults.FaultInjector`, installed by
        #: ``Platform.run`` for faulted requests; ``None`` keeps every
        #: runtime fault hook on its one-attribute-load fast path.
        self.faults = None
        #: the request's :class:`repro.overload.DeadlineBudget`, installed by
        #: ``Platform.run`` when the request carries an SLO-derived deadline;
        #: ``None`` keeps stage/function deadline checks on a single
        #: attribute load (same zero-overhead contract as ``faults``).
        self.deadline = None
        #: the request's :class:`repro.overload.BreakerBoard` (circuit
        #: breakers around sandbox boot and RPC dispatch); ``None`` disables
        #: every breaker hook with one attribute load.
        self.overload = None
        #: the request's :class:`repro.lifecycle.LifecycleSession`, installed
        #: by ``Platform.run`` when a lifecycle manager governs sandbox boot
        #: tiers (cold / snapshot-restore / warm); ``None`` keeps cold boots
        #: on the flat calibrated cost with a single attribute load.
        self.lifecycle = None
        #: the request's :class:`repro.core.ha.HASession` (per-stage
        #: completion checkpoints + replay-from-last-stage), installed by
        #: ``Platform.run`` when an HA policy governs the request; ``None``
        #: keeps stage boundaries checkpoint-free with one attribute load.
        self.ha = None
        #: slot-free fast-path flag: ``False`` means *no* per-request slot
        #: (faults/deadline/overload/lifecycle/ha) is installed, so hook
        #: points that would otherwise test several slots can skip them all
        #: with one attribute load.  Recomputed by :meth:`arm_slots` /
        #: :meth:`install` — precomputed once per request, not re-derived
        #: per hook.
        self.slots_armed = False

    @property
    def now(self) -> float:
        """Current simulation time (same unit as all delays; we use ms)."""
        return self._now

    # -- per-request slots ---------------------------------------------------
    def install(self, *, faults: Any = _KEEP, deadline: Any = _KEEP,
                overload: Any = _KEEP, lifecycle: Any = _KEEP,
                ha: Any = _KEEP) -> bool:
        """Install per-request slot handlers and re-arm the fast path.

        Assigning the slot attributes directly also works for code that
        only reads a single slot; hook points on the batched fast path
        additionally gate on :attr:`slots_armed`, so installers must call
        :meth:`arm_slots` (or use this method) after direct assignment.
        """
        if faults is not _KEEP:
            self.faults = faults
        if deadline is not _KEEP:
            self.deadline = deadline
        if overload is not _KEEP:
            self.overload = overload
        if lifecycle is not _KEEP:
            self.lifecycle = lifecycle
        if ha is not _KEEP:
            self.ha = ha
        return self.arm_slots()

    def arm_slots(self) -> bool:
        """Recompute :attr:`slots_armed` from the five slot attributes."""
        self.slots_armed = not (
            self.faults is None and self.deadline is None
            and self.overload is None and self.lifecycle is None
            and self.ha is None)
        return self.slots_armed

    # -- event construction helpers ---------------------------------------
    def event(self) -> Event:
        """A bare, manually-triggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Spawn a process driving ``generator``; returns the Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        now = self._now
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            self._q.push_now(now, seq, event)
            return
        when = now + delay
        if when == now:  # delay underflowed on a large clock: still "now"
            self._q.push_now(now, seq, event)
        elif when < now:
            raise SimulationError(
                f"event scheduled in the past ({when} < {now})")
        else:
            self._q.push(when, seq, event)

    def _enqueue_triggered(self, event: Event) -> None:
        """Queue an event that was just succeeded/failed for processing."""
        seq = self._seq
        self._seq = seq + 1
        self._q.push_now(self._now, seq, event)

    # -- run loop -----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._q.peek()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        q = self._q
        if not q._size:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = q.pop()
        self._now = when
        self.events_processed += 1
        event._process()

    def run_batch(self) -> int:
        """Dispatch *every* event at the next timestamp; returns the count.

        The batched counterpart of :meth:`step`: one scheduler call pops
        the whole same-time burst, the clock advances once, and dispatch
        runs without re-entering the queue per event.  Returns 0 when the
        queue is empty.
        """
        q = self._q
        if not q._size:
            return 0
        batch = q.pop_batch()
        self._dispatch_batch(batch)
        return len(batch)

    def _dispatch_batch(self, batch: list) -> None:
        """Advance the clock to ``batch`` and process its events in order.

        On an exception the not-yet-dispatched remainder is requeued, so a
        caller that catches the error (fault recovery does) can keep
        running the same environment without losing events.
        """
        self._now = batch[0][0]
        processed = self.events_processed
        i = 0
        try:
            for entry in batch:
                i += 1
                processed += 1
                entry[2]._process()
        except BaseException:
            if i < len(batch):
                self._q.requeue_front(batch[i:])
            raise
        finally:
            self.events_processed = processed

    def _drain(self) -> None:
        """Untimed run-to-exhaustion: no stop-event or deadline re-checks.

        The hot path for ``run()`` with no ``until`` — the scheduler hands
        over whole same-timestamp batches and the loop carries no
        per-event condition tests.
        """
        q = self._q
        pop_batch = q.pop_batch
        dispatch = self._dispatch_batch
        while q._size:
            dispatch(pop_batch())

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a simulation time (run up to that instant) or an
        :class:`Event` (run until it is processed; its value is returned).
        """
        if until is None:
            self._drain()
            return None

        q = self._q
        if isinstance(until, Event):
            stop = until
            pop = q.pop
            processed = self.events_processed
            try:
                while q._size:
                    if stop.callbacks is None:  # processed
                        return stop.value
                    when, _seq, event = pop()
                    self._now = when
                    processed += 1
                    event._process()
            finally:
                self.events_processed = processed
            if stop.callbacks is None:
                return stop.value
            raise SimulationError(
                "run(until=event): queue drained before the event fired")

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline}) is in the past (now={self._now})")
        if deadline == float("inf"):
            self._drain()
            return None
        pop = q.pop
        peek = q.peek
        processed = self.events_processed
        try:
            while q._size:
                if peek() > deadline:
                    self._now = deadline
                    return None
                when, _seq, event = pop()
                self._now = when
                processed += 1
                event._process()
        finally:
            self.events_processed = processed
        self._now = deadline
        return None
