"""Event-queue implementations behind the kernel's ``_schedule``/``step``.

Two interchangeable schedulers keyed by ``(time, seq)`` entries (``seq`` is
the kernel's monotonically increasing tie-break, so ordering is total and
every correct priority queue dispatches the exact same sequence):

* :class:`HeapQueue` — the original single binary heap (``heapq``).  Kept
  as the bit-exact reference implementation for property tests and the
  old-vs-new kernel benchmark.
* :class:`CalendarQueue` — a calendar queue: a ring of width-``w`` buckets
  keyed by absolute bucket ordinal (``floor(t / w)``), a *lane* (deque) for
  events scheduled at exactly the current head timestamp, and a lazy
  min-heap of bucket ordinals as the overflow ladder between years.

Why the calendar queue wins in pure Python even though ``heapq`` is C:

* **the lane** — roughly half of all events in a serverless-workflow run
  are zero-delay (``succeed``/``fail`` enqueues, process bootstraps,
  resource grants).  Those take an O(1) ``deque.append``/``popleft`` and
  never touch a heap.
* **batch sorting** — future events accumulate unsorted in their bucket
  and are sorted *once* (Timsort, C) when the clock reaches the bucket,
  which is substantially cheaper than one sift per event.
* **batched hand-off** — :meth:`pop_batch` returns every event sharing the
  earliest timestamp in one call, so the kernel's drain loop dispatches
  same-time bursts without re-entering the scheduler per event.

Both expose: ``push``, ``push_now`` (current-timestamp fast lane),
``pop``, ``pop_batch``, ``requeue_front``, ``peek`` and a ``_size`` field
the kernel's hot loops read directly.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from math import floor
from typing import Any

_INF = float("inf")

#: bucket ordinal for non-finite timestamps (``floor`` rejects inf/nan);
#: sorts after every finite bucket so such events dispatch last, exactly
#: like they do on a binary heap.
_FAR_ORD = 1 << 63

#: adaptive widening: after ``_ADAPT_WINDOW`` bucket activations averaging
#: fewer than ``_ADAPT_MIN_OCCUPANCY`` events each, buckets are too fine for
#: the workload's event spacing (every activation pays ordinal-heap and dict
#: churn for a single event) and the width multiplies by ``_WIDEN_FACTOR``.
#: Widening is one-way and self-limiting: once buckets hold a few events
#: each, occupancy clears the bar and the width freezes.  All counters are
#: driven by the event flow itself, so runs stay deterministic.
_ADAPT_WINDOW = 16
_ADAPT_MIN_OCCUPANCY = 2.0
_WIDEN_FACTOR = 8.0


class HeapQueue:
    """The pre-calendar scheduler: one binary heap of (time, seq, event)."""

    __slots__ = ("_heap", "_size")

    def __init__(self, start: float = 0.0) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, t: float, seq: int, event: Any) -> None:
        heapq.heappush(self._heap, (t, seq, event))
        self._size += 1

    #: zero-delay pushes take the same path on a heap
    push_now = push

    def pop(self) -> tuple[float, int, Any]:
        self._size -= 1
        return heapq.heappop(self._heap)

    def pop_batch(self) -> list[tuple[float, int, Any]]:
        """Remove and return every entry at the earliest timestamp (FIFO)."""
        heap = self._heap
        if not heap:
            return []
        pop = heapq.heappop
        batch = [pop(heap)]
        t = batch[0][0]
        while heap and heap[0][0] == t:
            batch.append(pop(heap))
        self._size -= len(batch)
        return batch

    def requeue_front(self, entries: list[tuple[float, int, Any]]) -> None:
        """Return not-yet-dispatched batch entries to the queue."""
        for entry in entries:
            heapq.heappush(self._heap, entry)
        self._size += len(entries)

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else _INF


class CalendarQueue:
    """Bucketed calendar scheduler with exact ``(time, seq)`` ordering.

    Buckets live in a dict keyed by absolute ordinal ``floor(t / width)``
    (an unbounded ring — no year wrap-around to get wrong); a lazy min-heap
    of ordinals plays the overflow ladder, visited once per non-empty
    bucket rather than once per event.  The bucket under the clock (the
    *active* bucket) is sorted once on activation and consumed by index;
    late arrivals into it are insorted past the consumption point, so
    ordering stays exact even for events scheduled into the current bucket
    mid-drain.

    The bucket width adapts to the workload: sparse workloads (activations
    averaging under ``_ADAPT_MIN_OCCUPANCY`` events per bucket) widen the
    buckets by ``_WIDEN_FACTOR`` and re-bucket pending events, so the
    per-bucket overhead amortizes over more events.  See the module-level
    constants for the exact accounting.
    """

    __slots__ = ("_width", "_inv_width", "_lane", "_active", "_active_ord",
                 "_pos", "_buckets", "_ords", "_size", "_act_buckets",
                 "_act_events", "_widen")

    def __init__(self, start: float = 0.0, width: float = 1.0) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._width = width
        self._inv_width = 1.0 / width
        #: events at exactly the current head timestamp, in seq order
        self._lane: deque[tuple[float, int, Any]] = deque()
        #: sorted entries of the bucket being drained + consumption index
        self._active: list[tuple[float, int, Any]] = []
        #: ordinal of the bucket under the clock (-inf when none); pushes at
        #: or below it insort into the active list.  "Below" matters:
        #: ``peek()`` inside ``run(until=t)`` may activate a bucket beyond
        #: the deadline, and events scheduled after that run can land
        #: earlier than the activated range — they must dispatch before the
        #: activated entries, which the sorted active list guarantees.
        #: Width changes happen only inside :meth:`_advance` (active
        #: drained, no pushes interleaved) and are immediately followed by
        #: an activation that recomputes this under the new width, so
        #: push-side comparisons are always consistent.
        self._active_ord: float = -_INF
        self._pos = 0
        #: ordinal -> unsorted list of (time, seq, event)
        self._buckets: dict[int, list[tuple[float, int, Any]]] = {}
        #: lazy min-heap of bucket ordinals awaiting activation
        self._ords: list[int] = []
        self._size = 0
        # adaptive-width occupancy accounting (see module constants)
        self._act_buckets = 0
        self._act_events = 0
        self._widen = False

    def __len__(self) -> int:
        return self._size

    # -- insertion ----------------------------------------------------------
    def push(self, t: float, seq: int, event: Any) -> None:
        try:
            o = floor(t * self._inv_width)
        except (OverflowError, ValueError):  # inf / nan timestamps
            o = _FAR_ORD
        entry = (t, seq, event)
        if o <= self._active_ord:
            # into (or before) the bucket under the clock: keep it sorted
            # past the consumption point (entries before _pos already
            # dispatched; anything pending sorts after them)
            insort(self._active, entry, self._pos)
        else:
            bucket = self._buckets.get(o)
            if bucket is not None:
                bucket.append(entry)
            else:
                self._buckets[o] = [entry]
                heapq.heappush(self._ords, o)
        self._size += 1

    def push_now(self, t: float, seq: int, event: Any) -> None:
        """Schedule at exactly the current head timestamp (zero delay).

        The kernel only advances the clock to ``t`` after draining every
        earlier event, so lane entries are always (head-time, ascending
        seq) — a plain append keeps them dispatch-ordered.
        """
        self._lane.append((t, seq, event))
        self._size += 1

    # -- removal ------------------------------------------------------------
    def _rebuild(self, width: float) -> None:
        """Re-bucket every pending future event under a new width.

        Only called between activations (the active list is drained), so
        the lane and active state need no translation.  O(pending events)
        plus one heapify — amortized away by the activations the coarser
        width saves.
        """
        self._width = width
        inv = self._inv_width = 1.0 / width
        buckets: dict[int, list[tuple[float, int, Any]]] = {}
        for old in self._buckets.values():
            for entry in old:
                try:
                    o = floor(entry[0] * inv)
                except (OverflowError, ValueError):
                    o = _FAR_ORD
                bucket = buckets.get(o)
                if bucket is not None:
                    bucket.append(entry)
                else:
                    buckets[o] = [entry]
        self._buckets = buckets
        self._ords = list(buckets)
        heapq.heapify(self._ords)

    def _advance(self) -> bool:
        """Activate the next non-empty bucket; False if none remain."""
        if self._widen:
            self._widen = False
            self._rebuild(self._width * _WIDEN_FACTOR)
        buckets = self._buckets
        ords = self._ords
        while ords:
            o = heapq.heappop(ords)
            bucket = buckets.pop(o, None)
            if bucket is None:  # pragma: no cover - defensive (no dup ords)
                continue
            bucket.sort()
            self._active = bucket
            self._active_ord = o
            self._pos = 0
            self._act_events += len(bucket)
            self._act_buckets += 1
            if self._act_buckets >= _ADAPT_WINDOW:
                if (self._act_events
                        < _ADAPT_MIN_OCCUPANCY * _ADAPT_WINDOW
                        and len(buckets) >= 4):
                    self._widen = True
                self._act_buckets = 0
                self._act_events = 0
            return True
        self._active = []
        self._active_ord = -_INF
        self._pos = 0
        return False

    def pop(self) -> tuple[float, int, Any]:
        while True:
            active = self._active
            pos = self._pos
            if pos < len(active):
                entry = active[pos]
                lane = self._lane
                if lane and lane[0] < entry:
                    self._size -= 1
                    return lane.popleft()
                self._pos = pos + 1
                self._size -= 1
                return entry
            lane = self._lane
            if lane:
                self._size -= 1
                return lane.popleft()
            if not self._advance():
                raise IndexError("pop from an empty CalendarQueue")

    def pop_batch(self) -> list[tuple[float, int, Any]]:
        """Remove and return every entry at the earliest timestamp (FIFO)."""
        # materialize a head
        while True:
            active = self._active
            pos = self._pos
            lane = self._lane
            if pos < len(active) or lane:
                break
            if not self._advance():
                return []
        # earliest timestamp across the active bucket and the lane
        n = len(active)
        t_active = active[pos][0] if pos < n else _INF
        t_lane = lane[0][0] if lane else _INF
        t = t_active if t_active < t_lane else t_lane
        run_active: list[tuple[float, int, Any]] = []
        if t_active == t:
            i = pos
            while i < n and active[i][0] == t:
                i += 1
            run_active = active[pos:i]
            self._pos = i
        run_lane: list[tuple[float, int, Any]] = []
        while lane and lane[0][0] == t:
            run_lane.append(lane.popleft())
        if not run_lane:
            batch = run_active
        elif not run_active:
            batch = run_lane
        else:  # both runs are seq-ascending; merge preserves FIFO
            batch = list(heapq.merge(run_active, run_lane))
        self._size -= len(batch)
        return batch

    def requeue_front(self, entries: list[tuple[float, int, Any]]) -> None:
        """Return not-yet-dispatched batch entries to the queue.

        Batch entries all share the current head timestamp and predate (in
        seq) anything scheduled while the batch ran, so they belong at the
        front of the lane.
        """
        self._lane.extendleft(reversed(entries))
        self._size += len(entries)

    def peek(self) -> float:
        while True:
            active = self._active
            pos = self._pos
            lane = self._lane
            if pos < len(active):
                t = active[pos][0]
                if lane and lane[0][0] < t:
                    return lane[0][0]
                return t
            if lane:
                return lane[0][0]
            if not self._advance():
                return _INF
