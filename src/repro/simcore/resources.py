"""Shared-resource primitives: counted resources and object stores."""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import SimulationError
from repro.simcore.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.kernel import Environment


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the slot ...
    """

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: object) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource: at most ``capacity`` requests held at once.

    Grant order is FIFO; :class:`PriorityResource` grants by (priority,
    arrival order).
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._holders: set[Request] = set()
        #: pending (priority, seq, request) entries.  All-default-priority
        #: resources (the overwhelmingly common shape: server pools, slots)
        #: stay on a plain FIFO deque — O(1) C-speed append/popleft, no
        #: heap sifts; the first nonzero priority converts to a heap.
        self._waiting: deque[tuple[float, int, Request]] | list = deque()
        self._heap_mode = False
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._holders)

    def set_capacity(self, capacity: int) -> None:
        """Adjust the slot count at runtime (elastic scaling).

        Increases grant queued waiters immediately; decreases take effect
        lazily as holders release (in-flight work is never revoked).
        """
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._grant_waiters()

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot.  Releasing an ungranted request cancels it."""
        if request in self._holders:
            self._holders.remove(request)
            self._grant_waiters()
        elif self._heap_mode:
            # Cancel a still-queued request (no-op if unknown/duplicated).
            self._waiting = [w for w in self._waiting if w[2] is not request]
            heapq.heapify(self._waiting)
        else:
            self._waiting = deque(
                w for w in self._waiting if w[2] is not request)

    # -- internal -----------------------------------------------------------
    def _enqueue(self, request: Request) -> None:
        priority = request.priority
        if priority and not self._heap_mode:
            # first prioritized waiter: promote the FIFO deque to a heap
            # (a seq-sorted all-zero-priority deque already satisfies the
            # heap invariant, but heapify is cheap and explicit)
            self._waiting = list(self._waiting)
            heapq.heapify(self._waiting)
            self._heap_mode = True
        entry = (priority, self._seq, request)
        if self._heap_mode:
            heapq.heappush(self._waiting, entry)
        else:
            self._waiting.append(entry)
        self._seq += 1
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        waiting = self._waiting
        holders = self._holders
        if self._heap_mode:
            while waiting and len(holders) < self.capacity:
                _, _, request = heapq.heappop(waiting)
                holders.add(request)
                request.succeed()
        else:
            while waiting and len(holders) < self.capacity:
                _, _, request = waiting.popleft()
                holders.add(request)
                request.succeed()


class PriorityResource(Resource):
    """A resource granted in (ascending priority, FIFO) order."""


class StorePut(Event):
    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._puts.append(self)
        store._dispatch()


class StoreGet(Event):
    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._gets.append(self)
        store._dispatch()


class Store:
    """An unordered-capacity FIFO buffer of Python objects.

    ``put`` blocks when the store holds ``capacity`` items; ``get`` blocks
    when it is empty.  This models bounded channels (e.g. pipes between
    simulated processes).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._puts: list[StorePut] = []
        self._gets: list[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; fires when the item is accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove the oldest item; fires with the item as value."""
        return StoreGet(self)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and len(self.items) < self.capacity:
                put = self._puts.pop(0)
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._gets and self.items:
                get = self._gets.pop(0)
                get.succeed(self.items.pop(0))
                progressed = True
