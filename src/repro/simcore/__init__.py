"""A small deterministic discrete-event simulation kernel.

The kernel follows the familiar generator-coroutine style of ``simpy``:
processes are Python generators that ``yield`` events (timeouts, other
processes, resource requests) and resume when the event fires.  It is written
from scratch because the evaluation substrate (machines, GIL arbiter, fluid
CPU scheduler) needs precise control over event ordering and because no
third-party DES library is available offline.

Determinism: events scheduled for the same timestamp fire in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties), so a
given simulation always produces byte-identical traces.
"""

from repro.simcore.calendar import CalendarQueue, HeapQueue
from repro.simcore.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.simcore.kernel import Environment
from repro.simcore.process import Process
from repro.simcore.resources import PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Environment",
    "Event",
    "HeapQueue",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
