"""Generator-coroutine processes for the simulation kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.simcore.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.kernel import Environment


class _Wake(Event):
    """A pre-triggered resume carrier for a :class:`Process`.

    Used for the bootstrap turn-over and for interrupt delivery: both are
    known at construction to have exactly one consumer (the process), so
    dispatch jumps straight into ``Process._resume`` instead of walking the
    generic callback-list machinery.
    """

    def __init__(self, env: "Environment", process: "Process",
                 ok: bool, value: Any, defused: bool = False) -> None:
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = ok
        self._defused = defused
        self._process_target = process
        env._schedule(self, 0.0)

    def _process(self) -> None:
        self.callbacks = None
        self._process_target._resume(self)


class Process(Event):
    """A running coroutine.  Also an event that fires when it returns.

    The wrapped generator yields :class:`Event` instances; the process
    suspends until each yielded event fires, then resumes with the event's
    value (or with the event's exception thrown in, for failed events).
    """

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process() needs a generator, got {generator!r}")
        self._generator = generator
        #: bound generator methods, resolved once instead of per resume
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None when runnable)
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator as soon as the kernel turns over.
        _Wake(env, self, True, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self.name!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from the event currently waited on, then resume with the
        # interrupt via a dedicated immediately-scheduled event.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._target = None
        _Wake(self.env, self, False, Interrupt(cause), defused=True)

    # -- kernel callback ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env.active_process = self
        send = self._send
        try:
            while True:
                if event._ok:
                    target = send(event._value)
                else:
                    event._defused = True
                    target = self._throw(event._value)
                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}")
                callbacks = target.callbacks
                if callbacks is None:
                    # Already fired: loop and feed its value straight back in.
                    event = target
                    continue
                callbacks.append(self._resume)
                self._target = target
                return
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
        except SimulationError:
            # Kernel-usage bugs propagate out of the run loop unchanged.
            self._target = None
            raise
        except BaseException as exc:
            # Uncaught exceptions (including Interrupt) fail the process;
            # the failure re-raises at processing time unless a waiter
            # catches (and thereby defuses) it.
            self._target = None
            self.fail(exc)
        finally:
            env.active_process = None
