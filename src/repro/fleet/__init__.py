"""Multi-tenant fleet simulation with global wrap-to-machine placement.

The fleet layer (ROADMAP item 1) connects the placement, chaos and kernel
work: many tenants, each with several workflows from the app catalog and
independent arrival traces, share one cluster of machines.  Placement is
the headline optimization — :class:`FleetPlacer` runs a global
bin-packing phase through the same
:func:`repro.runtime.machine.choose_machine` hook the autoscaler uses,
then anneals migrate/swap/respread moves against a cost model that
charges cross-machine RPC, rewards co-locating chatty wraps, and
penalizes noisy-neighbor contention and broken zone spread.
:func:`run_fleet` executes the placed fleet deterministically on the
vectorized fast path (:func:`repro.cluster.fleetsim.fifo_completion_times`),
chaos-schedule compatible, with per-tenant goodput/fairness accounting.

See ``docs/fleet.md`` for the placement model, cost terms and CLI usage.
"""

from repro.fleet.placement import (
    PLACEMENT_METHODS,
    CostParams,
    FleetPlacer,
    PlacementPlan,
    placement_cost,
)
from repro.fleet.runner import FleetRunReport, TenantReport, run_fleet
from repro.fleet.spec import (
    Edge,
    Fleet,
    FleetSpec,
    StreamSpec,
    WrapUnit,
    compile_fleet,
    fleet_from_scenario,
    synth_fleet,
)

#: every ``fleet.*`` event the subsystem emits (pinned in golden traces)
FLEET_EVENT_TYPES = (
    "fleet.place.start",
    "fleet.place.done",
    "fleet.run.start",
    "fleet.run.done",
)

#: every ``fleet.*`` counter the subsystem increments (pinned in goldens)
FLEET_COUNTERS = (
    "fleet.place.units",
    "fleet.place.moves.proposed",
    "fleet.place.moves.accepted",
    "fleet.run.requests",
    "fleet.run.jobs",
    "fleet.run.disrupted",
    "fleet.run.machines_used",
)

__all__ = [
    "PLACEMENT_METHODS",
    "FLEET_COUNTERS",
    "FLEET_EVENT_TYPES",
    "CostParams",
    "Edge",
    "Fleet",
    "FleetPlacer",
    "FleetRunReport",
    "FleetSpec",
    "PlacementPlan",
    "StreamSpec",
    "TenantReport",
    "WrapUnit",
    "compile_fleet",
    "fleet_from_scenario",
    "placement_cost",
    "run_fleet",
    "synth_fleet",
]
