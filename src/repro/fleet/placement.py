"""Global-then-detailed wrap-to-machine placement (the CGRA idiom).

The placement problem: assign every :class:`~repro.fleet.spec.WrapUnit`
to a machine of the fleet topology under core+memory capacity, minimizing
a cost with four terms:

* **RPC** — every coupling edge is charged per message by network
  distance: ``local_hop_ms`` on the same machine (IPC), ``remote_hop_ms``
  across machines in one zone, and ``cross_zone_factor`` times that across
  zones.  Co-locating chatty wraps is rewarded by construction.
* **Contention** — noisy neighbours: per machine, the sum of load
  products over co-resident unit pairs from *different* tenants (same
  tenant's own interference is its own problem; the fleet cost protects
  tenants from each other).
* **Consolidation** — a fixed cost per machine used, so the placer packs
  instead of sprawling (the packing-fraction metric in the bench).
* **Spread** — a soft-but-enormous penalty when a multi-stream tenant has
  every unit in one zone: one zone outage must not take a whole tenant
  down (spread constraints over :mod:`repro.faults.domains` topology).

:class:`FleetPlacer` runs a **global phase** — first-fit-decreasing
bin-packing through :func:`repro.runtime.machine.choose_machine` (the same
placement decision point the autoscaler uses), with per-tenant home zones
rotated so spread holds by construction — then a **detailed phase** that
anneals migrate / swap / re-spread moves, mirroring the SA engine of
:mod:`repro.core.search` (geometric cooling, stall teleport, anytime
best-so-far) and consuming its :class:`~repro.core.search.SearchOptions`.
The annealed plan is *never worse than its greedy seed*: best-so-far
starts at the seed and a final from-scratch recost guards the comparison.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.calibration import RuntimeCalibration
from repro.core.search import SearchOptions
from repro.errors import CapacityError, SchedulingError
from repro.fleet.spec import Fleet
from repro.runtime.machine import Machine, choose_machine

#: placement methods understood by :meth:`FleetPlacer.place`
PLACEMENT_METHODS = ("random", "first-fit", "greedy", "anneal")


@dataclass(frozen=True)
class CostParams:
    """Weights of the placement cost model (all in cost-units per second
    of simulated traffic, except the structural penalties)."""

    local_hop_ms: float = 1.1        # same-machine dispatch (IPC)
    remote_hop_ms: float = 12.0      # cross-machine dispatch (RPC)
    cross_zone_factor: float = 2.5   # inter-zone networks are slower
    #: scales the RPC term into the same range as the structural terms so
    #: the annealer trades co-location against packing instead of being
    #: dominated by raw message volume
    rpc_weight: float = 0.1
    noisy_weight: float = 2.0        # cross-tenant load-product weight
    machine_cost: float = 400.0      # per machine used (consolidation)
    #: queueing stability: offered load (in erlangs, *including* the
    #: remote-dispatch service inflation) above this fraction of a
    #: machine's cores is charged quadratically — an overloaded machine
    #: grows its queue without bound over the run horizon
    utilization_cap: float = 0.85
    overload_weight: float = 1000.0
    spread_penalty: float = 1e6      # per missing zone of a spread tenant

    @classmethod
    def from_calibration(cls, cal: Optional[RuntimeCalibration]
                         ) -> "CostParams":
        if cal is None:
            return cls()
        return cls(local_hop_ms=cal.t_ipc_ms, remote_hop_ms=cal.t_rpc_ms)


@dataclass(frozen=True)
class PlacementPlan:
    """A complete unit→machine assignment plus its audited cost."""

    assignment: tuple[int, ...]      # unit uid → machine index
    method: str
    cost: float
    breakdown: Dict[str, float]
    seed_cost: Optional[float] = None
    moves_proposed: int = 0
    moves_accepted: int = 0

    def machines_used(self, fleet: Fleet) -> int:
        return len(set(self.assignment))

    def packing_fraction(self, fleet: Fleet) -> float:
        """Placed core demand over the capacity of the machines it uses."""
        machines = fleet.machines
        used = set(self.assignment)
        capacity = sum(machines[i].cores for i in used)
        return fleet.demand_cores() / capacity if capacity else 0.0

    def by_machine(self, fleet: Fleet) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for unit, mi in zip(fleet.units, self.assignment):
            out.setdefault(fleet.machines[mi].name, []).append(unit.key)
        return out

    def spread_violations(self, fleet: Fleet) -> int:
        return _spread_violations(fleet, self.assignment)

    def validate(self, fleet: Fleet) -> None:
        """Raise :class:`CapacityError` on over-commit or a dead target."""
        machines = fleet.machines
        if len(self.assignment) != len(fleet.units):
            raise CapacityError(
                f"assignment covers {len(self.assignment)} of "
                f"{len(fleet.units)} units")
        shadows = [Machine(m.name, cores=m.cores, memory_mb=m.memory_mb,
                           zone=m.zone, rack=m.rack) for m in machines]
        for unit, mi in zip(fleet.units, self.assignment):
            if not machines[mi].alive:
                raise CapacityError(
                    f"unit {unit.key} placed on dead {machines[mi].name}")
            # raises CapacityError on over-commit via machine accounting
            shadows[mi].allocate(unit.cores, unit.memory_mb, owner=unit.key)


def _spread_violations(fleet: Fleet, assignment: Sequence[int]) -> int:
    """Missing zones per tenant: multi-stream tenants must span >= 2."""
    machines = fleet.machines
    zones_available = len({m.zone for m in machines})
    tenant_streams: Dict[str, set] = {}
    tenant_zones: Dict[str, set] = {}
    for unit, mi in zip(fleet.units, assignment):
        tenant_streams.setdefault(unit.tenant, set()).add(unit.stream)
        tenant_zones.setdefault(unit.tenant, set()).add(machines[mi].zone)
    violations = 0
    for tenant, streams in tenant_streams.items():
        required = min(2, len(streams), zones_available)
        violations += max(0, required - len(tenant_zones[tenant]))
    return violations


def remote_penalties(fleet: Fleet, assignment: Sequence[int],
                     params: CostParams) -> List[float]:
    """Per-unit remote-dispatch cost (ms added to every one of its jobs).

    Each cross-machine edge charges half its weight to each endpoint at
    the hop cost of the network distance between them — remote dispatch
    adjusts the predictor's IPC/network terms.  :func:`run_fleet` inflates
    job service times with exactly these numbers, so the placement cost
    model and the runtime agree on what co-location buys.
    """
    machines = fleet.machines
    pen = [0.0] * len(fleet.units)
    for edge in fleet.edges:
        ma, mb = assignment[edge.a], assignment[edge.b]
        if ma == mb:
            continue
        if machines[ma].zone == machines[mb].zone:
            hop = params.remote_hop_ms - params.local_hop_ms
        else:
            hop = (params.remote_hop_ms * params.cross_zone_factor
                   - params.local_hop_ms)
        pen[edge.a] += 0.5 * edge.weight * hop
        pen[edge.b] += 0.5 * edge.weight * hop
    return pen


def placement_cost(fleet: Fleet, assignment: Sequence[int], *,
                   params: Optional[CostParams] = None
                   ) -> Tuple[float, Dict[str, float]]:
    """Audit one assignment from scratch; returns (total, breakdown).

    This is the single source of truth the annealer's accept decisions,
    the bench rows and the property tests all share — the SA loop calls it
    per candidate (fleets are hundreds of units, so a full recost is a few
    thousand float ops; the delta it exposes is ``candidate - current``).
    """
    p = params or CostParams.from_calibration(fleet.cal)
    machines = fleet.machines

    rpc = 0.0
    for edge in fleet.edges:
        ma, mb = machines[assignment[edge.a]], machines[assignment[edge.b]]
        if assignment[edge.a] == assignment[edge.b]:
            hop = p.local_hop_ms
        elif ma.zone == mb.zone:
            hop = p.remote_hop_ms
        else:
            hop = p.remote_hop_ms * p.cross_zone_factor
        rpc += edge.weight * fleet.spec.streams[edge.stream].rps * hop
    rpc *= p.rpc_weight

    # effective offered load per unit in erlangs: rps x (share x mean
    # service + remote-dispatch inflation) — the same service times the
    # runner executes, so stability here is stability there
    pool_mean_s = fleet.pool_mean_ms() / 1000.0
    pen = remote_penalties(fleet, assignment, p)
    total_load: Dict[int, float] = {}
    tenant_load: Dict[int, Dict[str, float]] = {}
    for unit, mi in zip(fleet.units, assignment):
        rps = fleet.spec.streams[unit.stream].rps
        load = rps * (unit.share * pool_mean_s + pen[unit.uid] / 1000.0)
        total_load[mi] = total_load.get(mi, 0.0) + load
        per = tenant_load.setdefault(mi, {})
        per[unit.tenant] = per.get(unit.tenant, 0.0) + load
    contention = 0.0
    overload = 0.0
    for mi, s in total_load.items():
        cross = s * s - sum(v * v for v in tenant_load[mi].values())
        contention += 0.5 * cross
        cap = p.utilization_cap * machines[mi].cores
        if s > cap:
            overload += (s - cap) ** 2
    contention *= p.noisy_weight
    overload *= p.overload_weight

    consolidation = p.machine_cost * len(total_load)
    spread = p.spread_penalty * _spread_violations(fleet, assignment)
    breakdown = {"rpc": rpc, "contention": contention,
                 "overload": overload, "consolidation": consolidation,
                 "spread": spread,
                 "machines_used": float(len(total_load))}
    return (rpc + contention + overload + consolidation + spread,
            breakdown)


class _Shadow:
    """Capacity bookkeeping over the live machines (indices preserved)."""

    def __init__(self, fleet: Fleet) -> None:
        self.machines = fleet.machines
        self.live = [i for i, m in enumerate(self.machines) if m.alive]
        self.cores_used = [0.0] * len(self.machines)
        self.mem_used = [0.0] * len(self.machines)

    def fits(self, mi: int, cores: float, mem: float) -> bool:
        m = self.machines[mi]
        return (m.alive
                and self.cores_used[mi] + cores <= m.cores + 1e-9
                and self.mem_used[mi] + mem <= m.memory_mb + 1e-9)

    def add(self, mi: int, cores: float, mem: float) -> None:
        self.cores_used[mi] += cores
        self.mem_used[mi] += mem

    def remove(self, mi: int, cores: float, mem: float) -> None:
        self.cores_used[mi] -= cores
        self.mem_used[mi] -= mem


class FleetPlacer:
    """Global bin-packing + detailed annealing over one compiled fleet."""

    def __init__(self, fleet: Fleet, *,
                 params: Optional[CostParams] = None,
                 registry=None, tracer=None) -> None:
        self.fleet = fleet
        self.params = params or CostParams.from_calibration(fleet.cal)
        self.registry = registry
        self.tracer = tracer

    # -- helpers ---------------------------------------------------------------
    def _clones(self) -> List[Machine]:
        """Fresh empty copies of the live machines, topology order."""
        return [Machine(m.name, cores=m.cores, memory_mb=m.memory_mb,
                        zone=m.zone, rack=m.rack)
                for m in self.fleet.machines if m.alive]

    def _finish(self, assignment: List[int], method: str,
                seed_cost: Optional[float] = None, proposed: int = 0,
                accepted: int = 0) -> PlacementPlan:
        cost, breakdown = placement_cost(self.fleet, assignment,
                                         params=self.params)
        plan = PlacementPlan(assignment=tuple(assignment), method=method,
                             cost=cost, breakdown=breakdown,
                             seed_cost=seed_cost, moves_proposed=proposed,
                             moves_accepted=accepted)
        if self.registry is not None:
            self.registry.inc("fleet.place.units", len(assignment))
            self.registry.inc("fleet.place.moves.proposed", proposed)
            self.registry.inc("fleet.place.moves.accepted", accepted)
        if self.tracer is not None:
            self.tracer.event("fleet.place.done", entity="fleet",
                              method=method, cost=cost,
                              machines=int(breakdown["machines_used"]))
        return plan

    def _index_of(self, clones: List[Machine],
                  machine: Machine) -> int:
        """Topology index of a clone (clones keep topology order)."""
        name = machine.name
        for i, m in enumerate(self.fleet.machines):
            if m.name == name:
                return i
        raise SchedulingError(f"unknown machine {name}")  # pragma: no cover

    # -- global phase ----------------------------------------------------------
    def random_place(self, seed: int = 0) -> PlacementPlan:
        """Uniform placement among fitting machines (the naive baseline)."""
        rng = random.Random(seed)
        clones = self._clones()
        assignment = [0] * len(self.fleet.units)
        for unit in self.fleet.units:
            fits = [m for m in clones
                    if m.can_fit(unit.cores, unit.memory_mb)]
            if not fits:
                raise CapacityError(f"no machine fits unit {unit.key}")
            chosen = fits[rng.randrange(len(fits))]
            chosen.allocate(unit.cores, unit.memory_mb, owner=unit.key)
            assignment[unit.uid] = self._index_of(clones, chosen)
        return self._finish(assignment, "random")

    def first_fit(self) -> PlacementPlan:
        """Plain first-fit in spec order — the :class:`Cluster` default."""
        clones = self._clones()
        assignment = [0] * len(self.fleet.units)
        for unit in self.fleet.units:
            chosen = choose_machine(clones, unit.cores, unit.memory_mb,
                                    policy="first-fit")
            if chosen is None:
                raise CapacityError(f"no machine fits unit {unit.key}")
            chosen.allocate(unit.cores, unit.memory_mb, owner=unit.key)
            assignment[unit.uid] = self._index_of(clones, chosen)
        return self._finish(assignment, "first-fit")

    def greedy(self, policy: str = "best-fit") -> PlacementPlan:
        """First-fit-decreasing bin-packing with per-tenant home zones.

        Each tenant's streams round-robin over the zones (so spread holds
        by construction when capacity allows), then units go largest-first
        through :func:`choose_machine` restricted to the stream's home
        zone, falling back to the whole fleet when the zone is full.
        """
        fleet = self.fleet
        clones = self._clones()
        zones = sorted({m.zone for m in clones})
        home: Dict[int, str] = {}
        counter: Dict[str, int] = {}
        for si, stream in enumerate(fleet.spec.streams):
            k = counter.get(stream.tenant, 0)
            home[si] = zones[k % len(zones)]
            counter[stream.tenant] = k + 1
        order = sorted(fleet.units,
                       key=lambda u: (-u.cores, -u.memory_mb, u.uid))
        assignment = [0] * len(fleet.units)
        for unit in order:
            zone = home[unit.stream]
            in_zone = [m for m in clones if m.zone == zone]
            chosen = choose_machine(in_zone, unit.cores, unit.memory_mb,
                                    policy=policy)
            if chosen is None:
                chosen = choose_machine(clones, unit.cores, unit.memory_mb,
                                        policy=policy)
            if chosen is None:
                raise CapacityError(f"no machine fits unit {unit.key}")
            chosen.allocate(unit.cores, unit.memory_mb, owner=unit.key)
            assignment[unit.uid] = self._index_of(clones, chosen)
        return self._finish(assignment, "greedy")

    # -- detailed phase --------------------------------------------------------
    def anneal(self, options: Optional[SearchOptions] = None,
               policy: str = "best-fit") -> PlacementPlan:
        """Greedy seed + simulated annealing over placement moves.

        Mirrors :func:`repro.core.search.anneal`: geometric cooling with a
        floor, stall teleport back to the best-so-far, accept-worse via the
        Metropolis rule, and anytime best-so-far semantics.  Moves are
        ``migrate`` (one unit to another machine), ``swap`` (two units
        exchange machines) and ``respread`` (one stream's units jump to a
        different zone together).  The returned plan is never worse than
        the greedy seed: best-so-far starts there and the final comparison
        uses from-scratch recosts of both.
        """
        opts = options or SearchOptions(budget=3000)
        fleet = self.fleet
        if self.tracer is not None:
            self.tracer.event("fleet.place.start", entity="fleet",
                              method="anneal", budget=opts.budget,
                              seed=opts.seed)
        seed_plan = self.greedy(policy=policy)
        assignment = list(seed_plan.assignment)
        shadow = _Shadow(fleet)
        for unit, mi in zip(fleet.units, assignment):
            shadow.add(mi, unit.cores, unit.memory_mb)
        cost, _ = placement_cost(fleet, assignment, params=self.params)
        best = list(assignment)
        best_cost = cost
        rng = random.Random(opts.seed)
        t = opts.t0 if opts.t0 is not None else max(0.06 * cost, 0.5)
        stall = 0
        proposed = accepted = 0
        streams = list(range(len(fleet.spec.streams)))
        zones = sorted({m.zone for m in fleet.machines if m.alive})
        for _ in range(opts.budget):
            move = self._propose(rng, assignment, shadow, streams, zones)
            proposed += 1
            if move is None:
                continue
            self._apply(move, assignment, shadow)
            candidate, _ = placement_cost(fleet, assignment,
                                          params=self.params)
            delta = candidate - cost
            if delta <= 0 or rng.random() < math.exp(
                    -delta / max(t, opts.t_floor)):
                accepted += 1
                cost = candidate
                if cost < best_cost:
                    best_cost = cost
                    best = list(assignment)
                    stall = 0
                else:
                    stall += 1
            else:
                self._apply(self._inverse(move), assignment, shadow)
                stall += 1
            if stall >= opts.stall:
                # teleport the walk back to the best-so-far plan
                for unit, mi in zip(fleet.units, assignment):
                    shadow.remove(mi, unit.cores, unit.memory_mb)
                assignment = list(best)
                for unit, mi in zip(fleet.units, assignment):
                    shadow.add(mi, unit.cores, unit.memory_mb)
                cost = best_cost
                stall = 0
            t = max(t * opts.cooling, opts.t_floor)
        final_cost, _ = placement_cost(fleet, best, params=self.params)
        if final_cost > seed_plan.cost:       # drift guard: seed wins ties
            best = list(seed_plan.assignment)
        return self._finish(best, "anneal", seed_cost=seed_plan.cost,
                            proposed=proposed, accepted=accepted)

    def place(self, method: str = "anneal", *,
              options: Optional[SearchOptions] = None,
              seed: int = 0, policy: str = "best-fit") -> PlacementPlan:
        if method == "random":
            return self.random_place(seed)
        if method == "first-fit":
            return self.first_fit()
        if method == "greedy":
            return self.greedy(policy=policy)
        if method == "anneal":
            return self.anneal(options, policy=policy)
        raise SchedulingError(
            f"unknown placement method {method!r} "
            f"(expected one of {', '.join(PLACEMENT_METHODS)})")

    # -- moves -----------------------------------------------------------------
    def _propose(self, rng: random.Random, assignment: List[int],
                 shadow: _Shadow, streams: List[int],
                 zones: List[str]) -> Optional[list]:
        """Draw one feasible move, or None when the draw is infeasible."""
        fleet = self.fleet
        kind = rng.random()
        if kind < 0.45:                                  # migrate
            u = fleet.units[rng.randrange(len(fleet.units))]
            mi = shadow.live[rng.randrange(len(shadow.live))]
            if mi == assignment[u.uid]:
                return None
            if not shadow.fits(mi, u.cores, u.memory_mb):
                return None
            return ["migrate", u.uid, assignment[u.uid], mi]
        if kind < 0.65:                                  # drain
            return self._propose_drain(rng, assignment, shadow)
        if kind < 0.85:                                  # swap
            a = fleet.units[rng.randrange(len(fleet.units))]
            b = fleet.units[rng.randrange(len(fleet.units))]
            ma, mb = assignment[a.uid], assignment[b.uid]
            if a.uid == b.uid or ma == mb:
                return None
            shadow.remove(ma, a.cores, a.memory_mb)
            shadow.remove(mb, b.cores, b.memory_mb)
            ok = (shadow.fits(mb, a.cores, a.memory_mb)
                  and shadow.fits(ma, b.cores, b.memory_mb))
            shadow.add(ma, a.cores, a.memory_mb)
            shadow.add(mb, b.cores, b.memory_mb)
            if not ok:
                return None
            return ["swap", a.uid, b.uid, ma, mb]
        # respread: one stream's units jump to a different zone together
        si = streams[rng.randrange(len(streams))]
        zone = zones[rng.randrange(len(zones))]
        units = self.fleet.units_of_stream(si)
        old = [assignment[u.uid] for u in units]
        targets: List[int] = []
        for u in units:
            shadow.remove(assignment[u.uid], u.cores, u.memory_mb)
        try:
            for u in units:
                fits = [mi for mi in shadow.live
                        if self.fleet.machines[mi].zone == zone
                        and shadow.fits(mi, u.cores, u.memory_mb)]
                if not fits:
                    return None
                # tightest core fit within the zone (best-fit idiom)
                mi = min(fits, key=lambda i:
                         self.fleet.machines[i].cores
                         - shadow.cores_used[i] - u.cores)
                shadow.add(mi, u.cores, u.memory_mb)
                targets.append(mi)
        finally:
            # propose() must leave the shadow untouched either way
            for u, mi in zip(units, targets):
                shadow.remove(mi, u.cores, u.memory_mb)
            for u, mi in zip(units, old):
                shadow.add(mi, u.cores, u.memory_mb)
        if targets == old:
            return None
        return ["respread", [u.uid for u in units], old, targets]

    def _propose_drain(self, rng: random.Random, assignment: List[int],
                       shadow: _Shadow) -> Optional[list]:
        """Vacate one lightly-loaded machine in a single move.

        Single-unit migrations cannot consolidate past the cost barrier of
        the intermediate states (the machine stays used until its last
        unit leaves), so the annealer gets a dedicated move: pick one of
        the three emptiest used machines and rehome *all* of its units to
        other used machines, tightest core fit first.  Infeasible drains
        (nothing else fits) propose nothing.
        """
        used = [mi for mi in shadow.live if shadow.cores_used[mi] > 0]
        if len(used) < 2:
            return None
        emptiest = sorted(used, key=lambda i: (shadow.cores_used[i], i))
        src = emptiest[rng.randrange(min(3, len(emptiest)))]
        units = [u for u, mi in zip(self.fleet.units, assignment)
                 if mi == src]
        # biggest first, so the tight fits are attempted while room remains
        units.sort(key=lambda u: (-u.cores, -u.memory_mb, u.uid))
        streams_on: Dict[int, set] = {}
        for u, mi in zip(self.fleet.units, assignment):
            if mi != src:
                streams_on.setdefault(mi, set()).add(u.stream)
        old = [assignment[u.uid] for u in units]
        targets: List[int] = []
        for u in units:
            shadow.remove(src, u.cores, u.memory_mb)
        try:
            for u in units:
                fits = [mi for mi in used
                        if mi != src and shadow.fits(mi, u.cores,
                                                     u.memory_mb)]
                if not fits:
                    return None
                # rehome next to stream peers when possible (the RPC term
                # would veto a drain that scatters a chatty stream), then
                # tightest core fit
                mi = min(fits, key=lambda i: (
                    u.stream not in streams_on.get(i, ()),
                    self.fleet.machines[i].cores
                    - shadow.cores_used[i] - u.cores))
                shadow.add(mi, u.cores, u.memory_mb)
                targets.append(mi)
                streams_on.setdefault(mi, set()).add(u.stream)
        finally:
            # propose() must leave the shadow untouched either way
            for u, mi in zip(units, targets):
                shadow.remove(mi, u.cores, u.memory_mb)
            for u in units:
                shadow.add(src, u.cores, u.memory_mb)
        return ["drain", [u.uid for u in units], old, targets]

    def _apply(self, move: list, assignment: List[int],
               shadow: _Shadow) -> None:
        fleet = self.fleet
        if move[0] == "migrate":
            _, uid, src, dst = move
            u = fleet.units[uid]
            shadow.remove(src, u.cores, u.memory_mb)
            shadow.add(dst, u.cores, u.memory_mb)
            assignment[uid] = dst
        elif move[0] == "swap":
            _, a, b, ma, mb = move
            ua, ub = fleet.units[a], fleet.units[b]
            shadow.remove(ma, ua.cores, ua.memory_mb)
            shadow.remove(mb, ub.cores, ub.memory_mb)
            shadow.add(mb, ua.cores, ua.memory_mb)
            shadow.add(ma, ub.cores, ub.memory_mb)
            assignment[a], assignment[b] = mb, ma
        else:                                            # respread
            _, uids, old, new = move
            for uid, src, dst in zip(uids, old, new):
                u = fleet.units[uid]
                shadow.remove(src, u.cores, u.memory_mb)
                shadow.add(dst, u.cores, u.memory_mb)
                assignment[uid] = dst

    @staticmethod
    def _inverse(move: list) -> list:
        if move[0] == "migrate":
            _, uid, src, dst = move
            return ["migrate", uid, dst, src]
        if move[0] == "swap":
            _, a, b, ma, mb = move
            return ["swap", a, b, mb, ma]
        _, uids, old, new = move
        return ["respread", uids, new, old]
