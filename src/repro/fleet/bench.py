"""Fleet placement benchmark: random vs first-fit vs annealed.

Compiles one multi-tenant synthetic fleet from the app catalog, places it
three ways — uniform random, plain in-order first-fit (what a
``Cluster``-style local placer does) and the global+annealed
:class:`~repro.fleet.placement.FleetPlacer` pipeline — then executes every
placement deterministically with :func:`~repro.fleet.runner.run_fleet`
and compares fleet-level quality: p99 sojourn, goodput, packing fraction,
cross-zone traffic, fairness.

The acceptance surface (``summary`` flags, gated by
``benchmarks/check_trajectory.py`` and the CI smoke job) is quality and
determinism only — wall-clock numbers are recorded per arm for trend
reading but never asserted on.  The determinism pass recompiles the spec
from scratch (fresh manager, fresh prediction path) and replays the
annealed arm, requiring bit-identical assignment and run statistics.

The full-size run streams >=1M requests (18 streams x 60k) through the
vectorized fast path; ``quick=True`` keeps the same fleet shape at 1k
requests per stream for CI.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.search import SearchOptions
from repro.errors import SimulationError
from repro.fleet.placement import FleetPlacer, PlacementPlan
from repro.fleet.runner import FleetRunReport, run_fleet
from repro.fleet.spec import compile_fleet, synth_fleet

#: fleet shape shared by quick and full runs (18 streams, 6 tenants)
BENCH_TENANTS = 6
BENCH_WORKLOADS_PER_TENANT = 3
#: full-size request count per stream: 18 x 60_000 = 1.08M requests
BENCH_REQUESTS_FULL = 60_000
BENCH_REQUESTS_QUICK = 1_000
BENCH_RPS = 40.0
BENCH_ANNEAL_BUDGET = 6_000

#: the three bench arms, in the order they are placed and reported
BENCH_ARMS = ("random", "first-fit", "annealed")


def _bench_spec(*, quick: bool, seed: int):
    requests = BENCH_REQUESTS_QUICK if quick else BENCH_REQUESTS_FULL
    return synth_fleet(tenants=BENCH_TENANTS,
                       workloads_per_tenant=BENCH_WORKLOADS_PER_TENANT,
                       requests_per_stream=requests,
                       rps=BENCH_RPS, seed=seed)


def _arm_row(plan: PlacementPlan, report: FleetRunReport, fleet,
             wall_s: float) -> dict:
    row = {
        "placement": {
            "method": plan.method,
            "cost": plan.cost,
            "breakdown": dict(plan.breakdown),
            "seed_cost": plan.seed_cost,
            "moves_proposed": plan.moves_proposed,
            "moves_accepted": plan.moves_accepted,
            "machines_used": plan.machines_used(fleet),
            "packing_fraction": plan.packing_fraction(fleet),
            "spread_violations": plan.spread_violations(fleet),
        },
        "run": {**report.quality_fields(), **report.fleet_fields()},
        "wall_s": wall_s,            # trend reading only; never gated on
    }
    return row


def _place(placer: FleetPlacer, arm: str, seed: int) -> PlacementPlan:
    if arm == "random":
        return placer.random_place(seed=seed + 1)
    if arm == "first-fit":
        return placer.first_fit()
    if arm == "annealed":
        return placer.anneal(
            SearchOptions(budget=BENCH_ANNEAL_BUDGET, seed=seed))
    raise SimulationError(f"unknown bench arm {arm!r}")  # pragma: no cover


def run_fleet_bench(*, quick: bool = False, check: bool = False,
                    seed: int = 0, registry=None, tracer=None) -> dict:
    """Run the three-arm fleet placement bench; returns the JSON report."""
    spec = _bench_spec(quick=quick, seed=seed)
    t0 = time.perf_counter()
    fleet = compile_fleet(spec)
    compile_s = time.perf_counter() - t0

    placer = FleetPlacer(fleet, registry=registry, tracer=tracer)
    arms: dict = {}
    for arm in BENCH_ARMS:
        t0 = time.perf_counter()
        plan = _place(placer, arm, seed)
        plan.validate(fleet)
        report = run_fleet(fleet, plan, registry=registry, tracer=tracer)
        arms[arm] = _arm_row(plan, report, fleet,
                             time.perf_counter() - t0)
        if arm == "annealed":
            annealed_plan, annealed_report = plan, report

    # -- determinism: recompile from scratch and replay the annealed arm --
    fleet2 = compile_fleet(_bench_spec(quick=quick, seed=seed))
    plan2 = _place(FleetPlacer(fleet2), "annealed", seed)
    report2 = run_fleet(fleet2, plan2)
    same_assignment = plan2.assignment == annealed_plan.assignment
    fields1 = {**annealed_report.quality_fields(),
               **annealed_report.fleet_fields()}
    fields2 = {**report2.quality_fields(), **report2.fleet_fields()}
    deterministic = same_assignment and fields1 == fields2

    a = arms["annealed"]
    ff = arms["first-fit"]
    rnd = arms["random"]
    summary = {
        "annealed_beats_random_p99":
            a["run"]["sojourn_p99_ms"] < rnd["run"]["sojourn_p99_ms"],
        "annealed_beats_first_fit_p99":
            a["run"]["sojourn_p99_ms"] < ff["run"]["sojourn_p99_ms"],
        "annealed_beats_random_packing":
            a["placement"]["packing_fraction"]
            > rnd["placement"]["packing_fraction"],
        "annealed_beats_first_fit_packing":
            a["placement"]["packing_fraction"]
            > ff["placement"]["packing_fraction"],
        "annealed_beats_random_goodput":
            a["run"]["goodput_fraction"] > rnd["run"]["goodput_fraction"],
        "annealed_beats_first_fit_goodput":
            a["run"]["goodput_fraction"] > ff["run"]["goodput_fraction"],
        "anneal_not_worse_than_seed":
            a["placement"]["seed_cost"] is not None
            and a["placement"]["cost"] <= a["placement"]["seed_cost"],
        "no_spread_violations_annealed":
            a["placement"]["spread_violations"] == 0,
        "deterministic": deterministic,
    }
    report = {
        "bench": "fleet",
        "quick": quick,
        "seed": seed,
        "spec": {
            "tenants": BENCH_TENANTS,
            "workloads_per_tenant": BENCH_WORKLOADS_PER_TENANT,
            "streams": len(spec.streams),
            "requests_per_stream": spec.streams[0].requests,
            "total_requests": spec.total_requests,
            "rps": BENCH_RPS,
            "zones": spec.zones,
            "racks_per_zone": spec.racks_per_zone,
            "machines_per_rack": spec.machines_per_rack,
            "cores_per_machine": spec.cores_per_machine,
            "units": len(fleet.units),
            "edges": len(fleet.edges),
            "demand_cores": fleet.demand_cores(),
            "machines": len(fleet.machines),
            "anneal_budget": BENCH_ANNEAL_BUDGET,
        },
        "compile_s": compile_s,      # trend reading only
        "arms": arms,
        "determinism": {
            "identical_assignment": same_assignment,
            "identical_run_fields": fields1 == fields2,
        },
        "summary": summary,
    }
    if check:
        failed = sorted(k for k, v in summary.items() if not v)
        if failed:
            raise SimulationError(
                f"fleet bench acceptance failed: {', '.join(failed)}")
    return report


def format_fleet_table(report: dict) -> str:
    """Human-readable summary of one fleet bench report."""
    spec = report["spec"]
    lines = [
        f"fleet bench: {spec['tenants']} tenants x "
        f"{spec['workloads_per_tenant']} workloads, "
        f"{spec['total_requests']:,} requests over {spec['streams']} "
        f"streams, {spec['units']} wrap units / "
        f"{spec['demand_cores']:.0f} cores on {spec['machines']} machines "
        f"({spec['zones']} zones)",
        f"  {'arm':>10s} {'cost':>11s} {'mach':>5s} {'pack':>6s} "
        f"{'p99_ms':>10s} {'goodput':>8s} {'fair':>6s} "
        f"{'xzone':>9s} {'sv':>3s}",
    ]
    for arm in BENCH_ARMS:
        row = report["arms"][arm]
        p, r = row["placement"], row["run"]
        lines.append(
            f"  {arm:>10s} {p['cost']:11.1f} {p['machines_used']:5d} "
            f"{p['packing_fraction']:6.3f} {r['sojourn_p99_ms']:10.2f} "
            f"{r['goodput_fraction']:8.3f} {r['fairness_jain']:6.3f} "
            f"{r['cross_zone_traffic']:9.0f} "
            f"{p['spread_violations']:3d}")
    flags = report["summary"]
    ok = sorted(k for k, v in flags.items() if v)
    bad = sorted(k for k, v in flags.items() if not v)
    lines.append(f"  flags ok: {', '.join(ok) or '-'}")
    if bad:
        lines.append(f"  flags FAILED: {', '.join(bad)}")
    return "\n".join(lines)
