"""Fleet specification and compilation: tenants → wrap demand units.

A :class:`FleetSpec` describes *who* shares the cluster: a list of
:class:`StreamSpec`\\ s — one independent Poisson arrival stream per
(tenant, workflow) pair — plus the failure-domain topology shape
(zones × racks × machines, from :mod:`repro.faults.domains`).

:func:`compile_fleet` lowers the spec to the placement problem's inputs.
Each stream's workflow (drawn from the app catalog) is planned once by a
shared :class:`~repro.core.manager.ChironManager` — one manager, one
:class:`~repro.core.predictor.PredictionCache`, so identical (workload,
SLO) pairs across tenants cost a single PGP run — and every wrap of the
plan becomes a :class:`WrapUnit` with a core/memory demand and a share of
the stream's per-request service time.  Intra-stream RPC coupling is
summarized as weighted :class:`Edge`\\ s (messages per request between two
wraps): the placement cost model charges them by network distance.

:func:`fleet_from_scenario` builds the degenerate single-tenant,
single-machine fleet whose run is bit-identical to
:mod:`repro.cluster.fleetsim`'s DES/closed-form results — the identity
anchor that pins the fleet fast path to the event kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.apps.catalog import workload
from repro.calibration import NODE_CORES, NODE_MEMORY_MB, RuntimeCalibration
from repro.cluster.fleetsim import DEFAULT_SERVICE_POOL_MS, FleetScenario
from repro.core.wrap import DeploymentPlan
from repro.errors import CapacityError, DeploymentError
from repro.faults.domains import Topology
from repro.runtime.memory import SandboxFootprint, sandbox_memory_mb


@dataclass(frozen=True)
class StreamSpec:
    """One (tenant, workflow) arrival stream.

    ``seed`` feeds the same RNG mapping as
    :func:`repro.cluster.fleetsim.scenario_draws` (gaps from ``seed + 1``,
    services from ``seed``), so a single-stream fleet consumes bit-identical
    draws to a :class:`FleetScenario` with that seed.
    """

    tenant: str
    workload: str
    rps: float
    requests: int
    seed: int
    slo_factor: float = 3.0
    #: goodput deadline, as a multiple of the mean pool service time
    deadline_factor: float = 6.0

    def __post_init__(self) -> None:
        if not self.tenant or not self.workload:
            raise DeploymentError("stream needs a tenant and a workload")
        if self.rps <= 0 or self.requests < 1:
            raise DeploymentError("stream rps and requests must be positive")
        if self.slo_factor <= 0 or self.deadline_factor <= 0:
            raise DeploymentError("stream factors must be positive")


@dataclass(frozen=True)
class FleetSpec:
    """A multi-tenant fleet and the cluster it shares."""

    streams: tuple[StreamSpec, ...]
    zones: int = 3
    racks_per_zone: int = 2
    machines_per_rack: int = 2
    cores_per_machine: float = 16.0
    memory_per_machine_mb: float = NODE_MEMORY_MB
    seed: int = 0
    service_pool_ms: tuple[float, ...] = DEFAULT_SERVICE_POOL_MS

    def __post_init__(self) -> None:
        if not self.streams:
            raise DeploymentError("fleet needs at least one stream")
        if min(self.zones, self.racks_per_zone, self.machines_per_rack) < 1:
            raise CapacityError("fleet topology dims must be >= 1")
        if self.cores_per_machine <= 0 or self.memory_per_machine_mb <= 0:
            raise CapacityError("machines need positive cores and memory")
        if not self.service_pool_ms:
            raise CapacityError("service pool must be non-empty")

    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self.streams)

    @property
    def tenants(self) -> tuple[str, ...]:
        seen: list[str] = []
        for s in self.streams:
            if s.tenant not in seen:
                seen.append(s.tenant)
        return tuple(seen)

    def topology(self) -> Topology:
        return Topology.grid(zones=self.zones,
                             racks_per_zone=self.racks_per_zone,
                             machines_per_rack=self.machines_per_rack,
                             cores=self.cores_per_machine,
                             memory_mb=self.memory_per_machine_mb)


@dataclass(frozen=True)
class WrapUnit:
    """One wrap's placement demand: the atom the placer moves around."""

    uid: int          # dense index into Fleet.units
    key: str          # "tenant/workload#stream/wrap" — the owner label
    tenant: str
    stream: int       # index into FleetSpec.streams
    cores: float
    memory_mb: float
    #: the wrap's fraction of the stream's per-request service time
    share: float


@dataclass(frozen=True)
class Edge:
    """RPC coupling between two wraps of one stream (messages/request)."""

    a: int
    b: int
    stream: int
    weight: float


@dataclass
class Fleet:
    """A compiled fleet: demand units + coupling over a topology."""

    spec: FleetSpec
    topology: Topology
    units: tuple[WrapUnit, ...]
    edges: tuple[Edge, ...]
    #: stream index → the deployment plan its wraps came from
    plans: Dict[int, DeploymentPlan] = field(default_factory=dict)
    cal: Optional[RuntimeCalibration] = None

    def __post_init__(self) -> None:
        if not self.units:
            raise DeploymentError("fleet compiled to zero units")
        for edge in self.edges:
            if edge.a == edge.b:
                raise DeploymentError(f"self-edge on unit {edge.a}")

    @property
    def machines(self) -> list:
        return self.topology.machines

    def units_of_stream(self, stream: int) -> list[WrapUnit]:
        return [u for u in self.units if u.stream == stream]

    def demand_cores(self) -> float:
        return sum(u.cores for u in self.units)

    def pool_mean_ms(self) -> float:
        return float(np.mean(np.asarray(self.spec.service_pool_ms,
                                        dtype=float)))


def _wrap_memory_mb(plan: DeploymentPlan, wrap,
                    cal: RuntimeCalibration) -> float:
    """One wrap's resident memory (mirrors the Chiron platform footprint)."""
    peak_forked = max((len(sa.forked_processes) for sa in wrap.stages),
                      default=0)
    peak_threads = max((sum(len(g.functions) for g in sa.thread_groups)
                        for sa in wrap.stages), default=0)
    fp = SandboxFootprint(functions=len(wrap.function_names),
                          processes=1 + peak_forked,
                          threads=peak_threads,
                          pool_workers=plan.pool_workers)
    return sandbox_memory_mb(fp, cal)


def _stream_edges(plan: DeploymentPlan, uids: Sequence[int],
                  stream: int, n_stages: int) -> list[Edge]:
    """RPC coupling of one stream's wraps, in messages per request.

    Two terms, both straight from the execution model: the orchestrator
    (wrap 1) invokes every sibling wrap once per stage it participates in,
    and consecutive stages hand data across every (producer, consumer) wrap
    pair.  Weights accumulate on undirected (min, max) uid pairs.
    """
    weights: Dict[tuple[int, int], float] = {}
    by_wrap = {w.name: uids[i] for i, w in enumerate(plan.wraps)}
    orchestrator = uids[0]

    def add(a: int, b: int, w: float) -> None:
        if a == b:
            return
        key = (a, b) if a < b else (b, a)
        weights[key] = weights.get(key, 0.0) + w

    for idx in range(n_stages):
        participants = [by_wrap[w.name] for w, _ in plan.stage_wraps(idx)]
        for uid in participants:
            add(orchestrator, uid, 1.0)
        if idx + 1 < n_stages:
            consumers = [by_wrap[w.name]
                         for w, _ in plan.stage_wraps(idx + 1)]
            for a in participants:
                for b in consumers:
                    add(a, b, 1.0)
    return [Edge(a=a, b=b, stream=stream, weight=w)
            for (a, b), w in sorted(weights.items())]


def compile_fleet(spec: FleetSpec, *, manager=None) -> Fleet:
    """Lower a spec to placement inputs via one shared manager.

    Plans are cached per (workload, slo_factor): tenants running the same
    app at the same SLO share one PGP run, and even distinct pairs reuse
    stage predictions through the manager's shared
    :class:`~repro.core.predictor.PredictionCache`.
    """
    if manager is None:
        from repro.core.manager import ChironManager
        manager = ChironManager()
    plan_cache: Dict[tuple[str, float], DeploymentPlan] = {}
    units: list[WrapUnit] = []
    edges: list[Edge] = []
    plans: Dict[int, DeploymentPlan] = {}
    for si, stream in enumerate(spec.streams):
        key = (stream.workload, stream.slo_factor)
        if key not in plan_cache:
            wf = workload(stream.workload)
            slo = wf.critical_path_ms * stream.slo_factor
            plan_cache[key] = manager.plan(wf, slo)
        plan = plan_cache[key]
        plans[si] = plan
        total = plan.total_cores
        uids: list[int] = []
        for wrap in plan.wraps:
            uid = len(units)
            uids.append(uid)
            cores = float(plan.cores_for(wrap))
            units.append(WrapUnit(
                uid=uid,
                key=f"{stream.tenant}/{stream.workload}#{si}/{wrap.name}",
                tenant=stream.tenant,
                stream=si,
                cores=cores,
                memory_mb=_wrap_memory_mb(plan, wrap, manager.cal),
                share=cores / total))
        n_stages = len(workload(stream.workload).stages)
        edges.extend(_stream_edges(plan, uids, si, n_stages))
    return Fleet(spec=spec, topology=spec.topology(), units=tuple(units),
                 edges=tuple(edges), plans=plans, cal=manager.cal)


def fleet_from_scenario(scenario: FleetScenario, *,
                        tenant: str = "t0") -> Fleet:
    """The degenerate fleet: one tenant, one unit-share wrap, one machine.

    The machine's core count equals the scenario's server count and the
    single unit's service share is exactly 1.0 with no remote edges, so
    :func:`repro.fleet.runner.run_fleet` performs bit-identical float
    operations to :func:`repro.cluster.fleetsim.simulate_des` /
    :func:`simulate_vectorized` on this fleet (the identity test pins it).
    """
    stream = StreamSpec(tenant=tenant, workload="degenerate",
                        rps=scenario.rps, requests=scenario.requests,
                        seed=scenario.seed)
    spec = FleetSpec(streams=(stream,), zones=1, racks_per_zone=1,
                     machines_per_rack=1,
                     cores_per_machine=float(scenario.servers),
                     memory_per_machine_mb=NODE_MEMORY_MB,
                     seed=scenario.seed,
                     service_pool_ms=scenario.service_pool_ms)
    unit = WrapUnit(uid=0, key=f"{tenant}/degenerate#0/wrap-1",
                    tenant=tenant, stream=0,
                    cores=float(scenario.servers),
                    memory_mb=512.0, share=1.0)
    return Fleet(spec=spec, topology=spec.topology(), units=(unit,),
                 edges=())


def synth_fleet(*, tenants: int = 4, workloads_per_tenant: int = 3,
                requests_per_stream: int = 2_000, rps: float = 48.0,
                seed: int = 0, zones: int = 3, racks_per_zone: int = 2,
                machines_per_rack: int = 5,
                cores_per_machine: float = 10.0,
                slo_factor: float = 1.2) -> FleetSpec:
    """Deterministically synthesize a multi-tenant spec from the catalog.

    Streams arrive in onboarding order — every tenant deploys its small
    apps first and scales to the wide app (finra-50 plans to ~13 wraps /
    32 cores at the default SLO, so a single stream never fits one machine
    and placement must pick the cut) in the last round.  That order is the
    realistic adversary of in-order first-fit placement: by the time the
    big wraps arrive, the small ones already fragmented the fleet, which
    is exactly the case for a global placement phase.  Per-stream rates
    jitter around ``rps`` via the fleet seed, so two calls with the same
    arguments build the identical spec.
    """
    if tenants < 1 or workloads_per_tenant < 1:
        raise DeploymentError("need at least one tenant and workload each")
    mix = ("slapp", "finra-5", "slapp-v", "finra-50")  # small → wide
    rng = np.random.default_rng(seed)
    streams: list[StreamSpec] = []
    for w in range(workloads_per_tenant):
        for t in range(tenants):
            if w == workloads_per_tenant - 1:
                name = mix[-1]                       # the wide app, last
            else:
                name = mix[(t + w) % (len(mix) - 1)]
            jitter = float(rng.uniform(0.7, 1.3))
            streams.append(StreamSpec(
                tenant=f"tenant-{t}", workload=name,
                rps=rps * jitter, requests=requests_per_stream,
                seed=seed * 1_000_003 + len(streams),
                slo_factor=slo_factor))
    return FleetSpec(streams=tuple(streams), zones=zones,
                     racks_per_zone=racks_per_zone,
                     machines_per_rack=machines_per_rack,
                     cores_per_machine=cores_per_machine, seed=seed)
